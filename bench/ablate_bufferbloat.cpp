// Ablation: router queue depth on the direct path (buffer bloat).
//
// The era's conventional wisdom sized queues at the bandwidth-delay
// product; over-buffered bottlenecks inflate RTT (hurting every
// ACK-clocked mechanism) while under-buffered ones cost utilization. The
// depot's user-space buffering is immune to this trade-off: it parks data
// *outside* the congestion control loop. This bench sweeps the direct
// path's queue depth and reports throughput alongside the standing queue
// the transfer built up.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/raw_tcp.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsl;
  using namespace lsl::time_literals;
  bench::banner(
      "Ablation -- bottleneck queue depth (buffer bloat) on a direct path",
      "Deep queues buy throughput but build a standing queue that inflates "
      "RTT; BDP-sized queues are the sweet spot. (100 Mbit/s, 40 ms RTT: "
      "BDP = 500 KB.)");

  const std::size_t iterations = bench::scaled(3, 2);
  Table table({"queue", "goodput Mbit/s", "mean standing queue",
               "max queue", "queue drops"});
  for (const std::uint64_t queue :
       {kib(64), kib(256), kib(512), mib(2), mib(8), mib(32)}) {
    OnlineStats bw;
    OnlineStats mean_q;
    OnlineStats max_q;
    OnlineStats drops;
    for (std::size_t it = 0; it < iterations; ++it) {
      sim::Simulator sim;
      net::Topology topo(sim, 700 + it);
      const auto a = topo.add_node("a");
      const auto b = topo.add_node("b");
      net::LinkConfig link;
      link.rate = Bandwidth::mbps(100);
      link.propagation_delay = 20_ms;
      link.queue_capacity_bytes = queue;
      topo.add_duplex_link(a, b, link);
      topo.compute_routes();
      tcp::TcpStack sa(topo, a);
      tcp::TcpStack sb(topo, b);
      const auto r = exp::run_raw_transfer(
          sim, sa, sb, mib(32), tcp::TcpOptions{}.with_buffers(mib(8)));
      if (r.completed) {
        bw.add(r.goodput.megabits_per_second());
        const auto& stats = topo.link(0).stats();
        mean_q.add(stats.mean_queue_bytes() / 1024.0);
        max_q.add(static_cast<double>(stats.max_queue_bytes) / 1024.0);
        drops.add(static_cast<double>(stats.packets_dropped_queue));
      }
    }
    table.add_row({format_bytes(queue), Table::num(bw.mean(), 1),
                   Table::num(mean_q.mean(), 0) + "KB",
                   Table::num(max_q.mean(), 0) + "KB",
                   Table::num(drops.mean(), 0)});
  }
  table.print(std::cout);
  return 0;
}
