// Ablation: congestion-control algorithm x depot path splitting x link era.
//
// The paper's logistical effect rests on TCP throughput scaling inversely
// with RTT -- a property of Reno-era AIMD. This sweep asks how the effect
// fares under the modern congestion-control zoo:
//
//   * Reno/NewReno: rate ~ 1/(RTT sqrt(p)); splitting a path over n depots
//     divides both RTT and per-hop loss, so relays gain ~n^1.5.
//   * CUBIC (RFC 8312): rate ~ 1/(RTT^(1/4) p^(3/4)); far less
//     RTT-sensitive, so depots gain only ~n -- the crossover where network
//     logistics stops paying for RTT reduction and starts paying only for
//     loss isolation.
//   * BBR: loss-agnostic; throughput pins at min(window/RTT, bottleneck),
//     so depots pay off exactly when transfers are buffer-limited.
//
// Grid: {reno, newreno, cubic, bbr} x {direct, 1 depot, 2 depots} x
// {2004-era OC-3, lossy 10 Gbit/s long-haul, clean 100 Gbit/s metro}.
// End-to-end loss is held constant across depot splits (per-hop loss
// 1 - (1-p)^(1/hops)) so the sweep isolates the RTT-splitting effect.
//
// Emits (--json): goodput_mbps_<preset>_<cca>_<path>, depot speedups
// (speedup_<preset>_<cca>_{1depot,2depot} -- gated by check_perf_gate.py
// and the flow-vs-packet pair check), and per-CCA model agreement
// (fidelity_agreement_<preset>_<cca> = measured direct / flow::steady_rate).
// Exits nonzero if CUBIC fails to beat Reno on the lossy high-BDP path --
// the acceptance anchor for the CCA zoo.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/harness.hpp"
#include "exp/parallel.hpp"
#include "flow/tcp_model.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

struct Preset {
  const char* name;
  double rate_mbps;
  double one_way_ms;  ///< direct-path propagation, split across depot hops
  std::uint64_t queue_bytes;
  double loss;  ///< end-to-end, preserved across depot splits
  std::uint64_t buffer_bytes;
  std::uint64_t transfer_bytes;
};

// Matches the scenario-layer link presets (exp/scenario.cpp): the paper's
// OC-3 era, a lossy intercontinental 10 Gbit/s path past CUBIC's crossover
// RTT, and a clean buffer-limited 100 Gbit/s metro hop.
const Preset kPresets[] = {
    {"2004", 155.0, 23.0, mib(8), 5e-4, 64 * kKiB, mib(16)},
    {"10g", 10000.0, 80.0, mib(32), 1e-4, mib(32), mib(2048)},
    {"100g", 100000.0, 1.0, mib(32), 1e-6, mib(4), mib(256)},
};

const flow::Cca kCcas[] = {flow::Cca::kReno, flow::Cca::kNewReno,
                           flow::Cca::kCubic, flow::Cca::kBbr};

const char* kPathNames[] = {"direct", "1depot", "2depot"};

constexpr std::size_t kPathConfigs = 3;  ///< direct, 1 depot, 2 depots

/// One measured grid point (all fields deterministic per trial index).
struct Measurement {
  double goodput_mbps = 0.0;
  bool completed = false;
};

Measurement run_case(const Preset& preset, flow::Cca cca, std::size_t depots,
                     exp::Fidelity fidelity, std::uint64_t bytes,
                     std::uint64_t seed) {
  exp::SimHarness harness(seed, fidelity);
  const std::size_t hops = depots + 1;
  // Hold end-to-end loss fixed while splitting RTT across hops.
  const double hop_loss = 1.0 - std::pow(1.0 - preset.loss, 1.0 / hops);
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(preset.rate_mbps);
  link.propagation_delay =
      SimTime::from_seconds(preset.one_way_ms * 1e-3 / hops);
  link.queue_capacity_bytes = preset.queue_bytes;
  link.loss_rate = hop_loss;

  std::vector<net::NodeId> nodes;
  nodes.push_back(harness.add_host("src"));
  for (std::size_t d = 0; d < depots; ++d) {
    nodes.push_back(harness.add_host("d" + std::to_string(d)));
  }
  nodes.push_back(harness.add_host("dst"));
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    harness.add_link(nodes[i], nodes[i + 1], link);
  }

  session::DepotConfig depot;
  depot.tcp = tcp::TcpOptions{}.with_buffers(preset.buffer_bytes)
                  .with_cca(cca);
  depot.user_buffer_bytes = 2 * preset.buffer_bytes;
  harness.deploy(depot);

  session::TransferSpec spec;
  spec.dst = nodes.back();
  for (std::size_t d = 0; d < depots; ++d) {
    spec.via.push_back(nodes[d + 1]);
  }
  spec.payload_bytes = bytes;
  spec.tcp = tcp::TcpOptions{}.with_buffers(preset.buffer_bytes)
                 .with_cca(cca);

  const auto outcome =
      harness.run_transfer(nodes.front(), spec, SimTime::seconds(7200));
  Measurement m;
  m.completed = outcome.completed;
  m.goodput_mbps = outcome.goodput.megabits_per_second();
  return m;
}

/// Analytic direct-path rate for the fidelity_agreement_* records.
double analytic_direct_mbps(const Preset& preset, flow::Cca cca) {
  flow::ConnectionParams params;
  params.rtt = SimTime::from_seconds(2.0 * preset.one_way_ms * 1e-3);
  params.bottleneck = Bandwidth::mbps(preset.rate_mbps);
  params.window_bytes = preset.buffer_bytes;
  params.loss_rate = preset.loss;
  params.cca = cca;
  return flow::steady_rate(params).megabits_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation -- congestion-control zoo vs depot path splitting",
      "Reno-era AIMD gains ~n^1.5 from n-way RTT splitting; CUBIC gains ~n; "
      "BBR gains exactly the buffer-limit relief. The logistical effect "
      "survives, but its mechanism shifts from loss recovery to buffering.");
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  // --cca=<name> restricts the grid to one algorithm (CI determinism runs)
  // and --preset=<name> to one link era (CI pairs flow-vs-packet speedups
  // on the window-limited 2004 preset, where both engines converge).
  const char* only_cca = nullptr;
  const char* only_preset = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cca=", 6) == 0) {
      only_cca = argv[i] + 6;
      flow::Cca parsed;
      if (!flow::parse_cca(only_cca, parsed)) {
        std::fprintf(stderr, "ablate_cca: unknown cca '%s'\n", only_cca);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      only_preset = argv[i] + 9;
      bool known = false;
      for (const Preset& preset : kPresets) {
        known = known || std::strcmp(preset.name, only_preset) == 0;
      }
      if (!known) {
        std::fprintf(stderr, "ablate_cca: unknown preset '%s'\n", only_preset);
        return 2;
      }
    }
  }
  const exp::Fidelity fidelity = opts.fidelity == "flow"
                                     ? exp::Fidelity::kFlow
                                     : exp::Fidelity::kPacket;
  if (opts.fidelity == "analytic") {
    std::printf("(analytic fidelity not meaningful here; using packet)\n");
  }

  struct Case {
    std::size_t preset;
    std::size_t cca;
    std::size_t path;  ///< depot count = path
  };
  std::vector<Case> grid;
  for (std::size_t p = 0; p < std::size(kPresets); ++p) {
    if (only_preset != nullptr &&
        std::strcmp(kPresets[p].name, only_preset) != 0) {
      continue;
    }
    for (std::size_t c = 0; c < std::size(kCcas); ++c) {
      if (only_cca != nullptr &&
          std::strcmp(flow::to_string(kCcas[c]), only_cca) != 0) {
        continue;
      }
      for (std::size_t d = 0; d < kPathConfigs; ++d) {
        grid.push_back(Case{p, c, d});
      }
    }
  }

  exp::TrialOptions trial_options;
  trial_options.jobs = opts.jobs;
  const std::vector<Measurement> results = exp::map_trials<Measurement>(
      grid.size(), trial_options, [&](std::size_t i) {
        const Case& c = grid[i];
        const Preset& preset = kPresets[c.preset];
        const std::uint64_t bytes = static_cast<std::uint64_t>(
            static_cast<double>(preset.transfer_bytes) *
            bench::scale_factor());
        // Seeded by grid coordinates, not vector position, so --cca
        // filtering replays the identical simulations.
        const std::uint64_t seed =
            0xCCA0 + 100 * c.preset + 10 * c.cca + c.path;
        return run_case(preset, kCcas[c.cca], c.path, fidelity,
                        std::max<std::uint64_t>(bytes, mib(1)), seed);
      });

  bench::JsonRecords records("ablate_cca");
  Table table({"preset", "cca", "path", "goodput Mbit/s", "speedup"});
  // goodput[preset][cca][path], NaN when the case was filtered out.
  double goodput[std::size(kPresets)][std::size(kCcas)][kPathConfigs];
  for (auto& by_cca : goodput) {
    for (auto& by_path : by_cca) {
      for (double& g : by_path) {
        g = std::nan("");
      }
    }
  }
  bool all_completed = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Case& c = grid[i];
    goodput[c.preset][c.cca][c.path] = results[i].goodput_mbps;
    all_completed = all_completed && results[i].completed;
  }

  for (std::size_t p = 0; p < std::size(kPresets); ++p) {
    for (std::size_t c = 0; c < std::size(kCcas); ++c) {
      if (std::isnan(goodput[p][c][0])) {
        continue;
      }
      const std::string tag = std::string(kPresets[p].name) + "_" +
                              flow::to_string(kCcas[c]);
      const double direct = goodput[p][c][0];
      for (std::size_t d = 0; d < kPathConfigs; ++d) {
        const double g = goodput[p][c][d];
        records.add("goodput_mbps_" + tag + "_" + kPathNames[d], g);
        const double speedup = direct > 0.0 ? g / direct : 0.0;
        if (d > 0) {
          records.add("speedup_" + tag + "_" + kPathNames[d], speedup);
        }
        table.add_row({kPresets[p].name, flow::to_string(kCcas[c]),
                       kPathNames[d], Table::num(g, 1),
                       d == 0 ? "1.00" : Table::num(speedup, 2)});
      }
      const double analytic = analytic_direct_mbps(kPresets[p], kCcas[c]);
      if (analytic > 0.0) {
        records.add("fidelity_agreement_" + tag, direct / analytic);
      }
    }
  }
  table.print(std::cout);

  if (!records.write(opts.json_path)) {
    return 1;
  }
  if (!all_completed) {
    std::fprintf(stderr, "ablate_cca: a transfer missed its deadline\n");
    return 1;
  }

  // Acceptance anchor: on the lossy high-BDP path, CUBIC's response
  // function must beat Reno's Mathis rate in simulation, not just in the
  // closed form.
  const double reno_10g = goodput[1][0][0];
  const double cubic_10g = goodput[1][2][0];
  if (!std::isnan(reno_10g) && !std::isnan(cubic_10g)) {
    std::printf("\n10g direct: cubic %.1f vs reno %.1f Mbit/s (%.2fx)\n",
                cubic_10g, reno_10g,
                reno_10g > 0.0 ? cubic_10g / reno_10g : 0.0);
    records.add("cubic_over_reno_10g",
                reno_10g > 0.0 ? cubic_10g / reno_10g : 0.0);
    if (cubic_10g <= reno_10g) {
      std::fprintf(stderr,
                   "ablate_cca: CUBIC (%.1f) did not beat Reno (%.1f) on "
                   "the lossy high-BDP path\n",
                   cubic_10g, reno_10g);
      return 1;
    }
  }
  // Re-write with the ratio record included (cheap; path may be empty).
  if (!records.write(opts.json_path)) {
    return 1;
  }
  return 0;
}
