// Ablation: the logistical effect under background contention.
//
// The paper's measurements ran over shared production networks. This bench
// re-runs the UCSB->UIUC comparison while background flows churn across
// the same links, checking that the LSL advantage is not an artifact of a
// quiet network.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/abilene_paths.hpp"
#include "testbed/cross_traffic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsl;
  using namespace lsl::time_literals;
  bench::banner(
      "Ablation -- the logistical effect under background cross traffic "
      "(UCSB->UIUC, 16MB)",
      "LSL's advantage must survive contention: background flows load both "
      "the depot path and the direct path.");

  const auto scenario = testbed::ucsb_uiuc_via_denver();
  const std::size_t iterations = bench::scaled(5, 2);

  Table table({"background flows", "direct Mbit/s", "LSL Mbit/s", "speedup"});
  for (const std::size_t flows : {std::size_t{0}, std::size_t{2},
                                  std::size_t{6}}) {
    OnlineStats direct_bw;
    OnlineStats lsl_bw;
    for (std::size_t it = 0; it < iterations; ++it) {
      for (const bool via : {false, true}) {
        testbed::PathTestbed bed(scenario, 5000 + it);
        std::unique_ptr<testbed::CrossTraffic> traffic;
        if (flows > 0) {
          testbed::CrossTrafficConfig config;
          config.flows = flows;
          config.mean_burst_bytes = mib(2);
          config.mean_gap = 100_ms;
          config.tcp_buffer = kib(512);
          traffic = std::make_unique<testbed::CrossTraffic>(bed.harness(),
                                                            config, 17 + it);
        }
        const auto handle = bed.launch(via, mib(16));
        const auto r = bed.harness().wait(handle, 3600_s);
        if (r.completed) {
          (via ? lsl_bw : direct_bw).add(r.goodput.megabits_per_second());
        }
      }
    }
    table.add_row({Table::num_int(static_cast<long long>(flows)),
                   Table::num(direct_bw.mean(), 1),
                   Table::num(lsl_bw.mean(), 1),
                   Table::num(lsl_bw.mean() / direct_bw.mean(), 2)});
  }
  table.print(std::cout);
  return 0;
}
