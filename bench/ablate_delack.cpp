// Ablation: delayed acknowledgments in the TCP substrate.
//
// This reproduction clocks both directions with per-segment ACKs by
// default so direct and relayed transfers are compared symmetrically.
// Delayed ACKs roughly halve reverse-path packets and slow slow-start's
// ramp (cwnd grows per ACK); the steady state is nearly unchanged.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/raw_tcp.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

struct Sample {
  double mbps = 0.0;
  double ack_packets = 0.0;
};

Sample measure(SimTime one_way, std::uint64_t bytes, bool delack,
               std::size_t iterations) {
  OnlineStats bw;
  OnlineStats acks;
  for (std::size_t it = 0; it < iterations; ++it) {
    sim::Simulator sim;
    net::Topology topo(sim, 600 + it);
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(155);
    link.propagation_delay = one_way;
    link.queue_capacity_bytes = mib(8);
    topo.add_duplex_link(a, b, link);
    topo.compute_routes();
    tcp::TcpStack sa(topo, a);
    tcp::TcpStack sb(topo, b);
    auto options = tcp::TcpOptions{}.with_buffers(mib(4));
    options.delayed_ack = delack;
    const auto r = exp::run_raw_transfer(sim, sa, sb, bytes, options);
    if (r.completed) {
      bw.add(r.goodput.megabits_per_second());
      acks.add(static_cast<double>(topo.link(1).stats().packets_sent));
    }
  }
  return Sample{bw.mean(), acks.mean()};
}

}  // namespace

int main() {
  bench::banner(
      "Ablation -- delayed ACKs (155 Mbit/s, 4MB buffers, lossless)",
      "Delayed ACKs halve reverse-path packets and slow the ramp; steady "
      "state is unchanged. Default here is per-segment ACKs (symmetric "
      "comparisons).");

  const std::size_t iterations = bench::scaled(3, 2);
  Table table({"RTT", "size", "per-seg Mbit/s", "delack Mbit/s",
               "per-seg ACK pkts", "delack ACK pkts"});
  struct Case {
    SimTime one_way;
    std::uint64_t bytes;
  };
  for (const Case c : {Case{10_ms, mib(1)}, Case{10_ms, mib(16)},
                       Case{35_ms, mib(1)}, Case{35_ms, mib(16)}}) {
    const auto per_seg = measure(c.one_way, c.bytes, false, iterations);
    const auto delack = measure(c.one_way, c.bytes, true, iterations);
    table.add_row({(c.one_way * 2).str(), format_bytes(c.bytes),
                   Table::num(per_seg.mbps, 1), Table::num(delack.mbps, 1),
                   Table::num(per_seg.ack_packets, 0),
                   Table::num(delack.ack_packets, 0)});
  }
  table.print(std::cout);
  return 0;
}
