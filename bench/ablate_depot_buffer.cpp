// Ablation: depot pipeline buffering (the mechanism behind Figure 5).
//
// The depot's total pipeline is 2 kernel buffers + the user-space relay
// buffer. More buffering lets the fast upstream leg absorb more of the
// transfer early (deeper "knee"), but end-to-end throughput converges to
// the bottleneck leg regardless -- buffers shape the transient, not the
// steady state.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/trace.hpp"
#include "testbed/abilene_paths.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsl;
  using namespace lsl::time_literals;
  bench::banner(
      "Ablation -- depot user-buffer size on the UCSB->UIUC path (64MB)",
      "The sublink-1 'knee' should track 2 x kernel + user buffer; "
      "end-to-end bandwidth should be nearly flat across buffer sizes.");

  const std::size_t iterations = bench::scaled(3, 2);
  Table table({"user buffer", "pipeline total", "sub1 MB at 3s",
               "end-to-end Mbit/s"});
  for (const std::uint64_t user_buf :
       {mib(4), mib(8), mib(16), mib(32), mib(64)}) {
    auto scenario = testbed::ucsb_uiuc_via_denver();
    scenario.depot_user_buffer = user_buf;
    OnlineStats bw;
    OnlineStats sub1_at_3s;
    for (std::size_t it = 0; it < iterations; ++it) {
      testbed::PathTestbed bed(scenario, 3000 + it);
      exp::SeqTrace sub1;
      const auto origin = bed.harness().simulator().now();
      const auto handle = bed.harness().launch_traced(
          bed.src(), bed.make_spec(true, mib(64)),
          [&](tcp::Connection& conn) { sub1.attach(conn, origin); });
      const auto r = bed.harness().wait(handle, 3600_s);
      if (r.completed) {
        bw.add(r.goodput.megabits_per_second());
        sub1_at_3s.add(static_cast<double>(sub1.value_at(3_s)) /
                       static_cast<double>(kMiB));
      }
    }
    const std::uint64_t pipeline =
        2 * scenario.depot_kernel_buffer + user_buf;
    table.add_row({format_bytes(user_buf), format_bytes(pipeline),
                   Table::num(sub1_at_3s.mean(), 1),
                   Table::num(bw.mean(), 1)});
  }
  table.print(std::cout);
  return 0;
}
