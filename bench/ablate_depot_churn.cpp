// Ablation: depot churn vs. session recovery (paper section 6 future work).
//
// The UCSB->UIUC depot path is the paper's throughput winner, but it adds
// a process that can die. This sweep crashes the Denver depot with an
// exponential MTBF/MTTR process while a 64MB transfer rides through it:
// with recovery the session blacklists the dead depot, fails over to the
// direct path, and resumes from the sink's committed offset; without it
// the first crash kills the transfer. "direct" is the churn-immune (but
// lossy, hence slower) baseline the recovery path degrades to.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/harness.hpp"
#include "fault/injector.hpp"
#include "obs/explain.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

enum class Mode { kRecovery, kNoRecovery, kDirect };

struct Trial {
  bool completed = false;
  double mbps = 0.0;
  int retries = 0;
};

Trial run_trial(Mode mode, double mtbf_s, std::uint64_t seed,
                obs::BreakdownTotals* totals = nullptr) {
  // Record spans for the trial so the JSON sidecar can report where the
  // recovery path spends its wall time (stall detection, backoff, failover
  // reconnects) rather than just the end-to-end goodput.
  obs::SpanRecorder spans(0);
  obs::ScopedSpanRecorder scope(totals != nullptr ? &spans : nullptr);
  exp::SimHarness harness(seed);
  const auto src = harness.add_host("ash.ucsb.edu", "ucsb.edu");
  const auto depot = harness.add_host("depot.denver", "core");
  const auto dst = harness.add_host("bell.uiuc.edu", "uiuc.edu");

  const auto wan = [](double delay_ms, double loss) {
    net::LinkConfig config;
    config.rate = Bandwidth::mbps(155);
    config.propagation_delay = SimTime::from_seconds(delay_ms * 1e-3);
    config.queue_capacity_bytes = mib(8);
    config.loss_rate = loss;
    return config;
  };
  harness.add_link(src, depot, wan(23.0, 1e-5));
  harness.add_link(depot, dst, wan(22.5, 5e-4));
  harness.add_link(src, dst, wan(35.0, 5e-4));

  session::DepotConfig config;
  config.tcp = config.tcp.with_buffers(mib(8));
  config.user_buffer_bytes = mib(16);
  harness.deploy(config);

  // Keep "direct" traffic (including failover) on the direct link.
  auto& topo = harness.topology();
  topo.node(src).set_route(dst, topo.link_between(src, dst));
  topo.node(dst).set_route(src, topo.link_between(dst, src));

  fault::FaultInjector injector(harness.simulator(), topo);
  injector.set_depot_control([&harness](net::NodeId node, bool up) {
    if (up) {
      harness.depot(node).restart();
    } else {
      harness.depot(node).shutdown();
    }
  });
  if (mode != Mode::kDirect) {
    fault::FaultPlan plan;
    fault::ChurnSpec churn;
    churn.node = depot;
    churn.mtbf = SimTime::from_seconds(mtbf_s);
    churn.mttr = 2_s;
    churn.horizon = 600_s;
    Rng churn_rng(seed ^ 0x51ED270BULL);
    plan.add_churn(churn, churn_rng);
    injector.schedule(plan);
  }

  session::TransferSpec spec;
  spec.dst = dst;
  if (mode != Mode::kDirect) {
    spec.via.push_back(depot);
  }
  spec.payload_bytes = mib(64);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(8));

  session::RecoveryConfig recovery;
  recovery.enabled = mode == Mode::kRecovery;
  recovery.stall_timeout = 5_s;
  recovery.max_backoff = 5_s;

  const auto handle = harness.launch_reliable(src, spec, recovery);
  const auto r = harness.wait(handle, 600_s);
  Trial trial;
  trial.completed = r.completed;
  trial.mbps = r.goodput.megabits_per_second();
  trial.retries = r.retries;
  if (totals != nullptr) {
    for (const auto& b : obs::account_spans(spans.snapshot())) {
      totals->add(b);
    }
  }
  return trial;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation -- depot churn vs session recovery (UCSB->UIUC, 64MB)",
      "Completion rate and goodput vs depot MTBF (MTTR 2s). Recovery "
      "should hold completion at 100% by failing over to the direct path "
      "and resuming at the committed offset; without it completion decays "
      "toward exp(-T/MTBF).");
  const auto opts = bench::parse_options(argc, argv);
  const std::size_t iterations = bench::scaled(5, 2);

  // Churn-immune baseline: one column, independent of MTBF.
  OnlineStats direct_bw;
  for (std::size_t it = 0; it < iterations; ++it) {
    const Trial t = run_trial(Mode::kDirect, 0.0, 9000 + it);
    if (t.completed) {
      direct_bw.add(t.mbps);
    }
  }

  Table table({"depot mtbf", "recov ok", "recov Mbit/s", "mean retries",
               "no-recov ok", "no-recov Mbit/s", "direct Mbit/s"});
  OnlineStats recov_bw_all;
  OnlineStats retries_all;
  std::size_t recov_ok_all = 0;
  std::size_t norecov_ok_all = 0;
  std::size_t trials_per_arm = 0;
  obs::BreakdownTotals recov_acct;
  for (const double mtbf_s : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    OnlineStats on_bw;
    OnlineStats retries;
    std::size_t on_ok = 0;
    OnlineStats off_bw;
    std::size_t off_ok = 0;
    for (std::size_t it = 0; it < iterations; ++it) {
      const std::uint64_t seed = 4000 + 17 * it;
      const Trial on = run_trial(Mode::kRecovery, mtbf_s, seed, &recov_acct);
      if (on.completed) {
        ++on_ok;
        on_bw.add(on.mbps);
        recov_bw_all.add(on.mbps);
      }
      retries.add(on.retries);
      retries_all.add(on.retries);
      const Trial off = run_trial(Mode::kNoRecovery, mtbf_s, seed);
      if (off.completed) {
        ++off_ok;
        off_bw.add(off.mbps);
      }
    }
    recov_ok_all += on_ok;
    norecov_ok_all += off_ok;
    trials_per_arm += iterations;
    const auto rate = [&](std::size_t ok) {
      return std::to_string(ok) + "/" + std::to_string(iterations);
    };
    table.add_row({Table::num(mtbf_s, 0) + "s", rate(on_ok),
                   on_bw.count() > 0 ? Table::num(on_bw.mean(), 1) : "-",
                   Table::num(retries.mean(), 1), rate(off_ok),
                   off_bw.count() > 0 ? Table::num(off_bw.mean(), 1) : "-",
                   Table::num(direct_bw.mean(), 1)});
  }
  table.print(std::cout);

  bench::JsonRecords records("ablate_depot_churn");
  const double arm = static_cast<double>(trials_per_arm);
  records.add("recovery_completion_rate",
              arm > 0.0 ? static_cast<double>(recov_ok_all) / arm : 0.0);
  records.add("norecovery_completion_rate",
              arm > 0.0 ? static_cast<double>(norecov_ok_all) / arm : 0.0);
  records.add("recovery_mbps_mean", recov_bw_all.mean());
  records.add("direct_mbps_mean", direct_bw.mean());
  records.add("retries_mean", retries_all.mean());
  // --explain accounting across every recovery trial, mean seconds per
  // transfer: churn cost shows up as stall (watchdog windows), backoff
  // (between attempts), and connect (failover reconnects) time.
  const auto per_transfer = [&](SimTime v) {
    return recov_acct.transfers > 0
               ? v.to_seconds() / static_cast<double>(recov_acct.transfers)
               : 0.0;
  };
  records.add("explain_recovery_wall_s", per_transfer(recov_acct.wall));
  records.add("explain_recovery_stream_s", per_transfer(recov_acct.stream));
  records.add("explain_recovery_stall_s", per_transfer(recov_acct.stall));
  records.add("explain_recovery_backoff_s", per_transfer(recov_acct.backoff));
  records.add("explain_recovery_connect_s", per_transfer(recov_acct.connect));
  records.add("explain_recovery_probe_s", per_transfer(recov_acct.probe));
  return records.write(opts.json_path) ? 0 : 1;
}
