// Ablation: the edge-equivalence margin epsilon.
//
// The paper fixed eps at 10% of the edge value, noting "clusters coalesced
// around 10% and higher values did little to alter the generated
// schedules", and did not evaluate the choice further. This sweep does:
// eps controls how aggressively the scheduler relays, trading coverage
// (fraction of pairs scheduled) against decision quality (mean speedup of
// the scheduled set and the share of harmful schedules).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation -- epsilon edge-equivalence sweep",
      "Higher eps: fewer, safer relay decisions with shorter paths. The "
      "useful regime is where mean speedup > 1 with meaningful coverage.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);

  Table table({"epsilon", "frac scheduled", "mean hops", "mean speedup",
               "% harmful"});
  for (const double eps : {0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60}) {
    testbed::SweepConfig config;
    config.max_size_exp = 4;  // 1-8 MB keeps the sweep brisk
    config.iterations = bench::scaled(3, 2);
    config.max_cases = 250;
    config.epsilon = eps;
    config.jobs = opts.jobs;
    const auto result = testbed::run_speedup_sweep(grid, config, 42);
    const auto all = result.all_speedups();
    table.add_row({Table::num(eps, 2),
                   Table::num(result.fraction_scheduled, 3),
                   Table::num(result.mean_path_hops, 2),
                   all.empty() ? "-" : Table::num(mean_of(all), 3),
                   all.empty() ? "-"
                               : Table::num(percentile_rank_below(all, 1.0), 1)});
  }
  table.print(std::cout);
  return 0;
}
