// Ablation: the host-throughput edge extension (paper section 6 future
// work: "the scheduling algorithms can be trivially extended to include the
// path through the host as another edge whose bandwidth must be taken into
// account"). With it on, the minimax relax also pays each relay host's
// forwarding cost, steering paths away from slow/loaded depots.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation -- host-throughput edges in the scheduler (paper sec. 6)",
      "Accounting for the bandwidth *through* relay hosts should cut the "
      "harmful-schedule fraction: loaded depots stop looking like good "
      "relays.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);

  Table table({"host edges", "frac scheduled", "mean hops", "mean speedup",
               "median", "% harmful"});
  for (const bool use_host_costs : {false, true}) {
    testbed::SweepConfig config;
    config.max_size_exp = 4;
    config.iterations = bench::scaled(3, 2);
    config.max_cases = 300;
    config.epsilon = grid.noise().sweep_epsilon;
    config.use_host_costs = use_host_costs;
    config.jobs = opts.jobs;
    const auto result = testbed::run_speedup_sweep(grid, config, 42);
    const auto all = result.all_speedups();
    table.add_row({use_host_costs ? "on" : "off",
                   Table::num(result.fraction_scheduled, 3),
                   Table::num(result.mean_path_hops, 2),
                   all.empty() ? "-" : Table::num(mean_of(all), 3),
                   all.empty() ? "-" : Table::num(median_of(all), 3),
                   all.empty() ? "-"
                               : Table::num(percentile_rank_below(all, 1.0),
                                            1)});
  }
  table.print(std::cout);
  std::printf("\nNote: the host-cost input is the *unloaded* capacity; the "
              "realized transfer\nalso samples load, so the extension "
              "removes systematically bad relays but not\ntransiently "
              "loaded ones.\n");
  return 0;
}
