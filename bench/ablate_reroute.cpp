// Ablation: mid-transfer adaptive rerouting vs riding out a brownout.
//
// A 48MB transfer starts on its forecast-best path (via depot.a); two
// seconds in, that path's wide-area hop browns out to 5% of its rate for
// the rest of the run. With rerouting the NWS loop measures the throttled
// link, the forecasts drift, and the RouteAdvisor hands the live session
// over to depot.b (drain to the committed offset, resume there); without
// it the transfer crawls to the finish at brownout speed. "clean" is the
// no-fault ceiling, and the control column re-runs the reroute
// configuration with steady forecasts -- it must never reroute (the
// hysteresis margin has to absorb measurement noise).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/scenario.hpp"
#include "obs/explain.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

struct Trial {
  bool completed = false;
  double mbps = 0.0;
  int reroutes = 0;
};

exp::Scenario make_scenario(bool faulted, bool rerouting) {
  exp::Scenario s;
  s.hosts = {{"src", "site-a"},
             {"depot.a", "core-a"},
             {"depot.b", "core-b"},
             {"sink", "site-b"}};
  const auto link = [&s](const char* a, const char* b, double mbps,
                         double delay_ms) {
    exp::ScenarioLink l;
    l.a = a;
    l.b = b;
    l.config.rate = Bandwidth::mbps(mbps);
    l.config.propagation_delay = SimTime::from_seconds(delay_ms * 1e-3);
    l.config.queue_capacity_bytes = mib(4);
    l.config.loss_rate = 1e-5;
    s.links.push_back(std::move(l));
  };
  link("src", "depot.a", 100, 10);
  link("depot.a", "sink", 100, 10);
  link("src", "depot.b", 80, 12);
  link("depot.b", "sink", 80, 12);
  link("src", "sink", 20, 40);
  s.pins.push_back({"src", "sink"});
  s.depot.tcp = s.depot.tcp.with_buffers(mib(4));
  s.depot.user_buffer_bytes = mib(8);

  session::RecoveryConfig recovery;
  recovery.max_retries = 4;
  s.recovery = recovery;

  if (faulted) {
    exp::ScenarioFault f;
    f.kind = fault::FaultKind::kLinkBrownout;
    f.a = "depot.a";
    f.b = "sink";
    f.at_s = 2.0;
    f.for_s = 120.0;
    f.loss = 0.0;
    f.rate_factor = 0.05;
    s.faults.push_back(std::move(f));
  }
  if (rerouting) {
    exp::ScenarioReroute rr;
    rr.interval_s = 1.0;
    rr.hysteresis = 0.2;
    rr.dwell_s = 3.0;
    rr.penalty_s = 0.5;
    rr.sigma = 0.02;
    s.reroute = rr;
  }

  exp::ScenarioTransfer t;
  t.src = "src";
  t.dst = "sink";
  t.via = {"depot.a"};
  t.bytes = mib(48);
  t.buffer_bytes = mib(4);
  s.transfers.push_back(std::move(t));
  return s;
}

Trial run_trial(bool faulted, bool rerouting, std::uint64_t seed,
                obs::BreakdownTotals* totals = nullptr) {
  // Record spans for the trial and fold the per-transfer time accounting
  // into `totals` (the JSON sidecar reports where the wall time went).
  obs::SpanRecorder spans(0);
  obs::ScopedSpanRecorder scope(totals != nullptr ? &spans : nullptr);
  const auto outcomes =
      exp::run_scenario(make_scenario(faulted, rerouting), seed, 600_s);
  Trial trial;
  if (!outcomes.empty()) {
    trial.completed = outcomes[0].outcome.completed;
    trial.mbps = outcomes[0].outcome.goodput.megabits_per_second();
    trial.reroutes = outcomes[0].outcome.reroutes;
  }
  if (totals != nullptr) {
    for (const auto& b : obs::account_spans(spans.snapshot())) {
      totals->add(b);
    }
  }
  return trial;
}

}  // namespace

int main(int argc, char** argv) {
  lsl::bench::banner(
      "Ablation -- adaptive reroute vs brownout (48MB, depot.a throttled)",
      "Goodput with/without mid-transfer rerouting when the scheduled "
      "path's WAN hop drops to 5% rate at t=2s. Rerouting should recover "
      "most of the lost throughput; the steady-forecast control must show "
      "zero reroutes (hysteresis absorbs measurement noise).");
  const auto opts = lsl::bench::parse_options(argc, argv);
  const std::size_t iterations = lsl::bench::scaled(5, 2);

  OnlineStats reroute_bw;
  OnlineStats reroute_count;
  OnlineStats noreroute_bw;
  OnlineStats clean_bw;
  int control_reroutes = 0;
  std::size_t all_completed = 0;
  lsl::obs::BreakdownTotals on_acct;
  lsl::obs::BreakdownTotals off_acct;
  for (std::size_t it = 0; it < iterations; ++it) {
    const std::uint64_t seed = 5000 + 13 * it;
    const Trial on =
        run_trial(/*faulted=*/true, /*rerouting=*/true, seed, &on_acct);
    const Trial off =
        run_trial(/*faulted=*/true, /*rerouting=*/false, seed, &off_acct);
    const Trial clean =
        run_trial(/*faulted=*/false, /*rerouting=*/false, seed);
    const Trial control =
        run_trial(/*faulted=*/false, /*rerouting=*/true, seed);
    all_completed += static_cast<std::size_t>(
        on.completed && off.completed && clean.completed &&
        control.completed);
    reroute_bw.add(on.mbps);
    reroute_count.add(on.reroutes);
    noreroute_bw.add(off.mbps);
    clean_bw.add(clean.mbps);
    control_reroutes += control.reroutes;
  }

  // Of the throughput the brownout took away (clean - no-reroute), how
  // much did rerouting win back?
  const double lost = clean_bw.mean() - noreroute_bw.mean();
  const double recovered =
      lost > 0.0 ? (reroute_bw.mean() - noreroute_bw.mean()) / lost : 0.0;

  lsl::Table table({"config", "Mbit/s", "reroutes"});
  table.add_row({"brownout + reroute", lsl::Table::num(reroute_bw.mean(), 1),
                 lsl::Table::num(reroute_count.mean(), 1)});
  table.add_row({"brownout, no reroute",
                 lsl::Table::num(noreroute_bw.mean(), 1), "0"});
  table.add_row({"clean (ceiling)", lsl::Table::num(clean_bw.mean(), 1),
                 "-"});
  table.add_row({"control (reroute, steady)", "-",
                 std::to_string(control_reroutes)});
  table.print(std::cout);
  std::printf("\nlost-throughput recovered: %.0f%% (target >= 20%%); "
              "control reroutes: %d (must be 0); "
              "all trials completed: %zu/%zu\n",
              recovered * 100.0, control_reroutes, all_completed,
              iterations);

  lsl::bench::JsonRecords records("ablate_reroute");
  records.add("reroute_mbps", reroute_bw.mean());
  records.add("noreroute_mbps", noreroute_bw.mean());
  records.add("clean_mbps", clean_bw.mean());
  records.add("reroute_vs_noreroute_speedup",
              noreroute_bw.mean() > 0.0
                  ? reroute_bw.mean() / noreroute_bw.mean()
                  : 0.0);
  records.add("lost_throughput_recovered_fraction", recovered);
  records.add("control_reroutes_total", control_reroutes);
  records.add("handovers_mean", reroute_count.mean());
  // Where the wall time went (--explain accounting, mean seconds per
  // transfer): rerouting should trade stall/probe time for a small
  // handover cost; without it the brownout shows up as stream time.
  const auto per_transfer = [](const lsl::obs::BreakdownTotals& t,
                               lsl::SimTime v) {
    return t.transfers > 0
               ? v.to_seconds() / static_cast<double>(t.transfers)
               : 0.0;
  };
  records.add("explain_reroute_wall_s", per_transfer(on_acct, on_acct.wall));
  records.add("explain_reroute_stream_s",
              per_transfer(on_acct, on_acct.stream));
  records.add("explain_reroute_handover_s",
              per_transfer(on_acct, on_acct.handover));
  records.add("explain_reroute_stall_s", per_transfer(on_acct, on_acct.stall));
  records.add("explain_noreroute_wall_s",
              per_transfer(off_acct, off_acct.wall));
  records.add("explain_noreroute_stream_s",
              per_transfer(off_acct, off_acct.stream));
  if (!records.write(opts.json_path)) {
    return 1;
  }
  return control_reroutes == 0 && recovered >= 0.2 ? 0 : 1;
}
