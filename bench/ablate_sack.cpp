// Ablation: SACK vs plain NewReno loss recovery in the TCP substrate.
//
// A design choice of this reproduction: Linux 2.4 (the paper's stack)
// shipped with SACK enabled, so our default is on. This quantifies what
// the option is worth across loss regimes -- and shows that the inverse-RTT
// scaling the logistical effect exploits holds either way.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/raw_tcp.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

double measure(double loss, SimTime one_way, std::uint64_t queue, bool sack,
               std::size_t iterations) {
  OnlineStats bw;
  for (std::size_t it = 0; it < iterations; ++it) {
    sim::Simulator sim;
    net::Topology topo(sim, 500 + it);
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(155);
    link.propagation_delay = one_way;
    link.queue_capacity_bytes = queue;
    link.loss_rate = loss;
    topo.add_duplex_link(a, b, link);
    topo.compute_routes();
    tcp::TcpStack stack_a(topo, a);
    tcp::TcpStack stack_b(topo, b);
    auto options = tcp::TcpOptions{}.with_buffers(mib(8));
    options.sack_enabled = sack;
    const auto r =
        exp::run_raw_transfer(sim, stack_a, stack_b, mib(16), options);
    if (r.completed) {
      bw.add(r.goodput.megabits_per_second());
    }
  }
  return bw.mean();
}

}  // namespace

int main() {
  bench::banner(
      "Ablation -- SACK vs NewReno recovery (16MB, 155 Mbit/s, 8MB buffers)",
      "SACK recovers burst losses in about one RTT; NewReno fills one hole "
      "per RTT. Both preserve the inverse-RTT throughput law.");

  const std::size_t iterations = bench::scaled(4, 2);
  Table table(
      {"scenario", "loss", "RTT", "SACK Mbit/s", "NewReno Mbit/s", "ratio"});
  struct Case {
    const char* label;
    double loss;
    SimTime one_way;
    std::uint64_t queue;
  };
  // Random-loss rows (deep queues): single losses per window, where Reno's
  // dup-ack inflation competes well. Shallow-queue rows force slow-start
  // overshoot burst drops, where SACK's hole-filling dominates.
  for (const Case c : {Case{"random loss", 1e-4, 23_ms, mib(8)},
                       Case{"random loss", 1e-4, 35_ms, mib(8)},
                       Case{"random loss", 1e-3, 23_ms, mib(8)},
                       Case{"random loss", 1e-3, 35_ms, mib(8)},
                       Case{"burst (overflow)", 0.0, 23_ms, mib(1)},
                       Case{"burst + random", 1e-4, 23_ms, mib(1)}}) {
    const double with_sack =
        measure(c.loss, c.one_way, c.queue, true, iterations);
    const double without =
        measure(c.loss, c.one_way, c.queue, false, iterations);
    table.add_row({c.label, Table::num(c.loss, 4), (c.one_way * 2).str(),
                   Table::num(with_sack, 1), Table::num(without, 1),
                   Table::num(without > 0 ? with_sack / without : 0, 2)});
  }
  table.print(std::cout);
  return 0;
}
