// Ablation: sensitivity to stale scheduling information.
//
// Paper section 4.2: "the frequency with which the algorithm can consider
// current network information, and its sensitivity to it, are key issues";
// their first experiment re-ran the scheduler every 5 minutes, the second
// used static information. We emulate staleness as persistent per-pair
// drift applied to the matrix after measurement.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation -- scheduling from stale network information",
      "Fresh forecasts keep the speedup distribution favorable; as the "
      "matrix drifts from reality, harmful schedules take over.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);

  Table table({"matrix drift sigma", "frac scheduled", "mean speedup",
               "median", "% harmful"});
  for (const double drift : {0.0, 0.15, 0.30, 0.60, 1.00}) {
    testbed::SweepConfig config;
    config.max_size_exp = 4;
    config.iterations = bench::scaled(3, 2);
    config.max_cases = 250;
    config.epsilon = grid.noise().sweep_epsilon;
    config.matrix_drift_sigma = drift;
    config.jobs = opts.jobs;
    const auto result = testbed::run_speedup_sweep(grid, config, 42);
    const auto all = result.all_speedups();
    table.add_row({Table::num(drift, 2),
                   Table::num(result.fraction_scheduled, 3),
                   all.empty() ? "-" : Table::num(mean_of(all), 3),
                   all.empty() ? "-" : Table::num(median_of(all), 3),
                   all.empty() ? "-"
                               : Table::num(percentile_rank_below(all, 1.0), 1)});
  }
  table.print(std::cout);
  return 0;
}
