// Baseline: PSockets-style parallel TCP striping (related work, section 5).
//
// The paper contrasts LSL's *serial* sockets with PSockets' *parallel*
// sockets. On a loss-limited high-RTT path, N parallel connections
// multiply the aggregate Mathis window by ~N, while LSL shortens each
// control loop instead. This bench runs both on the UCSB->UIUC scenario.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "exp/raw_tcp.hpp"
#include "testbed/abilene_paths.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsl;
  using namespace lsl::time_literals;
  bench::banner(
      "Baseline -- PSockets-style parallel sockets vs serial (LSL) sockets",
      "Parallel striping attacks the same TCP limitation from the "
      "application; logistical forwarding attacks it in the network. Both "
      "beat a single direct connection on the lossy 70 ms path.");

  const auto scenario = testbed::ucsb_uiuc_via_denver();
  const std::uint64_t bytes = mib(32);
  const std::size_t iterations = bench::scaled(5, 2);

  Table table({"configuration", "Mbit/s"});

  // Parallel direct connections (1, 2, 4, 8 stripes) over the direct link.
  for (const std::size_t streams : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    OnlineStats bw;
    for (std::size_t it = 0; it < iterations; ++it) {
      testbed::PathTestbed bed(scenario, 4000 + it);
      const auto r = exp::run_parallel_transfer(
          bed.harness().simulator(), bed.harness().stack(bed.src()),
          bed.harness().stack(bed.dst()), bytes, streams,
          tcp::TcpOptions{}.with_buffers(scenario.endpoint_buffer));
      if (r.completed) {
        bw.add(r.goodput.megabits_per_second());
      }
    }
    char label[64];
    std::snprintf(label, sizeof label, "direct, %zu parallel socket%s",
                  streams, streams == 1 ? "" : "s");
    table.add_row({label, Table::num(bw.mean(), 1)});
  }

  // LSL serial sockets through the Denver depot, single and striped.
  for (const std::uint16_t streams : {std::uint16_t{1}, std::uint16_t{4}}) {
    OnlineStats bw;
    for (std::size_t it = 0; it < iterations; ++it) {
      testbed::PathTestbed bed(scenario, 4000 + it);
      auto spec = bed.make_spec(/*via_depot=*/true, bytes);
      spec.streams = streams;
      const auto handle = bed.harness().launch(bed.src(), spec);
      const auto r = bed.harness().wait(handle, 3600_s);
      if (r.completed) {
        bw.add(r.goodput.megabits_per_second());
      }
    }
    char label[64];
    std::snprintf(label, sizeof label, "LSL via depot, %u serial socket%s",
                  streams, streams == 1 ? "" : "s x stripes");
    table.add_row({label, Table::num(bw.mean(), 1)});
  }

  table.print(std::cout);
  std::printf("\nStriping and logistical forwarding compose: the striped "
              "relay attacks the\nloss equilibrium from both ends "
              "(aggregate window x N, control loop / 2).\n");
  return 0;
}
