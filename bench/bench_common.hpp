// Shared helpers for the figure/table regeneration binaries.
//
// Every binary prints: a banner naming the paper artifact it regenerates,
// the data series (CSV-friendly), and a short interpretation line comparing
// against the paper's qualitative claim. Iteration counts can be scaled
// down with LSL_BENCH_SCALE (e.g. 0.2 for smoke runs).
//
// Each bench also drops a metrics sidecar at exit: a JSON snapshot of the
// global metrics registry named <artifact>.metrics.json (in the working
// directory, or under LSL_BENCH_METRICS_DIR; LSL_BENCH_METRICS=off skips
// it). See docs/observability.md.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace lsl::bench {

inline double scale_factor() {
  if (const char* v = std::getenv("LSL_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0.0) {
      return s;
    }
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n, std::size_t min_value = 1) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) *
                                          scale_factor());
  return s < min_value ? min_value : s;
}

namespace detail {

inline std::string& sidecar_path() {
  static std::string path;
  return path;
}

inline void write_sidecar() {
  const std::string& path = sidecar_path();
  if (path.empty()) {
    return;
  }
  if (!obs::Registry::global().write_json(path)) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
  }
}

/// "Figure 2 -- two depots" -> "figure_2", a filesystem-safe slug from the
/// artifact text up to its first " --" separator.
inline std::string artifact_slug(const char* artifact) {
  std::string slug;
  for (const char* p = artifact; *p != '\0'; ++p) {
    if (p[0] == ' ' && p[1] == '-' && p[2] == '-') {
      break;
    }
    const unsigned char c = static_cast<unsigned char>(*p);
    if (std::isalnum(c)) {
      slug += static_cast<char>(std::tolower(c));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') {
    slug.pop_back();
  }
  return slug.empty() ? "bench" : slug;
}

}  // namespace detail

inline void banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("==============================================================\n");
  lsl::init_log_from_env();
  obs::init_metrics_from_env();
  if (const char* v = std::getenv("LSL_BENCH_METRICS");
      v != nullptr && (std::string(v) == "off" || std::string(v) == "0")) {
    return;
  }
  std::string path = detail::artifact_slug(artifact) + ".metrics.json";
  if (const char* dir = std::getenv("LSL_BENCH_METRICS_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  // Touch the registry before registering the atexit hook: function-local
  // statics are destroyed in reverse construction order, so this guarantees
  // it still exists when the hook fires.
  (void)obs::Registry::global();
  const bool first = detail::sidecar_path().empty();
  detail::sidecar_path() = std::move(path);
  if (first) {
    std::atexit(&detail::write_sidecar);
  }
}

}  // namespace lsl::bench
