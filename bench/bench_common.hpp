// Shared helpers for the figure/table regeneration binaries.
//
// Every binary prints: a banner naming the paper artifact it regenerates,
// the data series (CSV-friendly), and a short interpretation line comparing
// against the paper's qualitative claim. Iteration counts can be scaled
// down with LSL_BENCH_SCALE (e.g. 0.2 for smoke runs).
//
// Each bench also drops a metrics sidecar at exit: a JSON snapshot of the
// global metrics registry named <artifact>.metrics.json (in the working
// directory, or under LSL_BENCH_METRICS_DIR; LSL_BENCH_METRICS=off skips
// it). See docs/observability.md.
// Perf-trajectory output: --json <file> (or LSL_BENCH_JSON=<file>) makes a
// bench write machine-readable {bench, metric, value} records through
// JsonRecords, so successive PRs can diff results/BENCH_*.json. Wall-clock
// metrics are named *_wall_seconds / *_per_second so determinism checks can
// filter them out. --jobs N (or LSL_BENCH_JOBS=N) sets the trial-engine
// parallelism for benches that sweep.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace lsl::bench {

inline double scale_factor() {
  if (const char* v = std::getenv("LSL_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0.0) {
      return s;
    }
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n, std::size_t min_value = 1) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) *
                                          scale_factor());
  return s < min_value ? min_value : s;
}

/// Command-line options shared by the figure/ablation binaries.
struct BenchOptions {
  /// Trial-engine workers (--jobs N / LSL_BENCH_JOBS). Default 1: a bench
  /// must opt into parallelism explicitly so published figures stay
  /// attributable to a known configuration. 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// When non-empty, write {bench, metric, value} records here at the
  /// bench's discretion (--json <file> / LSL_BENCH_JSON).
  std::string json_path;
  /// Measurement fidelity for benches that sweep (--fidelity=... /
  /// LSL_BENCH_FIDELITY): "analytic" (default), "flow", or "packet". The
  /// sweep benches map this onto testbed::SweepFidelity; other benches
  /// ignore it. See docs/flow_fidelity.md.
  std::string fidelity = "analytic";
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  if (const char* v = std::getenv("LSL_BENCH_JOBS")) {
    opts.jobs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("LSL_BENCH_JSON")) {
    opts.json_path = v;
  }
  if (const char* v = std::getenv("LSL_BENCH_FIDELITY")) {
    opts.fidelity = v;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      opts.jobs = static_cast<std::size_t>(
          std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opts.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--fidelity") == 0 && i + 1 < argc) {
      opts.fidelity = argv[++i];
    } else if (std::strncmp(argv[i], "--fidelity=", 11) == 0) {
      opts.fidelity = argv[i] + 11;
    }
  }
  if (opts.fidelity != "analytic" && opts.fidelity != "flow" &&
      opts.fidelity != "packet") {
    std::fprintf(stderr,
                 "bench: unknown fidelity '%s' (analytic|flow|packet), "
                 "using analytic\n",
                 opts.fidelity.c_str());
    opts.fidelity = "analytic";
  }
  return opts;
}

/// Accumulates {bench, metric, value} records and writes them as a JSON
/// array, one record per line (so text diffs and greps work record-wise).
class JsonRecords {
 public:
  explicit JsonRecords(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& metric, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    records_.push_back("{\"bench\": \"" + bench_ + "\", \"metric\": \"" +
                       metric + "\", \"value\": " + buf + "}");
  }

  /// No-op (returning true) when path is empty.
  bool write(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fputs(records_[i].c_str(), f);
      std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::string> records_;
};

namespace detail {

inline std::string& sidecar_path() {
  static std::string path;
  return path;
}

inline void write_sidecar() {
  const std::string& path = sidecar_path();
  if (path.empty()) {
    return;
  }
  if (!obs::Registry::global().write_json(path)) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
  }
}

/// "Figure 2 -- two depots" -> "figure_2", a filesystem-safe slug from the
/// artifact text up to its first " --" separator.
inline std::string artifact_slug(const char* artifact) {
  std::string slug;
  for (const char* p = artifact; *p != '\0'; ++p) {
    if (p[0] == ' ' && p[1] == '-' && p[2] == '-') {
      break;
    }
    const unsigned char c = static_cast<unsigned char>(*p);
    if (std::isalnum(c)) {
      slug += static_cast<char>(std::tolower(c));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') {
    slug.pop_back();
  }
  return slug.empty() ? "bench" : slug;
}

}  // namespace detail

inline void banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("==============================================================\n");
  lsl::init_log_from_env();
  obs::init_metrics_from_env();
  if (const char* v = std::getenv("LSL_BENCH_METRICS");
      v != nullptr && (std::string(v) == "off" || std::string(v) == "0")) {
    return;
  }
  std::string path = detail::artifact_slug(artifact) + ".metrics.json";
  if (const char* dir = std::getenv("LSL_BENCH_METRICS_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  // Touch the registry before registering the atexit hook: function-local
  // statics are destroyed in reverse construction order, so this guarantees
  // it still exists when the hook fires.
  (void)obs::Registry::global();
  const bool first = detail::sidecar_path().empty();
  detail::sidecar_path() = std::move(path);
  if (first) {
    std::atexit(&detail::write_sidecar);
  }
}

}  // namespace lsl::bench
