// Shared helpers for the figure/table regeneration binaries.
//
// Every binary prints: a banner naming the paper artifact it regenerates,
// the data series (CSV-friendly), and a short interpretation line comparing
// against the paper's qualitative claim. Iteration counts can be scaled
// down with LSL_BENCH_SCALE (e.g. 0.2 for smoke runs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/log.hpp"

namespace lsl::bench {

inline double scale_factor() {
  if (const char* v = std::getenv("LSL_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0.0) {
      return s;
    }
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n, std::size_t min_value = 1) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) *
                                          scale_factor());
  return s < min_value ? min_value : s;
}

inline void banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("==============================================================\n");
  lsl::init_log_from_env();
}

}  // namespace lsl::bench
