// Figure 2: observed bandwidth vs transfer size, UCSB -> UIUC,
// direct vs LSL via a Denver depot (1 MB - 64 MB, 10 iterations each).
#include "bench_common.hpp"
#include "path_figure.hpp"

int main() {
  lsl::bench::banner(
      "Figure 2 -- Data transfers from UCSB to UIUC (1MB - 64MB)",
      "Paper claim: LSL (via a Denver depot) reaches higher bandwidth at "
      "smaller transfer sizes and a higher steady state than direct TCP.");
  lsl::bench::run_path_figure(
      lsl::testbed::ucsb_uiuc_via_denver(),
      {lsl::mib(1), lsl::mib(2), lsl::mib(4), lsl::mib(8), lsl::mib(16),
       lsl::mib(32), lsl::mib(64)},
      lsl::bench::scaled(10, 3));
  return 0;
}
