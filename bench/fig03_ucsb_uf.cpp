// Figure 3: observed bandwidth vs transfer size, UCSB -> UF,
// direct vs LSL via a Houston depot (1 MB - 128 MB, 10 iterations each).
#include "bench_common.hpp"
#include "path_figure.hpp"

int main() {
  lsl::bench::banner(
      "Figure 3 -- Data transfers from UCSB to UF (1MB - 128MB)",
      "Paper claim: the depot-segmented connection reaches higher bandwidth "
      "with smaller transfer sizes; the UCSB->Houston leg is the bottleneck.");
  lsl::bench::run_path_figure(
      lsl::testbed::ucsb_uf_via_houston(),
      {lsl::mib(1), lsl::mib(2), lsl::mib(4), lsl::mib(8), lsl::mib(16),
       lsl::mib(32), lsl::mib(64), lsl::mib(128)},
      lsl::bench::scaled(10, 3));
  return 0;
}
