// Figure 4: average data transferred over time (acknowledged sequence
// number), UCSB -> UF via Houston, 64 MB transfers, averaged over 10 runs.
#include "bench_common.hpp"
#include "seqtrace_figure.hpp"

int main() {
  using namespace lsl::time_literals;
  lsl::bench::banner(
      "Figure 4 -- Acked sequence number over time, UCSB -> UF via Houston "
      "(64MB, average of 10 runs)",
      "Paper claim: the two sublink slopes are close together -- subpath 1 "
      "(UCSB->Houston) is the bottleneck and subpath 2 carries all the load "
      "presented to it; both beat the direct 87 ms path.");
  lsl::bench::run_seqtrace_figure(lsl::testbed::ucsb_uf_via_houston(),
                                  lsl::mib(64), lsl::bench::scaled(10, 3),
                                  30_s, 250_ms);
  return 0;
}
