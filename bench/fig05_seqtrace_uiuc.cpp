// Figure 5: average data transferred over time (acknowledged sequence
// number), UCSB -> UIUC via Denver, 64 MB transfers, averaged over 10 runs.
// The signature feature is sublink 1's knee at ~32 MB: the depot offers
// 32 MB of total buffering (2 x 8 MB kernel + 16 MB user), so the fast
// Denver leg races ahead exactly that far before the slow leg's drain rate
// takes over.
#include <cstdio>

#include "bench_common.hpp"
#include "seqtrace_figure.hpp"

int main() {
  using namespace lsl::time_literals;
  lsl::bench::banner(
      "Figure 5 -- Acked sequence number over time, UCSB -> UIUC via Denver "
      "(64MB, average of 10 runs)",
      "Paper claim: sublink 1 grows very fast up to the 32 MB depot buffer "
      "mark, then its slope collapses to match sublink 2 (the bottleneck).");
  const auto scenario = lsl::testbed::ucsb_uiuc_via_denver();
  std::printf("Depot pipeline: 2 x %s kernel + %s user = %s total\n\n",
              lsl::format_bytes(scenario.depot_kernel_buffer).c_str(),
              lsl::format_bytes(scenario.depot_user_buffer).c_str(),
              lsl::format_bytes(2 * scenario.depot_kernel_buffer +
                                scenario.depot_user_buffer).c_str());
  lsl::bench::run_seqtrace_figure(scenario, lsl::mib(64),
                                  lsl::bench::scaled(10, 3), 40_s, 250_ms);
  return 0;
}
