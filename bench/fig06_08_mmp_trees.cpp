// Figures 6-8: MMP tree construction on the paper's example graph, showing
// how epsilon edge-equivalence reshapes the tree.
//
// The example: hosts at four Internet sites (ucsb, utk, uiuc, ucsd). All
// machines at one site share wide-area connectivity, so inter-site edge
// costs differ only by small measurement jitter. Strict MMP (Fig 7)
// lengthens the path to bell.uiuc.edu because opus.uiuc.edu looks
// marginally better connected (5.0 vs 5.1); with eps = 0.1 (Fig 8) those
// edges are considered the same and the tree stays flat.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sched/minimax.hpp"

namespace {

using namespace lsl;
using namespace lsl::sched;

struct Host {
  const char* name;
  const char* site;
};

constexpr Host kHosts[] = {
    {"ash.ucsb.edu", "ucsb"},  {"elm.ucsb.edu", "ucsb"},
    {"oak.ucsb.edu", "ucsb"},  {"tsu.utk.edu", "utk"},
    {"vol.utk.edu", "utk"},    {"opus.uiuc.edu", "uiuc"},
    {"bell.uiuc.edu", "uiuc"}, {"sdsc.ucsd.edu", "ucsd"},
};

/// Base inter-site costs (transfer time units); intra-site is cheap.
double site_cost(const char* a, const char* b) {
  const std::string key = std::string(a) + "-" + b;
  const std::string rkey = std::string(b) + "-" + a;
  static const std::pair<const char*, double> kCosts[] = {
      {"ucsb-utk", 3.0},  {"ucsb-uiuc", 5.0}, {"ucsb-ucsd", 1.5},
      {"utk-uiuc", 5.5},  {"utk-ucsd", 4.0},  {"uiuc-ucsd", 6.0},
  };
  for (const auto& [k, v] : kCosts) {
    if (key == k || rkey == k) {
      return v;
    }
  }
  return 0.4;  // intra-site
}

void print_tree(const CostMatrix& matrix, const MmpTree& tree) {
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    if (v == tree.start) {
      continue;
    }
    const auto path = tree.path_to(v);
    std::printf("  %-16s (cost %.2f): ", matrix.name(v).c_str(),
                tree.cost[v]);
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::printf("%s%s", i > 0 ? " -> " : "",
                  matrix.name(path[i]).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner(
      "Figures 6-8 -- MMP trees from ash.ucsb.edu with and without epsilon "
      "edge equivalence",
      "Paper claim: strict MMP adds spurious relay hops for marginal "
      "differences (5.0 vs 5.1); eps = 0.1 treats them as equal and builds "
      "the simpler, more appropriate tree.");

  constexpr std::size_t n = std::size(kHosts);
  CostMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set_label(i, kHosts[i].name, kHosts[i].site);
  }
  // Fully connected; per-host jitter makes measurements slightly unequal
  // (deterministic: +2% per destination host index).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const double base = site_cost(kHosts[i].site, kHosts[j].site);
      const double jitter = 1.0 + 0.02 * static_cast<double>((j + 1) % 3);
      matrix.set_cost(i, j, base * jitter);
    }
  }

  std::printf("Figure 7 equivalent -- strict MMP tree (eps = 0):\n");
  const auto strict = build_mmp_tree(matrix, 0, {.epsilon = 0.0});
  print_tree(matrix, strict);

  std::printf("\nFigure 8 equivalent -- damped MMP tree (eps = 0.1):\n");
  const auto damped = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
  print_tree(matrix, damped);

  // Quantify the simplification.
  std::size_t strict_hops = 0;
  std::size_t damped_hops = 0;
  for (std::size_t v = 1; v < n; ++v) {
    strict_hops += strict.path_to(v).size() - 2 + 1;
    damped_hops += damped.path_to(v).size() - 2 + 1;
  }
  std::printf("\nTotal edges used: strict=%zu damped=%zu (damped should be "
              "no larger)\n",
              strict_hops, damped_hops);
  return 0;
}
