// Figure 9: average speedup per transfer size over all host pairs where the
// scheduler chose a depot route, on the PlanetLab-like pool.
//
// Paper: 142-host pool, scheduler picked depots for 26% of paths, 362,895
// total measurements, average speedup between 5.75% and 9% by size.
//
// Usage: fig09_planetlab_speedup [--jobs N] [--json <file>]
//   --jobs parallelizes the measurement sweep over the trial engine; the
//   tables and figures are bitwise identical for every N (the perf-smoke CI
//   step diffs N=1 against N=2). --json records the series plus the sweep's
//   wall time for the perf trajectory (results/BENCH_fig09.json).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Figure 9 -- Average speedup per transfer size over all host pairs",
      "Paper claim: 5.75%-9% average speedup for 1-64 MB transfers; the "
      "scheduler identified depot routes for 26% of paths.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;  // 1, 2, 4, ..., 64 MB
  // Full paper-scale measurement count by default (the parallel trial
  // engine + kernel fast path made it cheap); LSL_BENCH_SCALE still shrinks
  // smoke runs.
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;  // all scheduled pairs
  config.epsilon = grid.noise().sweep_epsilon;
  config.jobs = opts.jobs;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = testbed::run_speedup_sweep(grid, config, 42);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("Pool: %zu hosts. Scheduler chose depot routes for %.1f%% of "
              "pairs (paper: 26%%).\n",
              grid.size(), 100.0 * result.fraction_scheduled);
  std::printf("Total measurements: %zu (paper: 362,895). Mean depot hops: "
              "%.2f.\n\n",
              result.total_measurements, result.mean_path_hops);

  bench::JsonRecords records("fig09_planetlab_speedup");
  records.add("hosts", static_cast<double>(grid.size()));
  records.add("fraction_scheduled", result.fraction_scheduled);
  records.add("total_measurements",
              static_cast<double>(result.total_measurements));
  records.add("mean_path_hops", result.mean_path_hops);
  records.add("jobs", static_cast<double>(opts.jobs));

  Table table({"size", "cases", "mean speedup", "gain %"});
  FigureData fig("Average speedup per transfer size", "size_mb", {"speedup"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const double mean = mean_of(xs);
    table.add_row({format_bytes(size), Table::num_int(static_cast<long long>(xs.size())),
                   Table::num(mean, 4), Table::num(100.0 * (mean - 1.0), 2)});
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {mean});
    records.add("mean_speedup_" + format_bytes(size), mean);
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);
  // stderr, not stdout: the perf-smoke CI step diffs stdout across --jobs
  // values byte for byte, and wall time is inherently nondeterministic.
  std::fprintf(stderr, "\nSweep wall time: %.3fs (jobs=%zu)\n", sweep_seconds,
               opts.jobs);
  // Wall-clock metrics carry the _wall_seconds suffix so determinism diffs
  // can filter them (see .github/workflows/ci.yml perf-smoke).
  records.add("sweep_wall_seconds", sweep_seconds);
  records.add("measurements_per_second",
              static_cast<double>(result.total_measurements) / sweep_seconds);
  return records.write(opts.json_path) ? 0 : 1;
}
