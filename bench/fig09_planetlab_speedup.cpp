// Figure 9: average speedup per transfer size over all host pairs where the
// scheduler chose a depot route, on the PlanetLab-like pool.
//
// Paper: 142-host pool, scheduler picked depots for 26% of paths, 362,895
// total measurements, average speedup between 5.75% and 9% by size.
//
// Usage: fig09_planetlab_speedup [--jobs N] [--json <file>]
//                                [--fidelity=analytic|flow|packet]
//   --jobs parallelizes the measurement sweep over the trial engine; the
//   tables and figures are bitwise identical for every N (the perf-smoke CI
//   step diffs N=1 against N=2). --json records the series plus the sweep's
//   wall time for the perf trajectory (results/BENCH_fig09.json).
//   --fidelity=flow|packet replaces the analytic measurement with a real
//   simulation of every transfer at that fidelity (on a reduced case/size
//   grid -- simulation is orders of magnitude slower) and additionally runs
//   the analytic reference on the identical cases and realizations,
//   reporting per-size agreement. The flow-validate CI job gates on those
//   agreement records (scripts/check_fidelity_agreement.py).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Figure 9 -- Average speedup per transfer size over all host pairs",
      "Paper claim: 5.75%-9% average speedup for 1-64 MB transfers; the "
      "scheduler identified depot routes for 26% of paths.");

  const bool simulated = opts.fidelity != "analytic";
  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;  // 1, 2, 4, ..., 64 MB
  // Full paper-scale measurement count by default (the parallel trial
  // engine + kernel fast path made it cheap); LSL_BENCH_SCALE still shrinks
  // smoke runs.
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;  // all scheduled pairs
  config.epsilon = grid.noise().sweep_epsilon;
  config.jobs = opts.jobs;
  if (simulated) {
    // Simulating every measurement is orders of magnitude slower than the
    // closed form; shrink the grid while keeping it statistically useful.
    config.max_size_exp = 4;  // 1, 2, 4, 8 MB
    config.max_cases = bench::scaled(12, 4);
    config.iterations = bench::scaled(2, 1);
    config.fidelity = opts.fidelity == "flow"
                          ? testbed::SweepFidelity::kFlow
                          : testbed::SweepFidelity::kPacket;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = testbed::run_speedup_sweep(grid, config, 42);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("Pool: %zu hosts, %s measurement. Scheduler chose depot routes "
              "for %.1f%% of pairs (paper: 26%%).\n",
              grid.size(), opts.fidelity.c_str(),
              100.0 * result.fraction_scheduled);
  std::printf("Total measurements: %zu (paper: 362,895). Mean depot hops: "
              "%.2f.\n\n",
              result.total_measurements, result.mean_path_hops);

  bench::JsonRecords records("fig09_planetlab_speedup");
  records.add("hosts", static_cast<double>(grid.size()));
  records.add("fraction_scheduled", result.fraction_scheduled);
  records.add("total_measurements",
              static_cast<double>(result.total_measurements));
  records.add("mean_path_hops", result.mean_path_hops);
  records.add("jobs", static_cast<double>(opts.jobs));

  Table table({"size", "cases", "mean speedup", "gain %"});
  FigureData fig("Average speedup per transfer size", "size_mb", {"speedup"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const double mean = mean_of(xs);
    table.add_row({format_bytes(size), Table::num_int(static_cast<long long>(xs.size())),
                   Table::num(mean, 4), Table::num(100.0 * (mean - 1.0), 2)});
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {mean});
    records.add("mean_speedup_" + format_bytes(size), mean);
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);

  if (simulated) {
    // Analytic reference over the identical cases: the discovery phase and
    // the per-iteration PairRealization draws do not depend on the
    // measurement back end, so each simulated speedup has an analytic twin
    // computed from the very same realized networks. Agreement = simulated
    // mean / analytic mean per size (1.0 = perfect).
    testbed::SweepConfig reference = config;
    reference.fidelity = testbed::SweepFidelity::kAnalytic;
    const auto analytic = testbed::run_speedup_sweep(grid, reference, 42);
    Table agree({"size", opts.fidelity + " mean", "analytic mean",
                 "agreement"});
    for (const auto& [size, xs] : result.speedups_by_size) {
      const double sim_mean = mean_of(xs);
      const auto it = analytic.speedups_by_size.find(size);
      const double ref_mean =
          it != analytic.speedups_by_size.end() ? mean_of(it->second) : 0.0;
      const double agreement = ref_mean > 0.0 ? sim_mean / ref_mean : 0.0;
      agree.add_row({format_bytes(size), Table::num(sim_mean, 4),
                     Table::num(ref_mean, 4), Table::num(agreement, 4)});
      // "agreement", not "*speedup*": the perf gate treats speedup metrics
      // as higher-is-better, but agreement is gated toward 1.0
      // (scripts/check_fidelity_agreement.py).
      records.add("fidelity_agreement_" + format_bytes(size), agreement);
    }
    std::printf("\nCross-validation vs the analytic model (same cases and "
                "realizations):\n");
    agree.print(std::cout);
  }

  // stderr, not stdout: the perf-smoke CI step diffs stdout across --jobs
  // values byte for byte, and wall time is inherently nondeterministic.
  std::fprintf(stderr, "\nSweep wall time: %.3fs (jobs=%zu)\n", sweep_seconds,
               opts.jobs);
  // Wall-clock metrics carry the _wall_seconds suffix so determinism diffs
  // can filter them (see .github/workflows/ci.yml perf-smoke).
  records.add("sweep_wall_seconds", sweep_seconds);
  records.add("measurements_per_second",
              static_cast<double>(result.total_measurements) / sweep_seconds);
  return records.write(opts.json_path) ? 0 : 1;
}
