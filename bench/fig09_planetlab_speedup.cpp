// Figure 9: average speedup per transfer size over all host pairs where the
// scheduler chose a depot route, on the PlanetLab-like pool.
//
// Paper: 142-host pool, scheduler picked depots for 26% of paths, 362,895
// total measurements, average speedup between 5.75% and 9% by size.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsl;
  bench::banner(
      "Figure 9 -- Average speedup per transfer size over all host pairs",
      "Paper claim: 5.75%-9% average speedup for 1-64 MB transfers; the "
      "scheduler identified depot routes for 26% of paths.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;  // 1, 2, 4, ..., 64 MB
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;  // all scheduled pairs
  config.epsilon = grid.noise().sweep_epsilon;
  const auto result = testbed::run_speedup_sweep(grid, config, 42);

  std::printf("Pool: %zu hosts. Scheduler chose depot routes for %.1f%% of "
              "pairs (paper: 26%%).\n",
              grid.size(), 100.0 * result.fraction_scheduled);
  std::printf("Total measurements: %zu (paper: 362,895). Mean depot hops: "
              "%.2f.\n\n",
              result.total_measurements, result.mean_path_hops);

  Table table({"size", "cases", "mean speedup", "gain %"});
  FigureData fig("Average speedup per transfer size", "size_mb", {"speedup"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const double mean = mean_of(xs);
    table.add_row({format_bytes(size), Table::num_int(static_cast<long long>(xs.size())),
                   Table::num(mean, 4), Table::num(100.0 * (mean - 1.0), 2)});
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {mean});
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);
  return 0;
}
