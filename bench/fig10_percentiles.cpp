// Figure 10: median, 25th and 75th percentile of absolute speedup per
// transfer size over all host pairs (the variance behind Figure 9's means).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Figure 10 -- Median / 25th / 75th percentile of speedup per size",
      "Paper claim: acceptable speedup in many cases but quite a few where "
      "LSL made performance worse; improvements up to 4x exist.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;
  config.epsilon = grid.noise().sweep_epsilon;
  config.jobs = opts.jobs;
  const auto result = testbed::run_speedup_sweep(grid, config, 42);

  Table table({"size", "p25", "median", "p75", "min", "max"});
  FigureData fig("Speedup quartiles per transfer size", "size_mb",
                 {"p25", "median", "p75"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const auto box = BoxStats::of(xs);
    table.add_row({format_bytes(size), Table::num(box.q25, 3),
                   Table::num(box.median, 3), Table::num(box.q75, 3),
                   Table::num(box.min, 2), Table::num(box.max, 2)});
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {box.q25, box.median, box.q75});
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);
  return 0;
}
