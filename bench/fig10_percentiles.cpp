// Figure 10: median, 25th and 75th percentile of absolute speedup per
// transfer size over all host pairs (the variance behind Figure 9's means).
//
// Usage: fig10_percentiles [--jobs N] [--json <file>]
//                          [--fidelity=analytic|flow|packet]
//   --fidelity=flow|packet simulates every measurement at that fidelity on
//   a reduced case/size grid and also computes the analytic reference on
//   the identical realizations, reporting median agreement per size (the
//   flow-validate CI job gates on those records).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Figure 10 -- Median / 25th / 75th percentile of speedup per size",
      "Paper claim: acceptable speedup in many cases but quite a few where "
      "LSL made performance worse; improvements up to 4x exist.");

  const bool simulated = opts.fidelity != "analytic";
  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;
  config.epsilon = grid.noise().sweep_epsilon;
  config.jobs = opts.jobs;
  if (simulated) {
    config.max_size_exp = 4;
    config.max_cases = bench::scaled(12, 4);
    config.iterations = bench::scaled(2, 1);
    config.fidelity = opts.fidelity == "flow"
                          ? testbed::SweepFidelity::kFlow
                          : testbed::SweepFidelity::kPacket;
  }
  const auto result = testbed::run_speedup_sweep(grid, config, 42);

  bench::JsonRecords records("fig10_percentiles");
  records.add("scheduled_cases", static_cast<double>(result.scheduled_cases));

  Table table({"size", "p25", "median", "p75", "min", "max"});
  FigureData fig("Speedup quartiles per transfer size", "size_mb",
                 {"p25", "median", "p75"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const auto box = BoxStats::of(xs);
    table.add_row({format_bytes(size), Table::num(box.q25, 3),
                   Table::num(box.median, 3), Table::num(box.q75, 3),
                   Table::num(box.min, 2), Table::num(box.max, 2)});
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {box.q25, box.median, box.q75});
    records.add("median_speedup_" + format_bytes(size), box.median);
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);

  if (simulated) {
    // Analytic twin of the same sweep (identical cases and realizations;
    // see fig09). Gate metric: simulated median / analytic median per size.
    testbed::SweepConfig reference = config;
    reference.fidelity = testbed::SweepFidelity::kAnalytic;
    const auto analytic = testbed::run_speedup_sweep(grid, reference, 42);
    Table agree({"size", opts.fidelity + " median", "analytic median",
                 "agreement"});
    for (const auto& [size, xs] : result.speedups_by_size) {
      const double sim_median = BoxStats::of(xs).median;
      const auto it = analytic.speedups_by_size.find(size);
      const double ref_median = it != analytic.speedups_by_size.end()
                                    ? BoxStats::of(it->second).median
                                    : 0.0;
      const double agreement =
          ref_median > 0.0 ? sim_median / ref_median : 0.0;
      agree.add_row({format_bytes(size), Table::num(sim_median, 4),
                     Table::num(ref_median, 4), Table::num(agreement, 4)});
      records.add("fidelity_agreement_" + format_bytes(size), agreement);
    }
    std::printf("\nCross-validation vs the analytic model (same cases and "
                "realizations):\n");
    agree.print(std::cout);
  }
  return records.write(opts.json_path) ? 0 : 1;
}
