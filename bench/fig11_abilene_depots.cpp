// Figure 11: box statistics of speedup with depots at Abilene POPs.
//
// Paper: 10 university PlanetLab hosts as endpoints, depots on Internet2
// Observatory machines at the POPs; 10 measurements each at 16 MB, 5 at
// 128 MB. Median speedup > 1; maxima 10.15 (16 MB) and 6.38 (128 MB); the
// scheduler identified paths through the core nodes without being told to.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Figure 11 -- Speedup box stats with depots at Abilene POPs "
      "(16MB and 128MB)",
      "Paper claim: large gains when depots sit in the network core with "
      "big buffers; maximum speedups were 10.15 (16MB) and 6.38 (128MB).");

  const auto grid =
      testbed::SyntheticGrid::abilene_core(testbed::AbileneCoreConfig{}, 77);

  // Endpoints: universities only; the scheduler is free to choose any host
  // as a relay and should discover the core depots on its own.
  testbed::SweepConfig config;
  config.sizes = {mib(16), mib(128)};
  config.iterations = bench::scaled(10, 3);
  config.max_cases = 0;
  config.epsilon = 0.10;
  config.jobs = opts.jobs;
  for (std::size_t u = 0; u < 10; ++u) {
    config.endpoints.push_back(u);
  }
  const auto result = testbed::run_speedup_sweep(grid, config, 11);

  std::printf("Scheduled %.0f%% of university pairs via depots; mean relay "
              "hops %.2f.\n",
              100.0 * result.fraction_scheduled, result.mean_path_hops);

  // How many scheduled paths actually traverse a core depot?
  std::printf("\n");
  Table table({"size", "min", "p25", "median", "p75", "max"});
  for (const auto& [size, xs] : result.speedups_by_size) {
    const auto box = BoxStats::of(xs);
    table.add_row({format_bytes(size), Table::num(box.min, 2),
                   Table::num(box.q25, 2), Table::num(box.median, 2),
                   Table::num(box.q75, 2), Table::num(box.max, 2)});
  }
  table.print(std::cout);
  std::printf("\nPaper reference: median above 1.0 at both sizes; maxima "
              "10.15 / 6.38 (plot truncated at 3.0).\n");
  return 0;
}
