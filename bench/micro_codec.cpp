// Micro-benchmarks for protocol hot paths: session header encode/decode,
// SACK scoreboard maintenance, and receive-buffer reassembly.
#include <benchmark/benchmark.h>

#include "lsl/header.hpp"
#include "tcp/recv_buffer.hpp"
#include "tcp/sack.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace lsl;

session::SessionHeader sample_header(std::size_t route_hops) {
  Rng rng(9);
  session::SessionHeader h;
  h.session_id = session::SessionId::random(rng);
  h.src = 3;
  h.dst = 9;
  h.dst_port = session::kLslPort;
  h.payload_bytes = mib(64);
  for (std::size_t i = 0; i < route_hops; ++i) {
    h.loose_route.push_back(static_cast<net::NodeId>(100 + i));
  }
  return h;
}

void BM_HeaderEncode(benchmark::State& state) {
  const auto header = sample_header(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session::encode(header));
  }
}
BENCHMARK(BM_HeaderEncode)->Arg(0)->Arg(4)->Arg(16);

void BM_HeaderDecode(benchmark::State& state) {
  const auto bytes =
      session::encode(sample_header(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session::decode(bytes));
  }
}
BENCHMARK(BM_HeaderDecode)->Arg(0)->Arg(4)->Arg(16);

void BM_SackScoreboardScatteredAdds(benchmark::State& state) {
  const auto holes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    tcp::SackScoreboard board;
    // Alternating received/lost MSS-sized runs, added out of order.
    for (std::uint64_t i = 0; i < holes; ++i) {
      const std::uint64_t begin = (2 * i + 1) * 1460;
      board.add(begin, begin + 1460);
    }
    benchmark::DoNotOptimize(board.next_hole(0, holes * 2 * 1460));
  }
}
BENCHMARK(BM_SackScoreboardScatteredAdds)->Arg(16)->Arg(256);

void BM_RecvBufferInOrderSegments(benchmark::State& state) {
  for (auto _ : state) {
    tcp::RecvBuffer buf(mib(8));
    std::uint64_t offset = 0;
    for (int i = 0; i < 1000; ++i) {
      buf.on_segment(offset, 1460, {});
      offset += 1460;
      if (buf.readable() > mib(1)) {
        buf.read(buf.readable());
      }
    }
    benchmark::DoNotOptimize(buf.rcv_nxt());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000 * 1460);
}
BENCHMARK(BM_RecvBufferInOrderSegments);

void BM_RecvBufferEveryOtherSegmentLost(benchmark::State& state) {
  for (auto _ : state) {
    tcp::RecvBuffer buf(mib(8));
    // Odd segments arrive first (all OOO), then the evens fill the holes.
    for (std::uint64_t i = 0; i < 500; ++i) {
      buf.on_segment((2 * i + 1) * 1460, 1460, {});
    }
    for (std::uint64_t i = 0; i < 500; ++i) {
      buf.on_segment(2 * i * 1460, 1460, {});
    }
    benchmark::DoNotOptimize(buf.readable());
  }
}
BENCHMARK(BM_RecvBufferEveryOtherSegmentLost);

}  // namespace

BENCHMARK_MAIN();
