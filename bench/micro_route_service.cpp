// RouteService microbenchmark -- the ISSUE 9 perf gate.
//
// Builds a scaled PlanetLab pool, shards it across a RouteService, and
// measures batched snapshot lookups from concurrent reader threads in two
// phases: unloaded (no writer) and under forecast-drift churn (a writer
// thread diff-applies drifted matrices and publishes new snapshot epochs
// continuously). The gate: aggregate lookup throughput stays >= 10M/sec
// and the per-lookup p99 under churn stays within 2x of unloaded --
// i.e. publication genuinely never blocks readers.
//
// Emits results/BENCH_route_service.json records via --json; the
// `churn_vs_unloaded_p99_ratio` and `batch_vs_single_speedup` metrics are
// wired into scripts/check_perf_gate.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nws/monitor.hpp"
#include "sched/route_service.hpp"
#include "testbed/grid.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatch = 256;
constexpr double kTargetLookupsPerSec = 10e6;

struct PhaseResult {
  double lookups_per_second = 0.0;
  double p99_ns_per_lookup = 0.0;
};

double percentile(std::vector<double>& xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  const std::size_t k = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(k),
                   xs.end());
  return xs[k];
}

/// Run `readers` threads, each answering `batches` batches of kBatch
/// random queries against one service snapshot load per batch. Returns
/// aggregate throughput and the p99 per-lookup batch latency.
PhaseResult run_readers(const lsl::sched::RouteService& service,
                        std::size_t readers, std::size_t batches,
                        std::uint64_t seed) {
  const std::size_t n = service.layout().host_count;
  std::vector<std::vector<double>> batch_ns(readers);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      // Private registry: the built-in sched instruments are plain stores,
      // so each reader thread gets its own (the parallel-trial pattern).
      lsl::obs::Registry registry;
      lsl::obs::ScopedRegistry scope(registry);
      // Queries are pre-generated so the timed region measures lookups,
      // not random-number generation.
      lsl::Rng rng(seed + 0x9E3779B97F4A7C15ULL * (r + 1));
      std::vector<lsl::sched::RouteQuery> queries(batches * kBatch);
      for (auto& q : queries) {
        q.src = static_cast<std::uint32_t>(rng.next_u64() % n);
        q.dst = static_cast<std::uint32_t>(rng.next_u64() % n);
      }
      std::vector<lsl::sched::RouteAnswer> answers(kBatch);
      batch_ns[r].reserve(batches);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t b = 0; b < batches; ++b) {
        const std::span<const lsl::sched::RouteQuery> batch(
            queries.data() + b * kBatch, kBatch);
        const auto t0 = Clock::now();
        service.lookup_batch(batch, answers);
        const auto t1 = Clock::now();
        batch_ns[r].push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < readers) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) {
    t.join();
  }
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0)
                            .count();
  std::vector<double> per_lookup;
  per_lookup.reserve(readers * batches);
  for (const auto& xs : batch_ns) {
    for (const double ns : xs) {
      per_lookup.push_back(ns / static_cast<double>(kBatch));
    }
  }
  PhaseResult out;
  out.lookups_per_second =
      static_cast<double>(readers * batches * kBatch) / wall_s;
  out.p99_ns_per_lookup = percentile(per_lookup, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lsl::bench::banner(
      "RouteService -- sharded snapshot lookups under churn",
      "lock-free batched route lookups vs live forecast-drift publishes");
  const auto opts = lsl::bench::parse_options(argc, argv);

  const std::size_t pool = lsl::bench::scaled(512, 64);
  const auto grid = lsl::testbed::SyntheticGrid::planetlab(
      lsl::testbed::scaled_planetlab_config(pool), 2004);
  lsl::nws::PerformanceMonitor monitor(grid.sites(), lsl::nws::NoiseModel{},
                                       2004);
  for (std::size_t epoch = 0; epoch < 20; ++epoch) {
    monitor.observe_epoch(grid.truth());
  }

  lsl::sched::RouteServiceOptions service_options;
  service_options.shards = 8;
  service_options.scheduler.epsilon = grid.noise().sweep_epsilon;
  service_options.prebuild_jobs = 1;
  lsl::sched::RouteService service(monitor.build_matrix(), service_options);

  const std::size_t readers = std::min<std::size_t>(
      8, std::max(2u, std::thread::hardware_concurrency()));
  const std::size_t batches = lsl::bench::scaled(4000, 50);
  std::printf("pool %zu hosts, %zu shards, %zu readers x %zu batches x %zu "
              "lookups\n\n",
              grid.size(), service.shard_count(), readers, batches, kBatch);

  // Phase 1: unloaded (snapshot never changes).
  const PhaseResult unloaded = run_readers(service, readers, batches, 42);
  std::printf("unloaded: %8.2fM lookups/s, p99 %6.1f ns/lookup (epoch %llu)\n",
              unloaded.lookups_per_second / 1e6, unloaded.p99_ns_per_lookup,
              static_cast<unsigned long long>(service.epoch()));

  // Phase 2: forecast-drift churn. A writer thread perturbs ~1% of pairs
  // per tick (persistent lognormal random walk, the sweep's drift model)
  // and publishes a fresh snapshot epoch each time.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lsl::obs::Registry registry;
    lsl::obs::ScopedRegistry scope(registry);
    lsl::Rng rng(7);
    lsl::sched::CostMatrix fresh = service.matrix();
    const std::size_t n = fresh.size();
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t k = 0; k < std::max<std::size_t>(1, n / 8); ++k) {
        const std::size_t i = rng.next_u64() % n;
        const std::size_t j = rng.next_u64() % n;
        if (i == j || fresh.cost(i, j) == lsl::sched::kInfiniteCost) {
          continue;
        }
        const double factor = rng.lognormal(0.0, 0.2);
        fresh.set_cost(i, j, fresh.cost(i, j) * factor);
        fresh.set_cost(j, i, fresh.cost(j, i) * factor);
      }
      service.apply_matrix(fresh);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  const std::uint64_t epoch_before = service.epoch();
  const PhaseResult churn = run_readers(service, readers, batches, 43);
  stop.store(true, std::memory_order_release);
  writer.join();
  const std::uint64_t epochs_published = service.epoch() - epoch_before;
  std::printf("churn:    %8.2fM lookups/s, p99 %6.1f ns/lookup "
              "(%llu epochs published)\n",
              churn.lookups_per_second / 1e6, churn.p99_ns_per_lookup,
              static_cast<unsigned long long>(epochs_published));

  // Phase 3: batch amortization, single-threaded. lookup() pays the
  // snapshot load + accounting per query; lookup_batch pays it per batch.
  const std::size_t single_lookups = lsl::bench::scaled(1'000'000, 10'000);
  {
    lsl::Rng rng(99);
    std::vector<lsl::sched::RouteQuery> queries(kBatch);
    std::vector<lsl::sched::RouteAnswer> answers(kBatch);
    double sink = 0.0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < single_lookups; ++i) {
      const lsl::sched::RouteQuery q{
          static_cast<std::uint32_t>(rng.next_u64() % grid.size()),
          static_cast<std::uint32_t>(rng.next_u64() % grid.size())};
      sink += service.lookup(q).next_hop;
    }
    const double single_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        static_cast<double>(single_lookups);
    lsl::Rng rng2(99);
    const auto t1 = Clock::now();
    for (std::size_t b = 0; b < single_lookups / kBatch; ++b) {
      for (auto& q : queries) {
        q.src = static_cast<std::uint32_t>(rng2.next_u64() % grid.size());
        q.dst = static_cast<std::uint32_t>(rng2.next_u64() % grid.size());
      }
      service.lookup_batch(queries, answers);
      sink += answers[0].next_hop;
    }
    const double batch_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t1).count() /
        static_cast<double>(single_lookups / kBatch * kBatch);
    const double ratio = churn.p99_ns_per_lookup /
                         std::max(unloaded.p99_ns_per_lookup, 1e-9);
    const double batch_speedup = single_ns / std::max(batch_ns, 1e-9);
    std::printf("batch:    %6.1f ns/lookup single, %6.1f ns/lookup batched "
                "(%.2fx)\n\n",
                single_ns, batch_ns, batch_speedup);

    const bool throughput_ok =
        unloaded.lookups_per_second >= kTargetLookupsPerSec &&
        churn.lookups_per_second >= kTargetLookupsPerSec;
    const bool p99_ok = ratio <= 2.0;
    std::printf("gate: throughput >= 10M/s %s, churn p99 ratio %.2f <= 2.0 "
                "%s\n",
                throughput_ok ? "PASS" : "FAIL", ratio,
                p99_ok ? "PASS" : "FAIL");
    if (sink == 12345.678) {  // defeat dead-code elimination
      std::printf("%f\n", sink);
    }

    lsl::bench::JsonRecords records("micro_route_service");
    records.add("route_service_lookups_per_second",
                unloaded.lookups_per_second);
    records.add("route_service_churn_lookups_per_second",
                churn.lookups_per_second);
    records.add("route_service_unloaded_p99_ns", unloaded.p99_ns_per_lookup);
    records.add("route_service_churn_p99_ns", churn.p99_ns_per_lookup);
    records.add("churn_vs_unloaded_p99_ratio", ratio);
    records.add("batch_vs_single_speedup", batch_speedup);
    records.add("route_service_churn_epochs",
                static_cast<double>(epochs_published));
    if (!records.write(opts.json_path)) {
      return 1;
    }
    return throughput_ok && p99_ok ? 0 : 1;
  }
}
