// Micro-benchmarks for the scheduling core: the paper claims the MMP
// algorithm "can be solved quickly" (O(N log N) with sorted edges; our
// dense-matrix variant is O(N^2) per tree, which must still be fast enough
// to re-run at 5-minute scheduling intervals for hundreds of hosts).
#include <benchmark/benchmark.h>

#include "sched/minimax.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsl;
using namespace lsl::sched;

CostMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CostMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        m.set_cost(i, j, rng.uniform(1.0, 100.0));
      }
    }
  }
  return m;
}

void BM_BuildMmpTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 42);
  for (auto _ : state) {
    auto tree = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildMmpTree)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

void BM_BuildShortestPathTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 42);
  for (auto _ : state) {
    auto tree = build_shortest_path_tree(matrix, 0);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_BuildShortestPathTree)->RangeMultiplier(4)->Range(16, 1024);

void BM_RouteTableForNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  std::size_t node = 0;
  for (auto _ : state) {
    auto table = scheduler.route_table_for(node);
    benchmark::DoNotOptimize(table);
    node = (node + 1) % n;
  }
}
BENCHMARK(BM_RouteTableForNode)->Arg(64)->Arg(142)->Arg(256);

void BM_FullSchedule142Hosts(benchmark::State& state) {
  // The paper's deployment size: all-pairs decisions for 142 hosts.
  const auto matrix = random_matrix(142, 9);
  for (auto _ : state) {
    const Scheduler scheduler(CostMatrix(matrix), {.epsilon = 0.1});
    double checksum = 0.0;
    for (std::size_t s = 0; s < 142; ++s) {
      checksum += scheduler.tree_from(s).cost[(s + 1) % 142];
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_FullSchedule142Hosts);

void BM_MinimaxOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimax_cost_oracle(matrix, 0, n - 1));
  }
}
BENCHMARK(BM_MinimaxOracle)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
