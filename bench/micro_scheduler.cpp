// Micro-benchmarks for the scheduling core: the paper claims the MMP
// algorithm "can be solved quickly" (O(N log N) with sorted edges; our
// dense-matrix variant is O(N^2) per tree, which must still be fast enough
// to re-run at 5-minute scheduling intervals for hundreds of hosts).
//
// The incremental pairs measure the control-plane scaling work: tree
// repair after bounded forecast drift vs. a full rebuild, and the
// bitmask-overlay reroute vs. the old copy-the-matrix baseline. With
// --json the run also emits the repair_vs_rebuild speedup records that
// results/BENCH_sched.json tracks across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/minimax.hpp"
#include "sched/route_advisor.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsl;
using namespace lsl::sched;

CostMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CostMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        m.set_cost(i, j, rng.uniform(1.0, 100.0));
      }
    }
  }
  return m;
}

void BM_BuildMmpTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 42);
  for (auto _ : state) {
    auto tree = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildMmpTree)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

void BM_BuildShortestPathTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 42);
  for (auto _ : state) {
    auto tree = build_shortest_path_tree(matrix, 0);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_BuildShortestPathTree)->RangeMultiplier(4)->Range(16, 1024);

void BM_RouteTableForNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  std::size_t node = 0;
  for (auto _ : state) {
    auto table = scheduler.route_table_for(node);
    benchmark::DoNotOptimize(table);
    node = (node + 1) % n;
  }
}
BENCHMARK(BM_RouteTableForNode)->Arg(64)->Arg(142)->Arg(256);

void BM_FullSchedule142Hosts(benchmark::State& state) {
  // The paper's deployment size: all-pairs decisions for 142 hosts.
  const auto matrix = random_matrix(142, 9);
  for (auto _ : state) {
    const Scheduler scheduler(CostMatrix(matrix), {.epsilon = 0.1});
    double checksum = 0.0;
    for (std::size_t s = 0; s < 142; ++s) {
      checksum += scheduler.tree_from(s).cost[(s + 1) % 142];
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_FullSchedule142Hosts);

void BM_MinimaxOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimax_cost_oracle(matrix, 0, n - 1));
  }
}
BENCHMARK(BM_MinimaxOracle)->Arg(16)->Arg(64);

/// Increase-only drift on n random directed edges -- under 1% of the n^2
/// edges at every benchmarked size, the "small forecast movement between
/// scheduling intervals" regime the repair targets. Increase-only because
/// that is what congestion drift looks like. The repair benches run at
/// epsilon 0, the exact-repair regime: at epsilon > 0 any increase forces
/// the rebuild fallback by design (incumbent histories are not
/// reconstructible; see repair_mmp_tree).
void apply_drift(CostMatrix& matrix, std::uint64_t seed) {
  Rng rng(seed);
  const auto n = matrix.size();
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (j >= i) {
      ++j;
    }
    matrix.set_cost(i, j, matrix.cost(i, j) * rng.uniform(1.01, 1.5));
  }
}

/// One drifted matrix + change log per seed. Repair cost depends on
/// whether the drift happens to land on the n-1 tree edges, so a single
/// seed is not representative (one lucky seed can miss every tree edge at
/// one size and hit several at another). The benches cycle through all
/// variants, making the reported per-iteration time the mean across
/// seeds.
struct DriftVariant {
  CostMatrix matrix;
  std::vector<CostChange> changes;
};

constexpr std::uint64_t kDriftSeeds[] = {11, 17, 23, 31, 47, 59, 71, 83};

std::vector<DriftVariant> make_drift_variants(const CostMatrix& base,
                                              const MmpTree& tree,
                                              std::size_t tree_edge_hits) {
  std::vector<DriftVariant> variants;
  for (const std::uint64_t seed : kDriftSeeds) {
    CostMatrix m(base);
    // Drop the construction-time change entries; only the drift counts.
    m.compact_changes(m.generation());
    const std::uint64_t before = m.generation();
    apply_drift(m, seed);
    for (std::size_t k = 0; k < tree_edge_hits; ++k) {
      const auto v = tree.order[tree.order.size() - 1 - k];
      const auto p = static_cast<std::size_t>(tree.parent[v]);
      m.set_cost(p, v, m.cost(p, v) * 1.3);
    }
    const auto span = m.changes_since(before);
    std::vector<CostChange> changes(span.begin(), span.end());
    variants.push_back({std::move(m), std::move(changes)});
  }
  return variants;
}

void BM_IncrementalRepairAfterDrift(benchmark::State& state) {
  // The periodic rescheduler's tick: random drift rarely lands on the
  // n-1 tree edges, so the repair usually re-settles nothing and costs
  // O(n + changes) against the rebuild's O(n^2). Mean across the drift
  // seeds; resettled_max shows the worst seed's affected region.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto base_matrix = random_matrix(n, 42);
  base_matrix.compact_changes(base_matrix.generation());
  const auto base = build_mmp_tree(base_matrix, 0, {.epsilon = 0.0});
  const auto variants = make_drift_variants(base_matrix, base, 0);
  std::size_t fallbacks = 0;
  std::size_t resettled_max = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const DriftVariant& v = variants[i++ % variants.size()];
    MmpTree tree = base;  // the per-tree cost a cached slot actually pays
    const auto outcome =
        repair_mmp_tree(tree, v.matrix, v.changes, {.epsilon = 0.0});
    fallbacks += outcome.repaired ? 0 : 1;
    resettled_max = std::max(resettled_max, outcome.resettled);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["resettled_max"] = static_cast<double>(resettled_max);
}
BENCHMARK(BM_IncrementalRepairAfterDrift)->Arg(142)->Arg(512)->Arg(1024);

void BM_IncrementalRepairTreeEdges(benchmark::State& state) {
  // Drift that does hit chosen paths: 4 tree-parent edges on top of the
  // random drift, so whole subtrees genuinely re-settle on every variant.
  // This is the conservative headline case -- repair_vs_rebuild_speedup
  // in the JSON derives from it, so the committed trajectory number never
  // rests on a seed that happened to miss the tree.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto base_matrix = random_matrix(n, 42);
  base_matrix.compact_changes(base_matrix.generation());
  const auto base = build_mmp_tree(base_matrix, 0, {.epsilon = 0.0});
  const auto variants = make_drift_variants(base_matrix, base, 4);
  std::size_t fallbacks = 0;
  std::size_t resettled_max = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const DriftVariant& v = variants[i++ % variants.size()];
    MmpTree tree = base;
    const auto outcome =
        repair_mmp_tree(tree, v.matrix, v.changes, {.epsilon = 0.0});
    fallbacks += outcome.repaired ? 0 : 1;
    resettled_max = std::max(resettled_max, outcome.resettled);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["resettled_max"] = static_cast<double>(resettled_max);
}
BENCHMARK(BM_IncrementalRepairTreeEdges)->Arg(142)->Arg(512)->Arg(1024);

void BM_FullRebuildAfterDrift(benchmark::State& state) {
  // The pre-incremental cost of the same refresh: rebuild from scratch
  // (cycling the same drift variants as the repair benches).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto base_matrix = random_matrix(n, 42);
  base_matrix.compact_changes(base_matrix.generation());
  const auto base = build_mmp_tree(base_matrix, 0, {.epsilon = 0.0});
  const auto variants = make_drift_variants(base_matrix, base, 0);
  std::size_t i = 0;
  for (auto _ : state) {
    const DriftVariant& v = variants[i++ % variants.size()];
    auto tree = build_mmp_tree(v.matrix, 0, {.epsilon = 0.0});
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_FullRebuildAfterDrift)->Arg(142)->Arg(512)->Arg(1024);

void BM_RouteAvoidingMasked(benchmark::State& state) {
  // Blacklist reroute through the bitmask overlay at the production
  // epsilon (0.1): no matrix copy and no allocation of a second matrix,
  // but exclusions at epsilon > 0 are not replay-exact, so this pays a
  // masked from-scratch relaxation -- the win over the copy baseline is
  // the skipped n x n copy, not a skipped build.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  const std::size_t src = 0;
  const std::size_t dst = n - 1;
  const std::vector<std::size_t> excluded = {n / 4, n / 2, 3 * n / 4};
  (void)scheduler.route(src, dst);  // warm the cached tree
  for (auto _ : state) {
    auto decision = scheduler.route_avoiding(src, dst, excluded);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_RouteAvoidingMasked)->Arg(142)->Arg(512)->Arg(1024);

void BM_RouteAvoidingMaskedExact(benchmark::State& state) {
  // The same reroute at epsilon 0, where the mask repair is exact: only
  // the excluded nodes' subtrees re-settle on the cached tree.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.0});
  const std::size_t src = 0;
  const std::size_t dst = n - 1;
  const std::vector<std::size_t> excluded = {n / 4, n / 2, 3 * n / 4};
  (void)scheduler.route(src, dst);  // warm the cached tree
  for (auto _ : state) {
    auto decision = scheduler.route_avoiding(src, dst, excluded);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_RouteAvoidingMaskedExact)->Arg(142)->Arg(512)->Arg(1024);

void BM_RouteAvoidingMatrixCopy(benchmark::State& state) {
  // The old reroute: copy the whole matrix, blacklist in the copy, rebuild
  // the source tree from scratch (an n x n allocation per reroute).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = random_matrix(n, 7);
  const std::size_t src = 0;
  const std::vector<std::size_t> excluded = {n / 4, n / 2, 3 * n / 4};
  for (auto _ : state) {
    CostMatrix pruned(matrix);
    for (const std::size_t node : excluded) {
      pruned.exclude_node(node);
    }
    auto tree = build_mmp_tree(pruned, src, {.epsilon = 0.1});
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_RouteAvoidingMatrixCopy)->Arg(142)->Arg(512)->Arg(1024);

void BM_SchedulerRoute(benchmark::State& state) {
  // A single route decision against a warm cached tree: the denominator
  // for the advisor-overhead ratio below.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  (void)scheduler.route(0, n - 1);  // warm the cached tree
  for (auto _ : state) {
    auto decision = scheduler.route(0, n - 1);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_SchedulerRoute)->Arg(142)->Arg(512)->Arg(1024);

void BM_AdvisorEvaluate(benchmark::State& state) {
  // One watched session's per-tick reroute decision: current-path cost,
  // best-candidate route, hysteresis/dwell rule. This is what every live
  // session pays on every rescheduler tick, so it must stay within a small
  // constant factor of a plain route() (advisor_evaluate_vs_route_ratio).
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  const RouteAdvisor advisor;
  SessionView view;
  view.src = 0;
  view.dst = n - 1;
  view.current_via = {static_cast<net::NodeId>(n / 3)};
  view.remaining_bytes = 64ull << 20;
  (void)scheduler.route(0, n - 1);  // warm the cached tree
  for (auto _ : state) {
    auto advice = advisor.evaluate(scheduler, view, SimTime::seconds(100),
                                   SimTime::zero());
    benchmark::DoNotOptimize(advice);
  }
}
BENCHMARK(BM_AdvisorEvaluate)->Arg(142)->Arg(512)->Arg(1024);

void BM_AdvisorEvaluateBlacklisted(benchmark::State& state) {
  // The same decision for a session whose recovery loop has blacklisted
  // depots: the candidate comes from the bitmask-overlay route_avoiding.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scheduler scheduler(random_matrix(n, 7), {.epsilon = 0.1});
  const RouteAdvisor advisor;
  SessionView view;
  view.src = 0;
  view.dst = n - 1;
  view.current_via = {static_cast<net::NodeId>(n / 3)};
  view.remaining_bytes = 64ull << 20;
  view.blacklist = {static_cast<net::NodeId>(n / 4),
                    static_cast<net::NodeId>(n / 2),
                    static_cast<net::NodeId>(3 * n / 4)};
  (void)scheduler.route(0, n - 1);  // warm the cached tree
  for (auto _ : state) {
    auto advice = advisor.evaluate(scheduler, view, SimTime::seconds(100),
                                   SimTime::zero());
    benchmark::DoNotOptimize(advice);
  }
}
BENCHMARK(BM_AdvisorEvaluateBlacklisted)->Arg(142)->Arg(512)->Arg(1024);

/// Console output as usual, plus one JsonRecords entry per benchmark and
/// derived repair-vs-rebuild / mask-vs-copy speedup records. All names end
/// in _wall_seconds / _per_second / _speedup: perf-trajectory numbers, not
/// determinism-checked ones.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(lsl::bench::JsonRecords& records)
      : records_(records) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      records_.add(run.benchmark_name() + "_wall_seconds", seconds);
      seconds_by_name_[run.benchmark_name()] = seconds;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Mean per-iteration seconds of `name`, or 0 when it did not run.
  [[nodiscard]] double seconds(const std::string& name) const {
    const auto it = seconds_by_name_.find(name);
    return it == seconds_by_name_.end() ? 0.0 : it->second;
  }

 private:
  lsl::bench::JsonRecords& records_;
  std::map<std::string, double> seconds_by_name_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = lsl::bench::parse_options(argc, argv);
  // Strip the bench_common flags before google-benchmark sees argv.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--json") == 0 ||
         std::strcmp(argv[i], "--jobs") == 0) &&
        i + 1 < argc) {
      ++i;
    } else if (std::strncmp(argv[i], "--json=", 7) != 0 &&
               std::strncmp(argv[i], "--jobs=", 7) != 0) {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  lsl::bench::JsonRecords records("micro_scheduler");
  RecordingReporter reporter(records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Headline trajectory records: how much the incremental paths save. The
  // repair_vs_rebuild headline derives from the tree-edge-hit bench --
  // whole subtrees re-settle on every drift variant -- so it cannot be
  // inflated by a seed whose drift happened to miss the tree; the
  // drift-mean record (seed-averaged, mostly-miss regime) tracks the
  // typical rescheduler tick separately.
  for (const char* n : {"142", "512", "1024"}) {
    const std::string size(n);
    const double rebuild =
        reporter.seconds("BM_FullRebuildAfterDrift/" + size);
    const double subtree =
        reporter.seconds("BM_IncrementalRepairTreeEdges/" + size);
    if (subtree > 0.0 && rebuild > 0.0) {
      records.add("repair_vs_rebuild_speedup_" + size, rebuild / subtree);
    }
    const double drift =
        reporter.seconds("BM_IncrementalRepairAfterDrift/" + size);
    if (drift > 0.0 && rebuild > 0.0) {
      records.add("repair_vs_rebuild_drift_mean_speedup_" + size,
                  rebuild / drift);
    }
    const double masked = reporter.seconds("BM_RouteAvoidingMasked/" + size);
    const double copied =
        reporter.seconds("BM_RouteAvoidingMatrixCopy/" + size);
    if (masked > 0.0 && copied > 0.0) {
      records.add("mask_vs_copy_speedup_" + size, copied / masked);
    }
    const double exact =
        reporter.seconds("BM_RouteAvoidingMaskedExact/" + size);
    if (exact > 0.0 && copied > 0.0) {
      records.add("mask_exact_vs_copy_speedup_" + size, copied / exact);
    }
    const double route = reporter.seconds("BM_SchedulerRoute/" + size);
    const double evaluate = reporter.seconds("BM_AdvisorEvaluate/" + size);
    if (route > 0.0 && evaluate > 0.0) {
      records.add("advisor_evaluate_vs_route_ratio_" + size,
                  evaluate / route);
    }
  }
  return records.write(opts.json_path) ? 0 : 1;
}
