// Micro-benchmarks for the simulation substrate: event kernel throughput
// and end-to-end packet cost, which bound how large a packet-level
// experiment the harness can run.
#include <benchmark/benchmark.h>

#include "exp/raw_tcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

void BM_ScheduleAndRunEvents(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                      [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleAndRunEvents)->Arg(1024)->Arg(65536);

void BM_TimerChurn(benchmark::State& state) {
  // Arm/cancel cycles dominate TCP timer traffic.
  sim::Simulator sim;
  sim::Timer timer(sim, [] {});
  for (auto _ : state) {
    timer.arm(1_ms);
    timer.cancel();
  }
}
BENCHMARK(BM_TimerChurn);

void BM_PacketTransferPerMegabyte(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo(sim, 1);
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(1000);
    link.propagation_delay = 1_ms;
    topo.add_duplex_link(a, b, link);
    topo.compute_routes();
    tcp::TcpStack sa(topo, a);
    tcp::TcpStack sb(topo, b);
    const auto r = exp::run_raw_transfer(
        sim, sa, sb, mib(1), tcp::TcpOptions{}.with_buffers(mib(1)));
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mib(1)));
}
BENCHMARK(BM_PacketTransferPerMegabyte);

}  // namespace

BENCHMARK_MAIN();
