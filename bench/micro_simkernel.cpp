// Micro-benchmarks for the simulation substrate: event kernel throughput
// and end-to-end packet cost, which bound how large a packet-level
// experiment the harness can run.
//
// Usage: micro_simkernel [--json <file>] [google-benchmark flags]
//   --json writes one {bench, metric, value} record per benchmark metric
//   (wall seconds per iteration plus any rate counters) so successive PRs
//   can track the kernel's perf trajectory (results/BENCH_kernel.json).
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/raw_tcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/stack.hpp"

namespace {

using namespace lsl;
using namespace lsl::time_literals;

void BM_ScheduleAndRunEvents(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                      [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleAndRunEvents)->Arg(1024)->Arg(65536);

void BM_TimerChurn(benchmark::State& state) {
  // Arm/cancel cycles dominate TCP timer traffic.
  sim::Simulator sim;
  sim::Timer timer(sim, [] {});
  for (auto _ : state) {
    timer.arm(1_ms);
    timer.cancel();
  }
}
BENCHMARK(BM_TimerChurn);

void BM_TimerChurnPendingCancels(benchmark::State& state) {
  // Timer churn against a populated queue: `pending` armed timers sit in
  // the heap while one timer is re-armed/cancelled per iteration. With the
  // generation-counted kernel a cancel is O(1) and the dead entry is
  // dropped lazily, so this should cost about the same as the empty-queue
  // churn above; the tombstone-set kernel paid a hash insert per cancel
  // plus a hash probe per pop.
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  std::deque<sim::Timer> timers;  // Timer is pinned; deque never relocates
  for (std::size_t i = 0; i < pending; ++i) {
    timers.emplace_back(sim, [] {});
    timers.back().arm(SimTime::seconds(3600));
  }
  sim::Timer churn(sim, [] {});
  for (auto _ : state) {
    churn.arm(1_ms);
    churn.cancel();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerChurnPendingCancels)->Arg(1024)->Arg(16384);

void BM_CancelHeavyRun(benchmark::State& state) {
  // Schedule a batch, cancel every other event, then drain: the dispatch
  // loop must skip the dead heap entries without dispatching them.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> ids(batch);
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      ids[i] = sim.schedule_at(
          SimTime::nanoseconds(static_cast<std::int64_t>(i)), [] {});
    }
    for (std::size_t i = 0; i < batch; i += 2) {
      sim.cancel(ids[i]);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CancelHeavyRun)->Arg(1024)->Arg(65536);

void BM_ActionSmallCapture(benchmark::State& state) {
  // A capture that fits sim::Action's inline buffer and is trivially
  // copyable: scheduling takes the memcpy fast path, no allocation.
  const auto batch = static_cast<std::size_t>(state.range(0));
  struct Small {
    std::uint64_t a, b;
  };
  static_assert(sim::Action::fits_inline<Small>());
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      Small payload{i, i ^ 0x9e3779b97f4a7c15ULL};
      sim.schedule_at(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                      [payload, &sink] { sink += payload.a ^ payload.b; });
    }
    benchmark::DoNotOptimize(sim.run());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ActionSmallCapture)->Arg(4096);

void BM_ActionLargeCapture(benchmark::State& state) {
  // Deliberately larger than the inline buffer: every schedule pays one
  // heap allocation, the pre-SBO cost for every event. The gap between
  // this and BM_ActionSmallCapture is what the inline path saves.
  const auto batch = static_cast<std::size_t>(state.range(0));
  struct Large {
    unsigned char bytes[sim::Action::kInlineCapacity + 16];
  };
  static_assert(!sim::Action::fits_inline<Large>());
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      Large payload{};
      payload.bytes[0] = static_cast<unsigned char>(i);
      sim.schedule_at(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                      [payload, &sink] { sink += payload.bytes[0]; });
    }
    benchmark::DoNotOptimize(sim.run());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ActionLargeCapture)->Arg(4096);

void BM_PacketTransferPerMegabyte(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo(sim, 1);
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(1000);
    link.propagation_delay = 1_ms;
    topo.add_duplex_link(a, b, link);
    topo.compute_routes();
    tcp::TcpStack sa(topo, a);
    tcp::TcpStack sb(topo, b);
    const auto r = exp::run_raw_transfer(
        sim, sa, sb, mib(1), tcp::TcpOptions{}.with_buffers(mib(1)));
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mib(1)));
}
BENCHMARK(BM_PacketTransferPerMegabyte);

/// Console output as usual, plus one JsonRecords entry per metric. The
/// names ending in _wall_seconds / _per_second are perf-trajectory
/// numbers; main() derives machine-independent _ratio records from them
/// for the regression gate.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(lsl::bench::JsonRecords& records)
      : records_(records) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      records_.add(run.benchmark_name() + "_wall_seconds", seconds);
      seconds_by_name_[run.benchmark_name()] = seconds;
      for (const auto& [name, counter] : run.counters) {
        records_.add(run.benchmark_name() + "_" + name,
                     static_cast<double>(counter));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Mean per-iteration seconds of `name`, or 0 when it did not run.
  [[nodiscard]] double seconds(const std::string& name) const {
    const auto it = seconds_by_name_.find(name);
    return it == seconds_by_name_.end() ? 0.0 : it->second;
  }

 private:
  lsl::bench::JsonRecords& records_;
  std::map<std::string, double> seconds_by_name_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = lsl::bench::parse_options(argc, argv);
  // Strip the bench_common flags before google-benchmark sees argv.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--json") == 0 ||
         std::strcmp(argv[i], "--jobs") == 0) &&
        i + 1 < argc) {
      ++i;
    } else if (std::strncmp(argv[i], "--json=", 7) != 0 &&
               std::strncmp(argv[i], "--jobs=", 7) != 0) {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  lsl::bench::JsonRecords records("micro_simkernel");
  RecordingReporter reporter(records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Machine-independent ratios for the perf regression gate: each pairs
  // two benches from the same run, so host speed cancels out.
  for (const std::string size : {"1024", "65536"}) {
    // Half the events cancelled should cost about the same as draining
    // them all; a blowup here means dead heap entries got expensive.
    const double plain = reporter.seconds("BM_ScheduleAndRunEvents/" + size);
    const double heavy = reporter.seconds("BM_CancelHeavyRun/" + size);
    if (plain > 0.0 && heavy > 0.0) {
      records.add("cancel_heavy_vs_schedule_ratio_" + size, heavy / plain);
    }
  }
  // Timer churn against a populated heap vs an empty one: the
  // generation-counted kernel keeps this near 1.
  const double churn = reporter.seconds("BM_TimerChurn");
  for (const std::string pending : {"1024", "16384"}) {
    const double loaded =
        reporter.seconds("BM_TimerChurnPendingCancels/" + pending);
    if (churn > 0.0 && loaded > 0.0) {
      records.add("timer_churn_pending_vs_empty_ratio_" + pending,
                  loaded / churn);
    }
  }
  // What the inline-capture path saves over the always-allocate path.
  const double small = reporter.seconds("BM_ActionSmallCapture/4096");
  const double large = reporter.seconds("BM_ActionLargeCapture/4096");
  if (small > 0.0 && large > 0.0) {
    records.add("action_inline_vs_alloc_speedup", large / small);
  }
  return records.write(opts.json_path) ? 0 : 1;
}
