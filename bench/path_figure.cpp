#include "path_figure.hpp"

#include <cstdio>
#include <iostream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace lsl::bench {

void run_path_figure(const testbed::PathScenario& scenario,
                     const std::vector<std::uint64_t>& sizes,
                     std::size_t iterations) {
  std::printf("Configured path RTTs (paper's measured values):\n");
  std::printf("  src <-> depot : %.0f ms\n",
              (scenario.src_depot_delay * 2).to_milliseconds());
  std::printf("  depot <-> dst : %.0f ms\n",
              (scenario.depot_dst_delay * 2).to_milliseconds());
  std::printf("  src <-> dst   : %.0f ms (direct)\n\n",
              (scenario.direct_delay * 2).to_milliseconds());

  FigureData fig("Bandwidth vs transfer size: " + scenario.name, "size_mb",
                 {"direct_mbps", "lsl_mbps", "speedup"});
  Table table({"size", "direct Mbit/s", "LSL Mbit/s", "speedup"});

  for (const std::uint64_t size : sizes) {
    OnlineStats direct_bw;
    OnlineStats lsl_bw;
    for (std::size_t it = 0; it < iterations; ++it) {
      const std::uint64_t seed = 1000 + it;
      {
        testbed::PathTestbed bed(scenario, seed);
        const auto r = bed.run(/*via_depot=*/false, size);
        if (r.completed) {
          direct_bw.add(r.goodput.megabits_per_second());
        }
      }
      {
        testbed::PathTestbed bed(scenario, seed);
        const auto r = bed.run(/*via_depot=*/true, size);
        if (r.completed) {
          lsl_bw.add(r.goodput.megabits_per_second());
        }
      }
    }
    const double speedup =
        direct_bw.mean() > 0 ? lsl_bw.mean() / direct_bw.mean() : 0.0;
    fig.add_point(static_cast<double>(size) / static_cast<double>(kMiB),
                  {direct_bw.mean(), lsl_bw.mean(), speedup});
    table.add_row({format_bytes(size), Table::num(direct_bw.mean(), 2),
                   Table::num(lsl_bw.mean(), 2), Table::num(speedup, 2)});
  }
  table.print(std::cout);
  std::printf("\n");
  fig.print(std::cout);
}

}  // namespace lsl::bench
