// Shared driver for the Figure 2/3 style bandwidth-vs-size sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "testbed/abilene_paths.hpp"

namespace lsl::bench {

/// Runs direct and LSL transfers of each size `iterations` times over fresh
/// testbeds, printing the Table + FigureData series to stdout.
void run_path_figure(const testbed::PathScenario& scenario,
                     const std::vector<std::uint64_t>& sizes,
                     std::size_t iterations);

}  // namespace lsl::bench
