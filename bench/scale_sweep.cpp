// Scale sweep: flow-fidelity throughput on 10k- and 100k-host pools.
//
// The packet simulator prices every MSS segment; at pool scale that puts
// O(payload/MSS) events behind each of ~10^6 transfers and the sweep stops
// being interactive. The fluid backend prices a transfer at O(flow events)
// regardless of payload, which is what makes 10k-100k-host studies
// tractable. This bench measures that claim directly:
//
//   * per pool size: materialize random direct and one-depot relay cases
//     from the synthetic grid (no CostMatrix -- at 100k hosts the O(n^2)
//     matrix alone would be ~80 GB) and execute every transfer at flow
//     fidelity, recording transfers/s and simulator events/s;
//   * a paired subsample re-runs at packet fidelity on the identical
//     realizations, giving the flow-vs-packet rate ratio and a goodput
//     agreement check on the exact same networks.
//
// Gated records (results/BENCH_flow.json):
//   flow_vs_packet_transfer_rate_speedup_<pool>  -- higher is better; the
//       headline >=100x engine speedup at bulk transfer sizes.
//   flow_event_cost_ratio_<pool>  -- flow events-per-transfer over packet
//       events-per-transfer; lower is better.
// Artifact-only: flow_transfers_per_second_*, flow_events_per_second_*,
// fidelity_agreement_goodput_* (gated by check_fidelity_agreement.py).
//
// Usage: scale_sweep [--json <file>]   (LSL_BENCH_SCALE shrinks the pools
// and transfer counts for smoke runs; full scale runs ~1M flow transfers.)
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "testbed/grid.hpp"
#include "testbed/materialize.hpp"
#include "util/table.hpp"

namespace {

using namespace lsl;

struct Case {
  std::vector<std::size_t> path;  // 2 nodes = direct, 3 = one-depot relay
  std::vector<testbed::PairRealization> hops;
  std::uint64_t bytes = 0;
  std::uint64_t seed = 0;
};

struct RunStats {
  std::uint64_t transfers = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double goodput_sum_bps = 0.0;
  [[nodiscard]] double transfers_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(transfers) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double events_per_transfer() const {
    return transfers > 0 ? static_cast<double>(events) /
                               static_cast<double>(transfers)
                         : 0.0;
  }
};

RunStats execute(const testbed::SyntheticGrid& grid,
                 const std::vector<Case>& cases, exp::Fidelity fidelity) {
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& c : cases) {
    auto m = testbed::materialize_path(grid, c.path, c.hops, c.seed, fidelity);
    session::TransferSpec spec;
    spec.dst = m.nodes.back();
    for (std::size_t i = 1; i + 1 < m.nodes.size(); ++i) {
      spec.via.push_back(m.nodes[i]);
    }
    spec.payload_bytes = c.bytes;
    spec.tcp =
        tcp::TcpOptions{}.with_buffers(grid.host(c.path.front()).tcp_buffer);
    const auto outcome =
        m.harness->run_transfer(m.nodes.front(), spec, SimTime::seconds(86400));
    stats.events += m.harness->simulator().events_executed();
    if (outcome.completed && outcome.elapsed > SimTime::zero()) {
      ++stats.transfers;
      stats.goodput_sum_bps += static_cast<double>(c.bytes) * 8.0 /
                               outcome.elapsed.to_seconds();
    }
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

std::vector<Case> draw_cases(const testbed::SyntheticGrid& grid,
                             std::size_t count, Rng& rng) {
  std::vector<Case> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = rng.pick_index(grid.size());
    std::size_t dst = rng.pick_index(grid.size());
    while (dst == src) {
      dst = rng.pick_index(grid.size());
    }
    Case c;
    // Bulk sizes where the engine gap is the story (the paper's 16-64 MB
    // upper range): a 64 MB payload is ~46k MSS segments at packet
    // fidelity and a handful of flow events at fluid fidelity.
    c.bytes = mib(16) << rng.pick_index(3);  // 16, 32, or 64 MiB
    if (i % 2 == 0) {
      c.path = {src, dst};
      c.hops = {grid.realize_direct(src, dst, c.bytes, rng)};
    } else {
      std::size_t via = rng.pick_index(grid.size());
      while (via == src || via == dst) {
        via = rng.pick_index(grid.size());
      }
      c.path = {src, via, dst};
      c.hops = grid.realize_relay_hops(c.path, c.bytes, rng);
    }
    c.seed = rng.next_u64();
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Scale sweep -- flow-fidelity throughput on 10k/100k-host pools",
      "Claim: the fluid backend executes bulk transfers >=100x faster than "
      "the packet simulator, with goodput agreement on identical networks.");

  bench::JsonRecords records("scale_sweep");
  Table table({"pool", "flow transfers", "flow xfer/s", "flow events/s",
               "vs packet", "agreement"});

  struct Pool {
    std::size_t hosts;
    std::size_t transfers;
  };
  // ~1M flow transfers across both pools at full scale.
  const Pool pools[] = {{10000, bench::scaled(800000, 200)},
                        {100000, bench::scaled(200000, 50)}};
  for (const auto& pool : pools) {
    // Depot-class 1 MiB socket buffers rather than PlanetLab's pinned
    // 64 KB: the scale pools model modern bulk-transfer hosts, and the
    // fluid pump's quantum tracks the window, so 64 KB windows would
    // price flow mode in 64 KB control round-trips and understate the
    // engine gap the bench exists to measure.
    auto config = testbed::scaled_planetlab_config(pool.hosts);
    config.host_tcp_buffer = kMiB;
    const auto grid = testbed::SyntheticGrid::planetlab(config, 2004);
    Rng rng(4242 + pool.hosts);
    const auto cases = draw_cases(grid, pool.transfers, rng);

    const auto flow = execute(grid, cases, exp::Fidelity::kFlow);

    // Packet reference on a paired subsample of the identical realizations:
    // packet fidelity at these sizes is ~1000x the event count, so pricing
    // the full case list would dominate the bench it is meant to baseline.
    const std::size_t sample =
        std::min<std::size_t>(cases.size(), bench::scaled(64, 8));
    const std::vector<Case> subsample(cases.begin(),
                                      cases.begin() + sample);
    const auto packet_ref = execute(grid, subsample, exp::Fidelity::kPacket);
    const auto flow_ref = execute(grid, subsample, exp::Fidelity::kFlow);

    const double rate_speedup =
        packet_ref.transfers_per_second() > 0.0
            ? flow_ref.transfers_per_second() /
                  packet_ref.transfers_per_second()
            : 0.0;
    const double event_cost =
        packet_ref.events_per_transfer() > 0.0
            ? flow_ref.events_per_transfer() / packet_ref.events_per_transfer()
            : 0.0;
    const double agreement =
        packet_ref.goodput_sum_bps > 0.0
            ? flow_ref.goodput_sum_bps / packet_ref.goodput_sum_bps
            : 0.0;

    const std::string tag = std::to_string(pool.hosts);
    records.add("flow_transfers_" + tag,
                static_cast<double>(flow.transfers));
    records.add("flow_wall_seconds_" + tag, flow.wall_seconds);
    records.add("flow_transfers_per_second_" + tag,
                flow.transfers_per_second());
    records.add("flow_events_per_second_" + tag,
                flow.wall_seconds > 0.0
                    ? static_cast<double>(flow.events) / flow.wall_seconds
                    : 0.0);
    records.add("flow_vs_packet_transfer_rate_speedup_" + tag, rate_speedup);
    records.add("flow_event_cost_ratio_" + tag, event_cost);
    records.add("fidelity_agreement_goodput_" + tag, agreement);

    table.add_row({tag + " hosts",
                   Table::num_int(static_cast<long long>(flow.transfers)),
                   Table::num(flow.transfers_per_second(), 1),
                   Table::num(flow.wall_seconds > 0.0
                                  ? static_cast<double>(flow.events) /
                                        flow.wall_seconds
                                  : 0.0,
                              0),
                   Table::num(rate_speedup, 1), Table::num(agreement, 3)});
    std::fprintf(stderr,
                 "pool %zu: %llu flow transfers in %.1fs; packet subsample "
                 "%zu in %.1fs\n",
                 pool.hosts,
                 static_cast<unsigned long long>(flow.transfers),
                 flow.wall_seconds, sample, packet_ref.wall_seconds);
  }

  table.print(std::cout);
  return records.write(opts.json_path) ? 0 : 1;
}
