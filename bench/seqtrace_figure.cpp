#include "seqtrace_figure.hpp"

#include <cstdio>
#include <iostream>

#include "exp/trace.hpp"
#include "util/table.hpp"

namespace lsl::bench {

void run_seqtrace_figure(const testbed::PathScenario& scenario,
                         std::uint64_t bytes, std::size_t iterations,
                         SimTime horizon, SimTime step) {
  using namespace lsl::time_literals;
  exp::TraceAverager averager(horizon, step);

  for (std::size_t it = 0; it < iterations; ++it) {
    const std::uint64_t seed = 2000 + it;

    // Direct transfer: trace the source's connection.
    {
      testbed::PathTestbed bed(scenario, seed);
      exp::SeqTrace trace;
      const auto origin = bed.harness().simulator().now();
      const auto handle = bed.harness().launch_traced(
          bed.src(), bed.make_spec(false, bytes),
          [&](tcp::Connection& conn) { trace.attach(conn, origin); });
      (void)bed.harness().wait(handle, SimTime::seconds(3600));
      averager.add_run("direct", trace);
    }

    // Relayed transfer: trace both sublinks from their senders.
    {
      testbed::PathTestbed bed(scenario, seed);
      exp::SeqTrace sub1;
      exp::SeqTrace sub2;
      const auto origin = bed.harness().simulator().now();
      bed.harness().depot(bed.depot()).on_downstream_open =
          [&](tcp::Connection& conn, const session::SessionHeader&) {
            sub2.attach(conn, origin);
          };
      const auto handle = bed.harness().launch_traced(
          bed.src(), bed.make_spec(true, bytes),
          [&](tcp::Connection& conn) { sub1.attach(conn, origin); });
      (void)bed.harness().wait(handle, SimTime::seconds(3600));
      averager.add_run("sublink1 (src->depot)", sub1);
      averager.add_run("sublink2 (depot->dst)", sub2);
    }
  }

  // Print the averaged series like the paper's figures: MB vs seconds.
  const auto grid = averager.grid_seconds();
  const auto series = averager.series();
  std::printf("# Averaged acknowledged sequence number (MB) over time (s), "
              "%zu iterations, %s transfers\n",
              iterations, format_bytes(bytes).c_str());
  std::printf("time_s");
  for (const auto& s : series) {
    std::printf(",%s", s.label.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::printf("%.2f", grid[i]);
    for (const auto& s : series) {
      std::printf(",%.3f", s.mib_at_grid[i]);
    }
    std::printf("\n");
  }
}

}  // namespace lsl::bench
