// Shared driver for the Figure 4/5 style sequence-number-over-time traces.
#pragma once

#include <cstdint>

#include "testbed/abilene_paths.hpp"
#include "util/time.hpp"

namespace lsl::bench {

/// Runs `iterations` 64 MB (by default) transfers each of: direct, and via
/// the depot (tracing both sublinks), averages the acked-sequence curves on
/// a uniform grid and prints the three series.
void run_seqtrace_figure(const testbed::PathScenario& scenario,
                         std::uint64_t bytes, std::size_t iterations,
                         SimTime horizon, SimTime step);

}  // namespace lsl::bench
