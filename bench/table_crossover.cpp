// Section 4.2 table: the percentile at which speedup becomes greater than 1
// for each transfer size. Paper row: 1M:39 2M:43 4M:48 8M:43 16M:48 32M:46
// 64M:49.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsl;
  const auto opts = bench::parse_options(argc, argv);
  bench::banner(
      "Table (section 4.2) -- Percentile where speedup exceeds 1.0",
      "Paper values ranged 39-49 across sizes: roughly 40-49% of scheduled "
      "cases were slower via LSL, the rest faster.");

  const auto grid =
      testbed::SyntheticGrid::planetlab(testbed::PlanetLabConfig{}, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 7;
  config.iterations = bench::scaled(5, 2);
  config.max_cases = 0;
  config.epsilon = grid.noise().sweep_epsilon;
  config.jobs = opts.jobs;
  const auto result = testbed::run_speedup_sweep(grid, config, 42);

  static constexpr int kPaperRow[] = {39, 43, 48, 43, 48, 46, 49};
  Table table({"size", "measured percentile", "paper"});
  std::size_t index = 0;
  for (const auto& [size, xs] : result.speedups_by_size) {
    const double pct = percentile_rank_below(xs, 1.0);
    const std::string paper =
        index < std::size(kPaperRow) ? Table::num_int(kPaperRow[index]) : "-";
    table.add_row({format_bytes(size), Table::num(pct, 1), paper});
    ++index;
  }
  table.print(std::cout);
  return 0;
}
