file(REMOVE_RECURSE
  "CMakeFiles/ablate_bufferbloat.dir/ablate_bufferbloat.cpp.o"
  "CMakeFiles/ablate_bufferbloat.dir/ablate_bufferbloat.cpp.o.d"
  "ablate_bufferbloat"
  "ablate_bufferbloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bufferbloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
