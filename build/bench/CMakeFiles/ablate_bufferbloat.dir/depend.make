# Empty dependencies file for ablate_bufferbloat.
# This may be replaced when dependencies are built.
