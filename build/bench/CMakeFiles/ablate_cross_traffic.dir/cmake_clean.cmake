file(REMOVE_RECURSE
  "CMakeFiles/ablate_cross_traffic.dir/ablate_cross_traffic.cpp.o"
  "CMakeFiles/ablate_cross_traffic.dir/ablate_cross_traffic.cpp.o.d"
  "ablate_cross_traffic"
  "ablate_cross_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cross_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
