# Empty dependencies file for ablate_cross_traffic.
# This may be replaced when dependencies are built.
