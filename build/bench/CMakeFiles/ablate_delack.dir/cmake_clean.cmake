file(REMOVE_RECURSE
  "CMakeFiles/ablate_delack.dir/ablate_delack.cpp.o"
  "CMakeFiles/ablate_delack.dir/ablate_delack.cpp.o.d"
  "ablate_delack"
  "ablate_delack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_delack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
