# Empty dependencies file for ablate_delack.
# This may be replaced when dependencies are built.
