file(REMOVE_RECURSE
  "CMakeFiles/ablate_depot_buffer.dir/ablate_depot_buffer.cpp.o"
  "CMakeFiles/ablate_depot_buffer.dir/ablate_depot_buffer.cpp.o.d"
  "ablate_depot_buffer"
  "ablate_depot_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_depot_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
