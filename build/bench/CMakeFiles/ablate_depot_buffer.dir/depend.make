# Empty dependencies file for ablate_depot_buffer.
# This may be replaced when dependencies are built.
