file(REMOVE_RECURSE
  "CMakeFiles/ablate_epsilon.dir/ablate_epsilon.cpp.o"
  "CMakeFiles/ablate_epsilon.dir/ablate_epsilon.cpp.o.d"
  "ablate_epsilon"
  "ablate_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
