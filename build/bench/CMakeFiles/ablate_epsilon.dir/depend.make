# Empty dependencies file for ablate_epsilon.
# This may be replaced when dependencies are built.
