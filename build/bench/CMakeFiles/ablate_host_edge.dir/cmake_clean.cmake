file(REMOVE_RECURSE
  "CMakeFiles/ablate_host_edge.dir/ablate_host_edge.cpp.o"
  "CMakeFiles/ablate_host_edge.dir/ablate_host_edge.cpp.o.d"
  "ablate_host_edge"
  "ablate_host_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_host_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
