# Empty dependencies file for ablate_host_edge.
# This may be replaced when dependencies are built.
