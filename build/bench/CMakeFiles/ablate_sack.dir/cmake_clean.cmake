file(REMOVE_RECURSE
  "CMakeFiles/ablate_sack.dir/ablate_sack.cpp.o"
  "CMakeFiles/ablate_sack.dir/ablate_sack.cpp.o.d"
  "ablate_sack"
  "ablate_sack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
