# Empty dependencies file for ablate_sack.
# This may be replaced when dependencies are built.
