file(REMOVE_RECURSE
  "CMakeFiles/ablate_staleness.dir/ablate_staleness.cpp.o"
  "CMakeFiles/ablate_staleness.dir/ablate_staleness.cpp.o.d"
  "ablate_staleness"
  "ablate_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
