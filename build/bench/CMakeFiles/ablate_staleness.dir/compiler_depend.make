# Empty compiler generated dependencies file for ablate_staleness.
# This may be replaced when dependencies are built.
