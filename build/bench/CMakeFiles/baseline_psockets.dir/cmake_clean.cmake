file(REMOVE_RECURSE
  "CMakeFiles/baseline_psockets.dir/baseline_psockets.cpp.o"
  "CMakeFiles/baseline_psockets.dir/baseline_psockets.cpp.o.d"
  "baseline_psockets"
  "baseline_psockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_psockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
