# Empty dependencies file for baseline_psockets.
# This may be replaced when dependencies are built.
