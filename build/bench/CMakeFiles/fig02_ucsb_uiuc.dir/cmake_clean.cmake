file(REMOVE_RECURSE
  "CMakeFiles/fig02_ucsb_uiuc.dir/fig02_ucsb_uiuc.cpp.o"
  "CMakeFiles/fig02_ucsb_uiuc.dir/fig02_ucsb_uiuc.cpp.o.d"
  "fig02_ucsb_uiuc"
  "fig02_ucsb_uiuc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ucsb_uiuc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
