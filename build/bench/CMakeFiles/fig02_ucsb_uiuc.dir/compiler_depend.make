# Empty compiler generated dependencies file for fig02_ucsb_uiuc.
# This may be replaced when dependencies are built.
