file(REMOVE_RECURSE
  "CMakeFiles/fig03_ucsb_uf.dir/fig03_ucsb_uf.cpp.o"
  "CMakeFiles/fig03_ucsb_uf.dir/fig03_ucsb_uf.cpp.o.d"
  "fig03_ucsb_uf"
  "fig03_ucsb_uf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ucsb_uf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
