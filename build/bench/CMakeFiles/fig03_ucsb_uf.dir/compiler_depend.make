# Empty compiler generated dependencies file for fig03_ucsb_uf.
# This may be replaced when dependencies are built.
