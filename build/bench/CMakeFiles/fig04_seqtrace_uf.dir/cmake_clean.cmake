file(REMOVE_RECURSE
  "CMakeFiles/fig04_seqtrace_uf.dir/fig04_seqtrace_uf.cpp.o"
  "CMakeFiles/fig04_seqtrace_uf.dir/fig04_seqtrace_uf.cpp.o.d"
  "fig04_seqtrace_uf"
  "fig04_seqtrace_uf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_seqtrace_uf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
