# Empty compiler generated dependencies file for fig04_seqtrace_uf.
# This may be replaced when dependencies are built.
