file(REMOVE_RECURSE
  "CMakeFiles/fig05_seqtrace_uiuc.dir/fig05_seqtrace_uiuc.cpp.o"
  "CMakeFiles/fig05_seqtrace_uiuc.dir/fig05_seqtrace_uiuc.cpp.o.d"
  "fig05_seqtrace_uiuc"
  "fig05_seqtrace_uiuc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_seqtrace_uiuc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
