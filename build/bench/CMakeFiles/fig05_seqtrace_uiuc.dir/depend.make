# Empty dependencies file for fig05_seqtrace_uiuc.
# This may be replaced when dependencies are built.
