file(REMOVE_RECURSE
  "CMakeFiles/fig06_08_mmp_trees.dir/fig06_08_mmp_trees.cpp.o"
  "CMakeFiles/fig06_08_mmp_trees.dir/fig06_08_mmp_trees.cpp.o.d"
  "fig06_08_mmp_trees"
  "fig06_08_mmp_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_08_mmp_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
