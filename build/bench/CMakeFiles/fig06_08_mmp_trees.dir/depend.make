# Empty dependencies file for fig06_08_mmp_trees.
# This may be replaced when dependencies are built.
