file(REMOVE_RECURSE
  "CMakeFiles/fig10_percentiles.dir/fig10_percentiles.cpp.o"
  "CMakeFiles/fig10_percentiles.dir/fig10_percentiles.cpp.o.d"
  "fig10_percentiles"
  "fig10_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
