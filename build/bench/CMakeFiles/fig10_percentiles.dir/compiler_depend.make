# Empty compiler generated dependencies file for fig10_percentiles.
# This may be replaced when dependencies are built.
