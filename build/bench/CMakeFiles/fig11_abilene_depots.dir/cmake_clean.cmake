file(REMOVE_RECURSE
  "CMakeFiles/fig11_abilene_depots.dir/fig11_abilene_depots.cpp.o"
  "CMakeFiles/fig11_abilene_depots.dir/fig11_abilene_depots.cpp.o.d"
  "fig11_abilene_depots"
  "fig11_abilene_depots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_abilene_depots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
