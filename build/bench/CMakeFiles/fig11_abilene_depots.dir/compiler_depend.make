# Empty compiler generated dependencies file for fig11_abilene_depots.
# This may be replaced when dependencies are built.
