file(REMOVE_RECURSE
  "CMakeFiles/lsl_bench_common.dir/path_figure.cpp.o"
  "CMakeFiles/lsl_bench_common.dir/path_figure.cpp.o.d"
  "CMakeFiles/lsl_bench_common.dir/seqtrace_figure.cpp.o"
  "CMakeFiles/lsl_bench_common.dir/seqtrace_figure.cpp.o.d"
  "liblsl_bench_common.a"
  "liblsl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
