file(REMOVE_RECURSE
  "liblsl_bench_common.a"
)
