# Empty compiler generated dependencies file for lsl_bench_common.
# This may be replaced when dependencies are built.
