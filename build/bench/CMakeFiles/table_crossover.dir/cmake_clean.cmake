file(REMOVE_RECURSE
  "CMakeFiles/table_crossover.dir/table_crossover.cpp.o"
  "CMakeFiles/table_crossover.dir/table_crossover.cpp.o.d"
  "table_crossover"
  "table_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
