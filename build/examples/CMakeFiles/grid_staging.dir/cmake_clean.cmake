file(REMOVE_RECURSE
  "CMakeFiles/grid_staging.dir/grid_staging.cpp.o"
  "CMakeFiles/grid_staging.dir/grid_staging.cpp.o.d"
  "grid_staging"
  "grid_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
