# Empty dependencies file for grid_staging.
# This may be replaced when dependencies are built.
