file(REMOVE_RECURSE
  "CMakeFiles/overlay_scheduler.dir/overlay_scheduler.cpp.o"
  "CMakeFiles/overlay_scheduler.dir/overlay_scheduler.cpp.o.d"
  "overlay_scheduler"
  "overlay_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
