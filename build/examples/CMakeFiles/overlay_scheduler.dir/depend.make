# Empty dependencies file for overlay_scheduler.
# This may be replaced when dependencies are built.
