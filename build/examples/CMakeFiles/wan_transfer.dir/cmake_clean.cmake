file(REMOVE_RECURSE
  "CMakeFiles/wan_transfer.dir/wan_transfer.cpp.o"
  "CMakeFiles/wan_transfer.dir/wan_transfer.cpp.o.d"
  "wan_transfer"
  "wan_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
