# Empty dependencies file for wan_transfer.
# This may be replaced when dependencies are built.
