
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/harness.cpp" "src/exp/CMakeFiles/lsl_exp.dir/harness.cpp.o" "gcc" "src/exp/CMakeFiles/lsl_exp.dir/harness.cpp.o.d"
  "/root/repo/src/exp/packet_log.cpp" "src/exp/CMakeFiles/lsl_exp.dir/packet_log.cpp.o" "gcc" "src/exp/CMakeFiles/lsl_exp.dir/packet_log.cpp.o.d"
  "/root/repo/src/exp/raw_tcp.cpp" "src/exp/CMakeFiles/lsl_exp.dir/raw_tcp.cpp.o" "gcc" "src/exp/CMakeFiles/lsl_exp.dir/raw_tcp.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/exp/CMakeFiles/lsl_exp.dir/scenario.cpp.o" "gcc" "src/exp/CMakeFiles/lsl_exp.dir/scenario.cpp.o.d"
  "/root/repo/src/exp/trace.cpp" "src/exp/CMakeFiles/lsl_exp.dir/trace.cpp.o" "gcc" "src/exp/CMakeFiles/lsl_exp.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsl/CMakeFiles/lsl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/lsl_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lsl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
