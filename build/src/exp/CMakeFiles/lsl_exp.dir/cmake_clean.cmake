file(REMOVE_RECURSE
  "CMakeFiles/lsl_exp.dir/harness.cpp.o"
  "CMakeFiles/lsl_exp.dir/harness.cpp.o.d"
  "CMakeFiles/lsl_exp.dir/packet_log.cpp.o"
  "CMakeFiles/lsl_exp.dir/packet_log.cpp.o.d"
  "CMakeFiles/lsl_exp.dir/raw_tcp.cpp.o"
  "CMakeFiles/lsl_exp.dir/raw_tcp.cpp.o.d"
  "CMakeFiles/lsl_exp.dir/scenario.cpp.o"
  "CMakeFiles/lsl_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/lsl_exp.dir/trace.cpp.o"
  "CMakeFiles/lsl_exp.dir/trace.cpp.o.d"
  "liblsl_exp.a"
  "liblsl_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
