file(REMOVE_RECURSE
  "liblsl_exp.a"
)
