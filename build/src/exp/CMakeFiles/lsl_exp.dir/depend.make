# Empty dependencies file for lsl_exp.
# This may be replaced when dependencies are built.
