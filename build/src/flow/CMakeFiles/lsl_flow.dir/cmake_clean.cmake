file(REMOVE_RECURSE
  "CMakeFiles/lsl_flow.dir/path_model.cpp.o"
  "CMakeFiles/lsl_flow.dir/path_model.cpp.o.d"
  "CMakeFiles/lsl_flow.dir/tcp_model.cpp.o"
  "CMakeFiles/lsl_flow.dir/tcp_model.cpp.o.d"
  "liblsl_flow.a"
  "liblsl_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
