file(REMOVE_RECURSE
  "liblsl_flow.a"
)
