# Empty compiler generated dependencies file for lsl_flow.
# This may be replaced when dependencies are built.
