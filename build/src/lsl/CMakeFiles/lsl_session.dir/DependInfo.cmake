
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsl/depot.cpp" "src/lsl/CMakeFiles/lsl_session.dir/depot.cpp.o" "gcc" "src/lsl/CMakeFiles/lsl_session.dir/depot.cpp.o.d"
  "/root/repo/src/lsl/endpoint.cpp" "src/lsl/CMakeFiles/lsl_session.dir/endpoint.cpp.o" "gcc" "src/lsl/CMakeFiles/lsl_session.dir/endpoint.cpp.o.d"
  "/root/repo/src/lsl/header.cpp" "src/lsl/CMakeFiles/lsl_session.dir/header.cpp.o" "gcc" "src/lsl/CMakeFiles/lsl_session.dir/header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/lsl_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lsl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
