file(REMOVE_RECURSE
  "CMakeFiles/lsl_session.dir/depot.cpp.o"
  "CMakeFiles/lsl_session.dir/depot.cpp.o.d"
  "CMakeFiles/lsl_session.dir/endpoint.cpp.o"
  "CMakeFiles/lsl_session.dir/endpoint.cpp.o.d"
  "CMakeFiles/lsl_session.dir/header.cpp.o"
  "CMakeFiles/lsl_session.dir/header.cpp.o.d"
  "liblsl_session.a"
  "liblsl_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
