file(REMOVE_RECURSE
  "liblsl_session.a"
)
