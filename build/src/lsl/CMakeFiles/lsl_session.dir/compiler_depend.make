# Empty compiler generated dependencies file for lsl_session.
# This may be replaced when dependencies are built.
