file(REMOVE_RECURSE
  "CMakeFiles/lsl_net.dir/link.cpp.o"
  "CMakeFiles/lsl_net.dir/link.cpp.o.d"
  "CMakeFiles/lsl_net.dir/node.cpp.o"
  "CMakeFiles/lsl_net.dir/node.cpp.o.d"
  "CMakeFiles/lsl_net.dir/topology.cpp.o"
  "CMakeFiles/lsl_net.dir/topology.cpp.o.d"
  "liblsl_net.a"
  "liblsl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
