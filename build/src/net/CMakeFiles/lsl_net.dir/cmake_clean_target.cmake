file(REMOVE_RECURSE
  "liblsl_net.a"
)
