# Empty compiler generated dependencies file for lsl_net.
# This may be replaced when dependencies are built.
