file(REMOVE_RECURSE
  "CMakeFiles/lsl_nws.dir/forecasters.cpp.o"
  "CMakeFiles/lsl_nws.dir/forecasters.cpp.o.d"
  "CMakeFiles/lsl_nws.dir/monitor.cpp.o"
  "CMakeFiles/lsl_nws.dir/monitor.cpp.o.d"
  "CMakeFiles/lsl_nws.dir/rescheduler.cpp.o"
  "CMakeFiles/lsl_nws.dir/rescheduler.cpp.o.d"
  "liblsl_nws.a"
  "liblsl_nws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
