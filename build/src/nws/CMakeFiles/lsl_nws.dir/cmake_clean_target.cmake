file(REMOVE_RECURSE
  "liblsl_nws.a"
)
