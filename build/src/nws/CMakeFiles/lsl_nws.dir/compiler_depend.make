# Empty compiler generated dependencies file for lsl_nws.
# This may be replaced when dependencies are built.
