file(REMOVE_RECURSE
  "CMakeFiles/lsl_sched.dir/cost_matrix.cpp.o"
  "CMakeFiles/lsl_sched.dir/cost_matrix.cpp.o.d"
  "CMakeFiles/lsl_sched.dir/minimax.cpp.o"
  "CMakeFiles/lsl_sched.dir/minimax.cpp.o.d"
  "CMakeFiles/lsl_sched.dir/scheduler.cpp.o"
  "CMakeFiles/lsl_sched.dir/scheduler.cpp.o.d"
  "liblsl_sched.a"
  "liblsl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
