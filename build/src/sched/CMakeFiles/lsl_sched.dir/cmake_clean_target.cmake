file(REMOVE_RECURSE
  "liblsl_sched.a"
)
