# Empty dependencies file for lsl_sched.
# This may be replaced when dependencies are built.
