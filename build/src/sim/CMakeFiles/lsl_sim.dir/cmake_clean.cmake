file(REMOVE_RECURSE
  "CMakeFiles/lsl_sim.dir/simulator.cpp.o"
  "CMakeFiles/lsl_sim.dir/simulator.cpp.o.d"
  "liblsl_sim.a"
  "liblsl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
