file(REMOVE_RECURSE
  "liblsl_sim.a"
)
