# Empty dependencies file for lsl_sim.
# This may be replaced when dependencies are built.
