
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/connection.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/connection.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/connection.cpp.o.d"
  "/root/repo/src/tcp/recv_buffer.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/recv_buffer.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/recv_buffer.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/rtt_estimator.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/sack.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/sack.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/sack.cpp.o.d"
  "/root/repo/src/tcp/send_buffer.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/send_buffer.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/send_buffer.cpp.o.d"
  "/root/repo/src/tcp/stack.cpp" "src/tcp/CMakeFiles/lsl_tcp.dir/stack.cpp.o" "gcc" "src/tcp/CMakeFiles/lsl_tcp.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lsl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
