file(REMOVE_RECURSE
  "CMakeFiles/lsl_tcp.dir/connection.cpp.o"
  "CMakeFiles/lsl_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/lsl_tcp.dir/recv_buffer.cpp.o"
  "CMakeFiles/lsl_tcp.dir/recv_buffer.cpp.o.d"
  "CMakeFiles/lsl_tcp.dir/rtt_estimator.cpp.o"
  "CMakeFiles/lsl_tcp.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/lsl_tcp.dir/sack.cpp.o"
  "CMakeFiles/lsl_tcp.dir/sack.cpp.o.d"
  "CMakeFiles/lsl_tcp.dir/send_buffer.cpp.o"
  "CMakeFiles/lsl_tcp.dir/send_buffer.cpp.o.d"
  "CMakeFiles/lsl_tcp.dir/stack.cpp.o"
  "CMakeFiles/lsl_tcp.dir/stack.cpp.o.d"
  "liblsl_tcp.a"
  "liblsl_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
