file(REMOVE_RECURSE
  "liblsl_tcp.a"
)
