# Empty compiler generated dependencies file for lsl_tcp.
# This may be replaced when dependencies are built.
