file(REMOVE_RECURSE
  "CMakeFiles/lsl_testbed.dir/abilene_paths.cpp.o"
  "CMakeFiles/lsl_testbed.dir/abilene_paths.cpp.o.d"
  "CMakeFiles/lsl_testbed.dir/cross_traffic.cpp.o"
  "CMakeFiles/lsl_testbed.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/lsl_testbed.dir/grid.cpp.o"
  "CMakeFiles/lsl_testbed.dir/grid.cpp.o.d"
  "CMakeFiles/lsl_testbed.dir/materialize.cpp.o"
  "CMakeFiles/lsl_testbed.dir/materialize.cpp.o.d"
  "CMakeFiles/lsl_testbed.dir/sweep.cpp.o"
  "CMakeFiles/lsl_testbed.dir/sweep.cpp.o.d"
  "liblsl_testbed.a"
  "liblsl_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
