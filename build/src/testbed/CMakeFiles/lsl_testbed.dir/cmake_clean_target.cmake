file(REMOVE_RECURSE
  "liblsl_testbed.a"
)
