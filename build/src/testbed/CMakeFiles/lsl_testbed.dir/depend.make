# Empty dependencies file for lsl_testbed.
# This may be replaced when dependencies are built.
