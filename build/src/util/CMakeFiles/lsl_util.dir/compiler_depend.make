# Empty compiler generated dependencies file for lsl_util.
# This may be replaced when dependencies are built.
