file(REMOVE_RECURSE
  "CMakeFiles/cross_traffic_test.dir/cross_traffic_test.cpp.o"
  "CMakeFiles/cross_traffic_test.dir/cross_traffic_test.cpp.o.d"
  "cross_traffic_test"
  "cross_traffic_test.pdb"
  "cross_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
