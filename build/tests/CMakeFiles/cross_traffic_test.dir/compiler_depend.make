# Empty compiler generated dependencies file for cross_traffic_test.
# This may be replaced when dependencies are built.
