file(REMOVE_RECURSE
  "CMakeFiles/depot_memory_test.dir/depot_memory_test.cpp.o"
  "CMakeFiles/depot_memory_test.dir/depot_memory_test.cpp.o.d"
  "depot_memory_test"
  "depot_memory_test.pdb"
  "depot_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depot_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
