# Empty compiler generated dependencies file for depot_memory_test.
# This may be replaced when dependencies are built.
