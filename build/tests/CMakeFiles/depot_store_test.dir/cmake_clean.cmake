file(REMOVE_RECURSE
  "CMakeFiles/depot_store_test.dir/depot_store_test.cpp.o"
  "CMakeFiles/depot_store_test.dir/depot_store_test.cpp.o.d"
  "depot_store_test"
  "depot_store_test.pdb"
  "depot_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depot_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
