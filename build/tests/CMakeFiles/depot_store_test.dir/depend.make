# Empty dependencies file for depot_store_test.
# This may be replaced when dependencies are built.
