file(REMOVE_RECURSE
  "CMakeFiles/exp_harness_test.dir/exp_harness_test.cpp.o"
  "CMakeFiles/exp_harness_test.dir/exp_harness_test.cpp.o.d"
  "exp_harness_test"
  "exp_harness_test.pdb"
  "exp_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
