file(REMOVE_RECURSE
  "CMakeFiles/flow_model_test.dir/flow_model_test.cpp.o"
  "CMakeFiles/flow_model_test.dir/flow_model_test.cpp.o.d"
  "flow_model_test"
  "flow_model_test.pdb"
  "flow_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
