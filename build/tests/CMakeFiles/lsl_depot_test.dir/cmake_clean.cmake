file(REMOVE_RECURSE
  "CMakeFiles/lsl_depot_test.dir/lsl_depot_test.cpp.o"
  "CMakeFiles/lsl_depot_test.dir/lsl_depot_test.cpp.o.d"
  "lsl_depot_test"
  "lsl_depot_test.pdb"
  "lsl_depot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_depot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
