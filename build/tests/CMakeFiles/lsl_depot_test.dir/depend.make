# Empty dependencies file for lsl_depot_test.
# This may be replaced when dependencies are built.
