file(REMOVE_RECURSE
  "CMakeFiles/lsl_header_test.dir/lsl_header_test.cpp.o"
  "CMakeFiles/lsl_header_test.dir/lsl_header_test.cpp.o.d"
  "lsl_header_test"
  "lsl_header_test.pdb"
  "lsl_header_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
