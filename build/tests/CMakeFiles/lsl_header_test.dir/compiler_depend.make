# Empty compiler generated dependencies file for lsl_header_test.
# This may be replaced when dependencies are built.
