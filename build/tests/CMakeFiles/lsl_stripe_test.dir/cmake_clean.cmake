file(REMOVE_RECURSE
  "CMakeFiles/lsl_stripe_test.dir/lsl_stripe_test.cpp.o"
  "CMakeFiles/lsl_stripe_test.dir/lsl_stripe_test.cpp.o.d"
  "lsl_stripe_test"
  "lsl_stripe_test.pdb"
  "lsl_stripe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_stripe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
