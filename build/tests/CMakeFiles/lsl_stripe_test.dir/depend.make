# Empty dependencies file for lsl_stripe_test.
# This may be replaced when dependencies are built.
