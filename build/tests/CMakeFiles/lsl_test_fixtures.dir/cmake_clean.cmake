file(REMOVE_RECURSE
  "CMakeFiles/lsl_test_fixtures.dir/fixtures.cpp.o"
  "CMakeFiles/lsl_test_fixtures.dir/fixtures.cpp.o.d"
  "liblsl_test_fixtures.a"
  "liblsl_test_fixtures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_test_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
