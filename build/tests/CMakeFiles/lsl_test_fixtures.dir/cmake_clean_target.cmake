file(REMOVE_RECURSE
  "liblsl_test_fixtures.a"
)
