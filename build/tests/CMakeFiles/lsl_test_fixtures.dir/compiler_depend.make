# Empty compiler generated dependencies file for lsl_test_fixtures.
# This may be replaced when dependencies are built.
