
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/materialize_test.cpp" "tests/CMakeFiles/materialize_test.dir/materialize_test.cpp.o" "gcc" "tests/CMakeFiles/materialize_test.dir/materialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/lsl_test_fixtures.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/lsl_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/nws/CMakeFiles/lsl_nws.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lsl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lsl_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/lsl_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/lsl/CMakeFiles/lsl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/lsl_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lsl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
