file(REMOVE_RECURSE
  "CMakeFiles/nagle_test.dir/nagle_test.cpp.o"
  "CMakeFiles/nagle_test.dir/nagle_test.cpp.o.d"
  "nagle_test"
  "nagle_test.pdb"
  "nagle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
