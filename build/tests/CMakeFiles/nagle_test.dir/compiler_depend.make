# Empty compiler generated dependencies file for nagle_test.
# This may be replaced when dependencies are built.
