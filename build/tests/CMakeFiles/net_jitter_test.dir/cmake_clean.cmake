file(REMOVE_RECURSE
  "CMakeFiles/net_jitter_test.dir/net_jitter_test.cpp.o"
  "CMakeFiles/net_jitter_test.dir/net_jitter_test.cpp.o.d"
  "net_jitter_test"
  "net_jitter_test.pdb"
  "net_jitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_jitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
