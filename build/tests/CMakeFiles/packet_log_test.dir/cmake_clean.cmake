file(REMOVE_RECURSE
  "CMakeFiles/packet_log_test.dir/packet_log_test.cpp.o"
  "CMakeFiles/packet_log_test.dir/packet_log_test.cpp.o.d"
  "packet_log_test"
  "packet_log_test.pdb"
  "packet_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
