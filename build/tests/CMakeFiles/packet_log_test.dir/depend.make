# Empty dependencies file for packet_log_test.
# This may be replaced when dependencies are built.
