file(REMOVE_RECURSE
  "CMakeFiles/rescheduler_test.dir/rescheduler_test.cpp.o"
  "CMakeFiles/rescheduler_test.dir/rescheduler_test.cpp.o.d"
  "rescheduler_test"
  "rescheduler_test.pdb"
  "rescheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
