file(REMOVE_RECURSE
  "CMakeFiles/tcp_buffers_test.dir/tcp_buffers_test.cpp.o"
  "CMakeFiles/tcp_buffers_test.dir/tcp_buffers_test.cpp.o.d"
  "tcp_buffers_test"
  "tcp_buffers_test.pdb"
  "tcp_buffers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_buffers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
