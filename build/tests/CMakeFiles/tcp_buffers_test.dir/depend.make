# Empty dependencies file for tcp_buffers_test.
# This may be replaced when dependencies are built.
