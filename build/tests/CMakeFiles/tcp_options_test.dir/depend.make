# Empty dependencies file for tcp_options_test.
# This may be replaced when dependencies are built.
