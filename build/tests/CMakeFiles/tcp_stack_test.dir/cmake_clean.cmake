file(REMOVE_RECURSE
  "CMakeFiles/tcp_stack_test.dir/tcp_stack_test.cpp.o"
  "CMakeFiles/tcp_stack_test.dir/tcp_stack_test.cpp.o.d"
  "tcp_stack_test"
  "tcp_stack_test.pdb"
  "tcp_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
