# Empty compiler generated dependencies file for tcp_stack_test.
# This may be replaced when dependencies are built.
