file(REMOVE_RECURSE
  "CMakeFiles/lslsim.dir/lslsim.cpp.o"
  "CMakeFiles/lslsim.dir/lslsim.cpp.o.d"
  "lslsim"
  "lslsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
