# Empty compiler generated dependencies file for lslsim.
# This may be replaced when dependencies are built.
