// Adaptive hop-by-hop routing: the paper's section 4.2 deployment mode.
//
// Instead of loose source routes computed once, every depot consumes a
// destination/next-hop route table, and a Rescheduler re-measures the
// network and reinstalls fresh tables on a fixed cadence (the paper used
// 5-minute intervals). Mid-run, a link degrades; the next scheduling round
// routes around it without the sources changing anything.
//
//   $ ./adaptive_routing
#include <cstdio>

#include "exp/harness.hpp"
#include "nws/rescheduler.hpp"
#include "testbed/grid.hpp"

using namespace lsl;
using namespace lsl::time_literals;

int main() {
  // Packet-level 4-host line + shortcut topology.
  exp::SimHarness net(/*seed=*/21);
  const auto src = net.add_host("src.a.edu", "a.edu");
  const auto d1 = net.add_host("depot1.net", "d1.net");
  const auto d2 = net.add_host("depot2.net", "d2.net");
  const auto dst = net.add_host("dst.b.edu", "b.edu");

  net::LinkConfig good;
  good.rate = Bandwidth::mbps(100);
  good.propagation_delay = 8_ms;
  net.add_link(src, d1, good);
  net.add_link(d1, dst, good);
  net.add_link(src, d2, good);
  net.add_link(d2, dst, good);
  net.add_link(src, dst, good);

  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(2));
  net.deploy(cfg);
  auto& topo = net.topology();
  topo.node(src).set_route(dst, topo.link_between(src, dst));
  topo.node(dst).set_route(src, topo.link_between(dst, src));

  // Ground truth the monitor probes: direct path healthy at first.
  double direct_mbps = 60.0;
  const auto truth = [&](std::size_t a, std::size_t b) -> Bandwidth {
    const bool is_direct = (a == src && b == dst) || (a == dst && b == src);
    return Bandwidth::mbps(is_direct ? direct_mbps : 55.0);
  };

  // Rescheduler: one epoch + fresh route tables every 5 minutes.
  std::size_t installs = 0;
  nws::Rescheduler rescheduler(
      net.simulator(),
      nws::PerformanceMonitor({"a.edu", "d1.net", "d2.net", "b.edu"},
                              nws::NoiseModel{.lognormal_sigma = 0.05}, 3),
      truth, SimTime::seconds(300), {.epsilon = 0.15},
      [&](const sched::Scheduler& scheduler) {
        for (std::size_t node = 0; node < net.host_count(); ++node) {
          net.depot(node).set_route_table(scheduler.route_table_for(node));
        }
        ++installs;
        const auto decision = scheduler.route(src, dst);
        std::printf("[t=%8s] schedule #%zu: src->dst %s\n",
                    net.simulator().now().str().c_str(), installs,
                    decision.uses_depots() ? "via depot" : "direct");
      });
  rescheduler.start();

  // The source always hands its sessions to depot1's routing fabric; the
  // tables decide the rest hop by hop.
  const auto send_one = [&](const char* label) {
    session::TransferSpec spec;
    spec.dst = dst;
    spec.via = {d1};
    spec.payload_bytes = mib(8);
    spec.tcp = tcp::TcpOptions{}.with_buffers(mib(2));
    const auto r = net.run_transfer(src, spec,
                                    net.simulator().now() + 600_s);
    std::printf("[t=%8s] %-22s %s in %s (%.1f Mbit/s)\n",
                net.simulator().now().str().c_str(), label,
                format_bytes(r.bytes).c_str(), r.elapsed.str().c_str(),
                r.goodput.megabits_per_second());
  };

  send_one("transfer (healthy)");

  // Degrade the direct path -- physically (heavy loss on the link) and in
  // the monitor's probes; after the next epochs the forecast catches up
  // and the tables flip.
  net.simulator().schedule_at(500_s, [&] {
    direct_mbps = 3.0;
    topo.link_between(src, dst)->set_loss_rate(0.02);
    topo.link_between(dst, src)->set_loss_rate(0.02);
    std::printf("[t=%8s] *** direct path degrades (heavy loss) ***\n",
                net.simulator().now().str().c_str());
  });
  net.simulator().run(2500_s);

  send_one("transfer (rerouted)");
  std::printf("\n%zu scheduling rounds ran; the depots' tables were the only "
              "thing that changed.\n", installs);
  return 0;
}
