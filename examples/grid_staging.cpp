// Grid data staging: the workloads the paper's introduction motivates.
//
// A compute job's input dataset must reach several cluster sites before the
// job starts. This example exercises two LSL extensions:
//
//   1. The synchronous application-layer multicast staging tree (header
//      option from the paper's section 2): one send from the data source
//      fans out through depots to three compute sites.
//   2. Asynchronous sessions: results are parked at a depot near the
//      consumer, who fetches them later by session id.
//
//   $ ./grid_staging
#include <cstdio>

#include "exp/harness.hpp"
#include "lsl/depot.hpp"
#include "lsl/endpoint.hpp"

using namespace lsl;
using namespace lsl::time_literals;

int main() {
  exp::SimHarness net(/*seed=*/11);

  // Topology: a data archive, a backbone depot, two regional depots, and
  // three compute clusters hanging off the regions.
  const auto archive = net.add_host("archive.lab.gov", "lab.gov");
  const auto core = net.add_host("depot.core.net", "core.net");
  const auto west = net.add_host("depot.west.net", "west.net");
  const auto east = net.add_host("depot.east.net", "east.net");
  const auto cluster1 = net.add_host("hpc1.uni-w.edu", "uni-w.edu");
  const auto cluster2 = net.add_host("hpc2.uni-e.edu", "uni-e.edu");
  const auto cluster3 = net.add_host("hpc3.uni-e2.edu", "uni-e2.edu");

  net::LinkConfig wan;
  wan.rate = Bandwidth::mbps(200);
  wan.queue_capacity_bytes = mib(8);
  wan.propagation_delay = 12_ms;
  net.add_link(archive, core, wan);
  net.add_link(core, west, wan);
  net.add_link(core, east, wan);
  wan.propagation_delay = 6_ms;
  net.add_link(west, cluster1, wan);
  net.add_link(east, cluster2, wan);
  net.add_link(east, cluster3, wan);

  session::DepotConfig depot_config;
  depot_config.tcp = tcp::TcpOptions{}.with_buffers(mib(4));
  depot_config.user_buffer_bytes = mib(8);
  net.deploy(depot_config);

  // ---- 1. Multicast staging -------------------------------------------
  // Tree: core fans out to west and east; west feeds cluster1, east feeds
  // clusters 2 and 3. Entries are (node, parent index).
  session::MulticastTree tree;
  tree.entries = {{core, 0},     {west, 0},     {east, 0},
                  {cluster1, 1}, {cluster2, 2}, {cluster3, 2}};

  int staged = 0;
  std::uint64_t staged_bytes = 0;
  for (const auto leaf : {cluster1, cluster2, cluster3}) {
    net.depot(leaf).on_session_complete =
        [&, leaf](const session::SessionRecord& record) {
          ++staged;
          staged_bytes += record.bytes;
          std::printf("  %-18s received %s at t=%s\n",
                      net.topology().node(leaf).name().c_str(),
                      format_bytes(record.bytes).c_str(),
                      record.completed_at.str().c_str());
        };
  }

  session::TransferSpec staging;
  staging.dst = core;
  staging.multicast = tree;
  staging.payload_bytes = mib(24);
  staging.tcp = tcp::TcpOptions{}.with_buffers(mib(4));

  std::printf("Staging %s to 3 compute sites via multicast tree...\n",
              format_bytes(staging.payload_bytes).c_str());
  session::LslSource::start(net.stack(archive), staging, net.rng());
  net.simulator().run(net.simulator().now() + 120_s);
  std::printf("Staged to %d/3 sites (%s total payload delivered).\n\n",
              staged, format_bytes(staged_bytes).c_str());

  // ---- 2. Asynchronous result return ------------------------------------
  // cluster1 finishes its job and ships results toward the archive, but the
  // archive is not ready to receive: the session parks at the core depot.
  session::TransferSpec results;
  results.dst = archive;
  results.via = {west, core};
  results.async_session = true;
  results.payload_bytes = mib(6);
  results.tcp = tcp::TcpOptions{}.with_buffers(mib(4));

  auto upload =
      session::LslSource::start(net.stack(cluster1), results, net.rng());
  const auto result_id = upload->session_id();
  net.simulator().run(net.simulator().now() + 60_s);

  const auto stored = net.depot(core).stored_bytes(result_id);
  std::printf("Results session %s parked at core depot: %s\n",
              result_id.str().substr(0, 8).c_str(),
              stored ? format_bytes(*stored).c_str() : "(missing!)");

  // Later, the archive fetches them by session id.
  bool fetched = false;
  auto fetcher = session::AsyncFetcher::start(
      net.stack(archive), core, result_id,
      tcp::TcpOptions{}.with_buffers(mib(4)));
  fetcher->on_complete = [&](const session::AsyncFetcher::Result& r) {
    fetched = true;
    std::printf("Archive fetched %s in %s (%.1f Mbit/s)\n",
                format_bytes(r.bytes).c_str(), r.elapsed.str().c_str(),
                throughput_of(r.bytes, r.elapsed).megabits_per_second());
  };
  net.simulator().run(net.simulator().now() + 60_s);
  if (!fetched) {
    std::printf("Fetch failed!\n");
    return 1;
  }
  return 0;
}
