// Overlay route scheduling on a Grid testbed.
//
// Shows the control plane end to end: measure a synthetic PlanetLab-like
// pool with the NWS-style monitor, build the performance matrix, run the
// epsilon-damped minimax scheduler, inspect a few decisions and one
// depot's hop-by-hop route table, then estimate what the chosen relay
// route buys with the flow-level transfer model.
//
//   $ ./overlay_scheduler
#include <cstdio>

#include "flow/path_model.hpp"
#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "testbed/grid.hpp"

using namespace lsl;

int main() {
  // A smaller pool keeps the output readable.
  testbed::PlanetLabConfig config;
  config.sites = 16;
  const auto grid = testbed::SyntheticGrid::planetlab(config, /*seed=*/3);
  std::printf("Generated pool: %zu hosts at %zu sites.\n\n", grid.size(),
              config.sites);

  // 1. Measure: 20 NWS epochs feed per-site-pair adaptive forecasters.
  nws::PerformanceMonitor monitor(grid.sites(), nws::NoiseModel{}, 99);
  for (int epoch = 0; epoch < 20; ++epoch) {
    monitor.observe_epoch(grid.truth());
  }

  // 2. Schedule over the forecast matrix.
  sched::Scheduler scheduler(monitor.build_matrix(),
                             {.epsilon = grid.noise().sweep_epsilon});
  std::printf("Scheduler relays %.0f%% of host pairs via depots.\n\n",
              100.0 * scheduler.fraction_scheduled());

  // 3. Inspect a few decisions.
  std::printf("Sample decisions from host 0 (%s):\n",
              grid.host(0).name.c_str());
  int shown = 0;
  std::size_t example_dst = 0;
  for (std::size_t dst = 1; dst < grid.size() && shown < 6; dst += 3) {
    const auto decision = scheduler.route(0, dst);
    std::printf("  -> %-22s %s", grid.host(dst).name.c_str(),
                decision.uses_depots() ? "via" : "direct");
    for (const auto hop : decision.via()) {
      std::printf(" %s", grid.host(hop).name.c_str());
    }
    std::printf("  (cost %.3f vs direct %.3f)\n", decision.scheduled_cost,
                decision.direct_cost);
    if (decision.uses_depots() && example_dst == 0) {
      example_dst = dst;
    }
    ++shown;
  }

  // 4. A depot's route table (what hop-by-hop forwarding consumes).
  const auto table = scheduler.route_table_for(0);
  std::printf("\nHost 0's route table holds %zu destination/next-hop "
              "tuples.\n",
              table.size());

  // 5. What does the relay route buy? Ask the flow model.
  if (example_dst != 0) {
    const auto decision = scheduler.route(0, example_dst);
    Rng trial(1234);
    const std::uint64_t size = mib(16);
    const auto direct_params =
        grid.direct_params(0, example_dst, size, trial);
    const auto direct_time = flow::transfer_time(direct_params, size);
    const auto hops = grid.relay_params(decision.path, size, trial);
    const auto relay_time =
        flow::relay_transfer_time({hops, 32 * kMiB}, size);
    std::printf("\n16MB to %s: direct %s, scheduled %s (%.2fx)\n",
                grid.host(example_dst).name.c_str(),
                direct_time.str().c_str(), relay_time.str().c_str(),
                direct_time.to_seconds() / relay_time.to_seconds());
  }
  return 0;
}
