// Quickstart: the smallest complete LSL program.
//
// Builds a three-host network (source, depot, destination), deploys the
// session layer on every host, then moves 8 MB twice -- once directly and
// once through the depot -- and prints both results.
//
//   $ ./quickstart
#include <cstdio>

#include "exp/harness.hpp"
#include "lsl/depot.hpp"

using namespace lsl;
using namespace lsl::time_literals;

int main() {
  // 1. A simulated network: two 40 ms legs and an 80 ms direct path, all
  //    100 Mbit/s with a little random loss (the regime where splitting a
  //    connection pays off).
  exp::SimHarness net(/*seed=*/7);
  const auto source = net.add_host("source.site-a.edu", "site-a.edu");
  const auto depot = net.add_host("depot.core.net", "core.net");
  const auto sink = net.add_host("sink.site-b.edu", "site-b.edu");

  net::LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.queue_capacity_bytes = mib(8);
  link.loss_rate = 3e-4;

  link.propagation_delay = 20_ms;  // one way; RTT 40 ms per leg
  net.add_link(source, depot, link);
  net.add_link(depot, sink, link);
  link.propagation_delay = 40_ms;  // RTT 80 ms direct
  net.add_link(source, sink, link);

  // 2. Deploy the session layer: every host runs a depot process with 8 MB
  //    TCP buffers and a 16 MB user-space relay buffer.
  session::DepotConfig depot_config;
  depot_config.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  depot_config.user_buffer_bytes = mib(16);
  net.deploy(depot_config);

  // Keep "direct" traffic on the direct link (shortest-delay routing would
  // otherwise sneak it through the depot's router).
  auto& topo = net.topology();
  topo.node(source).set_route(sink, topo.link_between(source, sink));
  topo.node(sink).set_route(source, topo.link_between(sink, source));

  // 3. Transfer 8 MB directly...
  session::TransferSpec direct;
  direct.dst = sink;
  direct.payload_bytes = mib(8);
  direct.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  const auto direct_result = net.run_transfer(source, direct);

  // ...and again through the depot (a loose source route with one hop).
  session::TransferSpec relayed = direct;
  relayed.via = {depot};
  const auto relayed_result = net.run_transfer(source, relayed);

  std::printf("direct : %s in %s  (%.1f Mbit/s)\n",
              format_bytes(direct_result.bytes).c_str(),
              direct_result.elapsed.str().c_str(),
              direct_result.goodput.megabits_per_second());
  std::printf("via depot: %s in %s  (%.1f Mbit/s)\n",
              relayed_result.bytes ? format_bytes(relayed_result.bytes).c_str()
                                   : "0B",
              relayed_result.elapsed.str().c_str(),
              relayed_result.goodput.megabits_per_second());
  std::printf("speedup : %.2fx\n",
              relayed_result.goodput.bits_per_second() /
                  direct_result.goodput.bits_per_second());

  const auto& stats = net.depot(depot).stats();
  std::printf("depot   : relayed %llu session(s), %s through user space\n",
              static_cast<unsigned long long>(stats.sessions_relayed),
              format_bytes(stats.bytes_relayed).c_str());
  return 0;
}
