// WAN bulk transfer on the paper's measured Abilene path.
//
// Recreates section 3's experiment interactively: moves files of several
// sizes from "UCSB" to "UIUC", directly and through the Denver depot, and
// prints the bandwidth each achieves plus the depot's view of the session.
//
//   $ ./wan_transfer
#include <cstdio>

#include "testbed/abilene_paths.hpp"
#include "util/stats.hpp"

using namespace lsl;

int main() {
  const auto scenario = testbed::ucsb_uiuc_via_denver();
  std::printf("Path: UCSB -> UIUC, depot in Denver.\n");
  std::printf("RTTs: %2.0f ms + %2.0f ms via depot, %2.0f ms direct.\n\n",
              (scenario.src_depot_delay * 2).to_milliseconds(),
              (scenario.depot_dst_delay * 2).to_milliseconds(),
              (scenario.direct_delay * 2).to_milliseconds());

  std::printf("%8s  %14s  %14s  %8s\n", "size", "direct Mbit/s",
              "via depot Mbit/s", "speedup");
  for (const std::uint64_t size : {mib(2), mib(8), mib(32)}) {
    OnlineStats direct_bw;
    OnlineStats lsl_bw;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      testbed::PathTestbed direct_bed(scenario, seed);
      const auto direct = direct_bed.run(/*via_depot=*/false, size);
      if (direct.completed) {
        direct_bw.add(direct.goodput.megabits_per_second());
      }
      testbed::PathTestbed lsl_bed(scenario, seed);
      const auto lsl = lsl_bed.run(/*via_depot=*/true, size);
      if (lsl.completed) {
        lsl_bw.add(lsl.goodput.megabits_per_second());
      }
    }
    std::printf("%8s  %14.1f  %14.1f  %7.2fx\n", format_bytes(size).c_str(),
                direct_bw.mean(), lsl_bw.mean(),
                lsl_bw.mean() / direct_bw.mean());
  }

  std::printf("\nWhy it works: each TCP connection's control loop runs at "
              "its own RTT;\nsplitting the 70 ms path in half roughly "
              "doubles how fast each half can\nramp and recover, and the "
              "depot's 32 MB pipeline decouples the two.\n");
  return 0;
}
