# The paper's UCSB -> UIUC path (section 3): direct vs. via a Denver depot.
# RTTs reproduce the measured table: 46 + 45 ms via depot, 70 ms direct.
#
#   lslsim scenarios/abilene_uiuc.lsl

host ash.ucsb.edu  ucsb.edu
host depot.denver  core
host bell.uiuc.edu uiuc.edu

link ash.ucsb.edu depot.denver   rate=155 delay=23   queue=8192 loss=1e-5
link depot.denver bell.uiuc.edu  rate=155 delay=22.5 queue=8192 loss=5e-4
link ash.ucsb.edu bell.uiuc.edu  rate=155 delay=35   queue=8192 loss=5e-4

# 8 MB kernel buffers + 16 MB user buffer = the paper's 32 MB pipeline
depot buffers=8192 user=16384

# keep "direct" traffic on the direct link
pin ash.ucsb.edu bell.uiuc.edu

transfer ash.ucsb.edu bell.uiuc.edu size=16 buffers=8192
transfer ash.ucsb.edu bell.uiuc.edu size=16 buffers=8192 via=depot.denver
transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192
transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192 via=depot.denver
