# Depot churn on the paper's UCSB -> UIUC triangle: the Denver depot
# crashes mid-transfer (one scripted crash plus a seeded MTBF/MTTR churn
# process) and the session-recovery loop detects the failure, blacklists
# the depot, fails over to the direct path, and resumes from the sink's
# committed offset instead of byte 0.
#
#   lslsim scenarios/depot_churn.lsl --seed 7
#
# Exit status is nonzero if any session fails outright or a connection
# leaks, so this doubles as the CI fault-smoke scenario.

host ash.ucsb.edu  ucsb.edu
host depot.denver  core
host bell.uiuc.edu uiuc.edu

link ash.ucsb.edu depot.denver   rate=155 delay=23   queue=8192 loss=1e-5
link depot.denver bell.uiuc.edu  rate=155 delay=22.5 queue=8192 loss=5e-4
link ash.ucsb.edu bell.uiuc.edu  rate=155 delay=35   queue=8192 loss=5e-4

# 8 MB kernel buffers + 16 MB user buffer = the paper's 32 MB pipeline
depot buffers=8192 user=16384

# keep "direct" traffic on the direct link
pin ash.ucsb.edu bell.uiuc.edu

# one scripted crash in the middle of the first transfer, then background
# churn for the rest of the run
fault depot-crash depot.denver at=1.5 for=2
churn depot.denver mtbf=30 mttr=2 start=10 horizon=120

recovery retries=8 stall=5 backoff=250 max_backoff=5000 jitter=0.25

transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192 via=depot.denver
transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192 via=depot.denver
