# Forecast drift drives a mid-transfer handover: a transfer starts on the
# best path (via depot.a), then that path's wide-area hop browns out to a
# few percent of its rate. NWS probes measure the throttled link, the
# forecasts drift down, and on a scheduling tick the RouteAdvisor hands
# the live session over to depot.b -- draining to the sink's committed
# offset and resuming there, no failure and no retry consumed.
#
#   lslsim scenarios/forecast_drift.lsl --seed 7
#
# The status column reports rerouted(xN) for the first transfer. Metrics
# output is deterministic for a fixed seed; CI runs this twice and diffs
# (the reroute determinism smoke).

host src      site-a
host depot.a  core-a
host depot.b  core-b
host sink     site-b

link src     depot.a rate=100 delay=10 queue=4096 loss=1e-5
link depot.a sink    rate=100 delay=10 queue=4096 loss=1e-5
link src     depot.b rate=80  delay=12 queue=4096 loss=1e-5
link depot.b sink    rate=80  delay=12 queue=4096 loss=1e-5
link src     sink    rate=20  delay=40 queue=4096 loss=1e-5

depot buffers=4096 user=8192
pin src sink

# Two seconds in, depot.a's wide-area hop collapses to 5% of its rate for
# half a minute. Rate (unlike pure loss) is exactly what the bandwidth
# probes see, so the forecasts -- and the advisor -- react.
fault brownout depot.a sink at=2 for=30 loss=0 factor=0.05

recovery retries=4 stall=10

# Tick every second so the forecasts catch the brownout mid-transfer;
# dwell keeps the session from flapping back when the fault heals.
reroute interval=1 hysteresis=0.2 dwell=3 penalty=0.5 sigma=0.02

transfer src sink size=48 buffers=4096 via=depot.a
transfer src sink size=16 buffers=4096 via=depot.b
