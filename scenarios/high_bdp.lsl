# Lossy high-BDP long haul: the wan10g preset (10 Gbit/s, 160 ms RTT,
# loss 1e-4) sits past CUBIC's crossover RTT, where Reno's Mathis rate
# has collapsed to ~12 Mbit/s but CUBIC's response function holds ~2x
# more. A mid-path depot halves both the RTT and the per-hop loss for
# the relayed transfer, so the direct-vs-via pair shows the logistical
# speedup under whichever stack the `cca` directive (or lslsim --cca=)
# selects.
host src.west west.edu
host depot.mid core
host dst.east east.edu

# Direct path: one wan10g hop. Via path: two hops at half the delay and
# roughly half the loss each (end-to-end loss preserved).
link src.west dst.east   preset=wan10g
link src.west depot.mid  preset=wan10g delay=40 loss=5e-5
link depot.mid dst.east  preset=wan10g delay=40 loss=5e-5

# 32 MiB socket buffers end to end (BDP at 160 ms is ~200 MB; the
# transfers stay loss-limited, not window-limited, for every AIMD stack).
depot buffers=32768 user=65536

# Keep the direct transfer off the (equal-cost) depot path.
pin src.west dst.east

cca cubic

transfer src.west dst.east size=384 buffers=32768
transfer src.west dst.east size=384 buffers=32768 via=depot.mid
