# Control-plane scaling sweep: a synthetic PlanetLab-style pool of ~1024
# hosts (~512 sites). Instead of packet-level transfers, lslsim runs the
# paper's section 4.2 speedup sweep -- NWS measurement epochs, epsilon-
# damped MMP scheduling with parallel tree prebuilds, then Eq. 1 speedups
# per transfer size. Equivalent to `lslsim --pool-size 1024`.
#
#   ./build/tools/lslsim scenarios/pool_1024.lsl --jobs 0
#
# epsilon is omitted so the grid's calibrated sweep epsilon applies;
# `drift` > 0 would schedule from stale forecasts (stale-matrix drift).
pool size=1024 iterations=2 cases=400 sizes=4
