# A two-depot chain: four 20 ms hops replacing an 80 ms direct path.
#
#   lslsim scenarios/two_depot_chain.lsl

host src    site-a
host d1     core
host d2     core
host sink   site-b

link src d1   rate=100 delay=10 queue=4096 loss=2e-4
link d1  d2   rate=100 delay=10 queue=4096 loss=2e-4
link d2  sink rate=100 delay=10 queue=4096 loss=2e-4
link src sink rate=100 delay=40 queue=4096 loss=2e-4

depot buffers=4096 user=8192
pin src sink

transfer src sink size=16 buffers=4096
transfer src sink size=16 buffers=4096 via=d1,d2
