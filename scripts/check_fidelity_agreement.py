#!/usr/bin/env python3
"""Gate cross-fidelity agreement between simulation backends.

Consumes bench JSON records (bench_common.hpp JsonRecords format) from the
same figure bench run at two fidelities and checks two things:

1. flow vs packet (tight): for every mean_speedup_*/median_speedup_* metric
   present in both files, the flow value must lie within --pair-band
   (default 25%) of the packet value. Both simulators execute the identical
   realized networks, so disagreement here means an engine bug, not model
   error.

2. flow vs analytic (loose): each fidelity_agreement_* record (simulated /
   analytic on identical realizations, computed inside the bench) must lie
   within --model-band (default [0.4, 2.2]). The analytic closed form is a
   model, not ground truth -- e.g. slow-start overshoot on mid-size
   transfers is real in both simulators but absent from the Mathis-style
   formula -- so this band only catches gross divergence.

Usage: check_fidelity_agreement.py FLOW_JSON PACKET_JSON
           [--pair-band 0.25] [--model-band-lo 0.4] [--model-band-hi 2.2]
Exit status: 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys


def load(path: str) -> dict[str, float]:
    with open(path) as f:
        records = json.load(f)
    return {r["metric"]: float(r["value"]) for r in records}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("flow_json", help="bench --fidelity=flow records")
    parser.add_argument("packet_json", help="bench --fidelity=packet records")
    parser.add_argument("--pair-band", type=float, default=0.25,
                        help="max |flow/packet - 1| per speedup metric")
    parser.add_argument("--model-band-lo", type=float, default=0.4)
    parser.add_argument("--model-band-hi", type=float, default=2.2)
    args = parser.parse_args()

    flow = load(args.flow_json)
    packet = load(args.packet_json)

    failures = []
    checked = 0

    speedups = sorted(m for m in flow
                      if "speedup_" in m and m in packet and packet[m] > 0.0)
    for metric in speedups:
        rel = flow[metric] / packet[metric] - 1.0
        ok = abs(rel) <= args.pair_band
        checked += 1
        tag = "ok  " if ok else "FAIL"
        print(f"  [{tag}] flow/packet {metric:40s} "
              f"{flow[metric]:7.4f} vs {packet[metric]:7.4f} "
              f"({rel:+.1%}, band +-{args.pair_band:.0%})")
        if not ok:
            failures.append(f"{metric}: flow {flow[metric]:.4f} vs packet "
                            f"{packet[metric]:.4f} ({rel:+.1%})")

    for name, records in (("flow", flow), ("packet", packet)):
        for metric in sorted(m for m in records
                             if m.startswith("fidelity_agreement_")):
            value = records[metric]
            ok = args.model_band_lo <= value <= args.model_band_hi
            checked += 1
            tag = "ok  " if ok else "FAIL"
            print(f"  [{tag}] {name} vs analytic {metric:36s} {value:7.4f} "
                  f"(band [{args.model_band_lo}, {args.model_band_hi}])")
            if not ok:
                failures.append(f"{name} {metric}: {value:.4f} outside "
                                f"[{args.model_band_lo}, {args.model_band_hi}]")

    if checked == 0:
        print("error: no speedup_* or fidelity_agreement_* metrics found")
        return 1
    if failures:
        print(f"\nfidelity agreement FAILED ({len(failures)} check(s)):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nfidelity agreement passed: {checked} check(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
