#!/usr/bin/env python3
"""Gate PRs on ratio-style benchmark records.

Compares a fresh micro-benchmark JSON (bench_common.hpp JsonRecords
format: a JSON array of {"bench", "metric", "value"}) against the
checked-in baseline under results/. Only machine-independent metrics
participate:

  *speedup*  -- higher is better (e.g. repair_vs_rebuild_speedup_512)
  *ratio*    -- lower is better  (e.g. cancel_heavy_vs_schedule_ratio_1024)

Both sides of such a metric come from the same process on the same
machine, so host speed cancels out and shared CI runners can't flip the
verdict with ordinary noise. Wall-clock records (_wall_seconds,
_per_second, counters) are ignored here -- they are uploaded as
artifacts for trajectory tracking, not gated.

The gate is deliberately loose: it fails only when a metric regresses by
more than --factor (default 2x), i.e. a structural slowdown such as an
O(n) path turning O(n^2), not a few-percent drift.

Usage: check_perf_gate.py BASELINE CURRENT [--factor 2.0]
Exit status: 0 all gated metrics within bounds, 1 otherwise.
"""

import argparse
import json
import sys


def direction(metric: str) -> str | None:
    """'higher'/'lower' for gated metrics, None for artifact-only ones."""
    if "speedup" in metric:
        return "higher"
    if "ratio" in metric:
        return "lower"
    return None


def load(path: str) -> dict[str, float]:
    with open(path) as f:
        records = json.load(f)
    return {r["metric"]: float(r["value"]) for r in records}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in results/BENCH_*.json")
    parser.add_argument("current", help="freshly generated records")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated regression factor (default 2.0)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    checked = 0
    for metric in sorted(baseline):
        sense = direction(metric)
        if sense is None:
            continue
        base = baseline[metric]
        if base <= 0.0:
            continue  # degenerate baseline; nothing meaningful to gate
        if metric not in current:
            failures.append(f"{metric}: missing from {args.current}")
            continue
        cur = current[metric]
        checked += 1
        if sense == "higher":
            ok = cur >= base / args.factor
            verdict = f"{cur:9.3f} vs baseline {base:9.3f} (min {base / args.factor:.3f})"
        else:
            ok = cur <= base * args.factor
            verdict = f"{cur:9.3f} vs baseline {base:9.3f} (max {base * args.factor:.3f})"
        tag = "ok  " if ok else "FAIL"
        print(f"  [{tag}] {metric:45s} {verdict}")
        if not ok:
            failures.append(f"{metric}: {verdict}")

    if checked == 0:
        print(f"error: no gated (speedup/ratio) metrics in {args.baseline}")
        return 1
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} metric(s) regressed >"
              f" {args.factor}x):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within {args.factor}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
