#!/usr/bin/env python3
"""Render the paper's figures from the bench binaries' CSV output.

Usage:
    for b in build/bench/fig*; do $b; done > results/full_bench_run.txt
    python3 scripts/plot_figures.py results/full_bench_run.txt -o results/

Each bench binary prints one or more CSV blocks introduced by a line
starting with '# <title>' followed by a header row; this script extracts
every block and renders it with matplotlib (PNG, one file per block).
Requires matplotlib; everything else in the repository is dependency-free.
"""

import argparse
import os
import re
import sys


def parse_blocks(path):
    """Yield (title, header, rows) for every CSV block in the bench output."""
    blocks = []
    with open(path) as f:
        lines = f.read().splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("# ") and i + 1 < len(lines) and "," in lines[i + 1]:
            title = line[2:].strip()
            header = lines[i + 1].split(",")
            rows = []
            j = i + 2
            while j < len(lines) and re.match(r"^-?[0-9.]+(,-?[0-9.eE+-]+)+$",
                                              lines[j]):
                rows.append([float(x) for x in lines[j].split(",")])
                j += 1
            if rows:
                blocks.append((title, header, rows))
            i = j
        else:
            i += 1
    return blocks


def slugify(title):
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug[:72]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="captured bench output")
    parser.add_argument("-o", "--outdir", default="results",
                        help="directory for rendered PNGs")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.outdir, exist_ok=True)
    blocks = parse_blocks(args.input)
    if not blocks:
        sys.exit(f"no CSV blocks found in {args.input}")

    for title, header, rows in blocks:
        xs = [r[0] for r in rows]
        fig, ax = plt.subplots(figsize=(6, 4))
        for col in range(1, len(header)):
            ax.plot(xs, [r[col] for r in rows], marker="o", markersize=3,
                    label=header[col])
        ax.set_xlabel(header[0])
        ax.set_title(title, fontsize=10)
        if header[0].startswith("size"):
            ax.set_xscale("log", base=2)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
        out = os.path.join(args.outdir, slugify(title) + ".png")
        fig.tight_layout()
        fig.savefig(out, dpi=140)
        plt.close(fig)
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
