#include "exp/harness.hpp"

#include <utility>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace lsl::exp {

SimHarness::SimHarness(std::uint64_t seed, Fidelity fidelity)
    : rng_(seed),
      fidelity_(fidelity),
      topo_(std::make_unique<net::Topology>(sim_, seed ^ 0xA5A5)) {
  if (fidelity_ == Fidelity::kFlow) {
    // Before any links exist: Topology then binds every future link to the
    // fluid engine as it is added.
    topo_->enable_fluid();
  }
}

net::NodeId SimHarness::add_host(std::string name, std::string site) {
  LSL_ASSERT_MSG(!deployed_, "cannot add hosts after deploy()");
  return topo_->add_node(std::move(name), std::move(site));
}

void SimHarness::add_link(net::NodeId a, net::NodeId b,
                          const net::LinkConfig& config) {
  LSL_ASSERT_MSG(!deployed_, "cannot add links after deploy()");
  topo_->add_duplex_link(a, b, config);
}

void SimHarness::deploy(const session::DepotConfig& uniform) {
  deploy([&uniform](net::NodeId) { return uniform; });
}

void SimHarness::deploy(
    const std::function<session::DepotConfig(net::NodeId)>& per_host) {
  LSL_ASSERT_MSG(!deployed_, "deploy() called twice");
  deployed_ = true;
  topo_->compute_routes();
  const std::size_t n = topo_->node_count();
  stacks_.reserve(n);
  depots_.reserve(n);
  for (net::NodeId id = 0; id < n; ++id) {
    stacks_.push_back(std::make_unique<tcp::TcpStack>(*topo_, id));
    depots_.push_back(
        std::make_unique<session::Depot>(*stacks_.back(), per_host(id)));
    depots_.back()->on_session_complete =
        [this](const session::SessionRecord& record) { on_complete(record); };
  }
}

tcp::TcpStack& SimHarness::stack(net::NodeId id) {
  LSL_ASSERT(id < stacks_.size());
  return *stacks_[id];
}

session::Depot& SimHarness::depot(net::NodeId id) {
  LSL_ASSERT(id < depots_.size());
  return *depots_[id];
}

SimHarness::Handle SimHarness::launch(net::NodeId src,
                                      const session::TransferSpec& spec) {
  return launch_traced(src, spec, nullptr);
}

SimHarness::Handle SimHarness::launch_traced(
    net::NodeId src, const session::TransferSpec& spec,
    const std::function<void(tcp::Connection&)>& on_source_conn) {
  LSL_ASSERT_MSG(deployed_, "launch before deploy()");
  Pending pending;
  pending.started = sim_.now();
  const session::TransferSpec bound = bind_session(spec, pending);
  auto source = session::LslSource::start(stack(src), bound, rng_);
  if (on_source_conn && source->connection() != nullptr) {
    on_source_conn(*source->connection());
  }
  if (pending.session_span != 0 && source->connection() != nullptr) {
    source->connection()->set_span_context(
        session::SessionIdHash{}(source->session_id()), pending.session_span);
    pending.source = source;
  }
  pending_.emplace(source->session_id(), pending);
  ++unfinished_;
  sources_.push_back(source);  // keep alive until the harness dies
  return Handle{source->session_id()};
}

SimHarness::Handle SimHarness::launch_reliable(
    net::NodeId src, const session::TransferSpec& spec,
    const session::RecoveryConfig& recovery,
    session::RouteProvider route_provider) {
  LSL_ASSERT_MSG(deployed_, "launch before deploy()");
  Pending pending;
  pending.started = sim_.now();
  const session::TransferSpec bound = bind_session(spec, pending);
  auto transfer = session::ReliableTransfer::start(
      stack(src), bound, recovery, rng_, std::move(route_provider));
  const session::SessionId id = transfer->session_id();
  pending_.emplace(id, pending);
  ++unfinished_;
  transfer->on_failed = [this, id] { on_reliable_failed(id); };
  reliable_.emplace(id, std::move(transfer));
  return Handle{id};
}

session::TransferSpec SimHarness::bind_session(
    const session::TransferSpec& spec, Pending& pending) {
  session::TransferSpec bound = spec;
  if (!bound.session_id.has_value()) {
    // The same single rng draw the endpoint would have made on our behalf.
    bound.session_id = session::SessionId::random(rng_);
  }
  pending.outcome.session_hash = session::SessionIdHash{}(*bound.session_id);
  if (obs::SpanRecorder* sr = obs::spans()) {
    pending.session_span =
        sr->begin(sim_.now(), obs::SpanKind::kSession,
                  session::SessionIdHash{}(*bound.session_id), 0, 0, "",
                  static_cast<double>(bound.payload_bytes));
  }
  return bound;
}

session::ReliableTransfer::Ptr SimHarness::reliable(
    const Handle& handle) const {
  const auto it = reliable_.find(handle.id);
  return it == reliable_.end() ? nullptr : it->second;
}

std::size_t SimHarness::open_connection_count() const {
  std::size_t total = 0;
  for (const auto& stack : stacks_) {
    total += stack->open_connections();
  }
  return total;
}

void SimHarness::on_complete(const session::SessionRecord& record) {
  const auto it = pending_.find(record.header.session_id);
  if (it == pending_.end() || it->second.done) {
    return;
  }
  Pending& p = it->second;
  p.done = true;
  p.outcome.completed = true;
  p.outcome.bytes = record.bytes;
  p.outcome.elapsed = record.completed_at - p.started;
  p.outcome.goodput = throughput_of(record.bytes, p.outcome.elapsed);
  if (const auto rel = reliable_.find(record.header.session_id);
      rel != reliable_.end()) {
    rel->second->notify_delivered();
    p.outcome.retries = rel->second->retries();
    p.outcome.recovered = rel->second->recovered();
    p.outcome.reroutes = static_cast<int>(rel->second->handovers());
  }
  if (p.session_span != 0) {
    if (p.source != nullptr && p.source->connection() != nullptr) {
      p.source->connection()->end_spans("completed");
    }
    p.source.reset();
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kSession, p.session_span,
              session::SessionIdHash{}(record.header.session_id), "completed",
              static_cast<double>(record.bytes));
    }
    p.session_span = 0;
  }
  LSL_ASSERT(unfinished_ > 0);
  --unfinished_;
}

void SimHarness::on_reliable_failed(const session::SessionId& id) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done) {
    return;
  }
  Pending& p = it->second;
  p.done = true;
  p.outcome.failed = true;
  if (const auto rel = reliable_.find(id); rel != reliable_.end()) {
    p.outcome.retries = rel->second->retries();
    p.outcome.reroutes = static_cast<int>(rel->second->handovers());
  }
  if (p.session_span != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kSession, p.session_span,
              session::SessionIdHash{}(id), "failed");
    }
    p.session_span = 0;
  }
  LSL_ASSERT(unfinished_ > 0);
  --unfinished_;
}

SimHarness::TransferOutcome SimHarness::wait(const Handle& handle,
                                             SimTime deadline) {
  const auto it = pending_.find(handle.id);
  LSL_ASSERT_MSG(it != pending_.end(), "unknown transfer handle");
  while (!it->second.done && sim_.now() < deadline) {
    if (!sim_.step()) {
      break;
    }
  }
  return it->second.outcome;
}

std::size_t SimHarness::wait_all(SimTime deadline) {
  while (unfinished_ > 0 && sim_.now() < deadline) {
    if (!sim_.step()) {
      break;
    }
  }
  return unfinished_;
}

SimHarness::TransferOutcome SimHarness::outcome(const Handle& handle) const {
  const auto it = pending_.find(handle.id);
  LSL_ASSERT_MSG(it != pending_.end(), "unknown transfer handle");
  return it->second.outcome;
}

SimHarness::TransferOutcome SimHarness::run_transfer(
    net::NodeId src, const session::TransferSpec& spec, SimTime deadline) {
  const Handle handle = launch(src, spec);
  auto outcome = wait(handle, deadline);
  // Drain connection teardown so back-to-back transfers start clean.
  sim_.run(sim_.now() + SimTime::seconds(2));
  return outcome;
}

}  // namespace lsl::exp
