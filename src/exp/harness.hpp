// Packet-level experiment harness: builds a topology, deploys a TCP stack
// and an LSL depot on every host, launches transfers, and collects
// end-to-end measurements matched by session id.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lsl/depot.hpp"
#include "lsl/endpoint.hpp"
#include "lsl/recovery.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// Data-plane fidelity for a harness run. kPacket simulates every segment;
/// kFlow carries payload on the fluid engine (flow::FluidNetwork) while
/// control packets (SYN/FIN/RST/window updates) still ride the packet
/// machinery, so sessions, recovery, rerouting, and fault injection behave
/// identically at either fidelity. See docs/flow_fidelity.md.
enum class Fidelity { kPacket, kFlow };

class SimHarness {
 public:
  explicit SimHarness(std::uint64_t seed,
                      Fidelity fidelity = Fidelity::kPacket);

  SimHarness(const SimHarness&) = delete;
  SimHarness& operator=(const SimHarness&) = delete;

  // ---- topology construction -------------------------------------------
  net::NodeId add_host(std::string name, std::string site = {});
  void add_link(net::NodeId a, net::NodeId b, const net::LinkConfig& config);

  /// Compute routes and start a TCP stack + depot on every host. Call once,
  /// after all hosts and links exist.
  void deploy(const session::DepotConfig& uniform);
  void deploy(
      const std::function<session::DepotConfig(net::NodeId)>& per_host);

  // ---- accessors ---------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Topology& topology() { return *topo_; }
  [[nodiscard]] tcp::TcpStack& stack(net::NodeId id);
  [[nodiscard]] session::Depot& depot(net::NodeId id);
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::size_t host_count() const { return stacks_.size(); }
  [[nodiscard]] Fidelity fidelity() const { return fidelity_; }

  // ---- transfers ----------------------------------------------------------
  struct TransferOutcome {
    bool completed = false;
    /// Recovery gave up (retries exhausted or recovery disabled). Distinct
    /// from !completed, which also covers deadline expiry.
    bool failed = false;
    /// Recovery attempts consumed (reliable launches only).
    int retries = 0;
    /// Completed, but only after at least one retry.
    bool recovered = false;
    /// Planned mid-transfer handovers taken (adaptive rerouting).
    int reroutes = 0;
    std::uint64_t bytes = 0;
    SimTime elapsed = SimTime::zero();
    Bandwidth goodput;
    /// SessionIdHash of the bound session id -- joins this outcome to span
    /// streams and mc::Invariants observations, which key by the same hash.
    std::uint64_t session_hash = 0;
  };

  /// Handle for a launched transfer.
  struct Handle {
    session::SessionId id;
  };

  /// Launch without blocking; completion is recorded internally.
  Handle launch(net::NodeId src, const session::TransferSpec& spec);

  /// Launch and attach a hook to the source's first-hop connection (tracing).
  Handle launch_traced(
      net::NodeId src, const session::TransferSpec& spec,
      const std::function<void(tcp::Connection&)>& on_source_conn);

  /// Launch under the session-recovery loop: failures are detected, retried
  /// with backoff, rerouted around blacklisted depots, and resumed from the
  /// sink's committed offset. Unicast, single-stream transfers only.
  Handle launch_reliable(net::NodeId src, const session::TransferSpec& spec,
                         const session::RecoveryConfig& recovery = {},
                         session::RouteProvider route_provider = nullptr);

  /// The recovery wrapper behind a reliable launch (null for plain launches).
  [[nodiscard]] session::ReliableTransfer::Ptr reliable(
      const Handle& handle) const;

  /// Total TCP connections still tracked across every host's stack; zero
  /// once all sessions have finished and teardown has drained.
  [[nodiscard]] std::size_t open_connection_count() const;

  /// Run the simulation until `handle` completes or `deadline` passes.
  TransferOutcome wait(const Handle& handle, SimTime deadline);

  /// Run until all launched transfers complete or `deadline` passes.
  /// Returns the number still unfinished.
  std::size_t wait_all(SimTime deadline);

  [[nodiscard]] TransferOutcome outcome(const Handle& handle) const;

  /// Convenience: launch + wait.
  TransferOutcome run_transfer(net::NodeId src,
                               const session::TransferSpec& spec,
                               SimTime deadline = SimTime::seconds(3600));

 private:
  struct Pending {
    SimTime started;
    bool done = false;
    TransferOutcome outcome;
    std::uint64_t session_span = 0;  ///< open kSession span (0 = none)
    /// Plain launches only: the source whose connection carries span
    /// context, so on_complete can close conn spans before the session span
    /// (children first). Reliable launches close theirs via the recovery
    /// wrapper instead.
    session::LslSource::Ptr source;
  };

  /// Ensure `spec` carries a session id and open its kSession root span;
  /// returns the bound spec. Pre-generating the id here consumes the same
  /// rng draw LslSource/ReliableTransfer would have used, so runs with and
  /// without span recording stay bitwise identical.
  session::TransferSpec bind_session(const session::TransferSpec& spec,
                                     Pending& pending);

  void on_complete(const session::SessionRecord& record);
  void on_reliable_failed(const session::SessionId& id);

  sim::Simulator sim_;
  Rng rng_;
  Fidelity fidelity_ = Fidelity::kPacket;
  std::unique_ptr<net::Topology> topo_;
  std::vector<std::unique_ptr<tcp::TcpStack>> stacks_;
  std::vector<std::unique_ptr<session::Depot>> depots_;
  std::unordered_map<session::SessionId, Pending, session::SessionIdHash>
      pending_;
  std::vector<session::LslSource::Ptr> sources_;
  std::unordered_map<session::SessionId, session::ReliableTransfer::Ptr,
                     session::SessionIdHash>
      reliable_;
  std::size_t unfinished_ = 0;
  bool deployed_ = false;
};

}  // namespace lsl::exp
