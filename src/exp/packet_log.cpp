#include "exp/packet_log.hpp"

#include <cstdio>
#include <set>
#include <utility>

namespace lsl::exp {

std::string PacketLogEntry::str() const {
  std::string flag_str;
  if (has(net::kFlagSyn)) {
    flag_str += 'S';
  }
  if (has(net::kFlagFin)) {
    flag_str += 'F';
  }
  if (has(net::kFlagRst)) {
    flag_str += 'R';
  }
  if (has(net::kFlagAck)) {
    flag_str += 'A';
  }
  if (flag_str.empty()) {
    flag_str.push_back('.');
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s %u:%u > %u:%u %s seq=%llu ack=%llu wnd=%llu len=%u",
                at.str().c_str(), src, src_port, dst, dst_port,
                flag_str.c_str(), static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(ack),
                static_cast<unsigned long long>(wnd), payload);
  return buf;
}

void PacketLog::attach(net::Link& link, sim::Simulator& simulator) {
  // Note: Link::set_deliver replaces the receiver, so we capture the
  // current one and forward after recording.
  auto forward = link.take_deliver();
  link.set_deliver([this, &simulator,
                    forward = std::move(forward)](net::Packet packet) {
    PacketLogEntry entry;
    entry.at = simulator.now();
    entry.src = packet.src;
    entry.dst = packet.dst;
    entry.src_port = packet.tcp.src_port;
    entry.dst_port = packet.tcp.dst_port;
    entry.seq = packet.tcp.seq;
    entry.ack = packet.tcp.ack;
    entry.wnd = packet.tcp.wnd;
    entry.flags = packet.tcp.flags;
    entry.payload = packet.payload_bytes;
    entries_.push_back(entry);
    forward(std::move(packet));
  });
}

std::vector<PacketLogEntry> PacketLog::filter(
    const std::function<bool(const PacketLogEntry&)>& pred) const {
  std::vector<PacketLogEntry> out;
  for (const auto& entry : entries_) {
    if (pred(entry)) {
      out.push_back(entry);
    }
  }
  return out;
}

std::size_t PacketLog::count_flag(net::TcpFlags flag) const {
  std::size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry.has(flag)) {
      ++count;
    }
  }
  return count;
}

std::size_t PacketLog::retransmitted_segments() const {
  // Key data segments by (flow, starting sequence); repeats are wire-level
  // retransmissions.
  std::set<std::tuple<net::NodeId, net::Port, net::Port, std::uint64_t>> seen;
  std::size_t retransmits = 0;
  for (const auto& entry : entries_) {
    if (entry.payload == 0) {
      continue;
    }
    const auto key =
        std::make_tuple(entry.src, entry.src_port, entry.dst_port, entry.seq);
    if (!seen.insert(key).second) {
      ++retransmits;
    }
  }
  return retransmits;
}

void PacketLog::print(std::ostream& os) const {
  for (const auto& entry : entries_) {
    os << entry.str() << '\n';
  }
}

}  // namespace lsl::exp
