// Packet-level trace capture: the simulator's tcpdump.
//
// The paper's section 3 analysis came from tcpdump captures at the senders;
// this logger provides the equivalent view inside the simulator. It taps a
// link's delivery path, records one entry per packet, and can render a
// human-readable trace or answer simple queries (used by tests to assert on
// protocol behaviour like handshake shape and retransmission ordering).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "util/time.hpp"

namespace lsl::exp {

struct PacketLogEntry {
  SimTime at;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  net::Port src_port = 0;
  net::Port dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t wnd = 0;
  std::uint8_t flags = 0;
  std::uint32_t payload = 0;

  [[nodiscard]] bool has(net::TcpFlags f) const { return (flags & f) != 0; }
  /// tcpdump-ish one-liner: "1.204s 0:49152 > 2:4911 SA seq=0 ack=1 len=0".
  [[nodiscard]] std::string str() const;
};

class PacketLog {
 public:
  PacketLog() = default;

  /// Tap `link`: every delivered packet is recorded, then handed to the
  /// link's original receiver. Call before traffic starts; multiple links
  /// can feed one log (entries interleave by delivery time).
  void attach(net::Link& link, sim::Simulator& simulator);

  [[nodiscard]] const std::vector<PacketLogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Entries matching a predicate.
  [[nodiscard]] std::vector<PacketLogEntry> filter(
      const std::function<bool(const PacketLogEntry&)>& pred) const;

  /// Count of entries carrying the given flag.
  [[nodiscard]] std::size_t count_flag(net::TcpFlags flag) const;

  /// Payload-carrying segments whose [seq, seq+len) range was already seen
  /// on this log (an on-the-wire view of retransmissions).
  [[nodiscard]] std::size_t retransmitted_segments() const;

  void print(std::ostream& os) const;

 private:
  std::vector<PacketLogEntry> entries_;
};

}  // namespace lsl::exp
