#include "exp/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace lsl::exp {

void for_each_trial(std::size_t n, const TrialOptions& options,
                    const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  std::size_t jobs =
      options.jobs == 0 ? ThreadPool::default_jobs() : options.jobs;
  jobs = std::min(jobs, n);
  if (jobs <= 1) {
    // The reference serial loop: no threads, but the same per-trial sink
    // scoping as the workers use. Without it, gauges would accumulate their
    // value (and therefore their high-water mark) ACROSS trials in serial
    // runs while parallel runs reset them per trial -- the merged output
    // would depend on --jobs. Scoping here and merging immediately in loop
    // order makes every jobs value reproduce this exact stream.
    obs::Registry& parent_registry = obs::Registry::global();
    obs::TraceRecorder* parent_tracer = obs::tracer();
    obs::SpanRecorder* parent_spans = obs::spans();
    for (std::size_t trial = 0; trial < n; ++trial) {
      std::unique_ptr<obs::Registry> trial_registry;
      std::unique_ptr<obs::TraceRecorder> trial_trace;
      std::unique_ptr<obs::SpanRecorder> trial_spans;
      {
        std::optional<obs::ScopedRegistry> registry_scope;
        std::optional<obs::ScopedTracer> tracer_scope;
        std::optional<obs::ScopedSpanRecorder> span_scope;
        if (options.scope_metrics) {
          trial_registry = std::make_unique<obs::Registry>();
          registry_scope.emplace(*trial_registry);
        }
        if (parent_tracer != nullptr) {
          trial_trace =
              std::make_unique<obs::TraceRecorder>(options.trace_capacity);
          tracer_scope.emplace(trial_trace.get());
        }
        if (parent_spans != nullptr) {
          trial_spans = std::make_unique<obs::SpanRecorder>(
              parent_spans->per_session_capacity());
          span_scope.emplace(trial_spans.get());
        }
        body(trial);
      }
      if (trial_registry != nullptr) {
        parent_registry.merge_from(*trial_registry);
      }
      if (trial_trace != nullptr) {
        obs::append_snapshot(*parent_tracer, *trial_trace);
      }
      if (trial_spans != nullptr) {
        parent_spans->append_from(*trial_spans);
      }
    }
    return;
  }

  std::size_t chunk = options.chunk;
  if (chunk == 0) {
    // Small enough to balance uneven trial costs, large enough that the
    // cursor bump is noise. ~8 claims per worker.
    chunk = std::max<std::size_t>(1, n / (jobs * 8));
  }

  // Caller-side observability sinks, captured before workers start.
  obs::Registry& parent_registry = obs::Registry::global();
  obs::TraceRecorder* parent_tracer = obs::tracer();
  obs::SpanRecorder* parent_spans = obs::spans();
  std::vector<std::unique_ptr<obs::Registry>> trial_registries;
  std::vector<std::unique_ptr<obs::TraceRecorder>> trial_traces;
  std::vector<std::unique_ptr<obs::SpanRecorder>> trial_spans;
  if (options.scope_metrics) {
    trial_registries.resize(n);
  }
  if (parent_tracer != nullptr) {
    trial_traces.resize(n);
  }
  if (parent_spans != nullptr) {
    trial_spans.resize(n);
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_trial = n;

  ThreadPool pool(jobs - 1);
  pool.run_on_all([&](std::size_t) {
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n || failed.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t trial = begin; trial < end; ++trial) {
        // Scope this trial's built-in instrumentation to private sinks so
        // the shared registry/recorder are never touched concurrently.
        std::optional<obs::ScopedRegistry> registry_scope;
        std::optional<obs::ScopedTracer> tracer_scope;
        std::optional<obs::ScopedSpanRecorder> span_scope;
        if (options.scope_metrics) {
          trial_registries[trial] = std::make_unique<obs::Registry>();
          registry_scope.emplace(*trial_registries[trial]);
        }
        if (parent_tracer != nullptr) {
          trial_traces[trial] =
              std::make_unique<obs::TraceRecorder>(options.trace_capacity);
          tracer_scope.emplace(trial_traces[trial].get());
        }
        if (parent_spans != nullptr) {
          trial_spans[trial] = std::make_unique<obs::SpanRecorder>(
              parent_spans->per_session_capacity());
          span_scope.emplace(trial_spans[trial].get());
        }
        try {
          body(trial);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          // Keep the lowest-index failure so the rethrown exception does
          // not depend on worker scheduling.
          if (trial < first_error_trial) {
            first_error_trial = trial;
            first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    }
  });

  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }

  // Post-hoc, ordered merge: totals and trace streams come out exactly as
  // the serial loop would have produced them.
  for (std::size_t trial = 0; trial < n; ++trial) {
    if (options.scope_metrics && trial_registries[trial] != nullptr) {
      parent_registry.merge_from(*trial_registries[trial]);
    }
    if (parent_tracer != nullptr && trial_traces[trial] != nullptr) {
      obs::append_snapshot(*parent_tracer, *trial_traces[trial]);
    }
    if (parent_spans != nullptr && trial_spans[trial] != nullptr) {
      parent_spans->append_from(*trial_spans[trial]);
    }
  }
}

}  // namespace lsl::exp
