// Parallel trial engine: run N independent trials across worker threads
// with results that are bitwise identical for any --jobs value.
//
// The determinism contract (see docs/performance.md):
//   * Each trial is a pure function of its trial index plus read-only shared
//     inputs. Anything stochastic must come from an Rng forked
//     deterministically from the trial index (or from state fixed before the
//     engine starts) -- never from a generator advanced across trials.
//   * The kernel stays single-threaded: a trial builds its own
//     sim::Simulator / topology / stacks. Parallelism exists only BETWEEN
//     trials, never inside one.
//   * Results are collected into a slot per trial and merged in trial
//     order after all workers finish, so aggregation never observes worker
//     scheduling.
//   * Built-in observability stays lock-free: each trial runs under a
//     per-trial obs::Registry (and, when tracing, a per-trial
//     obs::TraceRecorder) installed thread-locally; the engine folds the
//     per-trial registries/traces into the caller's in trial order.
//
// Scheduling is chunked, not work-stealing: workers claim fixed-size runs
// of consecutive trial indices off one atomic cursor. Chunking amortizes
// the cursor bump and keeps per-trial registries cache-warm; no stealing
// means no cross-worker ordering effects to reason about.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace lsl::exp {

struct TrialOptions {
  /// Total worker count, including the calling thread. 1 runs inline with
  /// no threads and no locking, but still under per-trial observability
  /// scoping (registry / trace / span sinks are reset each trial and merged
  /// in trial order), so serial and parallel runs emit identical streams --
  /// including gauge high-water marks. 0 means ThreadPool::default_jobs().
  std::size_t jobs = 1;
  /// Trials claimed per cursor bump (0 = pick from n and jobs).
  std::size_t chunk = 0;
  /// Run each trial under a private obs::Registry and fold them into the
  /// caller's registry in trial order afterwards. Turn off when the trial
  /// body does not touch built-in instrumentation and the copies would be
  /// pure overhead.
  bool scope_metrics = true;
  /// Capacity of each per-trial trace ring, when a tracer is installed.
  std::size_t trace_capacity = 1 << 12;
};

/// Runs body(trial) for every trial in [0, n). Blocks until all trials
/// finished. The first exception thrown by a trial body (in trial order) is
/// rethrown after the batch drains. body must treat shared state as
/// read-only; see the determinism contract above.
void for_each_trial(std::size_t n, const TrialOptions& options,
                    const std::function<void(std::size_t)>& body);

/// As for_each_trial, but collects one R per trial, returned in trial order.
template <typename R>
[[nodiscard]] std::vector<R> map_trials(
    std::size_t n, const TrialOptions& options,
    const std::function<R(std::size_t)>& body) {
  std::vector<R> results(n);
  for_each_trial(n, options,
                 [&](std::size_t trial) { results[trial] = body(trial); });
  return results;
}

}  // namespace lsl::exp
