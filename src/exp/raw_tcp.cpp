#include "exp/raw_tcp.hpp"

#include <memory>

#include "util/assert.hpp"

namespace lsl::exp {

namespace {

/// Keeps one sender pumping `bytes` into a socket, closing when done.
void drive_sender(const tcp::Connection::Ptr& conn, std::uint64_t bytes) {
  auto queued = std::make_shared<std::uint64_t>(0);
  const auto pump = [c = conn.get(), queued, bytes] {
    while (*queued < bytes) {
      const std::uint64_t n = c->write_synthetic(bytes - *queued);
      *queued += n;
      if (n == 0) {
        return;
      }
    }
    c->close();
  };
  conn->on_connected = pump;
  conn->on_writable = pump;
}

}  // namespace

RawTransferResult run_raw_transfer(sim::Simulator& sim, tcp::TcpStack& src,
                                   tcp::TcpStack& dst, std::uint64_t bytes,
                                   const tcp::TcpOptions& options,
                                   SimTime deadline, net::Port port) {
  RawTransferResult result;
  std::uint64_t received = 0;
  SimTime finished_at = SimTime::zero();

  dst.listen(port, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [&received, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      result.completed = true;
      finished_at = sim.now();
      c->close();
    };
  }, options);

  const SimTime start = sim.now();
  auto client = src.connect(dst.node_id(), port, options);
  drive_sender(client, bytes);

  while (sim.now() < deadline && !result.completed) {
    if (!sim.step()) {
      break;
    }
  }
  sim.run(sim.now() + SimTime::seconds(2));  // drain teardown

  result.bytes_delivered = received;
  result.elapsed = (result.completed ? finished_at : sim.now()) - start;
  result.sender_stats = client->stats();
  result.goodput = throughput_of(received, result.elapsed);
  dst.stop_listening(port);
  return result;
}

RawTransferResult run_parallel_transfer(sim::Simulator& sim,
                                        tcp::TcpStack& src,
                                        tcp::TcpStack& dst,
                                        std::uint64_t bytes,
                                        std::size_t streams,
                                        const tcp::TcpOptions& options,
                                        SimTime deadline,
                                        net::Port base_port) {
  LSL_ASSERT(streams > 0);
  RawTransferResult result;
  std::uint64_t received = 0;
  std::size_t done = 0;
  SimTime finished_at = SimTime::zero();

  for (std::size_t s = 0; s < streams; ++s) {
    const auto port = static_cast<net::Port>(base_port + s);
    dst.listen(port, [&](tcp::Connection::Ptr conn) {
      conn->on_readable = [&received, c = conn.get()] {
        received += c->read(c->readable_bytes()).n;
      };
      conn->on_eof = [&, c = conn.get()] {
        received += c->read(c->readable_bytes()).n;
        ++done;
        finished_at = sim.now();
        c->close();
      };
    }, options);
  }

  const SimTime start = sim.now();
  const std::uint64_t stripe = bytes / streams;
  std::vector<tcp::Connection::Ptr> clients;
  for (std::size_t s = 0; s < streams; ++s) {
    const std::uint64_t this_stripe =
        (s + 1 == streams) ? bytes - stripe * (streams - 1) : stripe;
    auto client =
        src.connect(dst.node_id(),
                    static_cast<net::Port>(base_port + s), options);
    drive_sender(client, this_stripe);
    clients.push_back(std::move(client));
  }

  while (sim.now() < deadline && done < streams) {
    if (!sim.step()) {
      break;
    }
  }
  sim.run(sim.now() + SimTime::seconds(2));

  result.completed = done == streams;
  result.bytes_delivered = received;
  result.elapsed = (result.completed ? finished_at : sim.now()) - start;
  result.sender_stats = clients.front()->stats();
  result.goodput = throughput_of(received, result.elapsed);
  for (std::size_t s = 0; s < streams; ++s) {
    dst.stop_listening(static_cast<net::Port>(base_port + s));
  }
  return result;
}

}  // namespace lsl::exp
