// Raw TCP bulk-transfer driver (no LSL layer): used for baselines such as
// PSockets-style parallel sockets and for SACK on/off ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::exp {

struct RawTransferResult {
  bool completed = false;
  std::uint64_t bytes_delivered = 0;
  SimTime elapsed = SimTime::zero();
  Bandwidth goodput;
  tcp::ConnectionStats sender_stats;
};

/// Drives one bulk transfer of `bytes` from `src` to a sink listening on
/// `dst` (port chosen internally), running the simulation until the
/// receiver sees EOF or `deadline` passes.
RawTransferResult run_raw_transfer(sim::Simulator& sim, tcp::TcpStack& src,
                                   tcp::TcpStack& dst, std::uint64_t bytes,
                                   const tcp::TcpOptions& options,
                                   SimTime deadline = SimTime::seconds(3600),
                                   net::Port port = 5001);

/// PSockets-style striping: `streams` parallel TCP connections each carry
/// bytes/streams; completion is when every stripe has fully arrived.
RawTransferResult run_parallel_transfer(
    sim::Simulator& sim, tcp::TcpStack& src, tcp::TcpStack& dst,
    std::uint64_t bytes, std::size_t streams, const tcp::TcpOptions& options,
    SimTime deadline = SimTime::seconds(3600), net::Port base_port = 6001);

}  // namespace lsl::exp
