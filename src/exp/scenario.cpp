#include "exp/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "fault/injector.hpp"
#include "nws/rescheduler.hpp"
#include "sched/route_advisor.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::exp {

namespace {

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

/// Parse "key=value" into its parts; returns false when '=' is absent.
bool split_kv(const std::string& token, std::string& key,
              std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string err_at(std::size_t line_no, const std::string& message) {
  return "line " + std::to_string(line_no) + ": " + message;
}

/// Named link presets (see the format comment in scenario.hpp). Later
/// key=value attributes on the same line override preset values.
bool apply_link_preset(const std::string& name, net::LinkConfig& config) {
  if (name == "wan2004") {
    // The paper's era: OC-3 WAN path with early-2000s loss.
    config.rate = Bandwidth::mbps(155);
    config.propagation_delay = SimTime::from_seconds(23e-3);
    config.queue_capacity_bytes = 8192 * kKiB;
    config.loss_rate = 5e-4;
  } else if (name == "wan10g") {
    // Lossy high-BDP long-haul (intercontinental RTT): past the CUBIC
    // crossover RTT of ~57 ms at this loss, so its response function beats
    // Reno's by ~1.8x.
    config.rate = Bandwidth::mbps(10000);
    config.propagation_delay = SimTime::from_seconds(80e-3);
    config.queue_capacity_bytes = 32768 * kKiB;
    config.loss_rate = 1e-4;
  } else if (name == "metro10g") {
    // Intra-metro 10 Gbit/s: ms-scale RTT, clean fiber.
    config.rate = Bandwidth::mbps(10000);
    config.propagation_delay = SimTime::from_seconds(1e-3);
    config.queue_capacity_bytes = 4096 * kKiB;
    config.loss_rate = 1e-5;
  } else if (name == "metro100g") {
    config.rate = Bandwidth::mbps(100000);
    config.propagation_delay = SimTime::from_seconds(1e-3);
    config.queue_capacity_bytes = 32768 * kKiB;
    config.loss_rate = 1e-6;
  } else {
    return false;
  }
  return true;
}

}  // namespace

ParseResult parse_scenario(const std::string& text) {
  Scenario scenario;
  std::map<std::string, bool> host_names;

  std::istringstream input(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];

    if (directive == "host") {
      if (tokens.size() < 2 || tokens.size() > 3) {
        return {std::nullopt, err_at(line_no, "host <name> [site]")};
      }
      ScenarioHost host;
      host.name = tokens[1];
      host.site = tokens.size() == 3 ? tokens[2] : tokens[1];
      if (host_names.contains(host.name)) {
        return {std::nullopt,
                err_at(line_no, "duplicate host '" + host.name + "'")};
      }
      host_names[host.name] = true;
      scenario.hosts.push_back(std::move(host));
      continue;
    }

    if (directive == "link") {
      if (tokens.size() < 3) {
        return {std::nullopt,
                err_at(line_no, "link <a> <b> [key=value...]")};
      }
      ScenarioLink link;
      link.a = tokens[1];
      link.b = tokens[2];
      for (const std::string& host : {link.a, link.b}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "preset") {
          if (!apply_link_preset(value, link.config)) {
            return {std::nullopt,
                    err_at(line_no, "unknown link preset '" + value + "'")};
          }
          continue;
        }
        if (!parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "rate") {
          link.config.rate = Bandwidth::mbps(number);
        } else if (key == "delay") {
          link.config.propagation_delay =
              SimTime::from_seconds(number * 1e-3);
        } else if (key == "queue") {
          link.config.queue_capacity_bytes =
              static_cast<std::uint64_t>(number * 1024);
        } else if (key == "loss") {
          link.config.loss_rate = number;
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown link attribute '" + key + "'")};
        }
      }
      scenario.links.push_back(std::move(link));
      continue;
    }

    if (directive == "depot") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "buffers") {
          scenario.depot.tcp = scenario.depot.tcp.with_buffers(
              static_cast<std::uint64_t>(number * 1024));
        } else if (key == "user") {
          scenario.depot.user_buffer_bytes =
              static_cast<std::uint64_t>(number * 1024);
        } else if (key == "max_sessions") {
          scenario.depot.max_sessions = static_cast<std::size_t>(number);
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown depot attribute '" + key + "'")};
        }
      }
      continue;
    }

    if (directive == "pin") {
      if (tokens.size() != 3) {
        return {std::nullopt, err_at(line_no, "pin <a> <b>")};
      }
      for (const std::string& host : {tokens[1], tokens[2]}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      scenario.pins.push_back(ScenarioPin{tokens[1], tokens[2]});
      continue;
    }

    if (directive == "fault") {
      if (tokens.size() < 2) {
        return {std::nullopt,
                err_at(line_no, "fault <kind> [hosts...] at=<s> ...")};
      }
      ScenarioFault f;
      const std::string& kind = tokens[1];
      std::size_t attr_start = 0;
      if (kind == "link-down" || kind == "brownout") {
        f.kind = kind == "brownout" ? fault::FaultKind::kLinkBrownout
                                    : fault::FaultKind::kLinkDown;
        if (tokens.size() < 4) {
          return {std::nullopt,
                  err_at(line_no, "fault " + kind + " <a> <b> at=<s> ...")};
        }
        f.a = tokens[2];
        f.b = tokens[3];
        for (const std::string& host : {f.a, f.b}) {
          if (!host_names.contains(host)) {
            return {std::nullopt,
                    err_at(line_no, "unknown host '" + host + "'")};
          }
        }
        attr_start = 4;
      } else if (kind == "depot-crash") {
        f.kind = fault::FaultKind::kDepotCrash;
        if (tokens.size() < 3) {
          return {std::nullopt,
                  err_at(line_no, "fault depot-crash <host> at=<s> ...")};
        }
        f.a = tokens[2];
        if (!host_names.contains(f.a)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + f.a + "'")};
        }
        attr_start = 3;
      } else if (kind == "nws-blackout") {
        f.kind = fault::FaultKind::kNwsBlackout;
        attr_start = 2;
      } else {
        return {std::nullopt,
                err_at(line_no, "unknown fault kind '" + kind + "'")};
      }
      bool have_at = false;
      for (std::size_t t = attr_start; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "at") {
          f.at_s = number;
          have_at = true;
        } else if (key == "for") {
          f.for_s = number;
        } else if (key == "loss" &&
                   f.kind == fault::FaultKind::kLinkBrownout) {
          f.loss = number;
        } else if (key == "factor" &&
                   f.kind == fault::FaultKind::kLinkBrownout) {
          if (number <= 0.0 || number > 1.0) {
            return {std::nullopt,
                    err_at(line_no, "brownout factor must be in (0, 1]")};
          }
          f.rate_factor = number;
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown fault attribute '" + key + "'")};
        }
      }
      if (!have_at) {
        return {std::nullopt, err_at(line_no, "fault needs at=<s>")};
      }
      scenario.faults.push_back(std::move(f));
      continue;
    }

    if (directive == "churn") {
      if (tokens.size() < 2) {
        return {std::nullopt,
                err_at(line_no, "churn <host> [mtbf=<s> mttr=<s> ...]")};
      }
      ScenarioChurn churn;
      churn.node = tokens[1];
      if (!host_names.contains(churn.node)) {
        return {std::nullopt,
                err_at(line_no, "unknown host '" + churn.node + "'")};
      }
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "mtbf") {
          churn.mtbf_s = number;
        } else if (key == "mttr") {
          churn.mttr_s = number;
        } else if (key == "start") {
          churn.start_s = number;
        } else if (key == "horizon") {
          churn.horizon_s = number;
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown churn attribute '" + key + "'")};
        }
      }
      if (churn.mtbf_s <= 0.0 || churn.mttr_s <= 0.0) {
        return {std::nullopt,
                err_at(line_no, "churn needs positive mtbf and mttr")};
      }
      scenario.churns.push_back(std::move(churn));
      continue;
    }

    if (directive == "recovery") {
      session::RecoveryConfig config;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        if (tokens[t] == "off") {
          config.enabled = false;
          continue;
        }
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "retries") {
          config.max_retries = static_cast<int>(number);
        } else if (key == "stall") {
          config.stall_timeout = SimTime::from_seconds(number);
        } else if (key == "backoff") {
          config.initial_backoff = SimTime::from_seconds(number * 1e-3);
        } else if (key == "max_backoff") {
          config.max_backoff = SimTime::from_seconds(number * 1e-3);
        } else if (key == "jitter") {
          config.backoff_jitter = number;
        } else {
          return {std::nullopt,
                  err_at(line_no,
                         "unknown recovery attribute '" + key + "'")};
        }
      }
      scenario.recovery = config;
      continue;
    }

    if (directive == "reroute") {
      ScenarioReroute reroute;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "interval") {
          reroute.interval_s = number;
        } else if (key == "hysteresis") {
          reroute.hysteresis = number;
        } else if (key == "dwell") {
          reroute.dwell_s = number;
        } else if (key == "penalty") {
          reroute.penalty_s = number;
        } else if (key == "sigma") {
          reroute.sigma = number;
        } else if (key == "epsilon") {
          reroute.epsilon = number;
        } else {
          return {std::nullopt,
                  err_at(line_no,
                         "unknown reroute attribute '" + key + "'")};
        }
      }
      if (reroute.interval_s <= 0.0) {
        return {std::nullopt,
                err_at(line_no, "reroute needs positive interval")};
      }
      scenario.reroute = reroute;
      continue;
    }

    if (directive == "transfer") {
      if (tokens.size() < 3) {
        return {std::nullopt,
                err_at(line_no, "transfer <src> <dst> [key=value...]")};
      }
      ScenarioTransfer transfer;
      transfer.src = tokens[1];
      transfer.dst = tokens[2];
      for (const std::string& host : {transfer.src, transfer.dst}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!split_kv(tokens[t], key, value)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "via") {
          std::istringstream hops(value);
          std::string hop;
          while (std::getline(hops, hop, ',')) {
            if (!host_names.contains(hop)) {
              return {std::nullopt,
                      err_at(line_no, "unknown via host '" + hop + "'")};
            }
            transfer.via.push_back(hop);
          }
        } else {
          double number = 0.0;
          if (!parse_double(value, number)) {
            return {std::nullopt,
                    err_at(line_no, "bad attribute '" + tokens[t] + "'")};
          }
          if (key == "size") {
            transfer.bytes = static_cast<std::uint64_t>(number * kMiB);
          } else if (key == "buffers") {
            transfer.buffer_bytes =
                static_cast<std::uint64_t>(number * 1024);
          } else {
            return {std::nullopt,
                    err_at(line_no,
                           "unknown transfer attribute '" + key + "'")};
          }
        }
      }
      if (transfer.bytes == 0) {
        return {std::nullopt, err_at(line_no, "transfer needs size=<MiB>")};
      }
      scenario.transfers.push_back(std::move(transfer));
      continue;
    }

    if (directive == "pool") {
      ScenarioPool pool;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "size") {
          pool.size = static_cast<std::size_t>(number);
        } else if (key == "epsilon") {
          pool.epsilon = number;
        } else if (key == "iterations") {
          pool.iterations = static_cast<std::size_t>(number);
        } else if (key == "cases") {
          pool.max_cases = static_cast<std::size_t>(number);
        } else if (key == "sizes") {
          pool.max_size_exp = static_cast<int>(number);
        } else if (key == "drift") {
          pool.drift_sigma = number;
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown pool attribute '" + key + "'")};
        }
      }
      if (pool.size < 2) {
        return {std::nullopt, err_at(line_no, "pool needs size >= 2")};
      }
      scenario.pool = pool;
      continue;
    }

    if (directive == "cca") {
      if (tokens.size() != 2) {
        return {std::nullopt,
                err_at(line_no, "cca needs one of reno|newreno|cubic|bbr")};
      }
      flow::Cca cca;
      if (!flow::parse_cca(tokens[1], cca)) {
        return {std::nullopt,
                err_at(line_no, "unknown cca '" + tokens[1] +
                                    "' (reno|newreno|cubic|bbr)")};
      }
      scenario.cca = cca;
      continue;
    }

    if (directive == "fidelity") {
      if (tokens.size() != 2) {
        return {std::nullopt,
                err_at(line_no, "fidelity needs exactly one of packet|flow")};
      }
      if (tokens[1] == "packet") {
        scenario.fidelity = Fidelity::kPacket;
      } else if (tokens[1] == "flow") {
        scenario.fidelity = Fidelity::kFlow;
      } else {
        return {std::nullopt,
                err_at(line_no,
                       "unknown fidelity '" + tokens[1] + "' (packet|flow)")};
      }
      continue;
    }

    return {std::nullopt,
            err_at(line_no, "unknown directive '" + directive + "'")};
  }

  // A pool scenario synthesizes its own grid; it needs no explicit topology.
  if (!scenario.pool.has_value()) {
    if (scenario.hosts.size() < 2) {
      return {std::nullopt, "scenario needs at least two hosts"};
    }
    if (scenario.links.empty()) {
      return {std::nullopt, "scenario has no links"};
    }
  }
  return {std::move(scenario), {}};
}

nws::TruthFn topology_truth(net::Topology& topology) {
  return [&topology](std::size_t from, std::size_t to) -> Bandwidth {
    if (from == to) {
      return Bandwidth::mbps(0);
    }
    // Walk the forwarding tables, bottlenecking on each hop's effective
    // rate. route_for yields the outgoing link; the next node is the
    // neighbour that link reaches.
    double bottleneck_bps = std::numeric_limits<double>::infinity();
    net::NodeId cur = static_cast<net::NodeId>(from);
    const net::NodeId dst = static_cast<net::NodeId>(to);
    for (std::size_t hops = 0; cur != dst; ++hops) {
      if (hops >= topology.node_count()) {
        return Bandwidth::bps(0);  // forwarding loop; treat as unreachable
      }
      net::Link* out = topology.node(cur).route_for(dst);
      if (out == nullptr) {
        return Bandwidth::bps(0);
      }
      const net::LinkConfig& config = out->config();
      bottleneck_bps =
          std::min(bottleneck_bps, config.rate.bits_per_second() *
                                       (1.0 - config.loss_rate));
      net::NodeId next = net::kInvalidNode;
      for (net::NodeId candidate = 0; candidate < topology.node_count();
           ++candidate) {
        if (candidate != cur &&
            topology.link_between(cur, candidate) == out) {
          next = candidate;
          break;
        }
      }
      if (next == net::kInvalidNode) {
        return Bandwidth::bps(0);
      }
      cur = next;
    }
    return Bandwidth::bps(std::max(bottleneck_bps, 0.0));
  };
}

std::vector<ScenarioOutcome> run_scenario(
    const Scenario& scenario, std::uint64_t seed,
    SimTime per_transfer_deadline, sim::KernelProfile* profile_out,
    std::size_t* leaked_connections_out,
    const std::function<void(SimHarness&)>& on_harness) {
  SimHarness harness(seed,
                     scenario.fidelity.value_or(Fidelity::kPacket));
  if (on_harness) {
    on_harness(harness);
  }
  if (profile_out != nullptr) {
    harness.simulator().set_profiling(true);
  }
  std::map<std::string, net::NodeId> ids;
  for (const auto& host : scenario.hosts) {
    ids[host.name] = harness.add_host(host.name, host.site);
  }
  for (const auto& link : scenario.links) {
    harness.add_link(ids.at(link.a), ids.at(link.b), link.config);
  }
  // A `cca` directive applies to every TCP endpoint: transfers below, and
  // the depot relays' store-and-forward hops here.
  session::DepotConfig depot = scenario.depot;
  if (scenario.cca.has_value()) {
    depot.tcp = depot.tcp.with_cca(*scenario.cca);
  }
  harness.deploy(depot);
  auto& topo = harness.topology();
  for (const auto& pin : scenario.pins) {
    const auto a = ids.at(pin.a);
    const auto b = ids.at(pin.b);
    net::Link* forward = topo.link_between(a, b);
    net::Link* backward = topo.link_between(b, a);
    LSL_ASSERT_MSG(forward != nullptr && backward != nullptr,
                   "pin requires a direct link between the pair");
    topo.node(a).set_route(b, forward);
    topo.node(b).set_route(a, backward);
  }

  // Faults: resolve host names, expand churn processes (seeded from the run
  // seed so reruns replay bit-for-bit), and schedule the plan.
  const bool faulty = !scenario.faults.empty() || !scenario.churns.empty();
  fault::FaultInjector injector(harness.simulator(), topo);
  if (faulty) {
    injector.set_depot_control([&harness](net::NodeId node, bool up) {
      if (up) {
        harness.depot(node).restart();
      } else {
        harness.depot(node).shutdown();
      }
    });
    fault::FaultPlan plan;
    for (const auto& f : scenario.faults) {
      fault::FaultSpec spec;
      spec.kind = f.kind;
      spec.at = SimTime::from_seconds(f.at_s);
      spec.duration = SimTime::from_seconds(f.for_s);
      spec.loss = f.loss;
      spec.rate_factor = f.rate_factor;
      if (f.kind == fault::FaultKind::kDepotCrash) {
        spec.node = ids.at(f.a);
      } else if (f.kind != fault::FaultKind::kNwsBlackout) {
        spec.link_a = ids.at(f.a);
        spec.link_b = ids.at(f.b);
      }
      plan.add(spec);
    }
    Rng churn_rng(seed ^ 0x9E3779B97F4A7C15ULL);
    for (const auto& c : scenario.churns) {
      fault::ChurnSpec churn;
      churn.node = ids.at(c.node);
      churn.mtbf = SimTime::from_seconds(c.mtbf_s);
      churn.mttr = SimTime::from_seconds(c.mttr_s);
      churn.start = SimTime::from_seconds(c.start_s);
      churn.horizon = SimTime::from_seconds(c.horizon_s);
      plan.add_churn(churn, churn_rng);
    }
    injector.schedule(plan);
  }

  // Mid-transfer adaptive rerouting: an NWS measure -> schedule loop plus a
  // RouteAdvisor that may hand live transfers over to better paths. The
  // monitor's ground truth is the packet topology itself, so injected link
  // faults (rate brownouts especially) drift the forecasts that drive it.
  std::unique_ptr<sched::RouteAdvisor> advisor;
  std::unique_ptr<nws::Rescheduler> rescheduler;
  if (scenario.reroute.has_value()) {
    const ScenarioReroute& rr = *scenario.reroute;
    std::vector<std::string> sites;
    sites.reserve(scenario.hosts.size());
    for (const auto& host : scenario.hosts) {
      sites.push_back(host.site);
    }
    sched::RouteAdvisorConfig advisor_config;
    advisor_config.hysteresis = rr.hysteresis;
    advisor_config.min_dwell = SimTime::from_seconds(rr.dwell_s);
    advisor_config.switch_penalty = SimTime::from_seconds(rr.penalty_s);
    advisor = std::make_unique<sched::RouteAdvisor>(advisor_config);
    nws::NoiseModel noise;
    noise.lognormal_sigma = rr.sigma;
    sched::SchedulerOptions options;
    options.epsilon = rr.epsilon;
    rescheduler = std::make_unique<nws::Rescheduler>(
        harness.simulator(),
        nws::PerformanceMonitor(std::move(sites), noise,
                                seed ^ 0xC2B2AE3D27D4EB4FULL),
        topology_truth(topo), SimTime::from_seconds(rr.interval_s),
        options, /*on_schedule=*/nullptr);
    rescheduler->subscribe(
        [&advisor, &harness](const sched::Scheduler& scheduler,
                             std::size_t /*changed_edges*/) {
          advisor->on_schedule(scheduler, harness.simulator().now());
        });
    injector.set_nws_control([&rescheduler](bool blackout) {
      rescheduler->monitor().set_blackout(blackout);
    });
    rescheduler->start();
  }

  // Any fault (or the reroute loop) routes transfers through the recovery
  // loop so failures are detected and reported instead of hanging to the
  // deadline -- and so planned handovers have the resume machinery to ride;
  // retries happen only when the scenario opted in with `recovery`.
  const bool reliably =
      scenario.recovery.has_value() || faulty || scenario.reroute.has_value();
  session::RecoveryConfig recovery;
  if (scenario.recovery.has_value()) {
    recovery = *scenario.recovery;
  } else {
    recovery.enabled = false;
  }

  std::vector<ScenarioOutcome> outcomes;
  for (const auto& transfer : scenario.transfers) {
    session::TransferSpec spec;
    spec.dst = ids.at(transfer.dst);
    for (const auto& hop : transfer.via) {
      spec.via.push_back(ids.at(hop));
    }
    spec.payload_bytes = transfer.bytes;
    spec.tcp = tcp::TcpOptions{}.with_buffers(transfer.buffer_bytes);
    if (scenario.cca.has_value()) {
      spec.tcp = spec.tcp.with_cca(*scenario.cca);
    }
    ScenarioOutcome record;
    record.transfer = transfer;
    const SimTime deadline =
        harness.simulator().now() + per_transfer_deadline;
    if (reliably) {
      const auto handle =
          harness.launch_reliable(ids.at(transfer.src), spec, recovery);
      std::uint64_t watch_token = 0;
      if (advisor != nullptr) {
        const session::ReliableTransfer::Ptr rt = harness.reliable(handle);
        const net::NodeId src_id = ids.at(transfer.src);
        const net::NodeId dst_id = spec.dst;
        const std::uint64_t total = spec.payload_bytes;
        watch_token = advisor->watch(
            harness.simulator().now(),
            [rt, src_id, dst_id, total] {
              sched::SessionView view;
              view.src = src_id;
              view.dst = dst_id;
              view.session_tag = session::SessionIdHash{}(rt->session_id());
              view.current_via = rt->current_via();
              view.blacklist = rt->blacklist();
              // Zero remaining bytes = skip this tick: done, draining
              // elsewhere, or the source already finished sending.
              view.remaining_bytes =
                  rt->reroutable() ? total - rt->committed_offset() : 0;
              return view;
            },
            [rt](const sched::RouteAdvice& advice) {
              return rt->reroute_to(advice.new_via);
            });
      }
      record.outcome = harness.wait(handle, deadline);
      if (advisor != nullptr) {
        advisor->unwatch(watch_token);
      }
      // Drain connection teardown so back-to-back transfers start clean.
      harness.simulator().run(harness.simulator().now() +
                              SimTime::seconds(2));
    } else {
      record.outcome =
          harness.run_transfer(ids.at(transfer.src), spec, deadline);
    }
    outcomes.push_back(std::move(record));
  }
  if (rescheduler != nullptr) {
    rescheduler->stop();
  }
  if (leaked_connections_out != nullptr) {
    // TIME_WAIT linger is 500 ms; anything alive after this drain leaked.
    harness.simulator().run(harness.simulator().now() + SimTime::seconds(5));
    *leaked_connections_out = harness.open_connection_count();
    if (*leaked_connections_out > 0) {
      for (net::NodeId id = 0; id < harness.host_count(); ++id) {
        harness.stack(id).for_each_connection([id](tcp::Connection& conn) {
          LSL_WARN("leaked connection on node %u: %s", id,
                   conn.debug_string().c_str());
        });
      }
    }
  }
  if (profile_out != nullptr) {
    *profile_out = harness.simulator().profile();
  }
  return outcomes;
}

}  // namespace lsl::exp
