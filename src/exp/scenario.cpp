#include "exp/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace lsl::exp {

namespace {

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

/// Parse "key=value" into its parts; returns false when '=' is absent.
bool split_kv(const std::string& token, std::string& key,
              std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string err_at(std::size_t line_no, const std::string& message) {
  return "line " + std::to_string(line_no) + ": " + message;
}

}  // namespace

ParseResult parse_scenario(const std::string& text) {
  Scenario scenario;
  std::map<std::string, bool> host_names;

  std::istringstream input(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];

    if (directive == "host") {
      if (tokens.size() < 2 || tokens.size() > 3) {
        return {std::nullopt, err_at(line_no, "host <name> [site]")};
      }
      ScenarioHost host;
      host.name = tokens[1];
      host.site = tokens.size() == 3 ? tokens[2] : tokens[1];
      if (host_names.contains(host.name)) {
        return {std::nullopt,
                err_at(line_no, "duplicate host '" + host.name + "'")};
      }
      host_names[host.name] = true;
      scenario.hosts.push_back(std::move(host));
      continue;
    }

    if (directive == "link") {
      if (tokens.size() < 3) {
        return {std::nullopt,
                err_at(line_no, "link <a> <b> [key=value...]")};
      }
      ScenarioLink link;
      link.a = tokens[1];
      link.b = tokens[2];
      for (const std::string& host : {link.a, link.b}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "rate") {
          link.config.rate = Bandwidth::mbps(number);
        } else if (key == "delay") {
          link.config.propagation_delay =
              SimTime::from_seconds(number * 1e-3);
        } else if (key == "queue") {
          link.config.queue_capacity_bytes =
              static_cast<std::uint64_t>(number * 1024);
        } else if (key == "loss") {
          link.config.loss_rate = number;
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown link attribute '" + key + "'")};
        }
      }
      scenario.links.push_back(std::move(link));
      continue;
    }

    if (directive == "depot") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        double number = 0.0;
        if (!split_kv(tokens[t], key, value) ||
            !parse_double(value, number)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "buffers") {
          scenario.depot.tcp = scenario.depot.tcp.with_buffers(
              static_cast<std::uint64_t>(number * 1024));
        } else if (key == "user") {
          scenario.depot.user_buffer_bytes =
              static_cast<std::uint64_t>(number * 1024);
        } else if (key == "max_sessions") {
          scenario.depot.max_sessions = static_cast<std::size_t>(number);
        } else {
          return {std::nullopt,
                  err_at(line_no, "unknown depot attribute '" + key + "'")};
        }
      }
      continue;
    }

    if (directive == "pin") {
      if (tokens.size() != 3) {
        return {std::nullopt, err_at(line_no, "pin <a> <b>")};
      }
      for (const std::string& host : {tokens[1], tokens[2]}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      scenario.pins.push_back(ScenarioPin{tokens[1], tokens[2]});
      continue;
    }

    if (directive == "transfer") {
      if (tokens.size() < 3) {
        return {std::nullopt,
                err_at(line_no, "transfer <src> <dst> [key=value...]")};
      }
      ScenarioTransfer transfer;
      transfer.src = tokens[1];
      transfer.dst = tokens[2];
      for (const std::string& host : {transfer.src, transfer.dst}) {
        if (!host_names.contains(host)) {
          return {std::nullopt,
                  err_at(line_no, "unknown host '" + host + "'")};
        }
      }
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!split_kv(tokens[t], key, value)) {
          return {std::nullopt,
                  err_at(line_no, "bad attribute '" + tokens[t] + "'")};
        }
        if (key == "via") {
          std::istringstream hops(value);
          std::string hop;
          while (std::getline(hops, hop, ',')) {
            if (!host_names.contains(hop)) {
              return {std::nullopt,
                      err_at(line_no, "unknown via host '" + hop + "'")};
            }
            transfer.via.push_back(hop);
          }
        } else {
          double number = 0.0;
          if (!parse_double(value, number)) {
            return {std::nullopt,
                    err_at(line_no, "bad attribute '" + tokens[t] + "'")};
          }
          if (key == "size") {
            transfer.bytes = static_cast<std::uint64_t>(number * kMiB);
          } else if (key == "buffers") {
            transfer.buffer_bytes =
                static_cast<std::uint64_t>(number * 1024);
          } else {
            return {std::nullopt,
                    err_at(line_no,
                           "unknown transfer attribute '" + key + "'")};
          }
        }
      }
      if (transfer.bytes == 0) {
        return {std::nullopt, err_at(line_no, "transfer needs size=<MiB>")};
      }
      scenario.transfers.push_back(std::move(transfer));
      continue;
    }

    return {std::nullopt,
            err_at(line_no, "unknown directive '" + directive + "'")};
  }

  if (scenario.hosts.size() < 2) {
    return {std::nullopt, "scenario needs at least two hosts"};
  }
  if (scenario.links.empty()) {
    return {std::nullopt, "scenario has no links"};
  }
  return {std::move(scenario), {}};
}

std::vector<ScenarioOutcome> run_scenario(const Scenario& scenario,
                                          std::uint64_t seed,
                                          SimTime per_transfer_deadline,
                                          sim::KernelProfile* profile_out) {
  SimHarness harness(seed);
  if (profile_out != nullptr) {
    harness.simulator().set_profiling(true);
  }
  std::map<std::string, net::NodeId> ids;
  for (const auto& host : scenario.hosts) {
    ids[host.name] = harness.add_host(host.name, host.site);
  }
  for (const auto& link : scenario.links) {
    harness.add_link(ids.at(link.a), ids.at(link.b), link.config);
  }
  harness.deploy(scenario.depot);
  auto& topo = harness.topology();
  for (const auto& pin : scenario.pins) {
    const auto a = ids.at(pin.a);
    const auto b = ids.at(pin.b);
    net::Link* forward = topo.link_between(a, b);
    net::Link* backward = topo.link_between(b, a);
    LSL_ASSERT_MSG(forward != nullptr && backward != nullptr,
                   "pin requires a direct link between the pair");
    topo.node(a).set_route(b, forward);
    topo.node(b).set_route(a, backward);
  }

  std::vector<ScenarioOutcome> outcomes;
  for (const auto& transfer : scenario.transfers) {
    session::TransferSpec spec;
    spec.dst = ids.at(transfer.dst);
    for (const auto& hop : transfer.via) {
      spec.via.push_back(ids.at(hop));
    }
    spec.payload_bytes = transfer.bytes;
    spec.tcp = tcp::TcpOptions{}.with_buffers(transfer.buffer_bytes);
    ScenarioOutcome record;
    record.transfer = transfer;
    record.outcome = harness.run_transfer(ids.at(transfer.src), spec,
                                          harness.simulator().now() +
                                              per_transfer_deadline);
    outcomes.push_back(std::move(record));
  }
  if (profile_out != nullptr) {
    *profile_out = harness.simulator().profile();
  }
  return outcomes;
}

}  // namespace lsl::exp
