// Text scenario files: a small declarative format describing a topology,
// depot configuration, and a list of transfers, so experiments can be run
// from the command line (tools/lslsim) without writing C++.
//
//   # hosts: name and site
//   host ash.ucsb.edu ucsb.edu
//   host depot.denver  core
//   host bell.uiuc.edu uiuc.edu
//
//   # duplex links: endpoints plus key=value attributes
//   link ash.ucsb.edu depot.denver   rate=155 delay=23 queue=8192 loss=1e-5
//   link depot.denver bell.uiuc.edu  rate=155 delay=22.5 queue=8192 loss=5e-4
//   link ash.ucsb.edu bell.uiuc.edu  rate=155 delay=35 queue=8192 loss=5e-4
//
//   # or start from a named preset and override selectively; presets:
//   #   wan2004   155 Mbit/s, 23 ms, 8 MiB queue, loss 5e-4 (the paper's era)
//   #   wan10g    10 Gbit/s, 80 ms, 32 MiB queue, loss 1e-4 (lossy high-BDP)
//   #   metro10g  10 Gbit/s, 1 ms, 4 MiB queue, loss 1e-5 (intra-metro)
//   #   metro100g 100 Gbit/s, 1 ms, 32 MiB queue, loss 1e-6
//   link ash.ucsb.edu bell.uiuc.edu  preset=wan10g delay=35
//
//   # optional: depot tuning (applies to every host)
//   depot buffers=8192 user=16384 max_sessions=64
//
//   # pin a pair's routing onto their direct link (both directions)
//   pin ash.ucsb.edu bell.uiuc.edu
//
//   # transfers run in order; via is a comma-separated depot list
//   transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192
//   transfer ash.ucsb.edu bell.uiuc.edu size=64 buffers=8192 via=depot.denver
//
//   # deterministic faults; `for` heals the fault after that long (omit it
//   # for a permanent fault)
//   fault link-down ash.ucsb.edu depot.denver at=5 for=10
//   fault brownout depot.denver bell.uiuc.edu at=5 for=10 loss=0.3
//   # factor throttles the pair's link rate (what NWS probes measure)
//   fault brownout depot.denver bell.uiuc.edu at=5 for=10 loss=0 factor=0.05
//   fault depot-crash depot.denver at=5 for=10
//   fault nws-blackout at=5 for=60
//
//   # seeded crash/repair renewal process for one depot
//   churn depot.denver mtbf=30 mttr=2 start=0 horizon=600
//
//   # run transfers under the session-recovery loop; `recovery off` keeps
//   # failure detection (failed transfers are reported promptly) but never
//   # retries. backoff/max_backoff in ms, stall in s.
//   recovery retries=8 stall=10 backoff=250 max_backoff=10000 jitter=0.25
//
//   # mid-transfer adaptive rerouting: an NWS measure->schedule loop runs
//   # every `interval` seconds and a RouteAdvisor may hand live transfers
//   # over to a better path (hysteresis/dwell/penalty tune the rule;
//   # sigma is monitor measurement noise, epsilon the scheduler damping)
//   reroute interval=5 hysteresis=0.15 dwell=10 penalty=1 sigma=0.05
//
//   # alternative to an explicit topology: a synthetic PlanetLab-style pool
//   # speedup sweep (lslsim runs run_speedup_sweep over ~size hosts)
//   pool size=1024 epsilon=0.25 iterations=2 cases=400 sizes=4 drift=0.0
//
//   # congestion control for every transfer and depot relay:
//   # reno | newreno (default) | cubic | bbr
//   cca cubic
//
//   # data-plane fidelity: `packet` (default) simulates every segment;
//   # `flow` carries payload on the fluid engine -- same sessions, depots,
//   # recovery, and rerouting, at a fraction of the event count. In pool
//   # scenarios this selects simulated (rather than analytic) measurement.
//   fidelity flow
//
// Units: rate in Mbit/s, delay in ms (one way), queue/buffers/user in KiB,
// size in MiB, loss as a probability, fault/churn times in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "fault/plan.hpp"
#include "flow/tcp_model.hpp"
#include "nws/monitor.hpp"

namespace lsl::exp {

struct ScenarioHost {
  std::string name;
  std::string site;
};

struct ScenarioLink {
  std::string a;
  std::string b;
  net::LinkConfig config;
};

struct ScenarioPin {
  std::string a;
  std::string b;
};

struct ScenarioTransfer {
  std::string src;
  std::string dst;
  std::vector<std::string> via;
  std::uint64_t bytes = 0;
  std::uint64_t buffer_bytes = 64 * kKiB;
};

/// One timed fault, with hosts still by name (resolved at run time).
struct ScenarioFault {
  fault::FaultKind kind = fault::FaultKind::kLinkDown;
  double at_s = 0.0;
  double for_s = 0.0;  ///< 0 = permanent
  std::string a;       ///< link endpoint, or the depot host
  std::string b;       ///< second link endpoint (link faults only)
  double loss = 0.3;   ///< brownout loss probability
  double rate_factor = 1.0;  ///< brownout residual-rate multiplier
};

/// Seeded MTBF/MTTR crash process for one depot (see fault::ChurnSpec).
struct ScenarioChurn {
  std::string node;
  double mtbf_s = 60.0;
  double mttr_s = 5.0;
  double start_s = 0.0;
  double horizon_s = 600.0;
};

/// A `pool` directive: instead of an explicit host/link topology, run a
/// speedup sweep over a synthetic PlanetLab-style pool of roughly `size`
/// hosts (the control-plane scaling path -- see lslsim --pool-size).
struct ScenarioPool {
  std::size_t size = 142;
  /// Scheduler epsilon; negative = use the grid's calibrated sweep_epsilon.
  double epsilon = -1.0;
  std::size_t iterations = 2;
  std::size_t max_cases = 400;
  int max_size_exp = 4;       ///< transfer sizes 1 MiB << 0..max_size_exp-1
  double drift_sigma = 0.0;   ///< stale-matrix lognormal drift
};

/// A `reroute` directive: run the NWS measure -> schedule loop during the
/// scenario and let a sched::RouteAdvisor hand in-flight transfers over to
/// a better path mid-transfer (the PR 5 tentpole, end to end).
struct ScenarioReroute {
  double interval_s = 5.0;   ///< rescheduler tick cadence
  double hysteresis = 0.15;  ///< required fractional improvement
  double dwell_s = 10.0;     ///< min time between route changes
  double penalty_s = 1.0;    ///< fixed handover cost charged to candidates
  double sigma = 0.05;       ///< monitor lognormal measurement noise
  double epsilon = 0.0;      ///< scheduler edge-equivalence damping
};

struct Scenario {
  std::vector<ScenarioHost> hosts;
  std::vector<ScenarioLink> links;
  std::vector<ScenarioPin> pins;
  session::DepotConfig depot;
  std::vector<ScenarioTransfer> transfers;
  std::vector<ScenarioFault> faults;
  std::vector<ScenarioChurn> churns;
  /// Present when a `recovery` directive appeared. Transfers run under the
  /// recovery loop whenever this is set or any fault/churn exists; without
  /// a directive the loop runs detection-only (enabled = false).
  std::optional<session::RecoveryConfig> recovery;
  /// Present when a `reroute` directive appeared. Implies transfers run
  /// under the recovery loop (planned handovers ride its resume machinery).
  std::optional<ScenarioReroute> reroute;
  /// Present when a `pool` directive appeared. A pool scenario needs no
  /// hosts or links -- lslsim runs a synthetic-grid speedup sweep instead
  /// of the packet-level transfer list.
  std::optional<ScenarioPool> pool;
  /// Present when a `fidelity` directive appeared; run_scenario defaults to
  /// packet fidelity otherwise. Pool sweeps read this too: unset means
  /// analytic measurement, set means per-case simulation at that fidelity.
  std::optional<Fidelity> fidelity;
  /// Present when a `cca` directive appeared: the congestion-control
  /// algorithm applied to every transfer's endpoints and depot relays
  /// (lslsim --cca= overrides it). Unset = the NewReno default.
  std::optional<flow::Cca> cca;
};

struct ParseResult {
  std::optional<Scenario> scenario;
  std::string error;  ///< set when scenario is empty; includes line number

  [[nodiscard]] bool ok() const { return scenario.has_value(); }
};

/// Parse scenario text (see format above).
[[nodiscard]] ParseResult parse_scenario(const std::string& text);

/// Result of one scenario transfer.
struct ScenarioOutcome {
  ScenarioTransfer transfer;
  SimHarness::TransferOutcome outcome;
};

/// Ground truth for the monitor over a packet topology: end-to-end
/// bandwidth of (i, j) is the bottleneck effective rate -- link rate
/// discounted by loss -- along the currently routed path, zero when no
/// route exists. Injected link faults therefore show up in NWS probes and
/// drift the forecasts, which is what drives the RouteAdvisor.
[[nodiscard]] nws::TruthFn topology_truth(net::Topology& topology);

/// Build the harness, run every transfer in order, return the outcomes.
/// When `profile_out` is non-null, kernel profiling (wall-clock sampling)
/// is enabled for the run and the final profile is stored there. When
/// `leaked_connections_out` is non-null, teardown is drained after the last
/// transfer and the number of TCP connections still alive anywhere is
/// stored there (nonzero = a leak). `on_harness` (when set) runs right
/// after harness construction, before any hosts or transfers exist -- the
/// model checker uses it to install its ChoiceHook on the simulator.
[[nodiscard]] std::vector<ScenarioOutcome> run_scenario(
    const Scenario& scenario, std::uint64_t seed,
    SimTime per_transfer_deadline = SimTime::seconds(3600),
    sim::KernelProfile* profile_out = nullptr,
    std::size_t* leaked_connections_out = nullptr,
    const std::function<void(SimHarness&)>& on_harness = nullptr);

}  // namespace lsl::exp
