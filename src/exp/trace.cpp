#include "exp/trace.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace lsl::exp {

void SeqTrace::attach(tcp::Connection& conn, SimTime origin) {
  origin_ = origin;
  samples_.clear();
  conn.on_ack_advance = [this](SimTime t, std::uint64_t bytes) {
    add_sample(t - origin_, bytes);
  };
}

void SeqTrace::add_sample(SimTime t, std::uint64_t bytes) {
  samples_.emplace_back(t, bytes);
  // Mirror the sample into the structured trace (a Chrome 'C' counter track)
  // when a recorder is installed; timestamps go out in absolute sim time.
  if (auto* tr = obs::tracer(); tr != nullptr) {
    tr->counter(origin_ + t, "exp", "exp.seq.acked_bytes",
                static_cast<double>(bytes));
  }
}

std::uint64_t SeqTrace::value_at(SimTime t) const {
  // Samples are appended in nondecreasing time order; binary search for the
  // last sample at or before t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime lhs, const auto& s) { return lhs < s.first; });
  if (it == samples_.begin()) {
    return 0;
  }
  return std::prev(it)->second;
}

void TraceAverager::add_run(const std::string& label, const SeqTrace& trace) {
  Accumulator* acc = nullptr;
  for (auto& [name, a] : acc_) {
    if (name == label) {
      acc = &a;
      break;
    }
  }
  if (acc == nullptr) {
    acc_.emplace_back(label, Accumulator{});
    acc = &acc_.back().second;
  }
  const std::size_t points =
      static_cast<std::size_t>(horizon_ / step_) + 1;
  if (acc->sum.empty()) {
    acc->sum.assign(points, 0.0);
  }
  LSL_ASSERT(acc->sum.size() == points);
  for (std::size_t i = 0; i < points; ++i) {
    const SimTime t = step_ * static_cast<std::int64_t>(i);
    acc->sum[i] += static_cast<double>(trace.value_at(t)) /
                   static_cast<double>(kMiB);
  }
  ++acc->runs;
}

std::vector<TraceAverager::Series> TraceAverager::series() const {
  std::vector<Series> out;
  for (const auto& [label, acc] : acc_) {
    Series s;
    s.label = label;
    s.mib_at_grid.reserve(acc.sum.size());
    for (const double v : acc.sum) {
      s.mib_at_grid.push_back(acc.runs > 0 ? v / static_cast<double>(acc.runs)
                                           : 0.0);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<double> TraceAverager::grid_seconds() const {
  const std::size_t points = static_cast<std::size_t>(horizon_ / step_) + 1;
  std::vector<double> grid;
  grid.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid.push_back((step_ * static_cast<std::int64_t>(i)).to_seconds());
  }
  return grid;
}

}  // namespace lsl::exp
