// Sequence-number-over-time tracing (the paper's Figures 4 and 5): records
// the highest cumulatively acknowledged payload byte at the sender of a TCP
// connection, then resamples onto a uniform grid and averages across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcp/connection.hpp"
#include "util/time.hpp"

namespace lsl::exp {

/// One run's trace: (time since attach, acked payload bytes) samples.
class SeqTrace {
 public:
  /// Attach to a connection's ack-advance hook. The connection must outlive
  /// the recording window (the trace copies no further state).
  void attach(tcp::Connection& conn, SimTime origin);

  void add_sample(SimTime t, std::uint64_t bytes);

  [[nodiscard]] const std::vector<std::pair<SimTime, std::uint64_t>>& samples()
      const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Acked bytes at time `t` (step interpolation; 0 before first sample).
  [[nodiscard]] std::uint64_t value_at(SimTime t) const;

 private:
  SimTime origin_ = SimTime::zero();
  std::vector<std::pair<SimTime, std::uint64_t>> samples_;
};

/// Averages a set of traces onto a uniform grid, producing one series per
/// labelled flow -- the data behind a Fig 4/5 style plot.
class TraceAverager {
 public:
  TraceAverager(SimTime horizon, SimTime step)
      : horizon_(horizon), step_(step) {}

  void add_run(const std::string& label, const SeqTrace& trace);

  struct Series {
    std::string label;
    std::vector<double> mib_at_grid;  ///< averaged MB (MiB) per grid point
  };

  [[nodiscard]] std::vector<Series> series() const;
  [[nodiscard]] std::vector<double> grid_seconds() const;

 private:
  struct Accumulator {
    std::vector<double> sum;
    std::size_t runs = 0;
  };

  SimTime horizon_;
  SimTime step_;
  std::vector<std::pair<std::string, Accumulator>> acc_;
};

}  // namespace lsl::exp
