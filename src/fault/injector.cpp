#include "fault/injector.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lsl::fault {

FaultMetrics* FaultMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local FaultMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.injected = &reg.counter("fault.injected");
    metrics.healed = &reg.counter("fault.healed");
    metrics.link_down = &reg.counter("fault.link_down");
    metrics.link_brownouts = &reg.counter("fault.link_brownouts");
    metrics.depot_crashes = &reg.counter("fault.depot_crashes");
    metrics.depot_restarts = &reg.counter("fault.depot_restarts");
    metrics.nws_blackouts = &reg.counter("fault.nws_blackouts");
    metrics.active = &reg.gauge("fault.active");
  }
  return &metrics;
}

FaultInjector::FaultInjector(sim::Simulator& sim, net::Topology& topology)
    : sim_(sim), topo_(topology), metrics_(FaultMetrics::get()) {}

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultSpec& fault : plan.sorted()) {
    // The actor tag tells a model-checking ChoiceHook which fault events
    // commute: faults on distinct targets are independent, so the explorer
    // never wastes runs reordering them against each other. +1 keeps node 0
    // distinct from the "unknown" actor.
    const std::uint32_t actor = actor_of(fault);
    sim_.schedule_at(fault.at, [this, fault] { apply(fault); }, "fault.apply",
                     actor);
    if (!fault.permanent()) {
      sim_.schedule_at(fault.at + fault.duration,
                       [this, fault] { heal(fault); }, "fault.heal", actor);
    }
  }
}

std::uint32_t FaultInjector::actor_of(const FaultSpec& fault) {
  switch (fault.kind) {
    case FaultKind::kDepotCrash:
      return fault.node + 1;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkBrownout:
      // Both endpoints identify the duplex pair; fold them symmetrically so
      // the same pair always maps to the same actor, distinct from depots.
      return ((std::min(fault.link_a, fault.link_b) + 1) << 16) ^
             (std::max(fault.link_a, fault.link_b) + 1);
    case FaultKind::kNwsBlackout:
      return 0;  // global: conservatively dependent on everything
  }
  return 0;
}

void FaultInjector::apply(const FaultSpec& fault) {
  ++stats_.injected;
  ++active_;
  switch (fault.kind) {
    case FaultKind::kLinkDown:
      ++stats_.link_down;
      set_duplex_loss(fault.link_a, fault.link_b, 1.0);
      break;
    case FaultKind::kLinkBrownout:
      ++stats_.link_brownouts;
      set_duplex_loss(fault.link_a, fault.link_b, fault.loss);
      if (fault.rate_factor < 1.0) {
        scale_duplex_rate(fault.link_a, fault.link_b, fault.rate_factor);
      }
      break;
    case FaultKind::kDepotCrash:
      ++stats_.depot_crashes;
      if (depot_control_) {
        depot_control_(fault.node, /*up=*/false);
      }
      break;
    case FaultKind::kNwsBlackout:
      ++stats_.nws_blackouts;
      if (nws_control_) {
        nws_control_(/*blackout=*/true);
      }
      break;
  }
  note(fault, /*applied=*/true);
}

void FaultInjector::heal(const FaultSpec& fault) {
  ++stats_.healed;
  --active_;
  switch (fault.kind) {
    case FaultKind::kLinkDown:
      restore_duplex_loss(fault.link_a, fault.link_b);
      break;
    case FaultKind::kLinkBrownout:
      restore_duplex_loss(fault.link_a, fault.link_b);
      if (fault.rate_factor < 1.0) {
        restore_duplex_rate(fault.link_a, fault.link_b);
      }
      break;
    case FaultKind::kDepotCrash:
      ++stats_.depot_restarts;
      if (depot_control_) {
        depot_control_(fault.node, /*up=*/true);
      }
      break;
    case FaultKind::kNwsBlackout:
      if (nws_control_) {
        nws_control_(/*blackout=*/false);
      }
      break;
  }
  note(fault, /*applied=*/false);
}

void FaultInjector::set_duplex_loss(net::NodeId a, net::NodeId b,
                                    double loss) {
  for (net::Link* link : {topo_.link_between(a, b), topo_.link_between(b, a)}) {
    if (link == nullptr) {
      LSL_WARN("fault: no link between %u and %u", a, b);
      continue;
    }
    saved_loss_.try_emplace(link, link->config().loss_rate);
    link->set_loss_rate(loss);
  }
}

void FaultInjector::scale_duplex_rate(net::NodeId a, net::NodeId b,
                                      double factor) {
  for (net::Link* link : {topo_.link_between(a, b), topo_.link_between(b, a)}) {
    if (link == nullptr) {
      continue;  // set_duplex_loss already warned for this pair
    }
    saved_rate_.try_emplace(link, link->config().rate);
    link->set_rate(Bandwidth{link->config().rate.bits_per_second() * factor});
  }
}

void FaultInjector::restore_duplex_rate(net::NodeId a, net::NodeId b) {
  for (net::Link* link : {topo_.link_between(a, b), topo_.link_between(b, a)}) {
    if (link == nullptr) {
      continue;
    }
    if (const auto it = saved_rate_.find(link); it != saved_rate_.end()) {
      link->set_rate(it->second);
      saved_rate_.erase(it);
    }
  }
}

void FaultInjector::restore_duplex_loss(net::NodeId a, net::NodeId b) {
  for (net::Link* link : {topo_.link_between(a, b), topo_.link_between(b, a)}) {
    if (link == nullptr) {
      continue;
    }
    if (const auto it = saved_loss_.find(link); it != saved_loss_.end()) {
      link->set_loss_rate(it->second);
      saved_loss_.erase(it);
    }
  }
}

void FaultInjector::note(const FaultSpec& fault, bool applied) {
  LSL_DEBUG("fault: %s %s at t=%s", applied ? "apply" : "heal",
            to_string(fault.kind), sim_.now().str().c_str());
  if (metrics_ != nullptr) {
    (applied ? metrics_->injected : metrics_->healed)->inc();
    metrics_->active->set(static_cast<double>(active_));
    if (applied) {
      switch (fault.kind) {
        case FaultKind::kLinkDown:
          metrics_->link_down->inc();
          break;
        case FaultKind::kLinkBrownout:
          metrics_->link_brownouts->inc();
          break;
        case FaultKind::kDepotCrash:
          metrics_->depot_crashes->inc();
          break;
        case FaultKind::kNwsBlackout:
          metrics_->nws_blackouts->inc();
          break;
      }
    } else if (fault.kind == FaultKind::kDepotCrash) {
      metrics_->depot_restarts->inc();
    }
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    // Trace names must be literals with static storage duration.
    const char* name = "?";
    switch (fault.kind) {
      case FaultKind::kLinkDown:
        name = applied ? "fault.link_down" : "fault.heal.link_down";
        break;
      case FaultKind::kLinkBrownout:
        name = applied ? "fault.brownout" : "fault.heal.brownout";
        break;
      case FaultKind::kDepotCrash:
        name = applied ? "fault.depot_crash" : "fault.depot_restart";
        break;
      case FaultKind::kNwsBlackout:
        name = applied ? "fault.nws_blackout" : "fault.heal.nws_blackout";
        break;
    }
    const std::uint64_t arg =
        fault.kind == FaultKind::kDepotCrash
            ? fault.node
            : (fault.kind == FaultKind::kNwsBlackout ? 0 : fault.link_a);
    tr->instant(sim_.now(), "fault", name, arg);
  }
  if (obs::SpanRecorder* sr = obs::spans()) {
    const char* kind_name = to_string(fault.kind);
    const double target =
        fault.kind == FaultKind::kDepotCrash
            ? static_cast<double>(fault.node)
            : static_cast<double>(fault.link_a);
    const FaultKey key{static_cast<int>(fault.kind), fault.at.ns(), fault.node,
                       fault.link_a, fault.link_b};
    if (applied) {
      fault_spans_[key] = sr->begin(sim_.now(), obs::SpanKind::kFaultWindow,
                                    /*session=*/0, 0, 0, kind_name, target);
    } else if (const auto it = fault_spans_.find(key);
               it != fault_spans_.end()) {
      sr->end(sim_.now(), obs::SpanKind::kFaultWindow, it->second,
              /*session=*/0, kind_name, target);
      fault_spans_.erase(it);
    }
  }
}

}  // namespace lsl::fault
