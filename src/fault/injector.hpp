// FaultInjector: schedules a FaultPlan onto the simulation kernel.
//
// Link faults are applied by mutating the duplex pair's Bernoulli loss rate
// (down = loss 1.0; brownout = the spec's loss), restoring the original
// rates when the fault heals. Depot and NWS faults are delegated to
// callbacks supplied by the experiment harness, keeping this layer free of
// lsl/nws dependencies. Every injection and heal is counted in metrics and
// emitted to the obs trace as an instant in the "fault" category.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>

#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace lsl::fault {

/// Process-wide fault instruments (global metrics registry).
struct FaultMetrics {
  obs::Counter* injected;        ///< fault.injected
  obs::Counter* healed;          ///< fault.healed
  obs::Counter* link_down;       ///< fault.link_down
  obs::Counter* link_brownouts;  ///< fault.link_brownouts
  obs::Counter* depot_crashes;   ///< fault.depot_crashes
  obs::Counter* depot_restarts;  ///< fault.depot_restarts
  obs::Counter* nws_blackouts;   ///< fault.nws_blackouts
  obs::Gauge* active;            ///< fault.active (currently live faults)

  /// nullptr while obs::metrics_enabled() is false.
  static FaultMetrics* get();
};

struct InjectorStats {
  std::uint64_t injected = 0;
  std::uint64_t healed = 0;
  std::uint64_t link_down = 0;
  std::uint64_t link_brownouts = 0;
  std::uint64_t depot_crashes = 0;
  std::uint64_t depot_restarts = 0;
  std::uint64_t nws_blackouts = 0;
};

class FaultInjector {
 public:
  /// up == false takes the depot out of service; true restores it.
  using DepotControl = std::function<void(net::NodeId, bool up)>;
  /// blackout == true suspends NWS measurement; false resumes it.
  using NwsControl = std::function<void(bool blackout)>;

  FaultInjector(sim::Simulator& sim, net::Topology& topology);

  void set_depot_control(DepotControl control) {
    depot_control_ = std::move(control);
  }
  void set_nws_control(NwsControl control) {
    nws_control_ = std::move(control);
  }

  /// Schedule every fault (and its heal, when transient) onto the kernel.
  void schedule(const FaultPlan& plan);

  /// ChoiceHook commutativity tag for a fault's apply/heal events: faults
  /// on distinct targets get distinct nonzero actors (they commute); global
  /// faults (NWS blackout) get 0 (dependent on everything).
  [[nodiscard]] static std::uint32_t actor_of(const FaultSpec& fault);

  [[nodiscard]] const InjectorStats& stats() const { return stats_; }
  [[nodiscard]] int active_faults() const { return active_; }

 private:
  void apply(const FaultSpec& fault);
  void heal(const FaultSpec& fault);
  void set_duplex_loss(net::NodeId a, net::NodeId b, double loss);
  void restore_duplex_loss(net::NodeId a, net::NodeId b);
  void scale_duplex_rate(net::NodeId a, net::NodeId b, double factor);
  void restore_duplex_rate(net::NodeId a, net::NodeId b);
  void note(const FaultSpec& fault, bool applied);

  sim::Simulator& sim_;
  net::Topology& topo_;
  DepotControl depot_control_;
  NwsControl nws_control_;
  /// Pre-fault loss/link rates, saved at first application per directed
  /// link so overlapping faults restore the true original value.
  std::unordered_map<net::Link*, double> saved_loss_;
  std::unordered_map<net::Link*, Bandwidth> saved_rate_;
  /// Open kFaultWindow spans, keyed by the fault's identity (the apply and
  /// heal closures hold separate FaultSpec copies, so identity is by value:
  /// kind, scheduled time, and target).
  using FaultKey =
      std::tuple<int, std::int64_t, net::NodeId, net::NodeId, net::NodeId>;
  std::map<FaultKey, std::uint64_t> fault_spans_;
  int active_ = 0;
  InjectorStats stats_;
  FaultMetrics* metrics_;
};

}  // namespace lsl::fault
