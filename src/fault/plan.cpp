#include "fault/plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkBrownout:
      return "brownout";
    case FaultKind::kDepotCrash:
      return "depot-crash";
    case FaultKind::kNwsBlackout:
      return "nws-blackout";
  }
  return "?";
}

void FaultPlan::add_churn(const ChurnSpec& churn, Rng& rng) {
  LSL_ASSERT_MSG(churn.mtbf > SimTime::zero() && churn.mttr > SimTime::zero(),
                 "churn needs positive mtbf/mttr");
  SimTime t = churn.start;
  while (true) {
    t += SimTime::from_seconds(rng.exponential(churn.mtbf.to_seconds()));
    if (t >= churn.horizon) {
      break;
    }
    // A zero repair draw would read as "permanent"; keep crashes transient.
    const SimTime repair = std::max(
        SimTime::from_seconds(rng.exponential(churn.mttr.to_seconds())),
        SimTime::milliseconds(1));
    FaultSpec crash;
    crash.kind = FaultKind::kDepotCrash;
    crash.at = t;
    crash.duration = repair;
    crash.node = churn.node;
    faults.push_back(crash);
    t += repair;
  }
}

std::vector<FaultSpec> FaultPlan::sorted() const {
  std::vector<FaultSpec> out = faults;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::vector<FaultPlan> perturbations(const FaultPlan& plan,
                                     const PerturbSpec& spec) {
  std::vector<FaultPlan> out;
  if (spec.include_original) {
    out.push_back(plan);
  }
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    for (const SimTime offset : spec.offsets) {
      SimTime shifted = plan.faults[i].at + offset;
      if (shifted < SimTime::zero()) {
        shifted = SimTime::zero();
      }
      if (shifted == plan.faults[i].at) {
        continue;  // a no-op variant (zero offset, or clamped onto original)
      }
      FaultPlan variant = plan;
      variant.faults[i].at = shifted;
      out.push_back(std::move(variant));
    }
  }
  return out;
}

FaultPlan random_plan(const RandomPlanSpec& spec, Rng& rng) {
  LSL_ASSERT_MSG(!spec.depots.empty() || !spec.links.empty(),
                 "random_plan needs at least one fault candidate");
  LSL_ASSERT_MSG(spec.min_faults >= 0 && spec.max_faults >= spec.min_faults,
                 "bad fault count range");
  FaultPlan plan;
  const int count = static_cast<int>(
      rng.uniform_int(spec.min_faults, spec.max_faults));
  for (int i = 0; i < count; ++i) {
    FaultSpec fault;
    // Depot crashes dominate the draw when both spaces exist: they exercise
    // the recovery protocol (blacklist, probe, resume) most directly.
    const bool depot_fault =
        !spec.depots.empty() &&
        (spec.links.empty() || rng.next_double() < 0.5);
    if (depot_fault) {
      fault.kind = FaultKind::kDepotCrash;
      fault.node = spec.depots[rng.pick_index(spec.depots.size())];
    } else {
      const auto& link = spec.links[rng.pick_index(spec.links.size())];
      fault.link_a = link.first;
      fault.link_b = link.second;
      if (rng.next_double() < 0.5) {
        fault.kind = FaultKind::kLinkDown;
      } else {
        fault.kind = FaultKind::kLinkBrownout;
        fault.loss = rng.uniform(0.05, 0.5);
        fault.rate_factor = rng.uniform(0.05, 1.0);
      }
    }
    fault.at = SimTime::from_seconds(
        rng.uniform(0.0, spec.horizon.to_seconds()));
    const SimTime span = spec.max_duration - spec.min_duration;
    fault.duration =
        spec.min_duration +
        SimTime::from_seconds(rng.uniform(0.0, span.to_seconds()));
    if (fault.duration <= SimTime::zero()) {
      fault.duration = SimTime::milliseconds(1);  // never permanent
    }
    plan.add(fault);
  }
  return plan;
}

}  // namespace lsl::fault
