#include "fault/plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkBrownout:
      return "brownout";
    case FaultKind::kDepotCrash:
      return "depot-crash";
    case FaultKind::kNwsBlackout:
      return "nws-blackout";
  }
  return "?";
}

void FaultPlan::add_churn(const ChurnSpec& churn, Rng& rng) {
  LSL_ASSERT_MSG(churn.mtbf > SimTime::zero() && churn.mttr > SimTime::zero(),
                 "churn needs positive mtbf/mttr");
  SimTime t = churn.start;
  while (true) {
    t += SimTime::from_seconds(rng.exponential(churn.mtbf.to_seconds()));
    if (t >= churn.horizon) {
      break;
    }
    // A zero repair draw would read as "permanent"; keep crashes transient.
    const SimTime repair = std::max(
        SimTime::from_seconds(rng.exponential(churn.mttr.to_seconds())),
        SimTime::milliseconds(1));
    FaultSpec crash;
    crash.kind = FaultKind::kDepotCrash;
    crash.at = t;
    crash.duration = repair;
    crash.node = churn.node;
    faults.push_back(crash);
    t += repair;
  }
}

std::vector<FaultSpec> FaultPlan::sorted() const {
  std::vector<FaultSpec> out = faults;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace lsl::fault
