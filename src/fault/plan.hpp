// Deterministic fault plans (paper §6: "the tolerance of depot failure...
// is an area for future work").
//
// A FaultPlan is a list of timed faults -- link outages, link brownouts
// (elevated loss for an interval), depot crash/restart, and NWS measurement
// blackouts -- that a FaultInjector schedules onto the simulation kernel.
// Plans come from two sources: explicit scenario directives and seeded
// MTBF/MTTR renewal processes (add_churn), so whole failure experiments
// replay bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lsl::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,      ///< 100% loss on both directions of a duplex link
  kLinkBrownout,  ///< elevated loss and/or throttled rate, both directions
  kDepotCrash,    ///< depot out of service; restarts after `duration`
  kNwsBlackout,   ///< measurement epochs suspended (forecasts go stale)
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDown;
  SimTime at = SimTime::zero();
  /// Time until the fault heals; zero means it is permanent.
  SimTime duration = SimTime::zero();
  net::NodeId node = net::kInvalidNode;    ///< depot faults
  net::NodeId link_a = net::kInvalidNode;  ///< link faults (duplex pair)
  net::NodeId link_b = net::kInvalidNode;
  double loss = 0.3;  ///< brownout loss probability
  /// Brownout residual-rate multiplier: the duplex pair's link rate is
  /// scaled by this while the fault is live (1.0 = loss-only brownout).
  /// Unlike loss, a throttled rate is what NWS bandwidth probes measure,
  /// so rate brownouts drive the forecasts -- and the RouteAdvisor.
  double rate_factor = 1.0;

  [[nodiscard]] bool permanent() const { return duration == SimTime::zero(); }
  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Seeded crash/repair renewal process for one depot: up-times are
/// exponential with mean `mtbf`, repair times exponential with mean `mttr`.
struct ChurnSpec {
  net::NodeId node = net::kInvalidNode;
  SimTime mtbf = SimTime::seconds(60);
  SimTime mttr = SimTime::seconds(5);
  SimTime start = SimTime::zero();
  SimTime horizon = SimTime::seconds(600);  ///< no crashes injected after
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  void add(const FaultSpec& fault) { faults.push_back(fault); }
  /// Expand a churn process into concrete kDepotCrash faults drawn from
  /// `rng`; identical (spec, rng state) always yields the identical plan.
  void add_churn(const ChurnSpec& churn, Rng& rng);

  /// Faults in injection order (stable sort by time).
  [[nodiscard]] std::vector<FaultSpec> sorted() const;
  [[nodiscard]] bool empty() const { return faults.empty(); }
};

// ---- schedule perturbation (model checking / fuzzing) ----------------------

/// Systematic single-fault time shifts: each variant moves exactly one fault
/// by one offset, which is how the explorer probes "what if this fault had
/// landed during the offset query / the handover drain / the backoff".
struct PerturbSpec {
  std::vector<SimTime> offsets;   ///< shifts applied to one fault at a time
  bool include_original = true;   ///< variant 0 is the unmodified plan
};

/// Expand `plan` into perturbed variants: the original (optionally), then
/// one plan per (fault, offset) pair with that fault's `at` shifted and
/// clamped at zero. Shifts that land exactly on the original time are
/// dropped. Deterministic; no rng involved.
[[nodiscard]] std::vector<FaultPlan> perturbations(const FaultPlan& plan,
                                                   const PerturbSpec& spec);

/// Candidate space for seeded random fault plans (the fault fuzzer).
struct RandomPlanSpec {
  std::vector<net::NodeId> depots;  ///< depot-crash candidates
  std::vector<std::pair<net::NodeId, net::NodeId>> links;  ///< link faults
  int min_faults = 1;
  int max_faults = 4;
  SimTime horizon = SimTime::seconds(20);  ///< fault times drawn in [0, horizon)
  SimTime min_duration = SimTime::milliseconds(50);
  SimTime max_duration = SimTime::seconds(4);
};

/// Draw a random fault plan from `spec` using `rng`; identical (spec, rng
/// state) always yields the identical plan.
[[nodiscard]] FaultPlan random_plan(const RandomPlanSpec& spec, Rng& rng);

}  // namespace lsl::fault
