#include "flow/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "flow/tcp_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace lsl::flow {

namespace {
/// Stand-in for "no link bottleneck" when deriving a flow's demand cap from
/// steady_rate: link capacities are the solver's job, the cap only carries
/// the window/RTT and Mathis terms.
constexpr double kUncappedBps = 1e18;
}  // namespace

FluidNetwork::FluidNetwork(sim::Simulator& simulator) : sim_(simulator) {}

FluidNetwork::~FluidNetwork() {
  for (FlowState& f : flows_) {
    if (f.marker_event.valid()) {
      sim_.cancel(f.marker_event);
    }
    if (f.ramp_event.valid()) {
      sim_.cancel(f.ramp_event);
    }
  }
}

FluidLinkId FluidNetwork::add_link(double capacity_bps, double loss_rate) {
  const auto id = static_cast<FluidLinkId>(links_.size());
  LinkState link;
  link.capacity = std::max(capacity_bps, 0.0);
  link.loss = std::clamp(loss_rate, 0.0, 1.0);
  link.effective = link.capacity * (1.0 - link.loss);
  links_.push_back(std::move(link));
  return id;
}

void FluidNetwork::set_link(FluidLinkId id, double capacity_bps,
                            double loss_rate) {
  LSL_ASSERT(id < links_.size());
  LinkState& link = links_[id];
  link.capacity = std::max(capacity_bps, 0.0);
  link.loss = std::clamp(loss_rate, 0.0, 1.0);
  link.effective = link.capacity * (1.0 - link.loss);
  // Path loss feeds every crossing flow's Mathis cap, idle flows included
  // (they pick the fresh cap up on their next activation).
  for (const FluidFlowId fid : link.flows) {
    FlowState& f = flows_[index_of(fid)];
    f.steady_cap = compute_steady_cap(f.spec);
    if (f.ramping && f.ramp_cap >= f.steady_cap) {
      f.ramping = false;
    }
  }
  const std::vector<FluidLinkId> seed{id};
  resolve(kInvalidFluidFlow, seed);
}

double FluidNetwork::link_capacity_bps(FluidLinkId id) const {
  LSL_ASSERT(id < links_.size());
  return links_[id].capacity;
}

double FluidNetwork::link_loss(FluidLinkId id) const {
  LSL_ASSERT(id < links_.size());
  return links_[id].loss;
}

FluidFlowId FluidNetwork::start_flow(FluidFlowSpec spec) {
  LSL_ASSERT(spec.rtt > SimTime::zero());
  std::uint32_t index = 0;
  if (!free_flows_.empty()) {
    index = free_flows_.back();
    free_flows_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  FlowState& f = flows_[index];
  f.spec = std::move(spec);
  f.in_use = true;
  f.active = false;
  f.rate = 0.0;
  f.transmitted = 0.0;
  f.offered = 0;
  f.last_advance = sim_.now();
  f.markers.clear();
  f.marker_event = {};
  f.ramp_event = {};
  f.steady_cap = compute_steady_cap(f.spec);
  const double rtt_s = f.spec.rtt.to_seconds();
  const double initial_cap =
      static_cast<double>(f.spec.initial_cwnd_segments) * f.spec.mss * 8.0 /
      rtt_s;
  f.ramping = f.spec.initial_cwnd_segments > 0 && initial_cap < f.steady_cap;
  f.ramp_cap = f.ramping ? initial_cap : f.steady_cap;
  const FluidFlowId id = id_of(index);
  for (const FluidLinkId l : f.spec.path) {
    LSL_ASSERT(l < links_.size());
    links_[l].flows.push_back(id);
  }
  ++stats_.flows_started;
  return id;
}

void FluidNetwork::end_flow(FluidFlowId id) {
  FlowState* f = find(id);
  if (f == nullptr) {
    return;
  }
  if (f->marker_event.valid()) {
    sim_.cancel(f->marker_event);
    f->marker_event = {};
  }
  if (f->ramp_event.valid()) {
    sim_.cancel(f->ramp_event);
    f->ramp_event = {};
  }
  const bool was_active = f->active;
  if (was_active) {
    f->active = false;
    --active_count_;
  }
  f->rate = 0.0;
  f->markers.clear();
  std::vector<FluidLinkId> path = std::move(f->spec.path);
  f->spec.path.clear();
  for (const FluidLinkId l : path) {
    auto& flows = links_[l].flows;
    auto it = std::find(flows.begin(), flows.end(), id);
    LSL_ASSERT(it != flows.end());
    *it = flows.back();
    flows.pop_back();
  }
  f->in_use = false;
  ++f->gen;
  free_flows_.push_back(index_of(id));
  if (was_active) {
    resolve(kInvalidFluidFlow, path);
  }
}

void FluidNetwork::add_bytes(FluidFlowId id, std::uint64_t n) {
  FlowState* f = find(id);
  LSL_ASSERT(f != nullptr);
  f->offered += n;
  if (!f->active && backlog(*f) > 0) {
    activate(id, *f);
  }
}

void FluidNetwork::notify_at(FluidFlowId id, std::uint64_t offset,
                             std::function<void()> cb) {
  FlowState* f = find(id);
  LSL_ASSERT(f != nullptr);
  LSL_ASSERT(f->markers.empty() || f->markers.back().offset <= offset);
  LSL_ASSERT(offset <= f->offered);
  f->markers.push_back(Marker{offset, std::move(cb)});
  if (f->markers.size() == 1) {
    schedule_marker(id, *f);
  }
}

double FluidNetwork::rate_bps(FluidFlowId id) const {
  const FlowState* f = find(id);
  return f != nullptr ? f->rate : 0.0;
}

double FluidNetwork::cap_bps(FluidFlowId id) const {
  const FlowState* f = find(id);
  return f != nullptr ? demand_cap(*f) : 0.0;
}

std::uint64_t FluidNetwork::transmitted(FluidFlowId id) const {
  const FlowState* f = find(id);
  if (f == nullptr) {
    return 0;
  }
  double bytes = f->transmitted;
  if (f->active && f->rate > 0.0) {
    bytes += (sim_.now() - f->last_advance).to_seconds() * f->rate / 8.0;
  }
  bytes = std::min(bytes, static_cast<double>(f->offered));
  return static_cast<std::uint64_t>(bytes);
}

FluidNetwork::FlowState* FluidNetwork::find(FluidFlowId id) {
  if (id == kInvalidFluidFlow) {
    return nullptr;
  }
  const std::uint32_t index = index_of(id);
  if (index >= flows_.size()) {
    return nullptr;
  }
  FlowState& f = flows_[index];
  return (f.in_use && f.gen == gen_of(id)) ? &f : nullptr;
}

const FluidNetwork::FlowState* FluidNetwork::find(FluidFlowId id) const {
  return const_cast<FluidNetwork*>(this)->find(id);
}

double FluidNetwork::compute_steady_cap(const FluidFlowSpec& spec) const {
  double through = 1.0;
  for (const FluidLinkId l : spec.path) {
    through *= 1.0 - links_[l].loss;
  }
  ConnectionParams params;
  params.rtt = spec.rtt;
  params.bottleneck = Bandwidth::bps(kUncappedBps);
  params.window_bytes = spec.window_bytes;
  params.loss_rate = 1.0 - through;
  params.mss = spec.mss;
  params.initial_cwnd_segments = spec.initial_cwnd_segments;
  params.cca = spec.cca;
  return steady_rate(params).bits_per_second();
}

double FluidNetwork::demand_cap(const FlowState& f) const {
  return f.ramping ? std::min(f.ramp_cap, f.steady_cap) : f.steady_cap;
}

std::uint64_t FluidNetwork::backlog(const FlowState& f) const {
  const auto sent = static_cast<std::uint64_t>(f.transmitted);
  return f.offered > sent ? f.offered - sent : 0;
}

void FluidNetwork::advance_progress(FlowState& f) {
  const SimTime now = sim_.now();
  if (f.active && f.rate > 0.0 && now > f.last_advance) {
    f.transmitted += (now - f.last_advance).to_seconds() * f.rate / 8.0;
    f.transmitted = std::min(f.transmitted, static_cast<double>(f.offered));
  }
  f.last_advance = now;
}

void FluidNetwork::resolve(FluidFlowId seed_flow,
                           const std::vector<FluidLinkId>& seed_links) {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  auto push_link = [this](FluidLinkId l) {
    if (links_[l].epoch != epoch_) {
      links_[l].epoch = epoch_;
      comp_links_.push_back(l);
    }
  };
  if (FlowState* f = find(seed_flow); f != nullptr) {
    f->epoch = epoch_;
    if (f->active) {
      comp_flows_.push_back(seed_flow);
    }
    for (const FluidLinkId l : f->spec.path) {
      push_link(l);
    }
  }
  for (const FluidLinkId l : seed_links) {
    push_link(l);
  }
  // BFS over the flows-share-links graph; only active flows couple links.
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    for (const FluidFlowId fid : links_[comp_links_[i]].flows) {
      FlowState& f = flows_[index_of(fid)];
      if (!f.active || f.epoch == epoch_) {
        continue;
      }
      f.epoch = epoch_;
      comp_flows_.push_back(fid);
      for (const FluidLinkId l : f.spec.path) {
        push_link(l);
      }
    }
  }
  if (comp_flows_.empty()) {
    return;
  }
  ++stats_.solves;
  stats_.flows_rated += comp_flows_.size();
  for (const FluidFlowId fid : comp_flows_) {
    advance_progress(flows_[index_of(fid)]);
  }
  fill_component();
  for (const FluidFlowId fid : comp_flows_) {
    FlowState& f = flows_[index_of(fid)];
    if (f.rate != f.solve_rate) {
      f.rate = f.solve_rate;
      schedule_marker(fid, f);
    }
  }
}

void FluidNetwork::fill_component() {
  std::size_t unfixed = 0;
  for (const FluidFlowId fid : comp_flows_) {
    FlowState& f = flows_[index_of(fid)];
    f.solve_rate = 0.0;
    f.solve_cap = demand_cap(f);
    f.solve_fixed = f.solve_cap <= 0.0;
    if (!f.solve_fixed) {
      ++unfixed;
    }
  }
  for (const FluidLinkId lid : comp_links_) {
    LinkState& l = links_[lid];
    l.solve_residual = std::max(l.effective, 0.0);
    l.solve_unfixed = 0;
  }
  for (const FluidFlowId fid : comp_flows_) {
    const FlowState& f = flows_[index_of(fid)];
    if (f.solve_fixed) {
      continue;
    }
    for (const FluidLinkId l : f.spec.path) {
      ++links_[l].solve_unfixed;
    }
  }
  auto fix_flow = [this, &unfixed](FlowState& f) {
    f.solve_fixed = true;
    --unfixed;
    for (const FluidLinkId l : f.spec.path) {
      --links_[l].solve_unfixed;
    }
  };
  // Progressive filling: raise every unfixed flow's rate by the largest
  // uniform increment any link or cap allows, then freeze the flows that hit
  // their constraint. Each round freezes at least one flow, so the loop runs
  // at most |component| times.
  while (unfixed > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (const FluidLinkId lid : comp_links_) {
      const LinkState& l = links_[lid];
      if (l.solve_unfixed > 0) {
        delta = std::min(delta, l.solve_residual / l.solve_unfixed);
      }
    }
    for (const FluidFlowId fid : comp_flows_) {
      const FlowState& f = flows_[index_of(fid)];
      if (!f.solve_fixed) {
        delta = std::min(delta, f.solve_cap - f.solve_rate);
      }
    }
    delta = std::max(delta, 0.0);
    for (const FluidFlowId fid : comp_flows_) {
      FlowState& f = flows_[index_of(fid)];
      if (!f.solve_fixed) {
        f.solve_rate += delta;
      }
    }
    for (const FluidLinkId lid : comp_links_) {
      LinkState& l = links_[lid];
      if (l.solve_unfixed > 0) {
        l.solve_residual =
            std::max(l.solve_residual - delta * l.solve_unfixed, 0.0);
      }
    }
    bool froze = false;
    for (const FluidFlowId fid : comp_flows_) {
      FlowState& f = flows_[index_of(fid)];
      if (!f.solve_fixed &&
          f.solve_rate >= f.solve_cap - 1e-9 * (f.solve_cap + 1.0)) {
        f.solve_rate = f.solve_cap;
        fix_flow(f);
        froze = true;
      }
    }
    for (const FluidLinkId lid : comp_links_) {
      LinkState& l = links_[lid];
      if (l.solve_unfixed == 0 ||
          l.solve_residual > 1e-9 * (l.effective + 1.0)) {
        continue;
      }
      for (const FluidFlowId fid : l.flows) {
        FlowState& f = flows_[index_of(fid)];
        if (f.active && f.epoch == epoch_ && !f.solve_fixed) {
          fix_flow(f);
          froze = true;
        }
      }
    }
    if (!froze) {
      // Numerical stalemate; freeze everything at current rates.
      for (const FluidFlowId fid : comp_flows_) {
        FlowState& f = flows_[index_of(fid)];
        if (!f.solve_fixed) {
          fix_flow(f);
        }
      }
    }
  }
}

void FluidNetwork::activate(FluidFlowId id, FlowState& f) {
  f.active = true;
  f.last_advance = sim_.now();
  ++active_count_;
  if (f.ramping && !f.ramp_event.valid()) {
    arm_ramp(id, f);
  }
  static const std::vector<FluidLinkId> kNoLinks;
  resolve(id, kNoLinks);
}

void FluidNetwork::deactivate(FlowState& f) {
  advance_progress(f);
  f.active = false;
  f.rate = 0.0;
  --active_count_;
  if (f.marker_event.valid()) {
    sim_.cancel(f.marker_event);
    f.marker_event = {};
  }
  if (f.ramp_event.valid()) {
    sim_.cancel(f.ramp_event);
    f.ramp_event = {};
  }
}

void FluidNetwork::schedule_marker(FluidFlowId id, FlowState& f) {
  if (f.marker_event.valid()) {
    sim_.cancel(f.marker_event);
    f.marker_event = {};
  }
  if (f.markers.empty()) {
    return;
  }
  const double remaining =
      static_cast<double>(f.markers.front().offset) - f.transmitted;
  if (remaining <= 0.0) {
    f.marker_event = sim_.schedule_after(
        SimTime::zero(), [this, id] { on_marker(id); }, "fluid.marker");
    return;
  }
  if (!f.active || f.rate <= 0.0) {
    return;  // stalled: the next resolve with rate > 0 reschedules
  }
  const SimTime eta = SimTime::from_seconds(remaining * 8.0 / f.rate);
  f.marker_event = sim_.schedule_after(
      eta, [this, id] { on_marker(id); }, "fluid.marker");
}

void FluidNetwork::on_marker(FluidFlowId id) {
  FlowState* f = find(id);
  if (f == nullptr) {
    return;
  }
  f->marker_event = {};
  LSL_ASSERT(!f->markers.empty());
  Marker marker = std::move(f->markers.front());
  f->markers.pop_front();
  // Snap integration to the marker offset (the event time was computed from
  // the exact rate trajectory; snapping removes float drift).
  f->transmitted =
      std::max(f->transmitted, static_cast<double>(marker.offset));
  f->transmitted = std::min(f->transmitted, static_cast<double>(f->offered));
  f->last_advance = sim_.now();
  ++stats_.markers_fired;
  if (marker.cb) {
    marker.cb();  // may add bytes/markers, or end this flow entirely
  }
  f = find(id);
  if (f == nullptr) {
    return;
  }
  if (f->active && backlog(*f) == 0 && f->markers.empty()) {
    // Out of bytes: release this flow's share to the residual set.
    deactivate(*f);
    resolve(kInvalidFluidFlow, f->spec.path);
  } else if (!f->marker_event.valid()) {
    schedule_marker(id, *f);
  }
}

void FluidNetwork::arm_ramp(FluidFlowId id, FlowState& f) {
  f.ramp_event = sim_.schedule_after(
      f.spec.rtt, [this, id] { on_ramp(id); }, "fluid.ramp");
}

void FluidNetwork::on_ramp(FluidFlowId id) {
  FlowState* f = find(id);
  if (f == nullptr) {
    return;
  }
  f->ramp_event = {};
  if (!f->ramping || !f->active) {
    return;
  }
  f->ramp_cap *= 2.0;
  if (f->ramp_cap >= f->steady_cap) {
    f->ramp_cap = f->steady_cap;
    f->ramping = false;
  }
  static const std::vector<FluidLinkId> kNoLinks;
  resolve(id, kNoLinks);
  f = find(id);
  if (f != nullptr && f->ramping && f->active) {
    arm_ramp(id, *f);
  }
}

double FluidNetwork::max_rate_error_for_test() {
  // Global from-scratch solve: collect every active flow into one "component"
  // (progressive filling over the union is the textbook global algorithm;
  // disjoint components simply never constrain each other).
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  for (std::uint32_t index = 0; index < flows_.size(); ++index) {
    FlowState& f = flows_[index];
    if (!f.in_use || !f.active) {
      continue;
    }
    f.epoch = epoch_;
    comp_flows_.push_back(id_of(index));
    for (const FluidLinkId l : f.spec.path) {
      if (links_[l].epoch != epoch_) {
        links_[l].epoch = epoch_;
        comp_links_.push_back(l);
      }
    }
  }
  fill_component();
  double worst = 0.0;
  for (const FluidFlowId fid : comp_flows_) {
    const FlowState& f = flows_[index_of(fid)];
    worst = std::max(worst, std::abs(f.rate - f.solve_rate));
  }
  return worst;
}

}  // namespace lsl::flow
