// Event-driven fluid (flow-level) network engine.
//
// The packet kernel charges events per segment, which caps sweeps near
// 10^3-host pools; this engine charges events per *rate change*. A
// FluidNetwork holds directed links with capacities, each active transfer is
// one Flow over its link path, and a progressive-filling max-min solver
// assigns every flow the fair share of its bottleneck link. Rates are
// recomputed only on flow arrival/departure, link capacity/loss changes, and
// slow-start cap doublings -- and each recompute touches only the connected
// component (flows transitively sharing links) of the change, so disjoint
// transfers never pay for each other.
//
// Calibration carries over from the analytic model (tcp_model.hpp): a flow's
// demand cap is min(window/RTT, Mathis(path loss)) via flow::steady_rate,
// and new flows ramp through cwnd doubling per RTT exactly as data_time
// assumes, so the three fidelities (analytic / fluid / packet) share one
// TCP parameterization.
//
// Byte accounting is continuous: callers offer bytes (add_bytes) and
// register offset markers (notify_at); the engine integrates transmitted
// bytes at the solved rate and fires each marker at the instant its offset
// has fully left the sender. There is no per-byte event and no randomness:
// loss enters only through the Mathis cap and the (1 - loss) capacity
// discount, so fluid runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "flow/tcp_model.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace lsl::flow {

using FluidLinkId = std::uint32_t;

/// Generation-tagged flow handle; 0 is never a valid flow.
using FluidFlowId = std::uint64_t;
inline constexpr FluidFlowId kInvalidFluidFlow = 0;

struct FluidFlowSpec {
  /// Directed links the flow traverses, in order.
  std::vector<FluidLinkId> path;
  /// Path round-trip time: bounds throughput at window/RTT and paces the
  /// slow-start ramp.
  SimTime rtt = SimTime::milliseconds(50);
  /// Effective window: min(send buffer, peer receive buffer).
  std::uint64_t window_bytes = 64 * 1024;
  std::uint32_t mss = 1460;
  /// 0 disables the slow-start ramp (the flow starts at its steady cap).
  std::uint32_t initial_cwnd_segments = 2;
  /// Steady-state cap dispatch (flow::steady_rate): Mathis for Reno-family,
  /// the RFC 8312 response function for CUBIC, loss-agnostic for BBR.
  Cca cca = Cca::kNewReno;
};

/// Aggregate engine counters (reported by benches and --explain).
struct FluidStats {
  std::uint64_t flows_started = 0;
  std::uint64_t solves = 0;        ///< component re-solves
  std::uint64_t flows_rated = 0;   ///< flow-rate assignments summed over solves
  std::uint64_t markers_fired = 0;
};

class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulator& simulator);
  ~FluidNetwork();

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Register a directed link. `capacity_bps` should already be discounted
  /// to payload goodput (header overhead); `loss_rate` additionally scales
  /// the shareable capacity by (1 - loss) and feeds flows' Mathis caps.
  FluidLinkId add_link(double capacity_bps, double loss_rate = 0.0);

  /// Update a link in place (fault injection: link-down is capacity 0 via
  /// loss 1.0, brownouts throttle rate / raise loss). Re-solves the link's
  /// component and refreshes the Mathis cap of every flow crossing it.
  void set_link(FluidLinkId id, double capacity_bps, double loss_rate);

  [[nodiscard]] double link_capacity_bps(FluidLinkId id) const;
  [[nodiscard]] double link_loss(FluidLinkId id) const;

  /// Create a flow. Flows start idle (no backlog, no share) until bytes are
  /// offered; the slow-start ramp runs only while the flow has backlog.
  FluidFlowId start_flow(FluidFlowSpec spec);

  /// Destroy a flow, releasing its share to the residual set. Pending
  /// markers are dropped without firing. Idempotent on stale ids.
  void end_flow(FluidFlowId id);

  /// Offer `n` more bytes; an idle flow becomes active (rates re-solve).
  void add_bytes(FluidFlowId id, std::uint64_t n);

  /// Fire `cb` when the flow's transmitted-byte count reaches `offset`.
  /// Offsets must be registered in nondecreasing order; an offset already
  /// reached fires on the next event dispatch.
  void notify_at(FluidFlowId id, std::uint64_t offset,
                 std::function<void()> cb);

  /// Current solved rate (bps). 0 when idle or stalled on a dead link.
  [[nodiscard]] double rate_bps(FluidFlowId id) const;
  /// Current demand cap: min(slow-start cap, window/RTT, Mathis).
  [[nodiscard]] double cap_bps(FluidFlowId id) const;
  /// Bytes fully transmitted, integrated to now.
  [[nodiscard]] std::uint64_t transmitted(FluidFlowId id) const;

  [[nodiscard]] bool alive(FluidFlowId id) const {
    return find(id) != nullptr;
  }
  [[nodiscard]] std::size_t active_flows() const { return active_count_; }
  [[nodiscard]] const FluidStats& stats() const { return stats_; }

  /// Testing hook: run a from-scratch global max-min solve (no state
  /// mutation) and return the largest absolute rate discrepancy vs the
  /// incrementally maintained rates. ~0 when incremental solving is exact.
  [[nodiscard]] double max_rate_error_for_test();

 private:
  struct Marker {
    std::uint64_t offset = 0;
    std::function<void()> cb;
  };

  struct FlowState {
    FluidFlowSpec spec;
    std::uint32_t gen = 0;
    bool in_use = false;
    bool active = false;
    bool ramping = false;
    double steady_cap = 0.0;  ///< bps: min(window/RTT, Mathis)
    double ramp_cap = 0.0;    ///< bps: slow-start cap, doubles per RTT
    double rate = 0.0;        ///< bps: current solved rate
    double transmitted = 0.0;        ///< bytes, integrated to last_advance
    std::uint64_t offered = 0;       ///< bytes handed in
    SimTime last_advance = SimTime::zero();
    std::deque<Marker> markers;
    sim::EventId marker_event{};
    sim::EventId ramp_event{};
    std::uint32_t epoch = 0;  ///< component BFS stamp
    // Progressive-filling scratch (valid only during solve()).
    double solve_rate = 0.0;
    double solve_cap = 0.0;
    bool solve_fixed = false;
  };

  struct LinkState {
    double capacity = 0.0;   ///< raw bps (payload goodput)
    double loss = 0.0;
    double effective = 0.0;  ///< capacity * (1 - loss)
    /// Every flow whose path crosses this link (active or idle).
    std::vector<FluidFlowId> flows;
    std::uint32_t epoch = 0;
    // Progressive-filling scratch.
    double solve_residual = 0.0;
    std::uint32_t solve_unfixed = 0;
  };

  static constexpr std::uint32_t kIndexBits = 32;
  [[nodiscard]] static std::uint32_t index_of(FluidFlowId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFULL) - 1;
  }
  [[nodiscard]] static std::uint32_t gen_of(FluidFlowId id) {
    return static_cast<std::uint32_t>(id >> kIndexBits);
  }
  [[nodiscard]] FluidFlowId id_of(std::uint32_t index) const {
    return (static_cast<FluidFlowId>(flows_[index].gen) << kIndexBits) |
           (index + 1);
  }

  [[nodiscard]] FlowState* find(FluidFlowId id);
  [[nodiscard]] const FlowState* find(FluidFlowId id) const;

  [[nodiscard]] double compute_steady_cap(const FluidFlowSpec& spec) const;
  [[nodiscard]] double demand_cap(const FlowState& f) const;
  [[nodiscard]] std::uint64_t backlog(const FlowState& f) const;

  /// Integrate transmitted bytes at the current rate up to now.
  void advance_progress(FlowState& f);

  /// Re-solve the connected component reachable from the seed flow (may be
  /// kInvalidFluidFlow) and seed links.
  void resolve(FluidFlowId seed_flow,
               const std::vector<FluidLinkId>& seed_links);
  /// Progressive filling over comp_flows_/comp_links_ (already collected);
  /// leaves per-flow results in solve_rate.
  void fill_component();

  void activate(FluidFlowId id, FlowState& f);
  void deactivate(FlowState& f);
  void schedule_marker(FluidFlowId id, FlowState& f);
  void on_marker(FluidFlowId id);
  void arm_ramp(FluidFlowId id, FlowState& f);
  void on_ramp(FluidFlowId id);

  sim::Simulator& sim_;
  std::vector<LinkState> links_;
  std::vector<FlowState> flows_;
  std::vector<std::uint32_t> free_flows_;
  std::size_t active_count_ = 0;
  std::uint32_t epoch_ = 0;
  FluidStats stats_;
  // Component-collection scratch, reused across solves.
  std::vector<FluidFlowId> comp_flows_;
  std::vector<FluidLinkId> comp_links_;
};

}  // namespace lsl::flow
