#include "flow/path_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::flow {

Bandwidth relay_steady_rate(std::span<const ConnectionParams> hops) {
  LSL_ASSERT(!hops.empty());
  double rate = steady_rate(hops.front()).bits_per_second();
  for (const auto& hop : hops.subspan(1)) {
    rate = std::min(rate, steady_rate(hop).bits_per_second());
  }
  return Bandwidth{rate};
}

SimTime relay_transfer_time(const RelayPathParams& path, std::uint64_t bytes) {
  LSL_ASSERT(!path.hops.empty());
  if (path.hops.size() == 1) {
    return transfer_time(path.hops.front(), bytes);
  }

  // Serial session setup: hop k's handshake begins once the header has
  // reached depot k (one RTT handshake per hop, in sequence, plus half an
  // RTT for the header to cross each established hop).
  SimTime setup = SimTime::zero();
  for (const auto& hop : path.hops) {
    setup += hop.rtt + hop.rtt / 2;
  }

  // Data phase: every hop must individually move all the bytes; hops run
  // concurrently (pipelined), so the slowest hop's data time dominates.
  // Depot buffering lets an upstream hop bank at most pipeline_bytes of
  // head start, which is already captured by taking the max.
  SimTime data = SimTime::zero();
  for (const auto& hop : path.hops) {
    data = std::max(data, data_time(hop, bytes));
  }
  return setup + data;
}

}  // namespace lsl::flow
