// Pipelined multi-hop relay transfer model.
//
// A logistical path is a series of TCP connections joined by depots. Once
// the pipeline is primed, the end-to-end rate is the minimum hop rate (the
// paper's minimax rationale); the costs a relay adds are the serial session
// setup (each hop's handshake starts only after the header reaches it) and
// each hop's own slow-start ramp, which overlap pipeline-fashion.
#pragma once

#include <cstdint>
#include <span>

#include "flow/tcp_model.hpp"

namespace lsl::flow {

struct RelayPathParams {
  std::span<const ConnectionParams> hops;
  /// Per-depot pipeline storage (kernel + user buffers); bounds how far a
  /// fast upstream leg can run ahead. Only shapes transient behaviour; the
  /// completion-time model uses it to cap the head start.
  std::uint64_t depot_pipeline_bytes = 32 * kMiB;
};

/// End-to-end time to move `bytes` from source through every hop to the
/// sink, including serial session setup.
[[nodiscard]] SimTime relay_transfer_time(const RelayPathParams& path,
                                          std::uint64_t bytes);

/// The pipeline's steady end-to-end rate: min over hops.
[[nodiscard]] Bandwidth relay_steady_rate(std::span<const ConnectionParams> hops);

}  // namespace lsl::flow
