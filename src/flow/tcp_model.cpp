#include "flow/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace lsl::flow {

const char* to_string(Cca cca) {
  switch (cca) {
    case Cca::kReno:
      return "reno";
    case Cca::kNewReno:
      return "newreno";
    case Cca::kCubic:
      return "cubic";
    case Cca::kBbr:
      return "bbr";
  }
  return "?";
}

bool parse_cca(std::string_view name, Cca& out) {
  if (name == "reno") {
    out = Cca::kReno;
  } else if (name == "newreno") {
    out = Cca::kNewReno;
  } else if (name == "cubic") {
    out = Cca::kCubic;
  } else if (name == "bbr") {
    out = Cca::kBbr;
  } else {
    return false;
  }
  return true;
}

Bandwidth steady_rate(const ConnectionParams& params) {
  LSL_ASSERT(params.rtt > SimTime::zero());
  const double rtt_s = params.rtt.to_seconds();
  double rate = params.bottleneck.bits_per_second();
  rate = std::min(rate,
                  static_cast<double>(params.window_bytes) * 8.0 / rtt_s);
  if (params.loss_rate > 0.0 && params.cca != Cca::kBbr) {
    const double mathis = kMathisConstant *
                          static_cast<double>(params.mss) * 8.0 /
                          (rtt_s * std::sqrt(params.loss_rate));
    double loss_limited = mathis;
    if (params.cca == Cca::kCubic) {
      // RFC 8312 response function: W_avg = K_c * (RTT/p)^(3/4) segments,
      // i.e. rate = K_c * mss * 8 / (RTT^(1/4) * p^(3/4)). CUBIC never does
      // worse than Reno -- below the crossover RTT it operates in the
      // TCP-friendly region, so the Mathis term is a floor, not replaced.
      const double cubic = kCubicRateConstant *
                           static_cast<double>(params.mss) * 8.0 /
                           (std::pow(rtt_s, 0.25) *
                            std::pow(params.loss_rate, 0.75));
      loss_limited = std::max(mathis, cubic);
    }
    rate = std::min(rate, loss_limited);
  }
  // BBR models the pipe from delivery-rate and min-RTT estimates: random
  // loss neither shrinks its window nor its pacing rate, so only the
  // window/RTT and bottleneck caps above apply.
  return Bandwidth{std::max(rate, 1.0)};
}

SimTime data_time(const ConnectionParams& params, std::uint64_t bytes) {
  if (bytes == 0) {
    return SimTime::zero();
  }
  const Bandwidth steady = steady_rate(params);
  const double steady_window_bytes =
      steady.bytes_per_second() * params.rtt.to_seconds();

  // Slow-start ramp: one window per RTT, doubling, until the window that
  // sustains the steady rate is reached.
  double cwnd = static_cast<double>(params.initial_cwnd_segments) *
                params.mss;
  double sent = 0.0;
  double elapsed_s = 0.0;
  const double rtt_s = params.rtt.to_seconds();
  while (cwnd < steady_window_bytes) {
    if (sent + cwnd >= static_cast<double>(bytes)) {
      // Finishes inside this ramp round.
      const double frac = (static_cast<double>(bytes) - sent) / cwnd;
      return SimTime::from_seconds(elapsed_s + frac * rtt_s);
    }
    sent += cwnd;
    elapsed_s += rtt_s;
    cwnd *= 2.0;
  }
  const double remaining = static_cast<double>(bytes) - sent;
  elapsed_s += remaining / steady.bytes_per_second();
  // Final half-RTT for the tail to arrive and be acknowledged.
  elapsed_s += rtt_s / 2.0;
  return SimTime::from_seconds(elapsed_s);
}

SimTime transfer_time(const ConnectionParams& params, std::uint64_t bytes) {
  // SYN + SYN-ACK costs one RTT before the first data byte leaves.
  return params.rtt + data_time(params, bytes);
}

}  // namespace lsl::flow
