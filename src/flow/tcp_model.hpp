// Analytic TCP transfer-time model.
//
// The packet-level simulator is ground truth; this model reproduces its
// aggregate behaviour in closed form so the paper's 362,895-measurement
// PlanetLab sweep runs in seconds. A transfer is handshake + slow-start
// ramp (cwnd doubling per RTT from the initial window) + remainder at the
// steady rate
//     steady = min(bottleneck, window/RTT, mathis(RTT, loss)),
// where the Mathis term uses a constant calibrated against the simulator
// (per-segment ACKs + SACK recovery run hotter than the textbook 1.22).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"
#include "util/units.hpp"

namespace lsl::flow {

/// Congestion-control algorithm. Defined at the flow layer (not tcp/) so the
/// analytic model and the fluid engine can dispatch on it without depending
/// on the packet stack; tcp::Connection selects its CongestionControl
/// implementation from the same enum (TcpOptions::cca).
enum class Cca : std::uint8_t {
  kReno,     ///< AIMD; classic fast recovery (partial ACK ends the episode)
  kNewReno,  ///< AIMD; partial-ACK hole filling (the historical default)
  kCubic,    ///< RFC 8312: cubic window growth in real time, RTT-fair
  kBbr,      ///< rate-based: model the pipe (btl_bw x min_rtt), ignore loss
};

[[nodiscard]] const char* to_string(Cca cca);
/// Case-sensitive lowercase names: reno | newreno | cubic | bbr.
[[nodiscard]] bool parse_cca(std::string_view name, Cca& out);

/// Mathis constant calibrated against the packet simulator: bulk transfers
/// over lossy WANs (loss 1e-4..2e-3, RTT 20..80 ms, ample windows) imply
/// C in [1.3, 1.9] with a central value of ~1.65 -- hotter than the
/// textbook sqrt(3/2) because per-segment ACKs plus SACK/NewReno recovery
/// keep the pipe fuller than delayed-ACK Reno. Pinned by the calibration
/// golden in flow_model_test.cpp; re-run that test's harness when the
/// congestion-control or recovery code changes.
constexpr double kMathisConstant = 1.65;

/// CUBIC response-function constant: deterministic-loss average window is
///   W_avg = kCubicRateConstant * (RTT / p)^(3/4)   [segments, RTT seconds]
/// The textbook value for C=0.4, beta=0.7 is ~1.05; the simulator's
/// per-segment ACKs and SACK recovery run slightly hotter, matching the
/// Mathis-side calibration. Pinned by CalibrationGolden.CubicConstant.
constexpr double kCubicRateConstant = 1.17;

/// RFC 8312 CUBIC parameters shared by the packet stack and this model.
constexpr double kCubicC = 0.4;     ///< window growth scale (segments/s^3)
constexpr double kCubicBeta = 0.7;  ///< multiplicative-decrease factor

struct ConnectionParams {
  SimTime rtt = SimTime::milliseconds(50);
  /// Path capacity: min of link rates and host throughput caps.
  Bandwidth bottleneck = Bandwidth::mbps(100);
  /// Effective window: min(send buffer, receive buffer).
  std::uint64_t window_bytes = 64 * kKiB;
  double loss_rate = 0.0;
  std::uint32_t mss = 1460;
  std::uint32_t initial_cwnd_segments = 2;
  /// Steady-state model dispatch: Reno/NewReno use the Mathis term, CUBIC
  /// the RFC 8312 response function (with its TCP-friendly floor), BBR is
  /// loss-agnostic (window/RTT and bottleneck caps only).
  Cca cca = Cca::kNewReno;
};

/// Long-run throughput of one connection.
[[nodiscard]] Bandwidth steady_rate(const ConnectionParams& params);

/// Time to move `bytes` over one connection, including the connection
/// handshake and the slow-start ramp.
[[nodiscard]] SimTime transfer_time(const ConnectionParams& params,
                                    std::uint64_t bytes);

/// Time for the data phase only (no handshake) -- used when composing
/// pipelined relay paths whose handshakes happen in series.
[[nodiscard]] SimTime data_time(const ConnectionParams& params,
                                std::uint64_t bytes);

}  // namespace lsl::flow
