// Analytic TCP transfer-time model.
//
// The packet-level simulator is ground truth; this model reproduces its
// aggregate behaviour in closed form so the paper's 362,895-measurement
// PlanetLab sweep runs in seconds. A transfer is handshake + slow-start
// ramp (cwnd doubling per RTT from the initial window) + remainder at the
// steady rate
//     steady = min(bottleneck, window/RTT, mathis(RTT, loss)),
// where the Mathis term uses a constant calibrated against the simulator
// (per-segment ACKs + SACK recovery run hotter than the textbook 1.22).
#pragma once

#include <cstdint>

#include "util/time.hpp"
#include "util/units.hpp"

namespace lsl::flow {

/// Mathis constant calibrated against the packet simulator: bulk transfers
/// over lossy WANs (loss 1e-4..2e-3, RTT 20..80 ms, ample windows) imply
/// C in [1.3, 1.9] with a central value of ~1.65 -- hotter than the
/// textbook sqrt(3/2) because per-segment ACKs plus SACK/NewReno recovery
/// keep the pipe fuller than delayed-ACK Reno. Pinned by the calibration
/// golden in flow_model_test.cpp; re-run that test's harness when the
/// congestion-control or recovery code changes.
constexpr double kMathisConstant = 1.65;

struct ConnectionParams {
  SimTime rtt = SimTime::milliseconds(50);
  /// Path capacity: min of link rates and host throughput caps.
  Bandwidth bottleneck = Bandwidth::mbps(100);
  /// Effective window: min(send buffer, receive buffer).
  std::uint64_t window_bytes = 64 * kKiB;
  double loss_rate = 0.0;
  std::uint32_t mss = 1460;
  std::uint32_t initial_cwnd_segments = 2;
};

/// Long-run throughput of one connection.
[[nodiscard]] Bandwidth steady_rate(const ConnectionParams& params);

/// Time to move `bytes` over one connection, including the connection
/// handshake and the slow-start ramp.
[[nodiscard]] SimTime transfer_time(const ConnectionParams& params,
                                    std::uint64_t bytes);

/// Time for the data phase only (no handshake) -- used when composing
/// pipelined relay paths whose handshakes happen in series.
[[nodiscard]] SimTime data_time(const ConnectionParams& params,
                                std::uint64_t bytes);

}  // namespace lsl::flow
