#include "lsl/depot.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "mc/hooks.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::session {

DepotMetrics* DepotMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local DepotMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.sessions_accepted = &reg.counter("lsl.depot.sessions_accepted");
    metrics.sessions_refused = &reg.counter("lsl.depot.sessions_refused");
    metrics.sessions_relayed = &reg.counter("lsl.depot.sessions_relayed");
    metrics.sessions_delivered = &reg.counter("lsl.depot.sessions_delivered");
    metrics.bytes_relayed = &reg.counter("lsl.depot.bytes_relayed");
    metrics.bytes_delivered = &reg.counter("lsl.depot.bytes_delivered");
    metrics.sessions_interrupted =
        &reg.counter("lsl.depot.sessions_interrupted");
    metrics.sessions_resumed = &reg.counter("lsl.depot.sessions_resumed");
    metrics.offset_queries = &reg.counter("lsl.depot.offset_queries");
    metrics.stall_us = &reg.counter("lsl.depot.stall_us");
    metrics.buffer_occupancy = &reg.gauge("lsl.depot.buffer_occupancy");
    // Session sizes from the paper span 1 MiB .. 1 GiB in doublings.
    metrics.relay_session_mib = &reg.histogram(
        "lsl.depot.relay_session_mib", obs::exponential_buckets(1.0, 2.0, 11));
  }
  return &metrics;
}

// ---------------------------------------------------------------------------
// Relay: one accepted session flowing through this depot.

class Depot::Relay : public std::enable_shared_from_this<Depot::Relay> {
 public:
  Relay(Depot& depot, tcp::Connection::Ptr upstream)
      : depot_(depot),
        up_(std::move(upstream)),
        accepted_at_(depot.stack_.simulator().now()) {}

  void start() {
    up_->on_readable = [this] { on_upstream_readable(); };
    up_->on_eof = [this] { on_upstream_eof(); };
    up_->on_closed = [this] { on_upstream_closed(); };
    up_->on_error = [this](tcp::ConnectionError e) { on_upstream_error(e); };
    // Data may already be buffered by the time the relay is attached.
    on_upstream_readable();
  }

  /// Forcefully terminate this session (depot shutdown).
  void abort_session() { fail(); }

  void detach_callbacks() {
    auto clear = [](const tcp::Connection::Ptr& c) {
      if (c) {
        c->on_readable = nullptr;
        c->on_writable = nullptr;
        c->on_eof = nullptr;
        c->on_closed = nullptr;
        c->on_connected = nullptr;
        c->on_error = nullptr;
      }
    };
    clear(up_);
    clear(down_);
    for (auto& child : children_) {
      clear(child.conn);
    }
  }

 private:
  enum class Phase {
    kReadingHeader,
    kRelaying,    ///< unicast store-and-forward
    kDelivering,  ///< this node is the destination
    kStoring,     ///< async session parked here
    kServingFetch,
    kServingOffset,  ///< answering a resume-offset probe
    kMulticast,
    kDone,
  };

  struct Child {
    tcp::Connection::Ptr conn;
    std::uint64_t sent = 0;  ///< payload stream offset written so far
    bool header_written = false;
    bool closed = false;
  };

  // ---- header ingestion --------------------------------------------------

  void on_upstream_readable() {
    if (phase_ == Phase::kReadingHeader) {
      ingest_header();
      if (phase_ == Phase::kReadingHeader) {
        return;  // still incomplete
      }
    }
    pump();
  }

  void ingest_header() {
    // Read conservatively until the full header is buffered; any payload
    // that rides along in the same segment stays queued in the socket for
    // the relay pump.
    while (phase_ == Phase::kReadingHeader) {
      std::size_t want = kHeaderPreambleBytes;
      if (hdr_buf_.size() >= kHeaderPreambleBytes) {
        const auto total = peek_header_length(hdr_buf_);
        if (!total.has_value()) {
          fail();
          return;
        }
        want = *total;
      }
      if (hdr_buf_.size() < want) {
        auto r = up_->read(want - hdr_buf_.size());
        if (r.n == 0) {
          return;  // wait for more bytes
        }
        LSL_ASSERT_MSG(r.real_bytes.size() == r.n,
                       "session header bytes must be real content");
        hdr_buf_.insert(hdr_buf_.end(), r.real_bytes.begin(),
                        r.real_bytes.end());
        continue;
      }
      const auto parsed = decode(hdr_buf_);
      if (!parsed.has_value()) {
        fail();
        return;
      }
      hdr_ = *parsed;
      begin_role();
      return;
    }
  }

  // ---- role selection ----------------------------------------------------

  void begin_role() {
    const net::NodeId me = depot_.node_id();

    if (hdr_.type == SessionType::kFetch) {
      phase_ = Phase::kServingFetch;
      serve_fetch();
      return;
    }

    if (hdr_.type == SessionType::kOffsetQuery) {
      phase_ = Phase::kServingOffset;
      serve_offset_query();
      return;
    }

    if (hdr_.multicast.has_value()) {
      const auto index = hdr_.multicast->find(me);
      if (index.has_value()) {
        const auto kids = hdr_.multicast->children_of(*index);
        if (!kids.empty()) {
          phase_ = Phase::kMulticast;
          if (!reserve_buffer()) {
            return;
          }
          for (const net::NodeId kid : kids) {
            open_child(kid);
          }
          pump();
          return;
        }
      }
      // Leaf (or not in the tree at all): consume locally.
      phase_ = Phase::kDelivering;
      pump();
      return;
    }

    if (hdr_.dst == me) {
      phase_ = Phase::kDelivering;
      // Resumable unicast deliveries write the progress ledger and account
      // through it. Striped sessions reuse one session id across parallel
      // byte streams, so a shared scalar offset is meaningless for them.
      ledger_tracked_ = !(hdr_.stripe.has_value() && hdr_.stripe->count > 1);
      if (hdr_.resume_offset > 0) {
        // Resumed session: the source restarts the payload stream at our
        // committed offset, so account delivery on top of that base.
        resume_base_ = hdr_.resume_offset;
        ++depot_.stats_.sessions_resumed;
        if (depot_.metrics_ != nullptr) {
          depot_.metrics_->sessions_resumed->inc();
        }
      }
      pump();
      return;
    }

    if (hdr_.async_session && hdr_.loose_route.empty()) {
      // Last depot on an asynchronous session: park the payload here; the
      // receiver fetches it later by session id.
      phase_ = Phase::kStoring;
      pump();
      return;
    }

    // Unicast forwarding: loose source route first, then the route table,
    // then direct. Hops naming this depot itself are collapsed -- relaying
    // to yourself only burns connections.
    SessionHeader fwd = hdr_;
    while (!fwd.loose_route.empty() && fwd.loose_route.front() == me) {
      fwd.loose_route.erase(fwd.loose_route.begin());
    }
    net::NodeId next = hdr_.dst;
    if (!fwd.loose_route.empty()) {
      next = fwd.loose_route.front();
      fwd.loose_route.erase(fwd.loose_route.begin());
    } else if (const auto hop = depot_.routes_.next_hop(hdr_.dst);
               hop.has_value() && *hop != me) {
      next = *hop;
    }
    phase_ = Phase::kRelaying;
    if (!reserve_buffer()) {
      return;
    }
    forward_header_ = std::move(fwd);
    open_downstream(next);
    pump();
  }

  /// Claim relay buffer memory from the depot pool; fails the session when
  /// the pool is exhausted.
  bool reserve_buffer() {
    user_buffer_granted_ = depot_.reserve_user_memory();
    if (user_buffer_granted_ == 0) {
      ++depot_.stats_.sessions_refused;
      if (depot_.metrics_ != nullptr) {
        depot_.metrics_->sessions_refused->inc();
      }
      fail();
      return false;
    }
    return true;
  }

  void open_downstream(net::NodeId next) {
    down_ = depot_.stack_.connect(next, kLslPort, depot_.config_.tcp);
    if (depot_.on_downstream_open) {
      depot_.on_downstream_open(*down_, forward_header_);
    }
    down_->on_connected = [this] {
      const auto bytes = encode(forward_header_);
      const std::uint64_t n = down_->write_bytes(bytes);
      LSL_ASSERT_MSG(n == bytes.size(),
                     "send buffer must hold the session header");
      down_ready_ = true;
      pump();
    };
    down_->on_writable = [this] { pump(); };
    down_->on_closed = [this] { on_downstream_closed(); };
  }

  void open_child(net::NodeId kid) {
    Child child;
    child.conn = depot_.stack_.connect(kid, kLslPort, depot_.config_.tcp);
    const std::size_t index = children_.size();
    child.conn->on_connected = [this, index] {
      Child& c = children_[index];
      const auto bytes = encode(hdr_);  // same tree travels to every child
      const std::uint64_t n = c.conn->write_bytes(bytes);
      LSL_ASSERT(n == bytes.size());
      c.header_written = true;
      pump();
    };
    child.conn->on_writable = [this] { pump(); };
    child.conn->on_closed = [this, index] {
      children_[index].closed = true;
      pump();
    };
    children_.push_back(std::move(child));
  }

  // ---- the relay pump ----------------------------------------------------

  void pump() {
    if (phase_ == Phase::kDone || phase_ == Phase::kReadingHeader) {
      return;
    }
    switch (phase_) {
      case Phase::kRelaying:
        push_downstream();
        pull_upstream();
        push_downstream();
        break;
      case Phase::kDelivering:
      case Phase::kStoring:
        drain_locally();
        break;
      case Phase::kMulticast:
        push_children();
        pull_upstream();
        push_children();
        break;
      default:
        break;
    }
    finish_if_drained();
  }

  void pull_upstream() {
    while (user_used() < user_buffer_granted_ &&
           up_->readable_bytes() > 0) {
      const std::uint64_t room = user_buffer_granted_ - user_used();
      const std::uint64_t want =
          std::min({room, depot_.config_.relay_chunk_bytes,
                    up_->readable_bytes()});
      const auto r = up_->read(want);
      if (r.n == 0) {
        break;
      }
      buf_high_ += r.n;
      payload_seen_ += r.n;
    }
    account_buffer();
  }

  void push_downstream() {
    if (!down_ready_ || down_ == nullptr) {
      return;
    }
    while (buf_base_ < buf_high_) {
      const std::uint64_t n = down_->write_synthetic(buf_high_ - buf_base_);
      if (n == 0) {
        break;
      }
      buf_base_ += n;
      depot_.stats_.bytes_relayed += n;
      if (depot_.metrics_ != nullptr) {
        depot_.metrics_->bytes_relayed->inc(n);
      }
    }
    account_buffer();
  }

  /// Relay-buffer telemetry: occupancy gauge (high-water tracked inside) and
  /// stall time -- the span during which the buffer sits full, i.e. the
  /// downstream leg is the pipeline bottleneck and backpressure has reached
  /// the upstream socket.
  void account_buffer() {
    LSL_PROTO_CHECK(buf_base_ <= buf_high_,
                    "relay buffer window inverted (base > high)");
    if (depot_.metrics_ != nullptr) {
      depot_.metrics_->buffer_occupancy->set(
          static_cast<double>(user_used()));
    }
    const bool full =
        user_buffer_granted_ > 0 && user_used() >= user_buffer_granted_;
    const SimTime now = depot_.stack_.simulator().now();
    if (full && !stalled_) {
      stalled_ = true;
      stall_since_ = now;
    } else if (!full && stalled_) {
      stalled_ = false;
      if (depot_.metrics_ != nullptr) {
        depot_.metrics_->stall_us->inc(
            static_cast<std::uint64_t>((now - stall_since_).ns() / 1000));
      }
    }
  }

  void push_children() {
    std::uint64_t min_sent = buf_high_;
    for (auto& child : children_) {
      if (child.closed) {
        continue;
      }
      if (child.header_written) {
        while (child.sent < buf_high_) {
          const std::uint64_t n =
              child.conn->write_synthetic(buf_high_ - child.sent);
          if (n == 0) {
            break;
          }
          child.sent += n;
          depot_.stats_.bytes_relayed += n;
          if (depot_.metrics_ != nullptr) {
            depot_.metrics_->bytes_relayed->inc(n);
          }
        }
      }
      min_sent = std::min(min_sent, child.sent);
    }
    buf_base_ = std::max(buf_base_, min_sent);
    account_buffer();
  }

  void drain_locally() {
    while (up_->readable_bytes() > 0) {
      const auto r = up_->read(up_->readable_bytes());
      if (r.n == 0) {
        break;
      }
      payload_seen_ += r.n;
      if (phase_ == Phase::kDelivering) {
        deliver_chunk(r.n);
      }
    }
  }

  /// Hand one drained chunk to the receiving application and account it.
  /// Ledger-tracked deliveries are deduplicated against the committed
  /// offset: a resumed attempt whose resume base came from a *stale* offset
  /// probe (the race: an old relay's salvage commit lands after the probe
  /// was answered) re-sends bytes the application already consumed, and
  /// those must be dropped from delivery accounting, not counted twice.
  void deliver_chunk(std::uint64_t n) {
    const std::uint64_t hi = resume_base_ + payload_seen_;
    std::uint64_t lo = hi - n;
    if (ledger_tracked_) {
      // Live resume watermark: commit before accounting so offset probes
      // see delivery progress as it happens, and so the previous committed
      // value bounds what of this chunk is genuinely new.
      const std::uint64_t previous =
          depot_.commit_progress(hdr_.session_id, hi);
      if (!LSL_MC_MUTATION("skip_delivery_dedup")) {
        lo = std::max(lo, std::min(previous, hi));
      }
    }
    if (lo >= hi) {
      return;  // the whole chunk was already delivered by an earlier relay
    }
    const std::uint64_t fresh = hi - lo;
    depot_.stats_.bytes_delivered += fresh;
    if (depot_.metrics_ != nullptr) {
      depot_.metrics_->bytes_delivered->inc(fresh);
    }
    if (mc::ProtocolObserver* po = mc::observer();
        po != nullptr && ledger_tracked_) {
      po->on_deliver(SessionIdHash{}(hdr_.session_id), lo, hi);
    }
  }

  // ---- fetch serving (async sessions) -------------------------------------

  void serve_fetch() {
    const auto it = depot_.store_.find(hdr_.session_id);
    if (it == depot_.store_.end()) {
      LSL_WARN("depot %u: fetch for unknown session %s", depot_.node_id(),
               hdr_.session_id.str().c_str());
      fail();
      return;
    }
    const auto& [stored_header, stored_bytes] = it->second;
    SessionHeader response = stored_header;
    response.type = SessionType::kData;
    response.loose_route.clear();
    response.async_session = false;
    response.payload_bytes = stored_bytes;
    const auto bytes = encode(response);
    up_->write_bytes(bytes);
    fetch_remaining_ = stored_bytes;
    up_->on_writable = [this] { pump_fetch(); };
    pump_fetch();
  }

  void pump_fetch() {
    while (fetch_remaining_ > 0) {
      const std::uint64_t n = up_->write_synthetic(fetch_remaining_);
      if (n == 0) {
        return;
      }
      fetch_remaining_ -= n;
      depot_.stats_.bytes_relayed += n;
      if (depot_.metrics_ != nullptr) {
        depot_.metrics_->bytes_relayed->inc(n);
      }
    }
    up_->close();
    done();
  }

  // ---- resume-offset probes ------------------------------------------------

  /// Answer a kOffsetQuery: echo the header back with resume_offset set to
  /// this depot's committed byte count for the session, then close. The
  /// response rides our send direction; the relay is finished immediately
  /// (the connection drains independently of relay callbacks).
  void serve_offset_query() {
    ++depot_.stats_.offset_queries;
    if (depot_.metrics_ != nullptr) {
      depot_.metrics_->offset_queries->inc();
    }
    SessionHeader response;
    response.type = SessionType::kOffsetQuery;
    response.session_id = hdr_.session_id;
    response.src = depot_.node_id();
    response.dst = hdr_.src;
    response.resume_offset = depot_.committed_offset(hdr_.session_id);
    const auto bytes = encode(response);
    const std::uint64_t n = up_->write_bytes(bytes);
    LSL_ASSERT_MSG(n == bytes.size(),
                   "send buffer must hold the offset-query response");
    up_->close();
    done();
  }

  // ---- teardown ------------------------------------------------------------

  void on_upstream_eof() {
    up_eof_ = true;
    pump();
  }

  void on_upstream_error(tcp::ConnectionError e) {
    if (phase_ == Phase::kDone) {
      return;
    }
    LSL_DEBUG("depot %u: upstream %s mid-session", depot_.node_id(),
              tcp::to_string(e));
    note_interrupted();
    fail();
  }

  void on_upstream_closed() {
    if (phase_ == Phase::kDone) {
      return;
    }
    if (!up_eof_) {
      // Upstream terminated without a clean FIN (and without a surfaced
      // error, or we would already be done): the session cannot complete.
      note_interrupted();
      fail();
      return;
    }
    // Clean teardown can complete while we still drain; keep pumping.
    pump();
  }

  void note_interrupted() {
    ++depot_.stats_.sessions_interrupted;
    if (depot_.metrics_ != nullptr) {
      depot_.metrics_->sessions_interrupted->inc();
    }
  }

  void on_downstream_closed() {
    if (phase_ == Phase::kDone) {
      return;
    }
    if (!up_eof_ || buf_base_ < buf_high_) {
      // Downstream died mid-relay: tear the session down.
      fail();
    }
  }

  void finish_if_drained() {
    if (phase_ == Phase::kDone || !up_eof_ || up_->readable_bytes() > 0) {
      return;
    }
    switch (phase_) {
      case Phase::kRelaying:
        if (buf_base_ == buf_high_ && down_ready_) {
          down_->close();
          up_->close();  // our send direction was never used; finish both
          ++depot_.stats_.sessions_relayed;
          if (depot_.metrics_ != nullptr) {
            depot_.metrics_->sessions_relayed->inc();
          }
          done();
        }
        break;
      case Phase::kDelivering: {
        const SessionHeader header = hdr_;
        const std::uint64_t bytes = resume_base_ + payload_seen_;
        const SimTime accepted = accepted_at_;
        // Keep the full total in the ledger (instead of erasing) so a late
        // offset probe reads "everything committed" and the source resends
        // nothing rather than everything.
        if (ledger_tracked_) {
          depot_.commit_progress(header.session_id, bytes);
        }
        up_->close();
        done();
        depot_.session_delivered(header, bytes, accepted);
        break;
      }
      case Phase::kStoring:
        depot_.schedule_store(hdr_, payload_seen_);
        up_->close();
        done();
        break;
      case Phase::kMulticast: {
        bool all_sent = true;
        for (const auto& child : children_) {
          if (!child.closed && child.sent < buf_high_) {
            all_sent = false;
            break;
          }
        }
        if (all_sent) {
          for (auto& child : children_) {
            if (!child.closed) {
              child.conn->close();
            }
          }
          up_->close();
          ++depot_.stats_.sessions_relayed;
          if (depot_.metrics_ != nullptr) {
            depot_.metrics_->sessions_relayed->inc();
          }
          done();
        }
        break;
      }
      default:
        break;
    }
  }

  void fail() {
    if (phase_ == Phase::kDone) {
      return;
    }
    if (phase_ == Phase::kDelivering) {
      // Commit whatever arrived before the failure so the source can resume
      // from here instead of byte 0; bytes still queued in the socket are
      // salvaged first (deliver_chunk commits each salvaged chunk).
      drain_locally();
      if (ledger_tracked_ && resume_base_ + payload_seen_ > 0) {
        depot_.commit_progress(hdr_.session_id, resume_base_ + payload_seen_);
      }
    }
    if (up_) {
      up_->abort();
    }
    if (down_) {
      down_->abort();
    }
    for (auto& child : children_) {
      if (child.conn && !child.closed) {
        child.conn->abort();
      }
    }
    done();
  }

  void done() {
    if (phase_ == Phase::kDone) {
      return;
    }
    const SimTime now = depot_.stack_.simulator().now();
    if (stalled_) {
      stalled_ = false;
      if (depot_.metrics_ != nullptr) {
        depot_.metrics_->stall_us->inc(
            static_cast<std::uint64_t>((now - stall_since_).ns() / 1000));
      }
    }
    if (depot_.metrics_ != nullptr &&
        (phase_ == Phase::kRelaying || phase_ == Phase::kMulticast)) {
      depot_.metrics_->relay_session_mib->observe(
          static_cast<double>(payload_seen_) / static_cast<double>(kMiB));
    }
    if (auto* tr = obs::tracer(); tr != nullptr) {
      // One complete span per session; overlapping sessions stay legible in
      // the Chrome trace because 'X' events carry their own duration.
      const char* name = "lsl.session";
      switch (phase_) {
        case Phase::kRelaying: name = "lsl.relay"; break;
        case Phase::kDelivering: name = "lsl.deliver"; break;
        case Phase::kStoring: name = "lsl.store"; break;
        case Phase::kServingFetch: name = "lsl.fetch"; break;
        case Phase::kServingOffset: name = "lsl.offset_query"; break;
        case Phase::kMulticast: name = "lsl.multicast"; break;
        default: break;
      }
      tr->complete(accepted_at_, now - accepted_at_, "lsl", name,
                   SessionIdHash{}(hdr_.session_id));
    }
    phase_ = Phase::kDone;
    depot_.release_user_memory(user_buffer_granted_);
    user_buffer_granted_ = 0;
    depot_.relay_done(this);
  }

  [[nodiscard]] std::uint64_t user_used() const {
    return buf_high_ - buf_base_;
  }

  Depot& depot_;
  tcp::Connection::Ptr up_;
  tcp::Connection::Ptr down_;
  Phase phase_ = Phase::kReadingHeader;
  std::vector<std::byte> hdr_buf_;
  SessionHeader hdr_;
  SessionHeader forward_header_;
  bool down_ready_ = false;
  bool up_eof_ = false;
  /// Relay buffer accounting in payload-stream offsets: [buf_base_,
  /// buf_high_) is held in user space right now.
  std::uint64_t buf_base_ = 0;
  std::uint64_t buf_high_ = 0;
  std::uint64_t payload_seen_ = 0;
  /// Resumed delivery: stream offset where this connection's payload starts.
  std::uint64_t resume_base_ = 0;
  std::uint64_t fetch_remaining_ = 0;
  SimTime accepted_at_;
  std::uint64_t user_buffer_granted_ = 0;
  /// True for resumable unicast deliveries that account through the
  /// progress ledger (multicast leaves and striped arrivals stay out: their
  /// ids collide across branches/stripes, so ledger dedup would misfire).
  bool ledger_tracked_ = false;
  bool stalled_ = false;            ///< relay buffer currently full
  SimTime stall_since_ = SimTime::zero();
  std::vector<Child> children_;
};

// ---------------------------------------------------------------------------
// Depot

Depot::Depot(tcp::TcpStack& stack, DepotConfig config)
    : stack_(stack), config_(config), metrics_(DepotMetrics::get()) {
  stack_.listen(
      kLslPort, [this](tcp::Connection::Ptr conn) { on_accept(std::move(conn)); },
      config_.tcp);
}

void Depot::shutdown() {
  if (!running_) {
    return;
  }
  running_ = false;
  stack_.stop_listening(kLslPort);
  // fail() ends each relay via a deferred erase; iterate over a copy.
  const auto relays = relays_;
  for (const auto& relay : relays) {
    relay->abort_session();
  }
  // In-flight deferred stores die with the process: a crashed depot never
  // parks the payload it was about to store.
  for (const sim::EventId id : pending_stores_) {
    stack_.simulator().cancel(id);
  }
  pending_stores_.clear();
  store_.clear();
  store_order_.clear();
  store_bytes_used_ = 0;
  stripes_.clear();
}

void Depot::restart() {
  if (running_) {
    return;
  }
  running_ = true;
  stack_.listen(
      kLslPort,
      [this](tcp::Connection::Ptr conn) { on_accept(std::move(conn)); },
      config_.tcp);
}

Depot::~Depot() {
  for (auto& relay : relays_) {
    relay->detach_callbacks();
  }
  for (const sim::EventId id : pending_stores_) {
    stack_.simulator().cancel(id);
  }
  if (running_) {
    stack_.stop_listening(kLslPort);
  }
}

void Depot::on_accept(tcp::Connection::Ptr conn) {
  if (active_ >= config_.max_sessions) {
    ++stats_.sessions_refused;
    if (metrics_ != nullptr) {
      metrics_->sessions_refused->inc();
    }
    conn->abort();
    return;
  }
  ++stats_.sessions_accepted;
  if (metrics_ != nullptr) {
    metrics_->sessions_accepted->inc();
  }
  ++active_;
  auto relay = std::make_shared<Relay>(*this, std::move(conn));
  relays_.push_back(relay);
  relay->start();
}

void Depot::relay_done(Relay* relay) {
  LSL_ASSERT(active_ > 0);
  --active_;
  // Deferred removal: we're inside the relay's own callback chain.
  stack_.simulator().schedule_after(
      SimTime::zero(),
      [this, relay] {
        for (auto it = relays_.begin(); it != relays_.end(); ++it) {
          if (it->get() == relay) {
            (*it)->detach_callbacks();
            relays_.erase(it);
            break;
          }
        }
      },
      "lsl.depot");
}

void Depot::session_delivered(const SessionHeader& header,
                              std::uint64_t bytes, SimTime accepted_at) {
  SessionRecord record;
  record.header = header;
  record.completed_at = stack_.simulator().now();

  if (header.stripe.has_value() && header.stripe->count > 1) {
    // One stripe of a striped session: aggregate until all have arrived.
    auto& partial = stripes_[header.session_id];
    if (partial.remaining == 0) {
      partial.remaining = header.stripe->count;
      partial.first_accepted = accepted_at;
    }
    partial.bytes += bytes;
    partial.first_accepted = std::min(partial.first_accepted, accepted_at);
    if (--partial.remaining > 0) {
      return;
    }
    record.bytes = partial.bytes;
    record.accepted_at = partial.first_accepted;
    stripes_.erase(header.session_id);
  } else {
    record.bytes = bytes;
    record.accepted_at = accepted_at;
  }

  ++stats_.sessions_delivered;
  if (metrics_ != nullptr) {
    metrics_->sessions_delivered->inc();
  }
  if (on_session_complete) {
    on_session_complete(record);
  }
}

void Depot::store_session(const SessionHeader& header, std::uint64_t bytes) {
  if (bytes > config_.max_store_bytes) {
    // Cannot ever fit; count it as evicted-on-arrival.
    ++stats_.sessions_evicted;
    return;
  }
  while (store_bytes_used_ + bytes > config_.max_store_bytes &&
         !store_order_.empty()) {
    const SessionId victim = store_order_.front();
    store_order_.pop_front();
    if (const auto it = store_.find(victim); it != store_.end()) {
      store_bytes_used_ -= it->second.second;
      store_.erase(it);
      ++stats_.sessions_evicted;
    }
  }
  // Replacing an existing id keeps accounting consistent.
  if (const auto it = store_.find(header.session_id); it != store_.end()) {
    store_bytes_used_ -= it->second.second;
  } else {
    store_order_.push_back(header.session_id);
  }
  store_[header.session_id] = {header, bytes};
  store_bytes_used_ += bytes;
  ++stats_.sessions_stored;
}

void Depot::schedule_store(const SessionHeader& header, std::uint64_t bytes) {
  // Actor tag: stores/evictions on distinct depots commute; stores on the
  // same depot contend for the same FIFO store and must stay dependent.
  // The high bit keeps the tag disjoint from the fault injector's depot
  // actors (node + 1), so a crash and a store on the same node still
  // interleave. +1 keeps node 0 distinct from the "unknown" actor.
  const std::uint32_t actor = 0x80000000u | (node_id() + 1);
  auto slot = std::make_shared<sim::EventId>();
  *slot = stack_.simulator().schedule_after(
      SimTime::zero(),
      [this, header, bytes, slot] {
        std::erase(pending_stores_, *slot);
        store_session(header, bytes);
      },
      "depot.store", actor);
  pending_stores_.push_back(*slot);
}

std::uint64_t Depot::reserve_user_memory() {
  if (config_.total_user_memory_bytes == 0) {
    if (mc::ProtocolObserver* po = mc::observer()) {
      po->on_buffer(node_id(),
                    static_cast<std::int64_t>(config_.user_buffer_bytes));
    }
    return config_.user_buffer_bytes;  // unlimited pool
  }
  const std::uint64_t available =
      config_.total_user_memory_bytes > user_memory_in_use_
          ? config_.total_user_memory_bytes - user_memory_in_use_
          : 0;
  const std::uint64_t grant =
      std::min(config_.user_buffer_bytes, available);
  if (grant < config_.min_user_grant_bytes) {
    return 0;
  }
  user_memory_in_use_ += grant;
  if (mc::ProtocolObserver* po = mc::observer()) {
    po->on_buffer(node_id(), static_cast<std::int64_t>(grant));
  }
  return grant;
}

void Depot::release_user_memory(std::uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  if (mc::ProtocolObserver* po = mc::observer()) {
    po->on_buffer(node_id(), -static_cast<std::int64_t>(bytes));
  }
  if (config_.total_user_memory_bytes == 0) {
    return;  // unlimited pool: no shared accounting to update
  }
  LSL_ASSERT(user_memory_in_use_ >= bytes);
  user_memory_in_use_ -= bytes;
}

std::uint64_t Depot::commit_progress(const SessionId& id,
                                     std::uint64_t bytes) {
  // Bounded ledger: enough for every live recovery plus a long tail of
  // completed sessions, evicted FIFO.
  constexpr std::size_t kMaxProgressEntries = 4096;
  const auto [it, inserted] = progress_.try_emplace(id, bytes);
  std::uint64_t previous = 0;
  if (!inserted) {
    previous = it->second;
    it->second = std::max(it->second, bytes);  // progress never regresses
    LSL_PROTO_CHECK(it->second >= previous,
                    "committed offset regressed in ledger");
  } else {
    progress_order_.push_back(id);
    while (progress_.size() > kMaxProgressEntries &&
           !progress_order_.empty()) {
      progress_.erase(progress_order_.front());
      progress_order_.pop_front();
    }
  }
  if (mc::ProtocolObserver* po = mc::observer()) {
    po->on_commit(SessionIdHash{}(id), previous, std::max(previous, bytes));
  }
  return previous;
}

std::uint64_t Depot::committed_offset(const SessionId& id) const {
  const auto it = progress_.find(id);
  return it == progress_.end() ? 0 : it->second;
}

std::optional<std::uint64_t> Depot::stored_bytes(const SessionId& id) const {
  const auto it = store_.find(id);
  if (it == store_.end()) {
    return std::nullopt;
  }
  return it->second.second;
}

}  // namespace lsl::session
