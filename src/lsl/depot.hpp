// LSL depot: the user-level session-layer router.
//
// A depot listens on the LSL port and, per accepted session:
//   * parses the in-band session header,
//   * picks the next hop (loose source route option, then its route table,
//     then direct to the destination),
//   * relays the byte stream through a bounded user-space buffer with
//     backpressure -- it only reads from the upstream socket when buffer
//     space exists, so TCP flow control propagates upstream exactly as in
//     the paper's measured 32 MB pipeline (2 x 8 MB kernel + 2 x 8 MB user),
//   * delivers locally (and fires the completion callback) when this node is
//     the session's destination,
//   * stores the payload for async sessions (receiver fetches later), and
//   * fans a multicast staging tree session out to its children.
//
// Admission control (paper section 6 future work): a depot refuses new
// sessions past max_sessions.
#pragma once

#include <deque>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "lsl/header.hpp"
#include "lsl/route_table.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::session {

/// Process-wide depot instruments in the global metrics registry (aggregated
/// across depots; per-depot detail stays in DepotStats).
struct DepotMetrics {
  obs::Counter* sessions_accepted;  ///< lsl.depot.sessions_accepted
  obs::Counter* sessions_refused;   ///< lsl.depot.sessions_refused
  obs::Counter* sessions_relayed;   ///< lsl.depot.sessions_relayed
  obs::Counter* sessions_delivered; ///< lsl.depot.sessions_delivered
  obs::Counter* bytes_relayed;      ///< lsl.depot.bytes_relayed
  obs::Counter* bytes_delivered;    ///< lsl.depot.bytes_delivered
  obs::Counter* sessions_interrupted;  ///< lsl.depot.sessions_interrupted
  obs::Counter* sessions_resumed;   ///< lsl.depot.sessions_resumed
  obs::Counter* offset_queries;     ///< lsl.depot.offset_queries
  obs::Counter* stall_us;           ///< lsl.depot.stall_us (buffer-full time)
  obs::Gauge* buffer_occupancy;     ///< lsl.depot.buffer_occupancy (bytes)
  obs::Histogram* relay_session_mib;///< lsl.depot.relay_session_mib

  /// nullptr while obs::metrics_enabled() is false.
  static DepotMetrics* get();
};

struct DepotConfig {
  /// User-space relay buffer per session. The paper's depots allocate
  /// send_buffer + receive_buffer bytes of user storage (16 MB with the
  /// 8 MB kernel buffers used on Abilene).
  std::uint64_t user_buffer_bytes = 16 * kMiB;
  /// TCP options for both the accepted (upstream) and initiated
  /// (downstream) connections -- the "kernel buffers".
  tcp::TcpOptions tcp;
  /// Admission control: refuse sessions beyond this many concurrent.
  std::size_t max_sessions = 1024;
  /// Largest single read when pulling from the upstream socket.
  std::uint64_t relay_chunk_bytes = 256 * kKiB;
  /// Total bytes of parked asynchronous sessions this depot will hold;
  /// storing past the cap evicts the oldest sessions first.
  std::uint64_t max_store_bytes = 256 * kMiB;
  /// Depot-wide cap on relay user-space memory across concurrent sessions
  /// (0 = unlimited). Sessions get up to user_buffer_bytes each; when the
  /// pool runs low a session is granted less, and below min_user_grant it
  /// is refused outright (admission control by memory, complementing
  /// max_sessions).
  std::uint64_t total_user_memory_bytes = 0;
  std::uint64_t min_user_grant_bytes = 64 * kKiB;
};

struct DepotStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_refused = 0;
  std::uint64_t sessions_relayed = 0;
  std::uint64_t sessions_delivered = 0;
  std::uint64_t sessions_stored = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t bytes_relayed = 0;
  std::uint64_t bytes_delivered = 0;
  /// Sessions whose upstream died (reset / timeout) before completion.
  std::uint64_t sessions_interrupted = 0;
  /// Deliveries that resumed from a nonzero committed offset.
  std::uint64_t sessions_resumed = 0;
  std::uint64_t offset_queries = 0;
};

/// A completed local delivery (this node was the destination).
struct SessionRecord {
  SessionHeader header;
  std::uint64_t bytes = 0;
  SimTime accepted_at = SimTime::zero();
  SimTime completed_at = SimTime::zero();
};

class Depot {
 public:
  /// Fired when a session addressed to this node finishes arriving.
  std::function<void(const SessionRecord&)> on_session_complete;

  /// Fired when this depot opens a downstream relay connection (before the
  /// handshake completes); experiments attach trace hooks here.
  std::function<void(tcp::Connection&, const SessionHeader&)>
      on_downstream_open;

  Depot(tcp::TcpStack& stack, DepotConfig config);
  ~Depot();

  Depot(const Depot&) = delete;
  Depot& operator=(const Depot&) = delete;

  void set_route_table(RouteTable table) { routes_ = std::move(table); }
  [[nodiscard]] const RouteTable& route_table() const { return routes_; }

  /// Take the depot out of service: stop listening, abort every active
  /// session (peers see RST), drop the async store. The object remains
  /// valid for introspection; restart() brings it back.
  void shutdown();
  void restart();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] const DepotStats& stats() const { return stats_; }
  [[nodiscard]] net::NodeId node_id() const { return stack_.node_id(); }
  [[nodiscard]] std::size_t active_sessions() const { return active_; }

  /// Committed byte count for a (possibly interrupted) delivery, 0 when the
  /// session is unknown. This is what kOffsetQuery probes read; a source
  /// resumes its resend from here instead of byte 0.
  [[nodiscard]] std::uint64_t committed_offset(const SessionId& id) const;

  /// Async-session store introspection (bytes held for a session id).
  [[nodiscard]] std::optional<std::uint64_t> stored_bytes(
      const SessionId& id) const;
  [[nodiscard]] std::uint64_t store_bytes_used() const {
    return store_bytes_used_;
  }

 private:
  class Relay;
  friend class Relay;

  void on_accept(tcp::Connection::Ptr conn);
  void relay_done(Relay* relay);
  /// Park an async session, evicting the oldest entries past the cap.
  void store_session(const SessionHeader& header, std::uint64_t bytes);
  /// Defer store_session to its own simulator event (zero delay) carrying a
  /// per-depot mc actor tag, so a model-checking ChoiceHook can interleave
  /// store/eviction orderings across depots. Pending events are cancelled on
  /// shutdown (a crashed depot parks nothing).
  void schedule_store(const SessionHeader& header, std::uint64_t bytes);
  /// Account one finished local delivery; aggregates striped sessions and
  /// fires on_session_complete when the whole session has arrived.
  void session_delivered(const SessionHeader& header, std::uint64_t bytes,
                         SimTime accepted_at);
  /// Record delivery progress for resume (monotonic per session, bounded
  /// ledger with FIFO eviction). Returns the previous committed value (0
  /// for a new entry) so delivery accounting can deduplicate against it.
  std::uint64_t commit_progress(const SessionId& id, std::uint64_t bytes);
  /// Reserve relay buffer memory from the depot-wide pool; returns the
  /// granted byte count (0 when the pool cannot meet the minimum grant).
  [[nodiscard]] std::uint64_t reserve_user_memory();
  void release_user_memory(std::uint64_t bytes);

  tcp::TcpStack& stack_;
  DepotConfig config_;
  RouteTable routes_;
  DepotStats stats_;
  std::size_t active_ = 0;
  std::vector<std::shared_ptr<Relay>> relays_;
  /// Stored async sessions: id -> (header, payload byte count), plus
  /// insertion order for capacity eviction.
  std::unordered_map<SessionId, std::pair<SessionHeader, std::uint64_t>,
                     SessionIdHash>
      store_;
  std::deque<SessionId> store_order_;
  std::uint64_t store_bytes_used_ = 0;
  /// Deferred store_session events not yet fired (see schedule_store).
  std::vector<sim::EventId> pending_stores_;
  /// Partially arrived striped sessions: id -> (bytes so far, stripes left,
  /// earliest accept time).
  struct PartialStripes {
    std::uint64_t bytes = 0;
    std::uint16_t remaining = 0;
    SimTime first_accepted = SimTime::zero();
  };
  std::unordered_map<SessionId, PartialStripes, SessionIdHash> stripes_;
  /// Delivery-progress ledger: id -> committed bytes, FIFO-bounded. Survives
  /// shutdown()/restart() -- it models what the receiving application has
  /// already consumed, which a depot process crash does not undo.
  std::unordered_map<SessionId, std::uint64_t, SessionIdHash> progress_;
  std::deque<SessionId> progress_order_;
  std::uint64_t user_memory_in_use_ = 0;
  bool running_ = true;
  DepotMetrics* metrics_ = nullptr;  ///< shared instruments (may be null)
};

}  // namespace lsl::session
