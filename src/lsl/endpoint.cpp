#include "lsl/endpoint.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::session {

LslSource::Ptr LslSource::start(tcp::TcpStack& stack, const TransferSpec& spec,
                                Rng& rng) {
  LSL_ASSERT_MSG(spec.dst != net::kInvalidNode || spec.multicast.has_value(),
                 "transfer needs a destination or a multicast tree");
  LSL_ASSERT_MSG(spec.streams >= 1, "streams must be positive");
  LSL_ASSERT_MSG(spec.streams == 1 ||
                     (!spec.async_session && !spec.multicast.has_value()),
                 "striping composes with unicast sessions only");
  LSL_ASSERT_MSG(spec.resume_offset == 0 ||
                     (spec.streams == 1 && !spec.async_session &&
                      !spec.multicast.has_value()),
                 "resume composes with single-stream unicast sessions only");

  auto source = Ptr(new LslSource());
  source->id_ = spec.session_id.value_or(SessionId::random(rng));
  source->started_at_ = stack.simulator().now();

  SessionHeader base_header;
  base_header.session_id = source->id_;
  base_header.src = stack.node_id();
  base_header.src_port = 0;
  base_header.dst = spec.dst;
  base_header.dst_port = kLslPort;
  base_header.payload_bytes = spec.payload_bytes;
  base_header.async_session = spec.async_session;
  base_header.multicast = spec.multicast;
  base_header.resume_offset = spec.resume_offset;

  net::NodeId first_hop = spec.dst;
  if (spec.multicast.has_value()) {
    LSL_ASSERT_MSG(!spec.multicast->entries.empty(), "empty multicast tree");
    first_hop = spec.multicast->entries.front().node;
  } else if (!spec.via.empty()) {
    first_hop = spec.via.front();
    base_header.loose_route.assign(spec.via.begin() + 1, spec.via.end());
  }

  const std::uint64_t per_stripe = spec.payload_bytes / spec.streams;
  for (std::uint16_t s = 0; s < spec.streams; ++s) {
    SessionHeader header = base_header;
    Stripe stripe;
    stripe.remaining = (s + 1 == spec.streams)
                           ? spec.payload_bytes - per_stripe * (spec.streams - 1)
                           : per_stripe;
    header.payload_bytes = stripe.remaining;
    if (spec.streams > 1) {
      header.stripe = StripeInfo{s, spec.streams};
    }
    stripe.conn = stack.connect(first_hop, kLslPort, spec.tcp);
    auto* conn = stripe.conn.get();
    const std::size_t index = source->stripes_.size();
    // The source object stays alive through the socket callbacks.
    conn->on_connected = [source, conn, header, index] {
      const auto bytes = encode(header);
      const std::uint64_t n = conn->write_bytes(bytes);
      LSL_ASSERT_MSG(n == bytes.size(),
                     "send buffer must accommodate the session header");
      source->pump(index);
    };
    conn->on_writable = [source, index] { source->pump(index); };
    source->stripes_.push_back(std::move(stripe));
  }
  return source;
}

void LslSource::pump(std::size_t stripe_index) {
  Stripe& stripe = stripes_[stripe_index];
  if (stripe.finished) {
    return;
  }
  while (stripe.remaining > 0) {
    const std::uint64_t sent = stripe.conn->write_synthetic(stripe.remaining);
    if (sent == 0) {
      return;
    }
    stripe.remaining -= sent;
  }
  stripe.finished = true;
  stripe.conn->close();
  stripe.conn->on_writable = nullptr;
  if (++stripes_finished_ == stripes_.size() && on_sent) {
    on_sent();
  }
}

AsyncFetcher::Ptr AsyncFetcher::start(tcp::TcpStack& stack, net::NodeId depot,
                                      const SessionId& id,
                                      const tcp::TcpOptions& options) {
  auto fetcher = Ptr(new AsyncFetcher());
  fetcher->started_at_ = stack.simulator().now();

  SessionHeader request;
  request.type = SessionType::kFetch;
  request.session_id = id;
  request.src = stack.node_id();
  request.dst = depot;
  request.dst_port = kLslPort;

  fetcher->sim_ = &stack.simulator();
  fetcher->conn_ = stack.connect(depot, kLslPort, options);
  auto* conn = fetcher->conn_.get();
  conn->on_connected = [conn, request] {
    const auto bytes = encode(request);
    conn->write_bytes(bytes);
    conn->close();  // request fully stated; response flows back
  };
  conn->on_readable = [fetcher] { fetcher->on_readable(); };
  conn->on_eof = [fetcher] {
    fetcher->on_readable();
    if (fetcher->header_.has_value()) {
      if (fetcher->on_complete) {
        Result result;
        result.header = *fetcher->header_;
        result.bytes = fetcher->payload_;
        result.elapsed = fetcher->sim_->now() - fetcher->started_at_;
        fetcher->on_complete(result);
      }
    } else if (fetcher->on_error) {
      fetcher->on_error();
    }
  };
  // Abnormal teardown (depot reset, connect timeout) is reported directly;
  // on_closed additionally catches local aborts on malformed responses.
  conn->on_error = [fetcher](tcp::ConnectionError e) {
    LSL_DEBUG("fetch: connection %s", tcp::to_string(e));
    if (fetcher->on_error) {
      fetcher->on_error();
      fetcher->on_error = nullptr;
    }
  };
  conn->on_closed = [fetcher] {
    if (!fetcher->header_.has_value() && fetcher->on_error) {
      fetcher->on_error();
      fetcher->on_error = nullptr;
    }
  };
  return fetcher;
}

void AsyncFetcher::on_readable() {
  while (true) {
    if (!header_.has_value()) {
      std::size_t want = kHeaderPreambleBytes;
      if (hdr_buf_.size() >= kHeaderPreambleBytes) {
        const auto total = peek_header_length(hdr_buf_);
        if (!total.has_value()) {
          conn_->abort();
          return;
        }
        want = *total;
      }
      if (hdr_buf_.size() < want) {
        auto r = conn_->read(want - hdr_buf_.size());
        if (r.n == 0) {
          return;
        }
        hdr_buf_.insert(hdr_buf_.end(), r.real_bytes.begin(),
                        r.real_bytes.end());
        continue;
      }
      header_ = decode(hdr_buf_);
      if (!header_.has_value()) {
        conn_->abort();
        return;
      }
      continue;
    }
    if (conn_->readable_bytes() == 0) {
      return;
    }
    const auto r = conn_->read(conn_->readable_bytes());
    if (r.n == 0) {
      return;
    }
    payload_ += r.n;
  }
}

}  // namespace lsl::session
