// LSL endpoints: the session initiator (source) and the asynchronous-session
// fetch receiver. Sinks need no dedicated class -- a Depot delivers sessions
// addressed to its own node and fires its completion callback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lsl/depot.hpp"
#include "lsl/header.hpp"
#include "tcp/stack.hpp"
#include "util/rng.hpp"

namespace lsl::session {

/// Everything needed to launch one LSL transfer.
struct TransferSpec {
  net::NodeId dst = net::kInvalidNode;
  /// Relay depots, in order; empty means a direct session.
  std::vector<net::NodeId> via;
  std::uint64_t payload_bytes = 0;
  tcp::TcpOptions tcp;
  bool async_session = false;
  std::optional<MulticastTree> multicast;
  /// Parallel serial-socket stripes sharing one session id (PSockets-style
  /// striping composed with logistical forwarding). Must be 1 for async
  /// and multicast sessions.
  std::uint16_t streams = 1;
  /// Reuse this id instead of generating one (session recovery relaunches
  /// the same session so the sink can aggregate progress).
  std::optional<SessionId> session_id;
  /// Resume: payload_bytes covers the remainder starting at this stream
  /// offset (the sink's committed byte count). Unicast, streams == 1 only.
  std::uint64_t resume_offset = 0;
};

/// Initiates a session: connects to the first hop (or the destination),
/// writes the session header followed by the payload, then closes. The
/// object lives until the local socket winds down.
class LslSource : public std::enable_shared_from_this<LslSource> {
 public:
  using Ptr = std::shared_ptr<LslSource>;

  /// Fired when the local send completes (all payload handed to TCP and the
  /// socket closed). End-to-end completion is observed at the receiving
  /// depot via its on_session_complete callback.
  std::function<void()> on_sent;

  /// Launch a transfer; returns the source (holding it is optional) with the
  /// generated session id available immediately.
  static Ptr start(tcp::TcpStack& stack, const TransferSpec& spec, Rng& rng);

  [[nodiscard]] const SessionId& session_id() const { return id_; }
  [[nodiscard]] SimTime started_at() const { return started_at_; }
  /// The underlying first-hop TCP connection of stripe 0 (tracing hooks).
  [[nodiscard]] tcp::Connection* connection() {
    return stripes_.empty() ? nullptr : stripes_.front().conn.get();
  }
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }

 private:
  LslSource() = default;

  struct Stripe {
    tcp::Connection::Ptr conn;
    std::uint64_t remaining = 0;
    bool finished = false;
  };

  void pump(std::size_t stripe_index);

  SessionId id_;
  SimTime started_at_;
  std::vector<Stripe> stripes_;
  std::size_t stripes_finished_ = 0;
};

/// Retrieves an asynchronously stored session from a depot (paper section 2:
/// "the receiver discovering the session identifier and reading the data
/// from the last depot").
class AsyncFetcher : public std::enable_shared_from_this<AsyncFetcher> {
 public:
  using Ptr = std::shared_ptr<AsyncFetcher>;

  struct Result {
    SessionHeader header;
    std::uint64_t bytes = 0;
    SimTime elapsed = SimTime::zero();
  };

  std::function<void(const Result&)> on_complete;
  std::function<void()> on_error;

  static Ptr start(tcp::TcpStack& stack, net::NodeId depot,
                   const SessionId& id, const tcp::TcpOptions& options);

 private:
  AsyncFetcher() = default;

  void on_readable();

  SimTime started_at_;
  sim::Simulator* sim_ = nullptr;
  tcp::Connection::Ptr conn_;
  std::vector<std::byte> hdr_buf_;
  std::optional<SessionHeader> header_;
  std::uint64_t payload_ = 0;
};

}  // namespace lsl::session
