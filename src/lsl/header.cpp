#include "lsl/header.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace lsl::session {

namespace {

constexpr std::byte kMagic0{'L'};
constexpr std::byte kMagic1{'S'};

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(std::byte{v}); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

 private:
  std::vector<std::byte>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

  std::uint8_t u8() {
    if (pos_ >= in_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint16_t u16() {
    const auto hi = u8();
    const auto lo = u8();
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }
  std::uint32_t u32() {
    const auto hi = u16();
    const auto lo = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | lo;
  }
  std::uint64_t u64() {
    const auto hi = u32();
    const auto lo = u32();
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }
  void skip(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return;
    }
    pos_ += n;
  }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<net::NodeId> MulticastTree::children_of(std::size_t index) const {
  std::vector<net::NodeId> kids;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].parent_index == index) {
      kids.push_back(entries[i].node);
    }
  }
  return kids;
}

std::optional<std::size_t> MulticastTree::find(net::NodeId node) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].node == node) {
      return i;
    }
  }
  return std::nullopt;
}

std::size_t SessionHeader::encoded_size() const {
  std::size_t size = kFixedHeaderBytes;
  if (!loose_route.empty()) {
    size += 4 + 4 * loose_route.size();
  }
  if (multicast.has_value()) {
    size += 4 + 2 + 6 * multicast->entries.size();
  }
  if (async_session) {
    size += 4;
  }
  if (stripe.has_value()) {
    size += 4 + 4;
  }
  if (resume_offset != 0) {
    size += 4 + 8;
  }
  return size;
}

std::vector<std::byte> encode(const SessionHeader& header) {
  std::vector<std::byte> out;
  out.reserve(header.encoded_size());
  Writer w(out);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  w.u16(header.version);
  w.u16(static_cast<std::uint16_t>(header.type));
  w.u16(static_cast<std::uint16_t>(header.encoded_size()));
  for (const std::uint8_t b : header.session_id.bytes) {
    w.u8(b);
  }
  w.u32(header.src);
  w.u16(header.src_port);
  w.u32(header.dst);
  w.u16(header.dst_port);
  w.u64(header.payload_bytes);

  if (!header.loose_route.empty()) {
    w.u16(kOptLooseSourceRoute);
    w.u16(static_cast<std::uint16_t>(4 * header.loose_route.size()));
    for (const net::NodeId hop : header.loose_route) {
      w.u32(hop);
    }
  }
  if (header.multicast.has_value()) {
    w.u16(kOptMulticastTree);
    w.u16(static_cast<std::uint16_t>(2 + 6 * header.multicast->entries.size()));
    w.u16(static_cast<std::uint16_t>(header.multicast->entries.size()));
    for (const auto& e : header.multicast->entries) {
      w.u32(e.node);
      w.u16(e.parent_index);
    }
  }
  if (header.async_session) {
    w.u16(kOptAsyncSession);
    w.u16(0);
  }
  if (header.stripe.has_value()) {
    w.u16(kOptStripe);
    w.u16(4);
    w.u16(header.stripe->index);
    w.u16(header.stripe->count);
  }
  if (header.resume_offset != 0) {
    w.u16(kOptResumeOffset);
    w.u16(8);
    w.u64(header.resume_offset);
  }
  LSL_ASSERT(out.size() == header.encoded_size());
  return out;
}

std::optional<std::size_t> peek_header_length(
    std::span<const std::byte> preamble) {
  if (preamble.size() < kHeaderPreambleBytes) {
    return std::nullopt;
  }
  if (preamble[0] != kMagic0 || preamble[1] != kMagic1) {
    return std::nullopt;
  }
  Reader r(preamble.subspan(6, 2));
  const std::uint16_t len = r.u16();
  if (len < kFixedHeaderBytes) {
    return std::nullopt;
  }
  return len;
}

std::optional<SessionHeader> decode(std::span<const std::byte> bytes) {
  const auto total = peek_header_length(bytes);
  if (!total.has_value() || bytes.size() < *total) {
    return std::nullopt;
  }
  Reader r(bytes.first(*total));
  r.skip(2);  // magic, verified by peek
  SessionHeader h;
  h.version = r.u16();
  h.type = static_cast<SessionType>(r.u16());
  r.skip(2);  // header length, already consumed via peek
  for (auto& b : h.session_id.bytes) {
    b = r.u8();
  }
  h.src = r.u32();
  h.src_port = r.u16();
  h.dst = r.u32();
  h.dst_port = r.u16();
  h.payload_bytes = r.u64();

  while (r.ok() && r.remaining() > 0) {
    const std::uint16_t opt_type = r.u16();
    const std::uint16_t opt_len = r.u16();
    if (!r.ok() || r.remaining() < opt_len) {
      return std::nullopt;
    }
    switch (opt_type) {
      case kOptLooseSourceRoute: {
        if (opt_len % 4 != 0) {
          return std::nullopt;
        }
        for (std::uint16_t i = 0; i < opt_len / 4; ++i) {
          h.loose_route.push_back(r.u32());
        }
        break;
      }
      case kOptMulticastTree: {
        const std::uint16_t count = r.u16();
        if (opt_len != 2 + 6 * count) {
          return std::nullopt;
        }
        MulticastTree tree;
        for (std::uint16_t i = 0; i < count; ++i) {
          MulticastTree::Entry e;
          e.node = r.u32();
          e.parent_index = r.u16();
          tree.entries.push_back(e);
        }
        h.multicast = std::move(tree);
        break;
      }
      case kOptAsyncSession: {
        if (opt_len != 0) {
          return std::nullopt;
        }
        h.async_session = true;
        break;
      }
      case kOptStripe: {
        if (opt_len != 4) {
          return std::nullopt;
        }
        StripeInfo stripe;
        stripe.index = r.u16();
        stripe.count = r.u16();
        if (stripe.count == 0 || stripe.index >= stripe.count) {
          return std::nullopt;
        }
        h.stripe = stripe;
        break;
      }
      case kOptResumeOffset: {
        if (opt_len != 8) {
          return std::nullopt;
        }
        h.resume_offset = r.u64();
        break;
      }
      default:
        // Unknown options are skipped (forward compatibility).
        r.skip(opt_len);
        break;
    }
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return h;
}

}  // namespace lsl::session
