// LSL session header codec.
//
// Wire layout (big-endian), mirroring the paper's description: a 128-bit
// session id, source/destination address and 16-bit port, 16-bit Version and
// Type fields, and a header-length field because the size varies with
// options. Options are TLVs; currently defined are the loose source route
// (the initiator-specified path through session-layer routers), the
// synchronous multicast staging tree, and the asynchronous-session flag.
//
//   offset  size  field
//   0       2     magic "LS"
//   2       2     version
//   4       2     type
//   6       2     header_length (total bytes including options)
//   8       16    session id
//   24      4     source address (IPv4-sized node id)
//   28      2     source port
//   30      4     destination address
//   34      2     destination port
//   36      8     payload length (bytes following the header)
//   44      ...   options (TLV: u16 type, u16 value length, value)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lsl/session_id.hpp"
#include "net/packet.hpp"

namespace lsl::session {

constexpr std::uint16_t kHeaderVersion = 1;
/// The well-known LSL session-layer port.
constexpr net::Port kLslPort = 4911;
constexpr std::size_t kFixedHeaderBytes = 44;
/// Bytes needed before the total header length is known.
constexpr std::size_t kHeaderPreambleBytes = 8;

enum class SessionType : std::uint16_t {
  kData = 1,   ///< synchronous point-to-point stream
  kFetch = 2,  ///< asynchronous retrieval of a stored session
  /// Recovery probe: "how many bytes of this session did you commit?" The
  /// sink answers with a kOffsetQuery header whose resume_offset carries its
  /// committed byte count, then closes. Carries no payload.
  kOffsetQuery = 3,
};

enum OptionType : std::uint16_t {
  kOptLooseSourceRoute = 1,
  kOptMulticastTree = 2,
  kOptAsyncSession = 3,
  kOptStripe = 4,
  kOptResumeOffset = 5,
};

/// Striped session: this connection carries stripe `index` of `count`
/// parallel serial-socket streams sharing one session id (PSockets-style
/// parallelism composed with logistical forwarding).
struct StripeInfo {
  std::uint16_t index = 0;
  std::uint16_t count = 1;

  friend bool operator==(const StripeInfo&, const StripeInfo&) = default;
};

/// Multicast staging tree: nodes in preorder with parent indices;
/// entry 0 is the root (the first depot) with parent_index == 0.
struct MulticastTree {
  struct Entry {
    net::NodeId node = net::kInvalidNode;
    std::uint16_t parent_index = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<Entry> entries;

  /// Children of the entry at `index`.
  [[nodiscard]] std::vector<net::NodeId> children_of(std::size_t index) const;
  /// Index of `node` in the tree, or nullopt.
  [[nodiscard]] std::optional<std::size_t> find(net::NodeId node) const;

  friend bool operator==(const MulticastTree&, const MulticastTree&) = default;
};

struct SessionHeader {
  std::uint16_t version = kHeaderVersion;
  SessionType type = SessionType::kData;
  SessionId session_id;
  net::NodeId src = net::kInvalidNode;
  net::Port src_port = 0;
  net::NodeId dst = net::kInvalidNode;
  net::Port dst_port = 0;
  std::uint64_t payload_bytes = 0;

  /// Remaining relay hops (not including the final destination).
  std::vector<net::NodeId> loose_route;
  std::optional<MulticastTree> multicast;
  bool async_session = false;
  std::optional<StripeInfo> stripe;
  /// Resumed session: payload starts at this byte of the original stream
  /// (the sink's committed offset); in kOffsetQuery replies, the committed
  /// byte count itself. Zero means a fresh session and is not encoded.
  std::uint64_t resume_offset = 0;

  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const SessionHeader&, const SessionHeader&) = default;
};

/// Serialize to wire bytes.
[[nodiscard]] std::vector<std::byte> encode(const SessionHeader& header);

/// Total header length from a preamble of >= kHeaderPreambleBytes bytes;
/// nullopt if the magic/version is unrecognizable.
[[nodiscard]] std::optional<std::size_t> peek_header_length(
    std::span<const std::byte> preamble);

/// Parse a complete header; nullopt on malformed input.
[[nodiscard]] std::optional<SessionHeader> decode(
    std::span<const std::byte> bytes);

}  // namespace lsl::session
