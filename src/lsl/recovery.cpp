#include "lsl/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "mc/hooks.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::session {

namespace {

/// Rng fork salt from a session id (first eight bytes, little-endian).
std::uint64_t id_salt(const SessionId& id) {
  std::uint64_t salt = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    salt |= static_cast<std::uint64_t>(id.bytes[i]) << (8 * i);
  }
  return salt;
}

}  // namespace

RecoveryMetrics* RecoveryMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local RecoveryMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.failures_detected = &reg.counter("lsl.recovery.failures_detected");
    metrics.retries = &reg.counter("lsl.recovery.retries");
    metrics.sessions_recovered =
        &reg.counter("lsl.recovery.sessions_recovered");
    metrics.sessions_failed = &reg.counter("lsl.recovery.sessions_failed");
    metrics.depots_blacklisted =
        &reg.counter("lsl.recovery.depots_blacklisted");
    metrics.offset_probes = &reg.counter("lsl.recovery.offset_probes");
    metrics.resumed_bytes_saved =
        &reg.counter("lsl.recovery.resumed_bytes_saved");
    metrics.planned_handovers =
        &reg.counter("lsl.recovery.planned_handovers");
  }
  return &metrics;
}

ReliableTransfer::ReliableTransfer(tcp::TcpStack& stack, TransferSpec spec,
                                   RecoveryConfig config, Rng rng,
                                   RouteProvider provider)
    : stack_(stack),
      sim_(stack.simulator()),
      spec_(std::move(spec)),
      config_(config),
      rng_(rng),
      provider_(std::move(provider)),
      total_bytes_(spec_.payload_bytes),
      current_via_(spec_.via),
      stall_timer_(sim_, [this] { on_stall_tick(); }, "lsl.recovery"),
      backoff_timer_(
          sim_,
          [this] {
            end_backoff_span();
            start_probe(ProbePurpose::kRelaunch);
          },
          "lsl.recovery"),
      metrics_(RecoveryMetrics::get()) {}

ReliableTransfer::Ptr ReliableTransfer::start(tcp::TcpStack& stack,
                                              const TransferSpec& spec,
                                              const RecoveryConfig& config,
                                              Rng& rng,
                                              RouteProvider route_provider) {
  LSL_ASSERT_MSG(spec.dst != net::kInvalidNode, "recovery needs a unicast dst");
  LSL_ASSERT_MSG(spec.streams == 1 && !spec.async_session &&
                     !spec.multicast.has_value(),
                 "recovery composes with single-stream unicast transfers");
  TransferSpec bound = spec;
  if (!bound.session_id.has_value()) {
    bound.session_id = SessionId::random(rng);
  }
  const SessionId id = *bound.session_id;
  auto transfer = Ptr(new ReliableTransfer(stack, std::move(bound), config,
                                           rng.fork(id_salt(id)),
                                           std::move(route_provider)));
  transfer->id_ = id;
  if (obs::SpanRecorder* sr = obs::spans()) {
    const std::uint64_t sess = SessionIdHash{}(id);
    transfer->transfer_span_ =
        sr->begin(stack.simulator().now(), obs::SpanKind::kTransfer, sess,
                  sr->session_root(sess), 0, "",
                  static_cast<double>(transfer->total_bytes_));
  }
  transfer->launch_attempt();
  return transfer;
}

void ReliableTransfer::launch_attempt() {
  if (mc::ProtocolObserver* po = mc::observer()) {
    // Observation point: an attempt must never ride a blacklisted depot
    // (mc::Invariants cross-checks via against the live blacklist).
    po->on_attempt(SessionIdHash{}(id_), current_via_, blacklist_);
  }
  state_ = State::kRunning;
  TransferSpec attempt = spec_;
  attempt.session_id = id_;
  attempt.via = current_via_;
  attempt.resume_offset = committed_;
  attempt.payload_bytes =
      committed_ < total_bytes_ ? total_bytes_ - committed_ : 0;

  source_ = LslSource::start(stack_, attempt, rng_);
  local_send_done_ = false;
  last_acked_ = 0;
  probe_watermark_ = committed_;

  auto self = shared_from_this();
  source_->on_sent = [self] { self->local_send_done_ = true; };
  tcp::Connection* conn = source_->connection();
  LSL_ASSERT(conn != nullptr);
  if (obs::SpanRecorder* sr = obs::spans()) {
    attempt_span_ = sr->begin(sim_.now(), obs::SpanKind::kAttempt,
                              span_session(), transfer_span_,
                              last_attempt_span_, "",
                              static_cast<double>(committed_));
    last_attempt_span_ = attempt_span_;
    conn->set_span_context(span_session(), attempt_span_);
  }
  conn->on_error = [self](tcp::ConnectionError e) {
    self->on_failure(tcp::to_string(e));
  };
  conn->on_closed = [self] {
    // A clean close after the local send finished is the normal wind-down;
    // anything earlier means the first hop dropped us without explanation.
    if (!self->local_send_done_) {
      self->on_failure("closed");
    }
  };
  stall_timer_.arm(config_.stall_timeout);
}

void ReliableTransfer::detach_source() {
  if (source_ == nullptr) {
    return;
  }
  source_->on_sent = nullptr;
  if (tcp::Connection* conn = source_->connection()) {
    conn->on_error = nullptr;
    conn->on_closed = nullptr;
    conn->end_spans("detached");
  }
}

void ReliableTransfer::on_failure(const char* reason) {
  if (outcome_ != Outcome::kPending ||
      (state_ != State::kRunning && state_ != State::kProbing)) {
    return;
  }
  LSL_DEBUG("recovery %s: failure (%s), attempt %d", id_.str().c_str(),
            reason, retries_);
  if (metrics_ != nullptr) {
    metrics_->failures_detected->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "lsl", "recovery.failure", SessionIdHash{}(id_));
  }
  if (obs::SpanRecorder* sr = obs::spans()) {
    // Stall-triggered failures cover a retroactive dead-air window: the
    // watchdog only fires after stall_timeout without progress.
    if (std::strcmp(reason, "stall") == 0 ||
        std::strcmp(reason, "delivery stalled") == 0) {
      const SimTime window = std::min(config_.stall_timeout, sim_.now());
      sr->complete(sim_.now() - window, window, obs::SpanKind::kStall,
                   span_session(), attempt_span_, reason);
    }
  }
  end_probe_span("aborted");
  stall_timer_.cancel();
  detach_source();
  if (source_ != nullptr) {
    if (tcp::Connection* conn = source_->connection()) {
      conn->abort();
    }
    source_.reset();
  }
  // Conservatively blacklist every depot of the failed attempt: the source
  // cannot tell which relay in the chain died.
  for (const net::NodeId hop : current_via_) {
    if (std::find(blacklist_.begin(), blacklist_.end(), hop) ==
        blacklist_.end()) {
      blacklist_.push_back(hop);
      if (metrics_ != nullptr) {
        metrics_->depots_blacklisted->inc();
      }
    }
  }
  end_attempt_span(reason);
  if (!config_.enabled || retries_ >= config_.max_retries) {
    finish_failed();
    return;
  }
  ++retries_;
  if (metrics_ != nullptr) {
    metrics_->retries->inc();
  }
  state_ = State::kBackoff;
  if (obs::SpanRecorder* sr = obs::spans()) {
    backoff_span_ =
        sr->begin(sim_.now(), obs::SpanKind::kBackoff, span_session(),
                  transfer_span_, 0, "", static_cast<double>(retries_));
  }
  backoff_timer_.arm(next_backoff());
}

SimTime ReliableTransfer::next_backoff() {
  double seconds = config_.initial_backoff.to_seconds();
  for (int i = 1; i < retries_; ++i) {
    seconds *= config_.backoff_multiplier;
  }
  seconds = std::min(seconds, config_.max_backoff.to_seconds());
  const double jitter =
      1.0 + config_.backoff_jitter * (2.0 * rng_.next_double() - 1.0);
  return std::max(SimTime::from_seconds(seconds * jitter),
                  SimTime::milliseconds(1));
}

void ReliableTransfer::on_stall_tick() {
  if (outcome_ != Outcome::kPending) {
    return;
  }
  if (state_ == State::kProbing) {
    // The probe itself hung (sink unreachable); give up on it and let the
    // purpose-specific path continue with what we already know.
    if (probe_conn_ != nullptr) {
      probe_conn_->abort();
    }
    if (state_ == State::kProbing) {  // abort may have re-entered
      probe_finish(std::nullopt);
    }
    return;
  }
  if (state_ != State::kRunning) {
    return;
  }
  if (!local_send_done_) {
    tcp::Connection* conn = source_ ? source_->connection() : nullptr;
    const std::uint64_t acked = conn != nullptr ? conn->acked_payload() : 0;
    if (acked > last_acked_) {
      last_acked_ = acked;
      stall_timer_.arm(config_.stall_timeout);
      return;
    }
    on_failure("stall");
    return;
  }
  // Local send complete but no delivery signal yet: poll the sink's
  // committed offset to distinguish "still draining" from "lost".
  start_probe(ProbePurpose::kWatchdog);
}

void ReliableTransfer::start_probe(ProbePurpose purpose) {
  if (outcome_ != Outcome::kPending) {
    return;
  }
  state_ = State::kProbing;
  probe_purpose_ = purpose;
  probe_buf_.clear();
  probe_header_.reset();
  if (metrics_ != nullptr) {
    metrics_->offset_probes->inc();
  }
  if (obs::SpanRecorder* sr = obs::spans()) {
    const char* why = purpose == ProbePurpose::kWatchdog   ? "watchdog"
                      : purpose == ProbePurpose::kRelaunch ? "relaunch"
                                                           : "handover";
    const std::uint64_t parent = purpose == ProbePurpose::kHandover
                                     ? handover_span_
                                     : (attempt_span_ != 0 ? attempt_span_
                                                           : transfer_span_);
    probe_span_ = sr->begin(sim_.now(), obs::SpanKind::kProbe, span_session(),
                            parent, 0, why);
  }

  SessionHeader request;
  request.type = SessionType::kOffsetQuery;
  request.session_id = id_;
  request.src = stack_.node_id();
  request.dst = spec_.dst;
  request.dst_port = kLslPort;

  auto self = shared_from_this();
  probe_conn_ = stack_.connect(spec_.dst, kLslPort, spec_.tcp);
  tcp::Connection* conn = probe_conn_.get();
  conn->on_connected = [self, request] {
    if (self->probe_conn_ == nullptr) {
      return;
    }
    const auto bytes = encode(request);
    self->probe_conn_->write_bytes(bytes);
    self->probe_conn_->close();  // query fully stated; answer flows back
  };
  conn->on_readable = [self] { self->probe_read(); };
  conn->on_eof = [self] {
    self->probe_read();
    self->probe_finish(self->probe_header_.has_value()
                           ? std::optional<std::uint64_t>(
                                 self->probe_header_->resume_offset)
                           : std::nullopt);
  };
  conn->on_error = [self](tcp::ConnectionError) {
    self->probe_finish(std::nullopt);
  };
  conn->on_closed = [self] {
    self->probe_finish(self->probe_header_.has_value()
                           ? std::optional<std::uint64_t>(
                                 self->probe_header_->resume_offset)
                           : std::nullopt);
  };
  // Bound the probe's lifetime (covers connect hangs to a dead sink).
  stall_timer_.arm(config_.stall_timeout);
}

void ReliableTransfer::probe_read() {
  if (probe_conn_ == nullptr || probe_header_.has_value()) {
    return;
  }
  while (!probe_header_.has_value()) {
    std::size_t want = kHeaderPreambleBytes;
    if (probe_buf_.size() >= kHeaderPreambleBytes) {
      const auto total = peek_header_length(probe_buf_);
      if (!total.has_value()) {
        return;  // malformed; the eof/closed path reports no offset
      }
      want = *total;
    }
    if (probe_buf_.size() < want) {
      auto r = probe_conn_->read(want - probe_buf_.size());
      if (r.n == 0) {
        return;
      }
      probe_buf_.insert(probe_buf_.end(), r.real_bytes.begin(),
                        r.real_bytes.end());
      continue;
    }
    probe_header_ = decode(probe_buf_);
    return;
  }
}

void ReliableTransfer::probe_finish(std::optional<std::uint64_t> offset) {
  if (state_ != State::kProbing || outcome_ != Outcome::kPending) {
    return;
  }
  stall_timer_.cancel();
  if (probe_conn_ != nullptr) {
    probe_conn_->on_connected = nullptr;
    probe_conn_->on_readable = nullptr;
    probe_conn_->on_eof = nullptr;
    probe_conn_->on_error = nullptr;
    probe_conn_->on_closed = nullptr;
    probe_conn_.reset();
  }
  if (offset.has_value() && *offset > committed_) {
    committed_ = std::min(*offset, total_bytes_);
  }
  end_probe_span(offset.has_value() ? "offset" : "no-offset",
                 static_cast<double>(committed_));
  if (probe_purpose_ == ProbePurpose::kHandover) {
    // Planned handover: the drain probe pinned down what the sink has; the
    // rest moves over the new relay chain. Deliberately not relaunch_with --
    // the advisor already chose the path, the provider must not override it.
    current_via_ = handover_via_;
    handover_via_.clear();
    if (metrics_ != nullptr && committed_ > saved_accounted_) {
      metrics_->resumed_bytes_saved->inc(committed_ - saved_accounted_);
      saved_accounted_ = committed_;
    }
    LSL_DEBUG("recovery %s: handover %llu from offset %llu via %zu depots",
              id_.str().c_str(), static_cast<unsigned long long>(handovers_),
              static_cast<unsigned long long>(committed_),
              current_via_.size());
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->instant(sim_.now(), obs::SpanKind::kResume, span_session(),
                  handover_span_, last_attempt_span_, "handover",
                  static_cast<double>(committed_));
    }
    end_handover_span("spliced");
    launch_attempt();
    return;
  }
  if (probe_purpose_ == ProbePurpose::kWatchdog) {
    if (offset.has_value() && *offset > probe_watermark_) {
      // The sink consumed more bytes since the last probe; still draining.
      // A sink stalled at total (committed everything but the completion
      // signal was lost) stops advancing and falls through to a zero-byte
      // resume that forces the signal.
      probe_watermark_ = *offset;
      state_ = State::kRunning;
      stall_timer_.arm(config_.stall_timeout);
      return;
    }
    on_failure("delivery stalled");
    return;
  }
  relaunch_with(committed_);
}

void ReliableTransfer::relaunch_with(std::uint64_t sink_committed) {
  LSL_PROTO_CHECK(std::min(sink_committed, total_bytes_) >= committed_,
                  "resume offset regressed below committed");
  committed_ = std::min(sink_committed, total_bytes_);
  if (metrics_ != nullptr && committed_ > saved_accounted_) {
    metrics_->resumed_bytes_saved->inc(committed_ - saved_accounted_);
    saved_accounted_ = committed_;
  }
  if (provider_) {
    current_via_ = provider_(blacklist_);
  } else if (LSL_MC_MUTATION("skip_blacklist_filter")) {
    // Seeded bug (mutation smoke, mc_test): relaunch over the original via
    // list without dropping blacklisted depots -- reverts the guard below
    // so the explorer must flag the re-selection through on_attempt.
    current_via_ = spec_.via;
  } else {
    // Default reroute: drop blacklisted depots from the requested via list,
    // degrading to the direct path when every relay has failed.
    current_via_.clear();
    for (const net::NodeId hop : spec_.via) {
      if (std::find(blacklist_.begin(), blacklist_.end(), hop) ==
          blacklist_.end()) {
        current_via_.push_back(hop);
      }
    }
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "lsl", "recovery.retry", SessionIdHash{}(id_));
  }
  if (obs::SpanRecorder* sr = obs::spans()) {
    sr->instant(sim_.now(), obs::SpanKind::kResume, span_session(),
                transfer_span_, last_attempt_span_, "retry",
                static_cast<double>(committed_));
  }
  LSL_DEBUG("recovery %s: retry %d from offset %llu via %zu depots",
            id_.str().c_str(), retries_,
            static_cast<unsigned long long>(committed_), current_via_.size());
  launch_attempt();
}

bool ReliableTransfer::reroute_to(const std::vector<net::NodeId>& new_via) {
  if (!reroutable() || new_via == current_via_) {
    return false;
  }
  for (const net::NodeId hop : new_via) {
    if (std::find(blacklist_.begin(), blacklist_.end(), hop) !=
        blacklist_.end()) {
      return false;
    }
  }
  ++handovers_;
  if (metrics_ != nullptr) {
    metrics_->planned_handovers->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "lsl", "recovery.handover", SessionIdHash{}(id_));
  }
  // Drain: stop feeding the old path and ask the sink how far it got. The
  // relaunch in probe_finish resumes from that committed offset, so bytes
  // in flight past it are the only work resent.
  stall_timer_.cancel();
  detach_source();
  if (source_ != nullptr) {
    if (tcp::Connection* conn = source_->connection()) {
      conn->abort();
    }
    source_.reset();
  }
  end_attempt_span("handover");
  if (obs::SpanRecorder* sr = obs::spans()) {
    handover_span_ = sr->begin(sim_.now(), obs::SpanKind::kHandover,
                               span_session(), transfer_span_, 0, "",
                               static_cast<double>(handovers_));
  }
  handover_via_ = new_via;
  start_probe(ProbePurpose::kHandover);
  return true;
}

void ReliableTransfer::notify_delivered() {
  if (outcome_ != Outcome::kPending) {
    return;
  }
  outcome_ = Outcome::kCompleted;
  state_ = State::kDone;
  stall_timer_.cancel();
  backoff_timer_.cancel();
  detach_source();
  if (probe_conn_ != nullptr) {
    probe_conn_->on_connected = nullptr;
    probe_conn_->on_readable = nullptr;
    probe_conn_->on_eof = nullptr;
    probe_conn_->on_error = nullptr;
    probe_conn_->on_closed = nullptr;
    probe_conn_->abort();
    probe_conn_.reset();
  }
  if (retries_ > 0) {
    if (metrics_ != nullptr) {
      metrics_->sessions_recovered->inc();
    }
    if (obs::TraceRecorder* tr = obs::tracer()) {
      tr->instant(sim_.now(), "lsl", "recovery.recovered",
                  SessionIdHash{}(id_));
    }
  }
  end_probe_span("abandoned");
  end_backoff_span();
  end_handover_span("abandoned");
  end_attempt_span("delivered");
  end_transfer_span("completed");
  if (on_complete) {
    on_complete();
  }
}

void ReliableTransfer::finish_failed() {
  outcome_ = Outcome::kFailed;
  state_ = State::kDone;
  stall_timer_.cancel();
  backoff_timer_.cancel();
  detach_source();
  source_.reset();
  if (metrics_ != nullptr) {
    metrics_->sessions_failed->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "lsl", "recovery.failed", SessionIdHash{}(id_));
  }
  end_probe_span("aborted");
  end_backoff_span();
  end_handover_span("aborted");
  end_attempt_span("failed");
  end_transfer_span("failed");
  if (on_failed) {
    on_failed();
  }
}

std::uint64_t ReliableTransfer::span_session() const {
  return SessionIdHash{}(id_);
}

void ReliableTransfer::end_attempt_span(const char* reason) {
  if (attempt_span_ != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kAttempt, attempt_span_,
              span_session(), reason);
    }
    attempt_span_ = 0;
  }
}

void ReliableTransfer::end_probe_span(const char* reason, double value) {
  if (probe_span_ != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kProbe, probe_span_, span_session(),
              reason, value);
    }
    probe_span_ = 0;
  }
}

void ReliableTransfer::end_backoff_span() {
  if (backoff_span_ != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kBackoff, backoff_span_,
              span_session());
    }
    backoff_span_ = 0;
  }
}

void ReliableTransfer::end_handover_span(const char* reason) {
  if (handover_span_ != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kHandover, handover_span_,
              span_session(), reason);
    }
    handover_span_ = 0;
  }
}

void ReliableTransfer::end_transfer_span(const char* reason) {
  if (transfer_span_ != 0) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      sr->end(sim_.now(), obs::SpanKind::kTransfer, transfer_span_,
              span_session(), reason);
    }
    transfer_span_ = 0;
  }
}

}  // namespace lsl::session
