// Session-layer fault tolerance (paper section 6 future work: depot failure
// tolerance).
//
// A ReliableTransfer wraps an LslSource with the source-side recovery loop:
//
//   detect    peer abort / reset, connect timeout, or a stall watchdog on
//             acked-byte progress (while sending) and on the sink's
//             committed offset (after the local send finishes);
//   back off  capped exponential backoff with deterministic seeded jitter;
//   reroute   the failed attempt's depots are blacklisted and the route
//             provider (typically the MMP scheduler with those nodes
//             excluded) picks an alternate path, degrading to the direct
//             path when none exists;
//   resume    before relaunching, the sink is probed with a kOffsetQuery and
//             the resend starts at its committed offset, not byte 0.
//
// The same probe-and-resume machinery also powers *planned* handovers
// (reroute_to): when the scheduler's advisor finds a better mid-transfer
// path, the source drains to the sink's committed offset and splices the
// new relay chain in -- no failure, no blacklist, no retry consumed.
//
// End-to-end completion is still observed at the sink depot; the deployment
// wires its on_session_complete callback to notify_delivered().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lsl/endpoint.hpp"
#include "obs/metrics.hpp"
#include "sim/timer.hpp"
#include "tcp/stack.hpp"
#include "util/rng.hpp"

namespace lsl::session {

struct RecoveryConfig {
  /// When false the first detected failure is terminal (no retries); the
  /// detection machinery still runs so failures are reported, not hung.
  bool enabled = true;
  int max_retries = 8;
  SimTime initial_backoff = SimTime::milliseconds(250);
  double backoff_multiplier = 2.0;
  SimTime max_backoff = SimTime::seconds(10);
  /// Uniform jitter fraction: each delay is scaled by 1 +- jitter.
  double backoff_jitter = 0.25;
  /// No acked-byte (or committed-offset) progress for this long = failure.
  /// Also bounds how long an offset probe may hang.
  SimTime stall_timeout = SimTime::seconds(10);
};

/// Process-wide recovery instruments in the global metrics registry.
struct RecoveryMetrics {
  obs::Counter* failures_detected;   ///< lsl.recovery.failures_detected
  obs::Counter* retries;             ///< lsl.recovery.retries
  obs::Counter* sessions_recovered;  ///< lsl.recovery.sessions_recovered
  obs::Counter* sessions_failed;     ///< lsl.recovery.sessions_failed
  obs::Counter* depots_blacklisted;  ///< lsl.recovery.depots_blacklisted
  obs::Counter* offset_probes;       ///< lsl.recovery.offset_probes
  obs::Counter* resumed_bytes_saved; ///< lsl.recovery.resumed_bytes_saved
  obs::Counter* planned_handovers;   ///< lsl.recovery.planned_handovers

  /// nullptr while obs::metrics_enabled() is false.
  static RecoveryMetrics* get();
};

/// Picks the relay path for a retry given the depots blacklisted so far.
/// Returning an empty vector degrades to the direct path. When absent, the
/// default drops blacklisted hops from the original via list.
using RouteProvider = std::function<std::vector<net::NodeId>(
    const std::vector<net::NodeId>& blacklist)>;

class ReliableTransfer : public std::enable_shared_from_this<ReliableTransfer> {
 public:
  using Ptr = std::shared_ptr<ReliableTransfer>;

  enum class Outcome { kPending, kCompleted, kFailed };

  /// Fired once, when the sink reports full delivery (via notify_delivered).
  std::function<void()> on_complete;
  /// Fired once, when retries are exhausted (or recovery is disabled).
  std::function<void()> on_failed;

  /// Launch the first attempt. Unicast, single-stream transfers only.
  static Ptr start(tcp::TcpStack& stack, const TransferSpec& spec,
                   const RecoveryConfig& config, Rng& rng,
                   RouteProvider route_provider = nullptr);

  /// Wire the sink's completion signal here (idempotent).
  void notify_delivered();

  /// Planned mid-transfer handover onto `new_via` (sched::RouteAdvisor's
  /// apply hook). Drains the in-flight attempt to the sink's committed
  /// offset -- the same kOffsetQuery probe failure recovery resumes with --
  /// then relaunches on the new relay chain. Unlike failure recovery this
  /// blacklists nothing and consumes no retry. Returns false without side
  /// effects when the transfer cannot take the handover right now: already
  /// done or draining elsewhere (backoff/probe in flight), the local send
  /// has finished (remaining bytes are past the source), the via is
  /// unchanged, or a requested hop is blacklisted.
  bool reroute_to(const std::vector<net::NodeId>& new_via);

  [[nodiscard]] const SessionId& session_id() const { return id_; }
  [[nodiscard]] Outcome outcome() const { return outcome_; }
  [[nodiscard]] int retries() const { return retries_; }
  /// Completed, but only after at least one retry.
  [[nodiscard]] bool recovered() const {
    return outcome_ == Outcome::kCompleted && retries_ > 0;
  }
  [[nodiscard]] const std::vector<net::NodeId>& blacklist() const {
    return blacklist_;
  }
  /// The sink-committed offset the latest resume started from.
  [[nodiscard]] std::uint64_t committed_offset() const { return committed_; }
  /// Planned handovers taken (reroute_to calls that spliced a new path).
  [[nodiscard]] std::uint64_t handovers() const { return handovers_; }
  /// Relay chain of the active (or pending) attempt.
  [[nodiscard]] const std::vector<net::NodeId>& current_via() const {
    return current_via_;
  }
  /// True while a reroute_to would be accepted (modulo via checks).
  [[nodiscard]] bool reroutable() const {
    return outcome_ == Outcome::kPending && state_ == State::kRunning &&
           !local_send_done_;
  }

 private:
  enum class State { kRunning, kBackoff, kProbing, kDone };
  enum class ProbePurpose { kWatchdog, kRelaunch, kHandover };

  ReliableTransfer(tcp::TcpStack& stack, TransferSpec spec,
                   RecoveryConfig config, Rng rng, RouteProvider provider);

  void launch_attempt();
  void detach_source();
  void on_failure(const char* reason);
  void on_stall_tick();
  void start_probe(ProbePurpose purpose);
  void probe_read();
  void probe_finish(std::optional<std::uint64_t> offset);
  void relaunch_with(std::uint64_t sink_committed);
  void finish_failed();
  [[nodiscard]] SimTime next_backoff();

  // Causal span emission (obs/span.hpp). The transfer owns one open span
  // per layer at a time; end_*_span helpers are idempotent so every exit
  // path (delivered, failed, handover) can close without double-ends.
  [[nodiscard]] std::uint64_t span_session() const;
  void end_attempt_span(const char* reason);
  void end_probe_span(const char* reason, double value = 0.0);
  void end_backoff_span();
  void end_handover_span(const char* reason);
  void end_transfer_span(const char* reason);

  tcp::TcpStack& stack_;
  sim::Simulator& sim_;
  TransferSpec spec_;  ///< original request (via = the preferred route)
  RecoveryConfig config_;
  Rng rng_;  ///< private stream for backoff jitter
  RouteProvider provider_;
  SessionId id_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t committed_ = 0;  ///< sink-committed bytes we know of
  std::uint64_t saved_accounted_ = 0;
  std::vector<net::NodeId> current_via_;
  std::vector<net::NodeId> blacklist_;
  std::vector<net::NodeId> handover_via_;  ///< pending reroute_to target
  std::uint64_t handovers_ = 0;
  LslSource::Ptr source_;
  bool local_send_done_ = false;
  std::uint64_t last_acked_ = 0;
  /// Sink-consumed bytes seen by the most recent watchdog probe.
  std::uint64_t probe_watermark_ = 0;
  State state_ = State::kRunning;
  Outcome outcome_ = Outcome::kPending;
  int retries_ = 0;
  sim::Timer stall_timer_;
  sim::Timer backoff_timer_;
  // In-flight offset probe (one at a time).
  tcp::Connection::Ptr probe_conn_;
  std::vector<std::byte> probe_buf_;
  std::optional<SessionHeader> probe_header_;
  ProbePurpose probe_purpose_ = ProbePurpose::kWatchdog;
  RecoveryMetrics* metrics_ = nullptr;
  // Open causal spans (0 = none). last_attempt_span_ threads follows-from
  // links across retries and handovers (the failover chain).
  std::uint64_t transfer_span_ = 0;
  std::uint64_t attempt_span_ = 0;
  std::uint64_t last_attempt_span_ = 0;
  std::uint64_t probe_span_ = 0;
  std::uint64_t backoff_span_ = 0;
  std::uint64_t handover_span_ = 0;
};

}  // namespace lsl::session
