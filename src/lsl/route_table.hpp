// Per-depot forwarding state: destination -> next hop, exactly the
// "destination/next hop tuples" the paper's scheduler emits for hop-by-hop
// routing (section 4.2).
#pragma once

#include <optional>
#include <unordered_map>

#include "net/packet.hpp"

namespace lsl::session {

class RouteTable {
 public:
  void set(net::NodeId dst, net::NodeId next_hop) { routes_[dst] = next_hop; }

  void clear() { routes_.clear(); }

  /// Next hop toward `dst`; nullopt means "no entry: go direct".
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::NodeId dst) const {
    const auto it = routes_.find(dst);
    if (it == routes_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  std::unordered_map<net::NodeId, net::NodeId> routes_;
};

}  // namespace lsl::session
