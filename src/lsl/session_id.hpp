// 128-bit LSL session identifier (paper section 2: "Each session begins with
// a header containing a 128-bit session identifier").
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace lsl::session {

struct SessionId {
  std::array<std::uint8_t, 16> bytes{};

  [[nodiscard]] static SessionId random(Rng& rng) {
    SessionId id;
    for (std::size_t i = 0; i < 16; i += 8) {
      const std::uint64_t v = rng.next_u64();
      for (std::size_t j = 0; j < 8; ++j) {
        id.bytes[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
      }
    }
    return id;
  }

  [[nodiscard]] std::string str() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string s;
    s.reserve(32);
    for (const std::uint8_t b : bytes) {
      s.push_back(kHex[b >> 4]);
      s.push_back(kHex[b & 0xF]);
    }
    return s;
  }

  friend bool operator==(const SessionId&, const SessionId&) = default;
  friend auto operator<=>(const SessionId&, const SessionId&) = default;
};

struct SessionIdHash {
  std::size_t operator()(const SessionId& id) const {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const std::uint8_t b : id.bytes) {
      h ^= b;
      h *= 0x100000001B3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace lsl::session
