#include "mc/explorer.hpp"

#include <algorithm>
#include <utility>

#include "obs/span.hpp"
#include "util/assert.hpp"

namespace lsl::mc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Two events commute iff both carry a nonzero actor and the actors differ;
/// actor 0 ("unknown") is conservatively dependent on everything.
bool independent(const sim::ReadyEvent& a, const sim::ReadyEvent& b) {
  return a.actor != 0 && b.actor != 0 && a.actor != b.actor;
}

std::string describe(const sim::ReadyEvent& e) {
  std::string out = e.category != nullptr ? e.category : "(untagged)";
  out += " seq=" + std::to_string(e.seq);
  if (e.actor != 0) {
    out += " actor=" + std::to_string(e.actor);
  }
  return out;
}

/// The per-run scheduling policy: follow the pick prefix, default to the
/// deterministic order beyond it, maintain the sleep set, and record every
/// multi-candidate window as a choice point.
class Policy final : public sim::ChoiceHook {
 public:
  Policy(const ExplorerOptions& options,
         const std::vector<std::size_t>& prefix, RunRecord& record)
      : options_(options), prefix_(prefix), record_(record) {
    record_.schedule_hash = kFnvOffset;
  }

  std::size_t choose(const std::vector<sim::ReadyEvent>& ready) override {
    // Candidates = ready minus the sleep set. Sleeping events stay
    // dispatchable (the kernel needs the run to finish) but are never
    // *chosen* ahead of others: any order starting with one is a
    // commutation of a schedule already explored.
    candidate_idx_.clear();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (!sleeping(ready[i])) {
        candidate_idx_.push_back(i);
      }
    }
    pruned_sleep += ready.size() - candidate_idx_.size();
    if (candidate_idx_.empty()) {
      // Every ready event is asleep: this whole run is redundant (the
      // dispatched() callback flags it when the pick actually fires).
      return 0;
    }
    std::size_t pick = 0;
    if (candidate_idx_.size() > 1) {
      const std::size_t cp = record_.trace.size();
      if (cp < prefix_.size() && prefix_[cp] < candidate_idx_.size()) {
        pick = prefix_[cp];
      }
      ChoicePoint point;
      point.when = ready[candidate_idx_[pick]].when;
      for (const std::size_t i : candidate_idx_) {
        point.candidates.push_back(ready[i]);
      }
      point.picked = pick;
      record_.trace.push_back(std::move(point));
    }
    if (options_.sleep_sets) {
      // Unpicked elder siblings go to sleep: orders that fire them before
      // the pick will be reached by the sibling branches instead.
      for (std::size_t j = 0; j < pick; ++j) {
        sleep_.push_back(ready[candidate_idx_[j]]);
      }
    }
    return candidate_idx_[pick];
  }

  void dispatched(const sim::ReadyEvent& fired) override {
    record_.schedule_hash =
        (record_.schedule_hash ^ fired.seq) * kFnvPrime;
    ++record_.events;
    if (!options_.sleep_sets) {
      return;
    }
    if (sleeping(fired)) {
      record_.redundant = true;
    }
    // Waking rule: an event dependent on the fired one leaves the sleep set
    // (the new order is no longer a pure commutation).
    sleep_.erase(std::remove_if(sleep_.begin(), sleep_.end(),
                                [&fired](const sim::ReadyEvent& b) {
                                  return b.seq == fired.seq ||
                                         !independent(b, fired);
                                }),
                 sleep_.end());
  }

  std::uint64_t pruned_sleep = 0;

 private:
  [[nodiscard]] bool sleeping(const sim::ReadyEvent& e) const {
    return std::any_of(
        sleep_.begin(), sleep_.end(),
        [&e](const sim::ReadyEvent& b) { return b.seq == e.seq; });
  }

  const ExplorerOptions& options_;
  const std::vector<std::size_t>& prefix_;
  RunRecord& record_;
  std::vector<sim::ReadyEvent> sleep_;
  std::vector<std::size_t> candidate_idx_;
};

std::vector<std::size_t> picks_of(const RunRecord& record) {
  std::vector<std::size_t> picks;
  picks.reserve(record.trace.size());
  for (const ChoicePoint& point : record.trace) {
    picks.push_back(point.picked);
  }
  while (!picks.empty() && picks.back() == 0) {
    picks.pop_back();  // trailing defaults are implicit
  }
  return picks;
}

}  // namespace

// ---------------------------------------------------------------------------

std::string Counterexample::picks_csv() const {
  std::string out;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(picks[i]);
  }
  return out;
}

std::string Counterexample::str() const {
  std::string out = "counterexample: " + std::to_string(run.trace.size()) +
                    " choice points, replay picks [" + picks_csv() + "]\n";
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    const ChoicePoint& point = run.trace[i];
    out += "  cp " + std::to_string(i) + " @ " + point.when.str() + ": ";
    for (std::size_t j = 0; j < point.candidates.size(); ++j) {
      out += (j == point.picked ? "[" : "");
      out += describe(point.candidates[j]);
      out += (j == point.picked ? "]" : "");
      if (j + 1 < point.candidates.size()) {
        out += " | ";
      }
    }
    out += "\n";
  }
  out += "violations:\n";
  for (const std::string& v : run.violations) {
    out += "  - " + v + "\n";
  }
  return out;
}

std::string ExploreStats::str() const {
  std::string out = "explored " + std::to_string(runs) + " runs (" +
                    std::to_string(distinct_schedules) +
                    " distinct schedules, " + std::to_string(redundant_runs) +
                    " redundant), " + std::to_string(choice_points) +
                    " choice points, " + std::to_string(events) + " events\n";
  out += "pruned: " + std::to_string(branches_pruned_sleep) +
         " sleep-set, " + std::to_string(branches_pruned_budget) +
         " budget; violations in " + std::to_string(violation_runs) +
         " run(s)\n";
  return out;
}

// ---------------------------------------------------------------------------

void RunContext::attach(sim::Simulator& sim) {
  LSL_ASSERT_MSG(policy_ != nullptr, "RunContext used outside an explorer");
  sim.set_choice_hook(policy_, slack_);
}

Explorer::Explorer(ScenarioFn scenario, ExplorerOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

RunRecord Explorer::execute(const std::vector<std::size_t>& prefix) {
  RunRecord record;
  Policy policy(options_, prefix, record);
  Invariants invariants;
  RunContext ctx;
  ctx.policy_ = &policy;
  ctx.invariants_ = &invariants;
  ctx.slack_ = options_.slack;
  {
    ScopedObserver observer(&invariants);
    scenario_(ctx);
  }
  invariants.finalize();
  record.violations = invariants.violations();
  ++stats_.runs;
  stats_.events += record.events;
  stats_.choice_points += record.trace.size();
  stats_.branches_pruned_sleep += policy.pruned_sleep;
  if (record.redundant) {
    ++stats_.redundant_runs;
  } else if (seen_schedules_.insert(record.schedule_hash).second) {
    ++stats_.distinct_schedules;
  }
  if (!record.violations.empty()) {
    ++stats_.violation_runs;
  }
  return record;
}

RunRecord Explorer::replay(const std::vector<std::size_t>& picks) {
  return execute(picks);
}

void Explorer::record_counterexample(RunRecord record) {
  std::vector<std::size_t> picks = picks_of(record);
  // Greedy minimization: reset non-default picks to 0 from the tail; keep a
  // change whenever the violation survives. Bounded by minimize_budget
  // extra executions.
  std::uint64_t budget = options_.minimize_budget;
  for (std::size_t i = picks.size(); i-- > 0 && budget > 0;) {
    if (picks[i] == 0) {
      continue;
    }
    std::vector<std::size_t> trial = picks;
    trial[i] = 0;
    while (!trial.empty() && trial.back() == 0) {
      trial.pop_back();
    }
    --budget;
    RunRecord attempt = execute(trial);
    if (!attempt.violations.empty()) {
      picks = std::move(trial);
    }
  }
  // Final deterministic replay under a fresh flight recorder so the
  // counterexample ships with its post-mortem. Span recording never alters
  // the simulation (ids are pre-drawn), so this reproduces the violation.
  Counterexample ce;
  ce.picks = picks;
  obs::SpanRecorder recorder(0);
  {
    obs::ScopedSpanRecorder scoped(&recorder);
    ce.run = execute(picks);
  }
  ce.post_mortem = obs::post_mortem_all(recorder, /*only_troubled=*/false);
  LSL_ASSERT_MSG(!ce.run.violations.empty(),
                 "counterexample replay lost the violation");
  counterexamples_.push_back(std::move(ce));
}

const ExploreStats& Explorer::explore() {
  std::vector<std::vector<std::size_t>> frontier;
  frontier.push_back({});
  while (!frontier.empty() && stats_.runs < options_.max_runs &&
         counterexamples_.size() < options_.max_violations) {
    const std::vector<std::size_t> prefix = std::move(frontier.back());
    frontier.pop_back();
    RunRecord record = execute(prefix);
    if (!record.violations.empty()) {
      record_counterexample(std::move(record));
      continue;
    }
    if (record.redundant) {
      continue;  // an already-covered order; never branch from it
    }
    // Branch: every choice point at or past the frozen prefix contributes
    // its untried alternatives. Push deepest-last so the DFS extends the
    // shallowest new branch first.
    for (std::size_t cp = record.trace.size(); cp-- > prefix.size();) {
      const ChoicePoint& point = record.trace[cp];
      if (cp >= options_.max_depth) {
        stats_.branches_pruned_budget += point.candidates.size() - 1;
        continue;
      }
      const std::size_t tried =
          std::min(point.candidates.size(), options_.max_branches);
      stats_.branches_pruned_budget += point.candidates.size() - tried;
      for (std::size_t j = tried; j-- > 1;) {
        std::vector<std::size_t> child;
        child.reserve(cp + 1);
        for (std::size_t k = 0; k < cp; ++k) {
          child.push_back(record.trace[k].picked);
        }
        child.push_back(j);
        frontier.push_back(std::move(child));
      }
    }
  }
  return stats_;
}

}  // namespace lsl::mc
