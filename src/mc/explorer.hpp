// Stateless model checking over the deterministic sim kernel.
//
// The Explorer runs a user-supplied scenario function to completion, once
// per schedule. A sim::ChoiceHook policy records *choice points* -- dispatch
// steps where several events are simultaneously ready (equal timestamps, or
// within an optional slack window: fault firings vs timer pops, offset-query
// replies vs retries, reroute decisions vs acks) -- and replays the run with
// systematically perturbed picks: depth-first search over the choice tree.
//
// Reduction is sleep-set style (SimGrid's DFSExplorer idiom): after branch
// j is taken at a choice point, its unpicked elder siblings enter the sleep
// set; a run that later fires a sleeping event without first firing one
// *dependent* on it is a reordering of commutative (independent-actor)
// events the search has already covered, and is marked redundant -- counted
// but never branched from. Budgets (max runs / depth / branches per point)
// bound the search for CI; exhausting them trades completeness for time.
//
// Every run executes under the mc::Invariants observer; a violating run is
// minimized greedily (non-default picks reset to 0 where the violation
// survives), replayed once more under a flight recorder, and captured as a
// Counterexample holding the exact pick vector needed to reproduce it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mc/invariants.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace lsl::mc {

struct ExplorerOptions {
  std::uint64_t max_runs = 64;    ///< total scenario executions
  std::size_t max_depth = 32;     ///< choice points branched per run
  std::size_t max_branches = 4;   ///< alternatives tried per choice point
  /// Ready-window slack: 0 explores only exact timestamp ties; > 0 also
  /// reorders events this close together (models timing perturbations).
  SimTime slack = SimTime::zero();
  bool sleep_sets = true;         ///< prune commutative reorderings
  std::size_t max_violations = 1; ///< stop after this many counterexamples
  std::uint64_t minimize_budget = 32;  ///< extra runs spent shrinking a trace
};

/// One recorded branching step: the candidate events that were ready (sleep
/// set already filtered out) and which index fired.
struct ChoicePoint {
  SimTime when = SimTime::zero();
  std::vector<sim::ReadyEvent> candidates;
  std::size_t picked = 0;
};

/// Everything observed during one scenario execution.
struct RunRecord {
  std::vector<ChoicePoint> trace;
  std::vector<std::string> violations;
  std::uint64_t schedule_hash = 0;  ///< FNV-1a over dispatched seqs
  std::uint64_t events = 0;         ///< events dispatched
  bool redundant = false;  ///< fired a sleeping event: already-covered order
};

/// A violating schedule, minimized and deterministically replayable: feeding
/// `picks` back through Explorer::replay() reproduces `run` bit-identically.
struct Counterexample {
  std::vector<std::size_t> picks;
  RunRecord run;
  std::string post_mortem;  ///< flight-recorder dump from the final replay

  /// Human-readable choice trace + violations (the artifact CI uploads).
  [[nodiscard]] std::string str() const;
  /// Compact replay key, e.g. "0,2,1" (empty = default schedule).
  [[nodiscard]] std::string picks_csv() const;
};

struct ExploreStats {
  std::uint64_t runs = 0;            ///< scenario executions (incl. minimize)
  std::uint64_t redundant_runs = 0;  ///< pruned as commutative reorderings
  std::uint64_t distinct_schedules = 0;
  std::uint64_t choice_points = 0;   ///< recorded across all runs
  std::uint64_t events = 0;          ///< total events dispatched
  std::uint64_t branches_pruned_sleep = 0;
  std::uint64_t branches_pruned_budget = 0;
  std::uint64_t violation_runs = 0;

  [[nodiscard]] std::string str() const;
};

/// Handed to the scenario function: wire the run's simulator(s) to the
/// explorer's policy and report outcomes into the run's invariant suite.
class RunContext {
 public:
  /// Route `sim`'s dispatch through the explorer (call right after the
  /// simulator is constructed, before any events run).
  void attach(sim::Simulator& sim);

  [[nodiscard]] Invariants& invariants() { return *invariants_; }

 private:
  friend class Explorer;
  sim::ChoiceHook* policy_ = nullptr;
  Invariants* invariants_ = nullptr;
  SimTime slack_ = SimTime::zero();
};

/// The scenario under test: build a simulation, ctx.attach() its kernel, run
/// it to completion, and note_outcome() every transfer. Must be a pure
/// function of its inputs -- the explorer replays it many times and relies
/// on identical picks producing identical runs.
using ScenarioFn = std::function<void(RunContext&)>;

class Explorer {
 public:
  explicit Explorer(ScenarioFn scenario, ExplorerOptions options = {});

  /// DFS over the choice tree until budgets or max_violations hit.
  const ExploreStats& explore();

  /// Execute the scenario once with a fixed pick vector (indexes into each
  /// recorded choice point's candidates; missing / out-of-range entries fall
  /// back to 0). Deterministic: same picks, same run.
  RunRecord replay(const std::vector<std::size_t>& picks);

  [[nodiscard]] const std::vector<Counterexample>& counterexamples() const {
    return counterexamples_;
  }
  [[nodiscard]] const ExploreStats& stats() const { return stats_; }

 private:
  RunRecord execute(const std::vector<std::size_t>& prefix);
  void record_counterexample(RunRecord record);

  ScenarioFn scenario_;
  ExplorerOptions options_;
  ExploreStats stats_;
  std::vector<Counterexample> counterexamples_;
  std::unordered_set<std::uint64_t> seen_schedules_;
};

}  // namespace lsl::mc
