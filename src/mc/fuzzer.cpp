#include "mc/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lsl::mc {

namespace {

std::map<std::string, net::NodeId> host_ids(const exp::Scenario& scenario) {
  // run_scenario adds hosts in declaration order, so NodeId == index.
  std::map<std::string, net::NodeId> ids;
  for (std::size_t i = 0; i < scenario.hosts.size(); ++i) {
    ids[scenario.hosts[i].name] = static_cast<net::NodeId>(i);
  }
  return ids;
}

std::string seconds_str(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.6gs", s);
  return buf;
}

}  // namespace

fault::FaultPlan declared_plan(const exp::Scenario& scenario) {
  const auto ids = host_ids(scenario);
  fault::FaultPlan plan;
  for (const exp::ScenarioFault& f : scenario.faults) {
    fault::FaultSpec spec;
    spec.kind = f.kind;
    spec.at = SimTime::from_seconds(f.at_s);
    spec.duration = SimTime::from_seconds(f.for_s);
    spec.loss = f.loss;
    spec.rate_factor = f.rate_factor;
    switch (f.kind) {
      case fault::FaultKind::kDepotCrash:
        spec.node = ids.at(f.a);
        break;
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkBrownout:
        spec.link_a = ids.at(f.a);
        spec.link_b = ids.at(f.b);
        break;
      case fault::FaultKind::kNwsBlackout:
        break;
    }
    plan.add(spec);
  }
  return plan;
}

exp::Scenario with_fault_plan(const exp::Scenario& scenario,
                              const fault::FaultPlan& plan,
                              bool clear_churns) {
  exp::Scenario out = scenario;
  out.faults.clear();
  if (clear_churns) {
    out.churns.clear();
  }
  for (const fault::FaultSpec& spec : plan.faults) {
    exp::ScenarioFault f;
    f.kind = spec.kind;
    f.at_s = spec.at.to_seconds();
    f.for_s = spec.duration.to_seconds();
    f.loss = spec.loss;
    f.rate_factor = spec.rate_factor;
    switch (spec.kind) {
      case fault::FaultKind::kDepotCrash:
        f.a = scenario.hosts.at(spec.node).name;
        break;
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkBrownout:
        f.a = scenario.hosts.at(spec.link_a).name;
        f.b = scenario.hosts.at(spec.link_b).name;
        break;
      case fault::FaultKind::kNwsBlackout:
        break;
    }
    out.faults.push_back(std::move(f));
  }
  return out;
}

std::string FuzzResult::str() const {
  std::string out = "fault fuzz: " + std::to_string(runs) + " runs, " +
                    std::to_string(bad_seeds.size()) + " bad seeds, " +
                    std::to_string(violations.size()) + " violations";
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  return out;
}

FuzzResult fuzz_fault_schedules(const exp::Scenario& scenario,
                                std::uint64_t base_seed, std::uint64_t runs,
                                const FuzzOptions& options) {
  const auto ids = host_ids(scenario);
  fault::RandomPlanSpec space;
  // Depot-crash candidates: every host a transfer routes via. Link faults
  // draw from the declared topology.
  for (const exp::ScenarioTransfer& t : scenario.transfers) {
    for (const std::string& hop : t.via) {
      const net::NodeId id = ids.at(hop);
      if (std::find(space.depots.begin(), space.depots.end(), id) ==
          space.depots.end()) {
        space.depots.push_back(id);
      }
    }
  }
  for (const exp::ScenarioLink& link : scenario.links) {
    space.links.emplace_back(ids.at(link.a), ids.at(link.b));
  }
  space.min_faults = options.min_faults;
  space.max_faults = options.max_faults;
  space.horizon = options.horizon;

  FuzzResult out;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = base_seed + i;
    // The plan stream is salted so it stays decoupled from the harness rng,
    // which also consumes `seed`.
    Rng rng(seed ^ Rng::hash("mc.fuzz.plan"));
    const fault::FaultPlan plan = fault::random_plan(space, rng);
    exp::Scenario variant =
        with_fault_plan(scenario, plan, /*clear_churns=*/true);
    if (options.ensure_recovery && !variant.recovery.has_value()) {
      variant.recovery = session::RecoveryConfig{};
    }
    Invariants inv;
    {
      ScopedObserver observe(&inv);
      const auto outcomes = exp::run_scenario(
          variant, seed, options.per_transfer_deadline);
      for (const exp::ScenarioOutcome& o : outcomes) {
        inv.note_outcome(o.outcome.session_hash, o.transfer.bytes,
                         o.outcome.completed, o.outcome.failed);
      }
    }
    inv.finalize();
    ++out.runs;
    if (!inv.ok()) {
      out.bad_seeds.push_back(seed);
      for (const std::string& v : inv.violations()) {
        out.violations.push_back("seed " + std::to_string(seed) + ": " + v);
      }
    }
  }
  return out;
}

ScenarioFn scenario_fn(const exp::Scenario& scenario, std::uint64_t seed,
                       SimTime per_transfer_deadline) {
  return [&scenario, seed, per_transfer_deadline](RunContext& ctx) {
    const auto outcomes = exp::run_scenario(
        scenario, seed, per_transfer_deadline, nullptr, nullptr,
        [&ctx](exp::SimHarness& h) { ctx.attach(h.simulator()); });
    for (const exp::ScenarioOutcome& o : outcomes) {
      ctx.invariants().note_outcome(o.outcome.session_hash, o.transfer.bytes,
                                    o.outcome.completed, o.outcome.failed);
    }
  };
}

namespace {

void merge_stats(ExploreStats& into, const ExploreStats& from) {
  into.runs += from.runs;
  into.redundant_runs += from.redundant_runs;
  into.distinct_schedules += from.distinct_schedules;
  into.choice_points += from.choice_points;
  into.events += from.events;
  into.branches_pruned_sleep += from.branches_pruned_sleep;
  into.branches_pruned_budget += from.branches_pruned_budget;
  into.violation_runs += from.violation_runs;
}

}  // namespace

VerifyResult verify_scenario(const exp::Scenario& scenario, std::uint64_t seed,
                             const VerifyOptions& options) {
  VerifyResult out;
  // Variant 0 is the scenario exactly as written; the rest shift one fault's
  // time per variant (fault::perturbations). Labels mirror its skip rule
  // (zero-offset and clamped-onto-original shifts produce no variant).
  std::vector<exp::Scenario> variants{scenario};
  out.variant_labels.push_back("original");
  const fault::FaultPlan base = declared_plan(scenario);
  if (!options.perturb_offsets.empty() && !base.empty()) {
    fault::PerturbSpec pspec;
    pspec.offsets = options.perturb_offsets;
    pspec.include_original = false;
    const std::vector<fault::FaultPlan> shifted =
        fault::perturbations(base, pspec);
    for (const fault::FaultPlan& plan : shifted) {
      variants.push_back(with_fault_plan(scenario, plan));
    }
    for (std::size_t i = 0; i < base.faults.size(); ++i) {
      for (const SimTime offset : pspec.offsets) {
        SimTime at = base.faults[i].at + offset;
        if (at < SimTime::zero()) {
          at = SimTime::zero();
        }
        if (at == base.faults[i].at) {
          continue;
        }
        out.variant_labels.push_back(
            std::string("fault ") + std::to_string(i) + " (" +
            fault::to_string(base.faults[i].kind) + ") shifted " +
            seconds_str(offset.to_seconds()));
      }
    }
    LSL_ASSERT_MSG(out.variant_labels.size() == variants.size(),
                   "perturbation labels diverged from fault::perturbations");
  }

  const std::uint64_t per_variant = std::max<std::uint64_t>(
      options.explorer.max_runs / variants.size(), 4);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    if (out.counterexamples.size() >= options.explorer.max_violations) {
      break;
    }
    ExplorerOptions opts = options.explorer;
    opts.max_runs = per_variant;
    opts.max_violations =
        options.explorer.max_violations - out.counterexamples.size();
    Explorer explorer(
        scenario_fn(variants[v], seed, options.per_transfer_deadline), opts);
    explorer.explore();
    merge_stats(out.stats, explorer.stats());
    for (const Counterexample& ce : explorer.counterexamples()) {
      out.counterexamples.push_back({v, ce});
    }
  }
  return out;
}

}  // namespace lsl::mc
