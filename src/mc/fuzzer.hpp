// Scenario-level drivers for the invariant suite: the model checker's
// scenario adapter (lslsim --verify) and the fault-schedule fuzzer
// (lslsim --fuzz-faults). Both reuse mc::Invariants unchanged -- the fuzzer
// is the explorer's checks minus the schedule search, so hundreds of random
// fault plans are as cheap as hundreds of plain scenario runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "fault/plan.hpp"
#include "mc/explorer.hpp"

namespace lsl::mc {

// ---- fault-schedule fuzzer --------------------------------------------------

struct FuzzOptions {
  /// Random-plan shape (candidate depots/links always come from the
  /// scenario itself; see fault::RandomPlanSpec for the rest).
  int min_faults = 1;
  int max_faults = 4;
  SimTime horizon = SimTime::seconds(20);
  /// Give scenarios without a `recovery` directive a default recovery loop
  /// so injected faults exercise resume instead of failing terminally.
  bool ensure_recovery = true;
  SimTime per_transfer_deadline = SimTime::seconds(3600);
};

struct FuzzResult {
  std::uint64_t runs = 0;
  std::vector<std::uint64_t> bad_seeds;
  /// Invariant violations, each prefixed "seed N: " -- rerun that seed to
  /// reproduce bit-for-bit (the plan and the run share it).
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string str() const;
};

/// Replace `scenario`'s declared faults/churns with a random plan drawn from
/// seed base_seed + i for each of `runs` iterations, run it, and check every
/// mc::Invariants observation plus per-transfer outcomes.
[[nodiscard]] FuzzResult fuzz_fault_schedules(const exp::Scenario& scenario,
                                              std::uint64_t base_seed,
                                              std::uint64_t runs,
                                              const FuzzOptions& options = {});

// ---- scenario verification (lslsim --verify) --------------------------------

struct VerifyOptions {
  ExplorerOptions explorer;
  /// Fault-timing shifts explored as extra variants (one fault moved per
  /// variant; see fault::perturbations). Empty = verify only the scenario
  /// as written. The explorer run budget is split across variants.
  std::vector<SimTime> perturb_offsets;
  SimTime per_transfer_deadline = SimTime::seconds(3600);
};

/// A counterexample plus which fault-timing variant produced it.
struct VerifyCounterexample {
  std::size_t variant = 0;    ///< index into VerifyResult::variant_labels
  Counterexample ce;
};

struct VerifyResult {
  ExploreStats stats;  ///< summed across all variants
  std::vector<std::string> variant_labels;  ///< [0] is always "original"
  std::vector<VerifyCounterexample> counterexamples;

  [[nodiscard]] bool ok() const { return counterexamples.empty(); }
};

/// Model-check `scenario`: DFS over event interleavings for the plan as
/// written, then once per perturbation variant. Stops early once the
/// explorer's max_violations counterexamples have been captured.
[[nodiscard]] VerifyResult verify_scenario(const exp::Scenario& scenario,
                                           std::uint64_t seed,
                                           const VerifyOptions& options = {});

/// ScenarioFn adapter for the Explorer: runs exp::run_scenario with the
/// explorer's ChoiceHook attached to the harness kernel and notes every
/// transfer outcome. `scenario` is captured by reference and must outlive
/// the returned function.
[[nodiscard]] ScenarioFn scenario_fn(
    const exp::Scenario& scenario, std::uint64_t seed,
    SimTime per_transfer_deadline = SimTime::seconds(3600));

// ---- plan <-> scenario conversion (exposed for tests) -----------------------

/// The scenario's declared `fault` directives as a FaultPlan, host names
/// resolved to NodeIds by declaration order (exactly how run_scenario
/// assigns them). Churn directives are not expanded.
[[nodiscard]] fault::FaultPlan declared_plan(const exp::Scenario& scenario);

/// Copy of `scenario` with its faults replaced by `plan` (NodeIds mapped
/// back to host names); clear_churns also drops churn directives.
[[nodiscard]] exp::Scenario with_fault_plan(const exp::Scenario& scenario,
                                            const fault::FaultPlan& plan,
                                            bool clear_churns = false);

}  // namespace lsl::mc
