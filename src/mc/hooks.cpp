#include "mc/hooks.hpp"

#include <algorithm>
#include <string>

namespace lsl::mc {

namespace {

thread_local ProtocolObserver* t_observer = nullptr;
// A handful of names at most, switched only from tests: a flat vector beats
// any hashed container and keeps the disabled path to one empty() check.
thread_local std::vector<std::string>* t_mutations = nullptr;

}  // namespace

ProtocolObserver* observer() { return t_observer; }

void set_observer(ProtocolObserver* obs) { t_observer = obs; }

bool mutation_enabled(std::string_view name) {
  if (t_mutations == nullptr) {
    return false;
  }
  return std::find(t_mutations->begin(), t_mutations->end(), name) !=
         t_mutations->end();
}

void set_mutation(std::string_view name) {
  if (t_mutations == nullptr) {
    t_mutations = new std::vector<std::string>();
  }
  if (!mutation_enabled(name)) {
    t_mutations->emplace_back(name);
  }
}

void clear_mutations() {
  delete t_mutations;
  t_mutations = nullptr;
}

}  // namespace lsl::mc
