// Protocol observation and mutation points for model checking.
//
// This header is the only part of src/mc/ the session layer links against
// (lsl_mc_hooks is a leaf library under lsl_session, so no lsl -> mc cycle).
// Production code reports protocol facts -- ledger commits, application
// deliveries, attempt launches, buffer accounting -- through a thread-local
// observer pointer, one null check per site when nothing is installed. The
// explorer and the fault fuzzer install mc::Invariants here; everything else
// pays a predictable branch.
//
// The same file hosts the mutation registry: named, test-only switches that
// re-introduce known-fixed protocol bugs so mc_test can prove the explorer
// and the invariant suite would catch a regression (mutation smoke testing).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/packet.hpp"

namespace lsl::mc {

/// Interface for protocol-level observation points in src/lsl. Sessions are
/// identified by their SessionIdHash value so this header does not depend on
/// the session layer. Default implementations ignore everything.
class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// Sink-side progress-ledger write: the committed offset for `session`
  /// moved from `prev` to max(prev, next) (depot commit_progress).
  virtual void on_commit(std::uint64_t session, std::uint64_t prev,
                         std::uint64_t next) {
    (void)session;
    (void)prev;
    (void)next;
  }

  /// Payload byte range [lo, hi) handed to the receiving application.
  /// Emitted only for resumable (unicast, single-stripe, sync) deliveries,
  /// where ranges must tile the payload exactly once.
  virtual void on_deliver(std::uint64_t session, std::uint64_t lo,
                          std::uint64_t hi) {
    (void)session;
    (void)lo;
    (void)hi;
  }

  /// Source-side attempt launch over `via` while `blacklist` is active.
  virtual void on_attempt(std::uint64_t session,
                          const std::vector<net::NodeId>& via,
                          const std::vector<net::NodeId>& blacklist) {
    (void)session;
    (void)via;
    (void)blacklist;
  }

  /// Depot relay-buffer pool accounting: positive delta on reserve,
  /// negative on release. Must sum to zero per depot once a run drains.
  virtual void on_buffer(net::NodeId depot, std::int64_t delta) {
    (void)depot;
    (void)delta;
  }
};

/// Currently installed observer for this thread (null when none).
[[nodiscard]] ProtocolObserver* observer();
void set_observer(ProtocolObserver* obs);

/// RAII observer installation (restores the previous one, so runs nest).
class ScopedObserver {
 public:
  explicit ScopedObserver(ProtocolObserver* obs)
      : previous_(observer()) {
    set_observer(obs);
  }
  ~ScopedObserver() { set_observer(previous_); }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  ProtocolObserver* previous_;
};

/// True when a test has switched the named mutation on (thread-local).
[[nodiscard]] bool mutation_enabled(std::string_view name);
void set_mutation(std::string_view name);
void clear_mutations();

/// RAII mutation enable for one test scope.
class ScopedMutation {
 public:
  explicit ScopedMutation(std::string_view name) { set_mutation(name); }
  ~ScopedMutation() { clear_mutations(); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

}  // namespace lsl::mc

// LSL_MC_MUTATION(name) guards a seeded-bug branch at a protocol decision
// point: false in normal operation, true when a test enabled the named
// mutation. Define LSL_MC_NO_MUTATIONS to compile every mutation site away
// entirely (the branch folds to the fixed behavior).
#ifdef LSL_MC_NO_MUTATIONS
#define LSL_MC_MUTATION(name) false
#else
#define LSL_MC_MUTATION(name) (::lsl::mc::mutation_enabled(name))
#endif
