#include "mc/invariants.hpp"

#include <algorithm>
#include <cstdio>

namespace lsl::mc {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

std::string sid(std::uint64_t session) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(session));
  return std::string("session ") + buf;
}

}  // namespace

void Invariants::on_commit(std::uint64_t session, std::uint64_t prev,
                           std::uint64_t next) {
  SessionCheck& s = sessions_[session];
  const std::uint64_t committed = std::max(prev, next);
  if (committed < s.committed_hi) {
    violation("committed offset regressed " + num(s.committed_hi) + " -> " +
              num(committed) + " (" + sid(session) + ")");
  }
  s.committed_hi = std::max(s.committed_hi, committed);
}

void Invariants::on_deliver(std::uint64_t session, std::uint64_t lo,
                            std::uint64_t hi) {
  SessionCheck& s = sessions_[session];
  if (hi <= lo) {
    violation("empty delivery range [" + num(lo) + ", " + num(hi) + ") (" +
              sid(session) + ")");
    return;
  }
  if (lo < s.delivered_hi) {
    violation("byte delivered twice: [" + num(lo) + ", " + num(hi) +
              ") overlaps delivered prefix " + num(s.delivered_hi) + " (" +
              sid(session) + ")");
  } else if (lo > s.delivered_hi) {
    violation("byte lost: delivery skipped [" + num(s.delivered_hi) + ", " +
              num(lo) + ") (" + sid(session) + ")");
  }
  s.delivered_hi = std::max(s.delivered_hi, hi);
  s.delivered_any = true;
}

void Invariants::on_attempt(std::uint64_t session,
                            const std::vector<net::NodeId>& via,
                            const std::vector<net::NodeId>& blacklist) {
  for (const net::NodeId hop : via) {
    if (std::find(blacklist.begin(), blacklist.end(), hop) !=
        blacklist.end()) {
      violation("blacklisted depot " + num(hop) +
                " re-selected on attempt (" + sid(session) + ")");
    }
  }
}

void Invariants::on_buffer(net::NodeId depot, std::int64_t delta) {
  std::int64_t& balance = buffers_[depot];
  balance += delta;
  if (balance < 0) {
    violation("depot " + num(depot) + " buffer accounting went negative (" +
              num(static_cast<std::uint64_t>(-balance)) +
              " bytes freed beyond grants)");
  }
}

void Invariants::note_outcome(std::uint64_t session, std::uint64_t payload,
                              bool completed, bool failed) {
  SessionCheck& s = sessions_[session];
  s.noted = true;
  s.payload = payload;
  s.completed = completed;
  s.failed = failed;
}

void Invariants::require(bool ok, const std::string& msg) {
  if (!ok) {
    violation(msg);
  }
}

void Invariants::finalize() {
  for (const auto& [session, s] : sessions_) {
    if (!s.noted) {
      continue;  // observed mid-run only (no outcome reported); no verdict
    }
    if (!s.completed && !s.failed) {
      violation(sid(session) + " did not terminate (neither delivered nor "
                "failed; committed " +
                num(s.committed_hi) + " of " + num(s.payload) + ")");
      continue;
    }
    if (s.completed) {
      if (s.delivered_any && s.delivered_hi != s.payload) {
        violation((s.delivered_hi < s.payload ? "byte lost: completed "
                                              : "over-delivery: completed ") +
                  sid(session) + " delivered " + num(s.delivered_hi) +
                  " of " + num(s.payload));
      }
      if (s.committed_hi > s.payload) {
        violation("committed offset " + num(s.committed_hi) +
                  " beyond payload " + num(s.payload) + " (" + sid(session) +
                  ")");
      }
    }
  }
  for (const auto& [depot, balance] : buffers_) {
    if (balance != 0) {
      violation("depot " + num(depot) +
                " buffer accounting did not return to zero (" +
                std::to_string(balance) + " bytes still reserved)");
    }
  }
}

void Invariants::violation(std::string msg) {
  violations_.push_back(std::move(msg));
}

void Invariants::reset() {
  sessions_.clear();
  buffers_.clear();
  violations_.clear();
}

}  // namespace lsl::mc
