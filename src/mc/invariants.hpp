// Reusable protocol-invariant suite over the observation stream.
//
// One Invariants instance watches a whole run (install it with
// mc::ScopedObserver) and accumulates violations instead of aborting, so the
// explorer can record a counterexample and keep searching, and the fuzzer
// can report every bad seed in one pass. The checks mirror ISSUE/ROADMAP
// language exactly:
//   - no byte lost            (completed sessions delivered their payload)
//   - no byte delivered twice (delivery ranges tile, never overlap)
//   - committed offset monotone per session
//   - blacklisted depot never re-selected within its window
//   - every session terminates (delivered, or failed with retries spent)
//   - depot buffer accounting returns to zero
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mc/hooks.hpp"

namespace lsl::mc {

class Invariants final : public ProtocolObserver {
 public:
  // ---- ProtocolObserver ---------------------------------------------------
  void on_commit(std::uint64_t session, std::uint64_t prev,
                 std::uint64_t next) override;
  void on_deliver(std::uint64_t session, std::uint64_t lo,
                  std::uint64_t hi) override;
  void on_attempt(std::uint64_t session, const std::vector<net::NodeId>& via,
                  const std::vector<net::NodeId>& blacklist) override;
  void on_buffer(net::NodeId depot, std::int64_t delta) override;

  /// Record how a transfer ended so finalize() can check termination and
  /// byte conservation. `payload` is the bytes the transfer was asked to
  /// move; completed/failed come from the harness outcome.
  void note_outcome(std::uint64_t session, std::uint64_t payload,
                    bool completed, bool failed);

  /// Scenario- or test-specific extra check: records `msg` unless `ok`.
  void require(bool ok, const std::string& msg);

  /// End-of-run checks (termination, byte totals, buffer balance). Call
  /// once after the simulation drains; incremental violations are already
  /// recorded by then.
  void finalize();

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }

  void reset();

 private:
  struct SessionCheck {
    std::uint64_t committed_hi = 0;
    std::uint64_t delivered_hi = 0;  ///< contiguous delivered prefix
    bool delivered_any = false;
    bool noted = false;
    std::uint64_t payload = 0;
    bool completed = false;
    bool failed = false;
  };

  void violation(std::string msg);

  std::map<std::uint64_t, SessionCheck> sessions_;
  std::map<net::NodeId, std::int64_t> buffers_;
  std::vector<std::string> violations_;
};

}  // namespace lsl::mc
