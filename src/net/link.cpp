#include "net/link.hpp"

#include <algorithm>

#include <utility>

#include "flow/fluid.hpp"
#include "util/log.hpp"

namespace lsl::net {

Link::Link(sim::Simulator& simulator, LinkConfig config, Rng rng)
    : sim_(simulator), config_(config), rng_(rng) {}

void Link::set_loss_rate(double p) {
  config_.loss_rate = p;
  sync_fluid();
}

void Link::set_rate(Bandwidth rate) {
  config_.rate = rate;
  sync_fluid();
}

double Link::fluid_capacity_bps() const {
  // Headers ride every packet: at the default MSS a 1500-byte frame carries
  // 1460 payload bytes, so goodput is rate * mss / (mss + overhead). The
  // fluid engine shares this payload capacity directly (it never sees
  // headers), matching what a saturating TCP flow achieves in packet mode.
  constexpr double kDefaultMss = 1460.0;
  return config_.rate.bits_per_second() * kDefaultMss /
         (kDefaultMss + kPacketOverheadBytes);
}

void Link::bind_fluid(flow::FluidNetwork* net, std::uint32_t fluid_id) {
  fluid_ = net;
  fluid_id_ = fluid_id;
  sync_fluid();
}

void Link::sync_fluid() {
  if (fluid_ != nullptr) {
    fluid_->set_link(fluid_id_, fluid_capacity_bps(), config_.loss_rate);
  }
}

void Link::enqueue(Packet packet) {
  const std::uint64_t size = packet.wire_bytes();
  if (queued_bytes_ + size > config_.queue_capacity_bytes) {
    ++stats_.packets_dropped_queue;
    LSL_TRACE("link: queue drop uid=%llu seq=%llu",
              static_cast<unsigned long long>(packet.uid),
              static_cast<unsigned long long>(packet.tcp.seq));
    return;
  }
  stats_.queue_bytes_observed += queued_bytes_;  // depth found on arrival
  queued_bytes_ += size;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  queue_.push_back(std::move(packet));
  if (!transmitting_) {
    start_transmission();
  }
}

void Link::start_transmission() {
  LSL_ASSERT(!queue_.empty());
  transmitting_ = true;
  const SimTime tx = config_.rate.transmit_time(queue_.front().wire_bytes());
  sim_.schedule_after(tx, [this] { finish_transmission(); }, "net.link.tx");
}

void Link::finish_transmission() {
  LSL_ASSERT(!queue_.empty());
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= packet.wire_bytes();

  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_bytes();

  if (rng_.chance(config_.loss_rate)) {
    ++stats_.packets_dropped_loss;
    LSL_TRACE("link: loss drop uid=%llu seq=%llu",
              static_cast<unsigned long long>(packet.uid),
              static_cast<unsigned long long>(packet.tcp.seq));
  } else {
    LSL_ASSERT_MSG(static_cast<bool>(deliver_), "link has no receiver");
    SimTime delay = config_.propagation_delay;
    if (config_.jitter > SimTime::zero()) {
      delay += SimTime::nanoseconds(static_cast<std::int64_t>(
          rng_.next_below(static_cast<std::uint64_t>(config_.jitter.ns()))));
    }
    sim_.schedule_after(
        delay,
        [this, p = std::move(packet)]() mutable { deliver_(std::move(p)); },
        "net.link.propagate");
  }

  if (!queue_.empty()) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

}  // namespace lsl::net
