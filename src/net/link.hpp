// Unidirectional link with a drop-tail byte-bounded queue, store-and-forward
// serialization, fixed propagation delay, and Bernoulli packet loss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::flow {
class FluidNetwork;
}  // namespace lsl::flow

namespace lsl::net {

struct LinkConfig {
  Bandwidth rate = Bandwidth::mbps(100);
  SimTime propagation_delay = SimTime::milliseconds(1);
  /// Drop-tail queue capacity in bytes (including the packet in service).
  std::uint64_t queue_capacity_bytes = 512 * 1024;
  /// Per-packet Bernoulli loss probability, applied at transmit completion.
  double loss_rate = 0.0;
  /// Maximum extra per-packet propagation delay, drawn uniformly from
  /// [0, jitter]. Nonzero jitter reorders packets (delivery order is by
  /// arrival time), exercising receivers' reassembly and dup-ACK logic.
  SimTime jitter = SimTime::zero();
};

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_dropped_queue = 0;
  std::uint64_t packets_dropped_loss = 0;
  /// High-water mark of queued bytes (buffer-bloat diagnostics).
  std::uint64_t max_queue_bytes = 0;
  /// Sum over transmitted packets of the queue depth they found on
  /// arrival; divide by packets_sent for the mean standing queue.
  std::uint64_t queue_bytes_observed = 0;

  [[nodiscard]] double mean_queue_bytes() const {
    return packets_sent > 0 ? static_cast<double>(queue_bytes_observed) /
                                  static_cast<double>(packets_sent)
                            : 0.0;
  }
};

class Link {
 public:
  using DeliverFn = std::function<void(Packet)>;

  Link(sim::Simulator& simulator, LinkConfig config, Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Install the receiver-side delivery callback (the destination node).
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Remove and return the current delivery callback (for taps that wrap
  /// it, e.g. exp::PacketLog).
  [[nodiscard]] DeliverFn take_deliver() { return std::move(deliver_); }

  /// Offer a packet to the link; drops silently if the queue is full.
  void enqueue(Packet packet);

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t queued_bytes() const { return queued_bytes_; }

  /// Mutable loss-rate knob; experiments vary path quality mid-run.
  void set_loss_rate(double p);

  /// Mutable rate knob (brownouts throttle links mid-run). Takes effect at
  /// the next packet's serialization; the one in service is unaffected.
  void set_rate(Bandwidth rate);

  /// Mirror this link into the fluid engine: set_rate / set_loss_rate keep
  /// the fluid link's capacity and loss in sync from now on.
  void bind_fluid(flow::FluidNetwork* net, std::uint32_t fluid_id);
  [[nodiscard]] std::uint32_t fluid_link_id() const { return fluid_id_; }

  /// Payload goodput this link sustains at the default MSS: the raw rate
  /// discounted by per-packet header overhead. This is the capacity the
  /// fluid engine shares among flows.
  [[nodiscard]] double fluid_capacity_bps() const;

 private:
  void start_transmission();
  void finish_transmission();
  void sync_fluid();

  sim::Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  DeliverFn deliver_;
  std::deque<Packet> queue_;
  std::uint64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  LinkStats stats_;
  flow::FluidNetwork* fluid_ = nullptr;
  std::uint32_t fluid_id_ = 0;
};

}  // namespace lsl::net
