#include "net/node.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::net {

void Node::set_route(NodeId dst, Link* out) {
  LSL_ASSERT(out != nullptr);
  routes_[dst] = out;
}

Link* Node::route_for(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it != routes_.end() ? it->second : nullptr;
}

void Node::handle_packet(Packet packet) {
  if (packet.dst == id_) {
    ++packets_delivered_;
    LSL_ASSERT_MSG(static_cast<bool>(local_),
                   "packet addressed to node without a protocol stack");
    local_(std::move(packet));
    return;
  }
  Link* out = route_for(packet.dst);
  if (out == nullptr) {
    LSL_WARN("node %s: no route to node %u, dropping", name_.c_str(),
             packet.dst);
    return;
  }
  ++packets_forwarded_;
  out->enqueue(std::move(packet));
}

}  // namespace lsl::net
