// A network node: endpoint host or router.
//
// Nodes hold a forwarding table (destination -> outgoing link) filled in by
// the Topology's route computation (or by explicit policy routes). Packets
// addressed to the node are handed to the registered local delivery sink
// (the TCP stack); everything else is forwarded.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace lsl::net {

class Node {
 public:
  using LocalDeliverFn = std::function<void(Packet)>;

  Node(NodeId id, std::string name, std::string site)
      : id_(id), name_(std::move(name)), site_(std::move(site)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Site label ("ucsb.edu"): hosts at one site share wide-area connectivity;
  /// the scheduler's edge-equivalence logic leans on this.
  [[nodiscard]] const std::string& site() const { return site_; }

  /// Register the local protocol stack sink.
  void set_local_deliver(LocalDeliverFn sink) { local_ = std::move(sink); }

  /// Point the route for `dst` at `out`. Last write wins.
  void set_route(NodeId dst, Link* out);

  [[nodiscard]] Link* route_for(NodeId dst) const;

  /// Entry point for packets arriving at or originating from this node.
  void handle_packet(Packet packet);

  [[nodiscard]] std::uint64_t packets_forwarded() const {
    return packets_forwarded_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const {
    return packets_delivered_;
  }

 private:
  NodeId id_;
  std::string name_;
  std::string site_;
  std::unordered_map<NodeId, Link*> routes_;
  LocalDeliverFn local_;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t packets_delivered_ = 0;
};

}  // namespace lsl::net
