// Packet and TCP segment header representation.
//
// The simulator carries one protocol (TCP); the segment header is embedded in
// the packet directly. Sequence/ack numbers are 64-bit absolute stream
// offsets: the real protocol's 32-bit wraparound is an encoding concern that
// has no effect on the dynamics studied here, and 64-bit arithmetic removes a
// whole class of wrap bugs from the simulation. Application payload is
// synthetic (a byte count); only the first bytes of a stream may carry real
// content (the LSL session header), stored in `content`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsl::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xFFFFFFFFU;

using Port = std::uint16_t;

/// TCP segment flags (subset sufficient for bulk transfer + connection
/// lifecycle).
enum TcpFlags : std::uint8_t {
  kFlagSyn = 1U << 0U,
  kFlagAck = 1U << 1U,
  kFlagFin = 1U << 2U,
  kFlagRst = 1U << 3U,
};

/// A SACK block: [begin, end) in wire sequence space.
struct SackBlock {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Inline list of SACK blocks. The real TCP option carries at most four
/// blocks, so a fixed array plus a count replaces the std::vector that used
/// to heap-allocate on nearly every ACK carrying SACK information. The
/// vector-ish surface (push_back / range-for / size / empty) keeps call
/// sites unchanged.
class SackList {
 public:
  static constexpr std::size_t kMaxBlocks = 4;

  void push_back(const SackBlock& block) {
    if (count_ < kMaxBlocks) {  // excess blocks are dropped, like the option
      blocks_[count_++] = block;
    }
  }
  void clear() { count_ = 0; }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] const SackBlock& operator[](std::size_t i) const {
    return blocks_[i];
  }

  [[nodiscard]] const SackBlock* begin() const { return blocks_; }
  [[nodiscard]] const SackBlock* end() const { return blocks_ + count_; }

 private:
  SackBlock blocks_[kMaxBlocks];
  std::uint8_t count_ = 0;
};

struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint64_t seq = 0;  ///< First payload byte's stream offset.
  std::uint64_t ack = 0;  ///< Next expected stream offset (valid iff ACK set).
  std::uint64_t wnd = 0;  ///< Advertised receive window, bytes.
  std::uint8_t flags = 0;
  /// Selective acknowledgment blocks (bounded like the real option: <= 4).
  SackList sack;

  [[nodiscard]] bool has(TcpFlags f) const { return (flags & f) != 0; }
};

/// IP+TCP header overhead charged to every packet on the wire.
constexpr std::uint32_t kPacketOverheadBytes = 40;

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TcpHeader tcp;
  std::uint32_t payload_bytes = 0;
  /// Real bytes at the start of the payload (never longer than
  /// payload_bytes); used only for in-band LSL session headers.
  std::vector<std::byte> content;
  /// Monotone id assigned at send for tracing.
  std::uint64_t uid = 0;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    return payload_bytes + kPacketOverheadBytes;
  }
};

}  // namespace lsl::net
