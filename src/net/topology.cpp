#include "net/topology.hpp"

#include <limits>
#include <queue>
#include <utility>

#include "flow/fluid.hpp"
#include "util/assert.hpp"

namespace lsl::net {

Topology::Topology(sim::Simulator& simulator, std::uint64_t seed)
    : sim_(simulator), link_rng_(seed) {}

Topology::~Topology() = default;

NodeId Topology::add_node(std::string name, std::string site) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name), std::move(site)));
  adjacency_.emplace_back();
  return id;
}

std::size_t Topology::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  LSL_ASSERT(a < nodes_.size() && b < nodes_.size() && a != b);
  const std::size_t index = links_.size();
  links_.push_back(
      std::make_unique<Link>(sim_, config, link_rng_.fork(index + 1)));
  Link* link = links_.back().get();
  Node* receiver = nodes_[b].get();
  link->set_deliver([receiver](Packet p) { receiver->handle_packet(std::move(p)); });
  adjacency_[a].push_back(Edge{b, link});
  if (fluid_ != nullptr) {
    const auto fid =
        fluid_->add_link(link->fluid_capacity_bps(), config.loss_rate);
    link->bind_fluid(fluid_.get(), fid);
  }
  return index;
}

std::size_t Topology::add_duplex_link(NodeId a, NodeId b,
                                      const LinkConfig& config) {
  const std::size_t forward = add_link(a, b, config);
  add_link(b, a, config);
  return forward;
}

void Topology::compute_routes() {
  const std::size_t n = nodes_.size();
  for (NodeId source = 0; source < n; ++source) {
    // Dijkstra over propagation delay from `source`.
    std::vector<std::int64_t> dist(n, std::numeric_limits<std::int64_t>::max());
    std::vector<Link*> first_hop(n, nullptr);
    using Item = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[source] = 0;
    heap.emplace(0, source);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) {
        continue;
      }
      for (const Edge& e : adjacency_[u]) {
        const std::int64_t nd = d + e.link->config().propagation_delay.ns();
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          first_hop[e.to] = (u == source) ? e.link : first_hop[u];
          heap.emplace(nd, e.to);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != source && first_hop[dst] != nullptr) {
        nodes_[source]->set_route(dst, first_hop[dst]);
      }
    }
  }
  // Intermediate nodes also need routes, which the per-source pass above
  // already provides because it runs from every node.
}

Node& Topology::node(NodeId id) {
  LSL_ASSERT(id < nodes_.size());
  return *nodes_[id];
}

const Node& Topology::node(NodeId id) const {
  LSL_ASSERT(id < nodes_.size());
  return *nodes_[id];
}

Link* Topology::link_between(NodeId a, NodeId b) {
  LSL_ASSERT(a < nodes_.size() && b < nodes_.size());
  for (const Edge& e : adjacency_[a]) {
    if (e.to == b) {
      return e.link;
    }
  }
  return nullptr;
}

NodeId Topology::find(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) {
      return node->id();
    }
  }
  LSL_ASSERT_MSG(false, "node name not found");
  return kInvalidNode;
}

void Topology::enable_fluid() {
  if (fluid_ != nullptr) {
    return;
  }
  fluid_ = std::make_unique<flow::FluidNetwork>(sim_);
  for (const auto& link : links_) {
    const auto fid = fluid_->add_link(link->fluid_capacity_bps(),
                                      link->config().loss_rate);
    link->bind_fluid(fluid_.get(), fid);
  }
}

void Topology::set_protocol_handle(NodeId id, ProtocolStack* stack) {
  LSL_ASSERT(id < nodes_.size());
  if (protocol_handles_.size() < nodes_.size()) {
    protocol_handles_.resize(nodes_.size(), nullptr);
  }
  protocol_handles_[id] = stack;
}

ProtocolStack* Topology::protocol_handle(NodeId id) const {
  if (id >= protocol_handles_.size()) {
    return nullptr;
  }
  return protocol_handles_[id];
}

Topology::FluidPathInfo Topology::fluid_path(NodeId src, NodeId dst) const {
  FluidPathInfo info;
  if (fluid_ == nullptr || src >= nodes_.size() || dst >= nodes_.size()) {
    return info;
  }
  if (src == dst) {
    info.found = true;
    return info;
  }
  constexpr std::uint64_t kMtuBytes = 1500;
  NodeId cur = src;
  while (cur != dst) {
    Link* out = nodes_[cur]->route_for(dst);
    if (out == nullptr) {
      return FluidPathInfo{};
    }
    NodeId next = kInvalidNode;
    for (const Edge& e : adjacency_[cur]) {
      if (e.link == out) {
        next = e.to;
        break;
      }
    }
    if (next == kInvalidNode || info.links.size() >= nodes_.size()) {
      return FluidPathInfo{};  // broken table or routing loop
    }
    info.links.push_back(out->fluid_link_id());
    info.latency += out->config().propagation_delay;
    info.serialization += out->config().rate.transmit_time(kMtuBytes);
    cur = next;
  }
  info.found = true;
  return info;
}

void Topology::send(Packet packet) {
  LSL_ASSERT(packet.src < nodes_.size() && packet.dst < nodes_.size());
  if (packet.dst == packet.src) {
    // Loopback: deliver through the event loop, never synchronously --
    // otherwise a self-connection's whole handshake would complete inside
    // the caller's connect() before it can install callbacks.
    Node* node = nodes_[packet.src].get();
    sim_.schedule_after(
        SimTime::zero(),
        [node, p = std::move(packet)]() mutable {
          node->handle_packet(std::move(p));
        },
        "net.loopback");
    return;
  }
  nodes_[packet.src]->handle_packet(std::move(packet));
}

}  // namespace lsl::net
