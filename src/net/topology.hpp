// Topology: owns nodes and links, computes static shortest-delay routes.
//
// Links are added as duplex pairs (or single directions for asymmetric
// setups). compute_routes() runs Dijkstra from every node over propagation
// delay and fills each node's forwarding table; explicit policy routes can be
// layered afterwards (the Abilene experiment pins the "direct" path onto its
// own link to match the paper's measured RTT triangle).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace lsl::net {

class Topology {
 public:
  /// `seed` drives per-link loss sampling streams.
  Topology(sim::Simulator& simulator, std::uint64_t seed);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  NodeId add_node(std::string name, std::string site = {});

  /// Add a duplex link (two independent unidirectional links) between a and
  /// b. Returns the index of the a->b direction; b->a is index+1.
  std::size_t add_duplex_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Add a single unidirectional link a->b.
  std::size_t add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Fill every node's forwarding table with shortest-propagation-delay
  /// routes. Must be called after all links are added (may be re-called).
  void compute_routes();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Link& link(std::size_t index) { return *links_[index]; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Directed link from a to b, or nullptr when not adjacent.
  [[nodiscard]] Link* link_between(NodeId a, NodeId b);

  /// Look up a node id by name; asserts existence.
  [[nodiscard]] NodeId find(const std::string& name) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Inject a packet at its source node (entry point used by TCP stacks).
  void send(Packet packet);

 private:
  struct Edge {
    NodeId to;
    Link* link;
  };

  sim::Simulator& sim_;
  Rng link_rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace lsl::net
