// Topology: owns nodes and links, computes static shortest-delay routes.
//
// Links are added as duplex pairs (or single directions for asymmetric
// setups). compute_routes() runs Dijkstra from every node over propagation
// delay and fills each node's forwarding table; explicit policy routes can be
// layered afterwards (the Abilene experiment pins the "direct" path onto its
// own link to match the paper's measured RTT triangle).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace lsl::flow {
class FluidNetwork;
}  // namespace lsl::flow

namespace lsl::net {

/// Marker base for per-node protocol stacks (tcp::TcpStack). The topology
/// keeps a NodeId -> stack registry so the fluid data plane can rendezvous
/// with the peer endpoint object without routing a packet.
class ProtocolStack {
 public:
  virtual ~ProtocolStack() = default;

 protected:
  ProtocolStack() = default;
};

class Topology {
 public:
  /// `seed` drives per-link loss sampling streams.
  Topology(sim::Simulator& simulator, std::uint64_t seed);
  ~Topology();

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  NodeId add_node(std::string name, std::string site = {});

  /// Add a duplex link (two independent unidirectional links) between a and
  /// b. Returns the index of the a->b direction; b->a is index+1.
  std::size_t add_duplex_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Add a single unidirectional link a->b.
  std::size_t add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Fill every node's forwarding table with shortest-propagation-delay
  /// routes. Must be called after all links are added (may be re-called).
  void compute_routes();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Link& link(std::size_t index) { return *links_[index]; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Directed link from a to b, or nullptr when not adjacent.
  [[nodiscard]] Link* link_between(NodeId a, NodeId b);

  /// Look up a node id by name; asserts existence.
  [[nodiscard]] NodeId find(const std::string& name) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Inject a packet at its source node (entry point used by TCP stacks).
  void send(Packet packet);

  // ---- fluid (flow-level) fidelity ------------------------------------
  /// Switch the data plane to the fluid engine: every link (existing and
  /// future) is mirrored as a fluid link, and TCP connections move their
  /// payload onto fluid flows while control segments keep riding packets.
  /// Idempotent; call before traffic starts.
  void enable_fluid();

  /// The fluid engine, or nullptr while running at packet fidelity.
  [[nodiscard]] flow::FluidNetwork* fluid() { return fluid_.get(); }

  /// Register / look up the protocol stack attached to a node.
  void set_protocol_handle(NodeId id, ProtocolStack* stack);
  [[nodiscard]] ProtocolStack* protocol_handle(NodeId id) const;

  struct FluidPathInfo {
    bool found = false;
    /// Fluid link ids along the forwarding-table walk, in hop order.
    std::vector<std::uint32_t> links;
    /// Total propagation delay along the path.
    SimTime latency = SimTime::zero();
    /// Total store-and-forward serialization of one full-MTU packet.
    SimTime serialization = SimTime::zero();
  };

  /// Walk the current forwarding tables from src towards dst and report the
  /// fluid links plus one-way timing. found=false when no route exists (or
  /// fluid mode is off); src==dst yields an empty, zero-latency path.
  [[nodiscard]] FluidPathInfo fluid_path(NodeId src, NodeId dst) const;

 private:
  struct Edge {
    NodeId to;
    Link* link;
  };

  sim::Simulator& sim_;
  Rng link_rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<Edge>> adjacency_;
  std::unique_ptr<flow::FluidNetwork> fluid_;
  std::vector<ProtocolStack*> protocol_handles_;
};

}  // namespace lsl::net
