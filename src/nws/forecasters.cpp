#include "nws/forecasters.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace lsl::nws {

void LastValueForecaster::observe(double value) {
  last_ = value;
  seen_ = true;
}

void RunningMeanForecaster::observe(double value) {
  sum_ += value;
  ++count_;
}

double RunningMeanForecaster::predict() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

SlidingMeanForecaster::SlidingMeanForecaster(std::size_t window)
    : capacity_(window) {
  LSL_ASSERT(window > 0);
}

void SlidingMeanForecaster::observe(double value) {
  window_.push_back(value);
  sum_ += value;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

double SlidingMeanForecaster::predict() const {
  return window_.empty() ? 0.0
                         : sum_ / static_cast<double>(window_.size());
}

SlidingMedianForecaster::SlidingMedianForecaster(std::size_t window)
    : capacity_(window) {
  LSL_ASSERT(window > 0);
}

void SlidingMedianForecaster::observe(double value) {
  window_.push_back(value);
  if (window_.size() > capacity_) {
    window_.pop_front();
  }
}

double SlidingMedianForecaster::predict() const {
  if (window_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) {
    return sorted[mid];
  }
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  LSL_ASSERT(alpha > 0.0 && alpha <= 1.0);
}

void EwmaForecaster::observe(double value) {
  if (!seen_) {
    value_ = value;
    seen_ = true;
  } else {
    value_ = alpha_ * value + (1.0 - alpha_) * value_;
  }
}

AdaptiveForecaster::AdaptiveForecaster() {
  members_.push_back(std::make_unique<LastValueForecaster>());
  members_.push_back(std::make_unique<RunningMeanForecaster>());
  members_.push_back(std::make_unique<SlidingMeanForecaster>(10));
  members_.push_back(std::make_unique<SlidingMedianForecaster>(10));
  members_.push_back(std::make_unique<EwmaForecaster>(0.25));
  error_.assign(members_.size(), 0.0);
}

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> members)
    : members_(std::move(members)) {
  LSL_ASSERT(!members_.empty());
  error_.assign(members_.size(), 0.0);
}

void AdaptiveForecaster::observe(double value) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i]->ready()) {
      error_[i] += std::abs(members_[i]->predict() - value);
    }
    members_[i]->observe(value);
  }
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  double best_error = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i]->ready() && error_[i] < best_error) {
      best_error = error_[i];
      best = i;
    }
  }
  return best;
}

double AdaptiveForecaster::predict() const {
  return members_[best_index()]->predict();
}

bool AdaptiveForecaster::ready() const {
  return std::any_of(members_.begin(), members_.end(),
                     [](const auto& m) { return m->ready(); });
}

std::string AdaptiveForecaster::best_member() const {
  return members_[best_index()]->name();
}

}  // namespace lsl::nws
