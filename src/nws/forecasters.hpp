// Network Weather Service style forecasting.
//
// The NWS runs a bank of simple predictors over each measurement series and,
// at any instant, trusts the one with the lowest cumulative error so far.
// We implement the classic members (last value, running mean, sliding mean,
// sliding median, EWMA) and the adaptive bank.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace lsl::nws {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Feed the next measurement.
  virtual void observe(double value) = 0;
  /// Current prediction; meaningful only when ready().
  [[nodiscard]] virtual double predict() const = 0;
  [[nodiscard]] virtual bool ready() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class LastValueForecaster final : public Forecaster {
 public:
  void observe(double value) override;
  [[nodiscard]] double predict() const override { return last_; }
  [[nodiscard]] bool ready() const override { return seen_; }
  [[nodiscard]] std::string name() const override { return "last_value"; }

 private:
  double last_ = 0.0;
  bool seen_ = false;
};

class RunningMeanForecaster final : public Forecaster {
 public:
  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] bool ready() const override { return count_ > 0; }
  [[nodiscard]] std::string name() const override { return "running_mean"; }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

class SlidingMeanForecaster final : public Forecaster {
 public:
  explicit SlidingMeanForecaster(std::size_t window);
  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] bool ready() const override { return !window_.empty(); }
  [[nodiscard]] std::string name() const override { return "sliding_mean"; }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

class SlidingMedianForecaster final : public Forecaster {
 public:
  explicit SlidingMedianForecaster(std::size_t window);
  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] bool ready() const override { return !window_.empty(); }
  [[nodiscard]] std::string name() const override { return "sliding_median"; }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);
  void observe(double value) override;
  [[nodiscard]] double predict() const override { return value_; }
  [[nodiscard]] bool ready() const override { return seen_; }
  [[nodiscard]] std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seen_ = false;
};

/// The NWS adaptive strategy: run every member on the series, score each by
/// cumulative absolute one-step-ahead error, predict with the current best.
class AdaptiveForecaster final : public Forecaster {
 public:
  /// Builds the standard bank.
  AdaptiveForecaster();
  explicit AdaptiveForecaster(
      std::vector<std::unique_ptr<Forecaster>> members);

  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] bool ready() const override;
  [[nodiscard]] std::string name() const override { return "adaptive"; }

  /// Name of the member currently trusted.
  [[nodiscard]] std::string best_member() const;

 private:
  [[nodiscard]] std::size_t best_index() const;

  std::vector<std::unique_ptr<Forecaster>> members_;
  std::vector<double> error_;
};

}  // namespace lsl::nws
