#include "nws/monitor.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace lsl::nws {

NwsMetrics* NwsMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local NwsMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.epochs = &reg.counter("nws.monitor.epochs");
    metrics.observations = &reg.counter("nws.monitor.observations");
    metrics.blackout_epochs = &reg.counter("nws.monitor.blackout_epochs");
    metrics.forecast_abs_rel_error =
        &reg.histogram("nws.monitor.forecast_abs_rel_error",
                       obs::linear_buckets(0.05, 0.05, 20));
  }
  return &metrics;
}

double NoiseModel::sample(double truth, Rng& rng) const {
  double value = truth * rng.lognormal(0.0, lognormal_sigma);
  if (rng.chance(outlier_probability)) {
    value *= outlier_factor;
  }
  return value;
}

PerformanceMonitor::PerformanceMonitor(std::vector<std::string> sites,
                                       NoiseModel noise, std::uint64_t seed)
    : sites_(std::move(sites)),
      noise_(noise),
      rng_(seed),
      metrics_(NwsMetrics::get()) {
  LSL_ASSERT(!sites_.empty());
  site_index_of_host_.resize(sites_.size());
  for (std::size_t host = 0; host < sites_.size(); ++host) {
    std::size_t index = site_names_.size();
    for (std::size_t s = 0; s < site_names_.size(); ++s) {
      if (site_names_[s] == sites_[host]) {
        index = s;
        break;
      }
    }
    if (index == site_names_.size()) {
      site_names_.push_back(sites_[host]);
      site_representative_.push_back(host);
    }
    site_index_of_host_[host] = index;
  }
}

void PerformanceMonitor::observe_epoch(const TruthFn& truth) {
  ++epochs_;
  if (metrics_ != nullptr) {
    metrics_->epochs->inc();
  }
  if (blackout_) {
    // Measurement infrastructure fault: no probes run; the forecasters keep
    // serving their last predictions, which drift from the ground truth.
    if (metrics_ != nullptr) {
      metrics_->blackout_epochs->inc();
    }
    return;
  }
  const std::size_t s = site_names_.size();
  for (std::size_t a = 0; a < s; ++a) {
    for (std::size_t b = 0; b < s; ++b) {
      if (a == b) {
        continue;
      }
      const std::size_t host_a = site_representative_[a];
      const std::size_t host_b = site_representative_[b];
      const double measured = noise_.sample(
          truth(host_a, host_b).megabits_per_second(), rng_);
      auto& forecaster = pair_forecasts_[{a, b}];
      if (forecaster == nullptr) {
        forecaster = std::make_unique<AdaptiveForecaster>();
      }
      if (metrics_ != nullptr) {
        metrics_->observations->inc();
        // Forecast error against the reading the forecaster is about to see:
        // how far off would the scheduler's input have been this epoch?
        if (forecaster->ready() && measured > 0.0) {
          const double predicted = forecaster->predict();
          metrics_->forecast_abs_rel_error->observe(
              std::abs(measured - predicted) / measured);
        }
      }
      forecaster->observe(measured);
    }
  }
}

Bandwidth PerformanceMonitor::forecast(std::size_t i, std::size_t j) const {
  LSL_ASSERT(i < sites_.size() && j < sites_.size());
  const std::size_t a = site_index_of_host_[i];
  const std::size_t b = site_index_of_host_[j];
  if (a == b) {
    // Intra-site traffic rides the LAN; model it as fast and flat.
    return Bandwidth::mbps(1000.0);
  }
  const auto it = pair_forecasts_.find({a, b});
  if (it == pair_forecasts_.end() || !it->second->ready()) {
    return Bandwidth{0.0};
  }
  return Bandwidth::mbps(std::max(it->second->predict(), 1e-3));
}

sched::CostMatrix PerformanceMonitor::build_matrix() const {
  const std::size_t n = sites_.size();
  sched::CostMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set_label(i, "host" + std::to_string(i), sites_[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const Bandwidth bw = forecast(i, j);
      if (bw.bits_per_second() > 0.0) {
        matrix.set_bandwidth(i, j, bw);
      }
    }
  }
  return matrix;
}

std::size_t PerformanceMonitor::representative(const std::string& site) const {
  for (std::size_t s = 0; s < site_names_.size(); ++s) {
    if (site_names_[s] == site) {
      return site_representative_[s];
    }
  }
  LSL_ASSERT_MSG(false, "unknown site");
  return 0;
}

}  // namespace lsl::nws
