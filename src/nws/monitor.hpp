// The measurement side of the scheduler's input: a monitor samples pairwise
// bandwidth (with measurement noise and occasional outliers), feeds per-pair
// forecasters, and aggregates to a fully connected host-level cost matrix
// using site cliques -- all hosts at site A share the A->B wide-area
// measurement, mirroring the performance-topology aggregation the paper
// takes from Swany & Wolski [34].
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nws/forecasters.hpp"
#include "obs/metrics.hpp"
#include "sched/cost_matrix.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::nws {

/// Process-wide monitor instruments in the global metrics registry.
struct NwsMetrics {
  obs::Counter* epochs;          ///< nws.monitor.epochs
  obs::Counter* observations;    ///< nws.monitor.observations
  obs::Counter* blackout_epochs; ///< nws.monitor.blackout_epochs
  /// nws.monitor.forecast_abs_rel_error: |measured - predicted| / measured
  /// for every measurement taken after the pair's forecaster warmed up.
  obs::Histogram* forecast_abs_rel_error;

  /// nullptr while obs::metrics_enabled() is false.
  static NwsMetrics* get();
};

struct NoiseModel {
  /// Multiplicative lognormal measurement noise (sigma of log).
  double lognormal_sigma = 0.15;
  /// Probability a probe lands during a transient event and reads far low.
  double outlier_probability = 0.02;
  /// Multiplier applied to outlier readings.
  double outlier_factor = 0.3;

  [[nodiscard]] double sample(double truth, Rng& rng) const;
};

/// Ground-truth callback: current end-to-end bandwidth between two hosts.
using TruthFn = std::function<Bandwidth(std::size_t, std::size_t)>;

class PerformanceMonitor {
 public:
  /// `sites[i]` labels host i; hosts sharing a label form a clique measured
  /// through one representative pair.
  PerformanceMonitor(std::vector<std::string> sites, NoiseModel noise,
                     std::uint64_t seed);

  /// Take one measurement epoch against the ground truth. During a
  /// blackout the epoch is skipped (no probes run) and forecasts go stale.
  void observe_epoch(const TruthFn& truth);

  /// Measurement blackout (monitoring infrastructure fault): while set,
  /// observe_epoch takes no measurements.
  void set_blackout(bool blackout) { blackout_ = blackout; }
  [[nodiscard]] bool blackout() const { return blackout_; }

  /// Forecast bandwidth between two hosts (site-aggregated).
  [[nodiscard]] Bandwidth forecast(std::size_t i, std::size_t j) const;

  /// Assemble the scheduler's cost matrix from current forecasts.
  [[nodiscard]] sched::CostMatrix build_matrix() const;

  [[nodiscard]] std::size_t epochs() const { return epochs_; }
  [[nodiscard]] std::size_t host_count() const { return sites_.size(); }

 private:
  /// Representative host of a site (first member).
  [[nodiscard]] std::size_t representative(const std::string& site) const;

  std::vector<std::string> sites_;
  std::vector<std::string> site_names_;  ///< unique, in first-seen order
  NoiseModel noise_;
  Rng rng_;
  /// (site index a, site index b) -> forecaster over measured Mbit/s.
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<AdaptiveForecaster>>
      pair_forecasts_;
  std::vector<std::size_t> site_index_of_host_;
  std::vector<std::size_t> site_representative_;
  std::size_t epochs_ = 0;
  bool blackout_ = false;
  NwsMetrics* metrics_ = nullptr;  ///< shared instruments (may be null)
};

}  // namespace lsl::nws
