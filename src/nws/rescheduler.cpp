#include "nws/rescheduler.hpp"

#include <utility>

#include "obs/span.hpp"

namespace lsl::nws {

Rescheduler::Rescheduler(sim::Simulator& simulator,
                         PerformanceMonitor monitor, TruthFn truth,
                         SimTime interval, sched::SchedulerOptions options,
                         OnSchedule on_schedule, ReschedulerConfig config)
    : sim_(simulator),
      monitor_(std::move(monitor)),
      truth_(std::move(truth)),
      interval_(interval),
      options_(std::move(options)),
      on_schedule_(std::move(on_schedule)),
      config_(config),
      timer_(simulator, [this] { tick(); }) {}

void Rescheduler::start() { tick(); }

void Rescheduler::stop() { timer_.cancel(); }

void Rescheduler::tick() {
  monitor_.observe_epoch(truth_);
  if (current_ == nullptr || !config_.incremental) {
    current_ = std::make_unique<sched::Scheduler>(monitor_.build_matrix(),
                                                  options_);
    last_changed_edges_ = 0;
  } else {
    // Diff-apply the fresh forecasts: cached trees stay live and repair
    // only their affected subtrees on next use.
    last_changed_edges_ = current_->apply_matrix(monitor_.build_matrix());
  }
  if (config_.prebuild_jobs > 0) {
    current_->prebuild_trees(config_.prebuild_jobs);
  }
  ++rebuilds_;
  if (obs::SpanRecorder* sr = obs::spans()) {
    sr->instant(sim_.now(), obs::SpanKind::kForecastEpoch, /*session=*/0, 0, 0,
                config_.incremental ? "incremental" : "rebuild",
                static_cast<double>(last_changed_edges_));
  }
  if (on_schedule_) {
    on_schedule_(*current_);
  }
  for (const auto& [token, listener] : listeners_) {
    listener(*current_, last_changed_edges_);
  }
  timer_.arm(interval_);
}

std::uint64_t Rescheduler::subscribe(TickListener listener) {
  const std::uint64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Rescheduler::unsubscribe(std::uint64_t token) {
  std::erase_if(listeners_,
                [token](const auto& entry) { return entry.first == token; });
}

}  // namespace lsl::nws
