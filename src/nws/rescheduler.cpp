#include "nws/rescheduler.hpp"

#include <utility>

namespace lsl::nws {

Rescheduler::Rescheduler(sim::Simulator& simulator,
                         PerformanceMonitor monitor, TruthFn truth,
                         SimTime interval, sched::SchedulerOptions options,
                         OnSchedule on_schedule)
    : sim_(simulator),
      monitor_(std::move(monitor)),
      truth_(std::move(truth)),
      interval_(interval),
      options_(std::move(options)),
      on_schedule_(std::move(on_schedule)),
      timer_(simulator, [this] { tick(); }) {}

void Rescheduler::start() { tick(); }

void Rescheduler::stop() { timer_.cancel(); }

void Rescheduler::tick() {
  monitor_.observe_epoch(truth_);
  current_ = std::make_unique<sched::Scheduler>(monitor_.build_matrix(), options_);
  ++rebuilds_;
  if (on_schedule_) {
    on_schedule_(*current_);
  }
  timer_.arm(interval_);
}

}  // namespace lsl::nws
