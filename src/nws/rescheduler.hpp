// Periodic re-scheduling (paper section 4.2: "the scheduler was re-run at
// 5 minute intervals and was based on relatively current information").
//
// The Rescheduler owns the measure -> matrix -> schedule loop: on every
// tick it takes one measurement epoch and refreshes the scheduler from the
// accumulated forecasts -- by default diff-applying the new matrix onto the
// live scheduler so its cached MMP trees repair incrementally (the tick
// cost scales with forecast movement, not pool size) -- then invokes a
// callback so the deployment can install fresh route tables.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "sim/timer.hpp"

namespace lsl::nws {

struct ReschedulerConfig {
  /// Diff-apply each epoch's matrix onto the live scheduler (incremental
  /// MMP tree repair) instead of constructing a fresh scheduler per tick.
  /// Decisions are identical either way -- repair produces exactly the
  /// rebuild's trees or transparently falls back to one (at epsilon > 0
  /// only decrease-only drift repairs in place; see repair_mmp_tree) --
  /// so this is purely a control-plane cost knob.
  bool incremental = true;
  /// Worker threads for an eager tree refresh right after each tick
  /// (0 = lazy: trees build/repair on first use).
  std::size_t prebuild_jobs = 0;
};

class Rescheduler {
 public:
  /// Invoked after every rebuild with the fresh scheduler.
  using OnSchedule = std::function<void(const sched::Scheduler&)>;
  /// Tick fan-out: subscribers see the fresh scheduler plus how many
  /// directed edges the tick moved (0 after a full rebuild). Live-session
  /// consumers (sched::RouteAdvisor) hang off this.
  using TickListener =
      std::function<void(const sched::Scheduler&, std::size_t changed_edges)>;

  Rescheduler(sim::Simulator& simulator, PerformanceMonitor monitor,
              TruthFn truth, SimTime interval,
              sched::SchedulerOptions options, OnSchedule on_schedule,
              ReschedulerConfig config = {});

  Rescheduler(const Rescheduler&) = delete;
  Rescheduler& operator=(const Rescheduler&) = delete;

  /// Take the first measurement epoch and start the periodic loop.
  void start();
  void stop();

  /// The most recently built scheduler; null before the first tick.
  [[nodiscard]] const sched::Scheduler* current() const { return current_.get(); }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  /// Directed edges the last incremental tick changed (0 after a full
  /// rebuild tick or before the first tick).
  [[nodiscard]] std::size_t last_changed_edges() const {
    return last_changed_edges_;
  }

  /// The owned monitor (fault injection flips its measurement blackout).
  [[nodiscard]] PerformanceMonitor& monitor() { return monitor_; }

  /// Subscribe to matrix ticks; fired after on_schedule, in subscription
  /// order. Returns a token for unsubscribe().
  std::uint64_t subscribe(TickListener listener);
  void unsubscribe(std::uint64_t token);

 private:
  void tick();

  sim::Simulator& sim_;
  PerformanceMonitor monitor_;
  TruthFn truth_;
  SimTime interval_;
  sched::SchedulerOptions options_;
  OnSchedule on_schedule_;
  ReschedulerConfig config_;
  std::unique_ptr<sched::Scheduler> current_;
  sim::Timer timer_;
  std::size_t rebuilds_ = 0;
  std::size_t last_changed_edges_ = 0;
  /// Ordered so tick fan-out is deterministic across runs.
  std::vector<std::pair<std::uint64_t, TickListener>> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace lsl::nws
