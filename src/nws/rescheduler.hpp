// Periodic re-scheduling (paper section 4.2: "the scheduler was re-run at
// 5 minute intervals and was based on relatively current information").
//
// The Rescheduler owns the measure -> matrix -> schedule loop: on every
// tick it takes one measurement epoch, rebuilds the scheduler from the
// accumulated forecasts, and invokes a callback so the deployment can
// install fresh route tables.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "sim/timer.hpp"

namespace lsl::nws {

class Rescheduler {
 public:
  /// Invoked after every rebuild with the fresh scheduler.
  using OnSchedule = std::function<void(const sched::Scheduler&)>;

  Rescheduler(sim::Simulator& simulator, PerformanceMonitor monitor,
              TruthFn truth, SimTime interval,
              sched::SchedulerOptions options, OnSchedule on_schedule);

  Rescheduler(const Rescheduler&) = delete;
  Rescheduler& operator=(const Rescheduler&) = delete;

  /// Take the first measurement epoch and start the periodic loop.
  void start();
  void stop();

  /// The most recently built scheduler; null before the first tick.
  [[nodiscard]] const sched::Scheduler* current() const { return current_.get(); }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

  /// The owned monitor (fault injection flips its measurement blackout).
  [[nodiscard]] PerformanceMonitor& monitor() { return monitor_; }

 private:
  void tick();

  sim::Simulator& sim_;
  PerformanceMonitor monitor_;
  TruthFn truth_;
  SimTime interval_;
  sched::SchedulerOptions options_;
  OnSchedule on_schedule_;
  std::unique_ptr<sched::Scheduler> current_;
  sim::Timer timer_;
  std::size_t rebuilds_ = 0;
};

}  // namespace lsl::nws
