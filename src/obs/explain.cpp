#include "obs/explain.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

namespace lsl::obs {

namespace {

/// What the accountant charges time to between events.
enum class Mode : std::uint8_t {
  kOther,
  kConnect,
  kStream,
  kBackoff,
  kProbe,
  kHandover,
};

struct Acct {
  std::size_t index = 0;  ///< slot in the output vector
  Mode mode = Mode::kOther;
  Mode probe_return = Mode::kOther;  ///< mode to restore when a probe ends
  SimTime last;                      ///< attribution frontier
  /// Opened by a kSession span (plain launches have no recovery wrapper and
  /// therefore no kTransfer span); a kTransfer begin supersedes it.
  bool session_level = false;
};

SimTime& bucket(TransferBreakdown& b, Mode mode) {
  switch (mode) {
    case Mode::kConnect:
      return b.connect;
    case Mode::kStream:
      return b.stream;
    case Mode::kBackoff:
      return b.backoff;
    case Mode::kProbe:
      return b.probe;
    case Mode::kHandover:
      return b.handover;
    case Mode::kOther:
      break;
  }
  return b.other;
}

void flush(Acct& acct, TransferBreakdown& b, SimTime t) {
  if (t > acct.last) {
    bucket(b, acct.mode) += t - acct.last;
    acct.last = t;
  }
}

/// Move up to `amount` of already-attributed time from `sources` (tried in
/// order) into `into`. The transfer's total is conserved: time is shifted
/// between categories, never created, so the sum-to-wall invariant holds.
void shift(SimTime amount, std::initializer_list<SimTime*> sources,
           SimTime& into) {
  for (SimTime* source : sources) {
    if (amount <= SimTime::zero()) {
      return;
    }
    const SimTime take = std::min(amount, *source);
    if (take > SimTime::zero()) {
      *source -= take;
      into += take;
      amount -= take;
    }
  }
}

}  // namespace

const char* TransferBreakdown::dominant() const {
  const char* name = "other";
  SimTime best = other;
  const auto consider = [&](const char* n, SimTime v) {
    if (v > best) {
      best = v;
      name = n;
    }
  };
  // Declaration order; first category wins ties via strict >.
  consider("connect", connect);
  consider("stream", stream);
  consider("retransmit", retransmit);
  consider("stall", stall);
  consider("backoff", backoff);
  consider("probe", probe);
  consider("handover", handover);
  return name;
}

std::vector<TransferBreakdown> account_spans(
    const std::vector<SpanEvent>& events) {
  std::vector<TransferBreakdown> out;
  std::map<std::uint64_t, Acct> open;  ///< session -> accountant state

  const auto open_acct = [&](const SpanEvent& e, bool session_level) {
    Acct acct;
    acct.index = out.size();
    acct.last = e.ts;
    acct.session_level = session_level;
    TransferBreakdown b;
    b.session = e.session;
    b.transfer_span = e.span_id;
    b.start = e.ts;
    b.end = e.ts;
    out.push_back(b);
    open[e.session] = acct;
  };

  for (const SpanEvent& e : events) {
    if (e.kind == SpanKind::kSession && e.phase == SpanPhase::kBegin) {
      if (open.find(e.session) == open.end()) {
        open_acct(e, /*session_level=*/true);
      }
      continue;
    }
    if (e.kind == SpanKind::kTransfer && e.phase == SpanPhase::kBegin) {
      if (const auto it = open.find(e.session);
          it != open.end() && it->second.session_level) {
        // The recovery wrapper's transfer span supersedes the harness
        // session span: same wall clock, richer lifecycle events.
        flush(it->second, out[it->second.index], e.ts);
        it->second.session_level = false;
        out[it->second.index].transfer_span = e.span_id;
      } else {
        open_acct(e, /*session_level=*/false);
      }
      continue;
    }
    const auto it = open.find(e.session);
    if (it == open.end()) {
      continue;  // context event for a session we are not accounting
    }
    Acct& acct = it->second;
    TransferBreakdown& b = out[acct.index];
    switch (e.kind) {
      case SpanKind::kAttempt:
        flush(acct, b, e.ts);
        if (e.phase == SpanPhase::kBegin) {
          acct.mode = Mode::kConnect;
          ++b.attempts;
        } else if (e.phase == SpanPhase::kEnd) {
          acct.mode = Mode::kOther;
        }
        break;
      case SpanKind::kConnect:
        if (e.phase == SpanPhase::kBegin) {
          flush(acct, b, e.ts);
          acct.mode = Mode::kConnect;
        }
        break;
      case SpanKind::kStream:
        if (e.phase == SpanPhase::kBegin) {
          flush(acct, b, e.ts);
          acct.mode = Mode::kStream;
        }
        // Stream end changes nothing: post-send drain keeps charging the
        // stream bucket until the attempt closes or a probe starts.
        break;
      case SpanKind::kBackoff:
        flush(acct, b, e.ts);
        acct.mode =
            e.phase == SpanPhase::kBegin ? Mode::kBackoff : Mode::kOther;
        break;
      case SpanKind::kProbe:
        if (e.phase == SpanPhase::kBegin) {
          if (acct.mode != Mode::kHandover) {
            // Handover probes stay in the handover bucket; everything else
            // (watchdog, relaunch) is accounted as probe time.
            flush(acct, b, e.ts);
            acct.probe_return = acct.mode;
            acct.mode = Mode::kProbe;
          }
        } else if (e.phase == SpanPhase::kEnd &&
                   acct.mode == Mode::kProbe) {
          flush(acct, b, e.ts);
          acct.mode = acct.probe_return;
        }
        break;
      case SpanKind::kHandover:
        flush(acct, b, e.ts);
        if (e.phase == SpanPhase::kBegin) {
          acct.mode = Mode::kHandover;
          ++b.handovers;
        } else if (e.phase == SpanPhase::kEnd) {
          acct.mode = Mode::kOther;
        }
        break;
      case SpanKind::kStall:
        if (e.phase == SpanPhase::kComplete) {
          // Retroactive: the watchdog window [ts, ts+dur] produced no
          // progress. Reclassify it out of whatever it was charged to.
          flush(acct, b, e.ts + e.dur);
          shift(e.dur, {&b.stream, &b.connect, &b.probe, &b.other}, b.stall);
        }
        break;
      case SpanKind::kRtoWait:
        if (e.phase == SpanPhase::kComplete) {
          // Retroactive: dead air ended by a retransmission timeout while
          // the connection was established -- retransmit-dominated time.
          flush(acct, b, e.ts + e.dur);
          shift(e.dur, {&b.stream}, b.retransmit);
        }
        break;
      case SpanKind::kTransfer:
        if (e.phase == SpanPhase::kEnd) {
          flush(acct, b, e.ts);
          b.end = e.ts;
          b.completed = std::strcmp(e.reason, "completed") == 0;
          b.failed = std::strcmp(e.reason, "failed") == 0;
          open.erase(it);
        }
        break;
      case SpanKind::kSession:
        // Closes the account only while it is still session-level; when a
        // kTransfer span took over, its own end already settled the books.
        if (e.phase == SpanPhase::kEnd && acct.session_level) {
          flush(acct, b, e.ts);
          b.end = e.ts;
          b.completed = std::strcmp(e.reason, "completed") == 0;
          b.failed = std::strcmp(e.reason, "failed") == 0;
          open.erase(it);
        }
        break;
      case SpanKind::kResume:
      case SpanKind::kRouteDecision:
      case SpanKind::kFaultWindow:
      case SpanKind::kForecastEpoch:
        break;  // informational; no mode change
    }
  }
  // Transfers still open when the log ended: close at the attribution
  // frontier so categories still sum to wall time.
  for (auto& [session, acct] : open) {
    out[acct.index].end = acct.last;
  }
  return out;
}

void BreakdownTotals::add(const TransferBreakdown& b) {
  wall += b.wall();
  connect += b.connect;
  stream += b.stream;
  retransmit += b.retransmit;
  stall += b.stall;
  backoff += b.backoff;
  probe += b.probe;
  handover += b.handover;
  other += b.other;
  ++transfers;
  attempts += static_cast<std::uint64_t>(b.attempts);
  handovers += static_cast<std::uint64_t>(b.handovers);
  if (b.completed) {
    ++completed;
  }
  if (b.failed) {
    ++failed;
  }
}

std::string render_breakdowns(
    const std::vector<TransferBreakdown>& breakdowns,
    std::uint64_t session_filter) {
  std::string out;
  char buf[256];
  bool any = false;
  for (const TransferBreakdown& b : breakdowns) {
    if (session_filter != 0 && b.session != session_filter) {
      continue;
    }
    any = true;
    const char* outcome =
        b.completed ? "completed" : (b.failed ? "FAILED" : "unfinished");
    std::snprintf(buf, sizeof buf,
                  "transfer %016" PRIx64
                  "  %s  wall=%.6fs  attempts=%d  handovers=%d  "
                  "dominant=%s\n",
                  b.session, outcome, b.wall().to_seconds(), b.attempts,
                  b.handovers, b.dominant());
    out += buf;
    const double wall_s = b.wall().to_seconds();
    const auto row = [&](const char* name, SimTime v) {
      const double share =
          wall_s > 0.0 ? 100.0 * v.to_seconds() / wall_s : 0.0;
      std::snprintf(buf, sizeof buf, "  %-12s %14.6fs  %5.1f%%\n", name,
                    v.to_seconds(), share);
      out += buf;
    };
    row("connect", b.connect);
    row("stream", b.stream);
    row("retransmit", b.retransmit);
    row("stall", b.stall);
    row("backoff", b.backoff);
    row("probe", b.probe);
    row("handover", b.handover);
    row("other", b.other);
    std::snprintf(buf, sizeof buf, "  %-12s %14.6fs\n", "total",
                  b.categorized().to_seconds());
    out += buf;
  }
  if (!any) {
    out += "no transfers recorded\n";
  }
  return out;
}

}  // namespace lsl::obs
