// Deterministic per-transfer time accounting over the causal span stream
// (obs/span.hpp): `lslsim --explain` and the bench sidecars turn a span log
// into "where did the wall time go" -- useful streaming vs. connect vs.
// stall vs. backoff vs. handover-drain vs. retransmit-dominated.
//
// The accountant replays one session's events in record order through a
// small state machine: at any instant a transfer is in exactly one mode
// (connect / stream / probe / backoff / handover / other), and the time
// between consecutive events is attributed to the mode in force. Two
// retroactive corrections move already-attributed time without creating or
// destroying any: kStall complete events shift the dead watchdog window out
// of stream/connect into `stall`, and kRtoWait complete events shift RTO
// dead air out of `stream` into `retransmit`. Categories therefore sum to
// the transfer's wall time *exactly* (integer nanoseconds, no epsilon), a
// property span_test pins.
//
// Everything here is a pure function of the event stream, so breakdowns
// computed in per-trial recorders and merged in trial order are bitwise
// identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "util/time.hpp"

namespace lsl::obs {

/// Wall-time decomposition of one transfer (one kTransfer span).
struct TransferBreakdown {
  std::uint64_t session = 0;        ///< SessionIdHash of the transfer
  std::uint64_t transfer_span = 0;  ///< span id of the kTransfer span
  SimTime start;
  SimTime end;

  // The categories; they sum to wall() exactly.
  SimTime connect;     ///< TCP handshakes (incl. SYN retransmit waits)
  SimTime stream;      ///< established source connection moving payload
  SimTime retransmit;  ///< RTO dead air inside streaming (retransmit-bound)
  SimTime stall;       ///< watchdog windows that expired without progress
  SimTime backoff;     ///< jittered waits between failure and re-probe
  SimTime probe;       ///< kOffsetQuery round-trips (watchdog + relaunch)
  SimTime handover;    ///< planned-handover drain + splice (PR 5)
  SimTime other;       ///< bookkeeping outside any attempt

  int attempts = 0;
  int handovers = 0;
  bool completed = false;
  bool failed = false;  ///< neither set = still open when the log ended

  [[nodiscard]] SimTime wall() const { return end - start; }
  [[nodiscard]] SimTime categorized() const {
    return connect + stream + retransmit + stall + backoff + probe +
           handover + other;
  }
  /// The category holding the largest share (ties break in declaration
  /// order), e.g. "stream" for a healthy transfer.
  [[nodiscard]] const char* dominant() const;
};

/// Replays `events` (record order, as produced by SpanRecorder::snapshot or
/// session_events) and returns one breakdown per kTransfer span, in
/// transfer-begin order. Transfers still open at the end of the log are
/// closed at their last event (completed == failed == false).
[[nodiscard]] std::vector<TransferBreakdown> account_spans(
    const std::vector<SpanEvent>& events);

/// Sum of breakdowns for sweep/bench aggregation (JSON sidecar records).
struct BreakdownTotals {
  SimTime wall, connect, stream, retransmit, stall, backoff, probe, handover,
      other;
  std::uint64_t transfers = 0;
  std::uint64_t attempts = 0;
  std::uint64_t handovers = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  void add(const TransferBreakdown& b);
};

/// Deterministic text rendering for `lslsim --explain`: one block per
/// transfer with absolute seconds and percentage shares. `session_filter`
/// restricts the output to one session hash (0 = all).
[[nodiscard]] std::string render_breakdowns(
    const std::vector<TransferBreakdown>& breakdowns,
    std::uint64_t session_filter = 0);

}  // namespace lsl::obs
