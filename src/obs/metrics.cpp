#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/assert.hpp"

namespace lsl::obs {

namespace {

bool g_metrics_enabled = true;

/// Doubles render shortest-round-trip; integers without a trailing ".0"
/// would also be valid JSON but %.17g keeps both cases readable.
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  // JSON has no inf/nan; clamp to strings a loader will notice.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    return "null";
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  LSL_ASSERT_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  LSL_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      // Interpolate within bucket i: [lower, upper].
      const double lower = i == 0 ? min_ : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : max_;
      const double frac =
          (target - cum) / static_cast<double>(buckets_[i]);
      const double v = lower + frac * (upper - lower);
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  LSL_ASSERT(count > 0 && width > 0.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i + 1));
  }
  return bounds;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  LSL_ASSERT(count > 0 && start > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() {
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

const std::string& Registry::Entry::name() const {
  switch (kind) {
    case Kind::kCounter:
      return counter->name();
    case Kind::kGauge:
      return gauge->name();
    case Kind::kHistogram:
      return histogram->name();
  }
  LSL_ASSERT(false);
  return counter->name();
}

Registry::Entry* Registry::find(std::string_view name, Kind kind) {
  for (auto& entry : entries_) {
    if (entry.name() == name) {
      LSL_ASSERT_MSG(entry.kind == kind,
                     "metric re-registered with a different type");
      return &entry;
    }
  }
  return nullptr;
}

Counter& Registry::counter(std::string_view name) {
  if (Entry* e = find(name, Kind::kCounter)) {
    return *e->counter;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter.reset(new Counter(std::string(name)));
  entries_.push_back(std::move(entry));
  return *entries_.back().counter;
}

Gauge& Registry::gauge(std::string_view name) {
  if (Entry* e = find(name, Kind::kGauge)) {
    return *e->gauge;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge.reset(new Gauge(std::string(name)));
  entries_.push_back(std::move(entry));
  return *entries_.back().gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  if (Entry* e = find(name, Kind::kHistogram)) {
    return *e->histogram;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram.reset(new Histogram(std::string(name), std::move(bounds)));
  entries_.push_back(std::move(entry));
  return *entries_.back().histogram;
}

Histogram& Registry::histogram_exp(std::string_view name, double base,
                                   std::size_t count) {
  return histogram(name, exponential_buckets(base, 2.0, count));
}

void Registry::reset_values() {
  for (auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->value_ = 0;
        break;
      case Kind::kGauge:
        entry.gauge->value_ = 0.0;
        entry.gauge->high_water_ = 0.0;
        break;
      case Kind::kHistogram: {
        auto& h = *entry.histogram;
        std::fill(h.buckets_.begin(), h.buckets_.end(), 0);
        h.count_ = 0;
        h.sum_ = 0.0;
        h.min_ = 0.0;
        h.max_ = 0.0;
        break;
      }
    }
  }
}

std::string Registry::to_json() const {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        if (!counters.empty()) {
          counters += ",";
        }
        counters += "\n    \"" + json_escape(entry.counter->name()) +
                    "\": " + std::to_string(entry.counter->value());
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) {
          gauges += ",";
        }
        gauges += "\n    \"" + json_escape(entry.gauge->name()) +
                  "\": {\"value\": " + json_number(entry.gauge->value()) +
                  ", \"high_water\": " +
                  json_number(entry.gauge->high_water()) + "}";
        break;
      }
      case Kind::kHistogram: {
        const auto& h = *entry.histogram;
        if (!histograms.empty()) {
          histograms += ",";
        }
        std::string buckets;
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i > 0) {
            buckets += ", ";
          }
          const std::string le =
              i < h.bounds().size() ? json_number(h.bounds()[i]) : "\"+inf\"";
          buckets += "{\"le\": " + le +
                     ", \"n\": " + std::to_string(h.bucket_counts()[i]) + "}";
        }
        histograms += "\n    \"" + json_escape(h.name()) +
                      "\": {\"count\": " + std::to_string(h.count()) +
                      ", \"sum\": " + json_number(h.sum()) +
                      ", \"min\": " + json_number(h.min()) +
                      ", \"max\": " + json_number(h.max()) +
                      ", \"p50\": " + json_number(h.quantile(0.50)) +
                      ", \"p90\": " + json_number(h.quantile(0.90)) +
                      ", \"p99\": " + json_number(h.quantile(0.99)) +
                      ", \"p999\": " + json_number(h.quantile(0.999)) +
                      ", \"buckets\": [" + buckets + "]}";
        break;
      }
    }
  }
  std::string out = "{\n  \"counters\": {";
  out += counters;
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  out += gauges;
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  out += histograms;
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::to_table() const {
  std::size_t width = 6;
  for (const auto& entry : entries_) {
    width = std::max(width, entry.name().size());
  }
  std::string out;
  char buf[256];
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf, "%-*s  %llu\n",
                      static_cast<int>(width), entry.counter->name().c_str(),
                      static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf, "%-*s  %.6g (high %.6g)\n",
                      static_cast<int>(width), entry.gauge->name().c_str(),
                      entry.gauge->value(), entry.gauge->high_water());
        break;
      case Kind::kHistogram: {
        const auto& h = *entry.histogram;
        std::snprintf(buf, sizeof buf,
                      "%-*s  n=%llu mean=%.6g p50=%.6g p90=%.6g p99=%.6g "
                      "p999=%.6g max=%.6g\n",
                      static_cast<int>(width), h.name().c_str(),
                      static_cast<unsigned long long>(h.count()), h.mean(),
                      h.quantile(0.50), h.quantile(0.90), h.quantile(0.99),
                      h.quantile(0.999), h.max());
        break;
      }
    }
    out += buf;
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map with
/// '.' -> '_' and anything else unexpected to '_' as well.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

std::string Registry::to_prom() const {
  std::string out;
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        const std::string name = prom_name(entry.counter->name());
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      }
      case Kind::kGauge: {
        const std::string name = prom_name(entry.gauge->name());
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + prom_number(entry.gauge->value()) + "\n";
        out += "# TYPE " + name + "_high_water gauge\n";
        out += name + "_high_water " +
               prom_number(entry.gauge->high_water()) + "\n";
        break;
      }
      case Kind::kHistogram: {
        const auto& h = *entry.histogram;
        const std::string name = prom_name(h.name());
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          const std::string le =
              i < h.bounds().size() ? prom_number(h.bounds()[i]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + prom_number(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

bool Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

void Registry::merge_from(const Registry& other) {
  for (const auto& entry : other.entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        counter(entry.counter->name()).inc(entry.counter->value());
        break;
      case Kind::kGauge: {
        Gauge& g = gauge(entry.gauge->name());
        g.set(entry.gauge->value());
        if (entry.gauge->high_water() > g.high_water_) {
          g.high_water_ = entry.gauge->high_water();
        }
        break;
      }
      case Kind::kHistogram: {
        const Histogram& src = *entry.histogram;
        Histogram& dst = histogram(src.name(), src.bounds());
        LSL_ASSERT_MSG(dst.bounds_ == src.bounds_,
                       "histogram merged with different buckets");
        if (src.count_ > 0) {
          if (dst.count_ == 0) {
            dst.min_ = src.min_;
            dst.max_ = src.max_;
          } else {
            dst.min_ = std::min(dst.min_, src.min_);
            dst.max_ = std::max(dst.max_, src.max_);
          }
          dst.count_ += src.count_;
          dst.sum_ += src.sum_;
          for (std::size_t i = 0; i < src.buckets_.size(); ++i) {
            dst.buckets_[i] += src.buckets_[i];
          }
        }
        break;
      }
    }
  }
}

namespace {
// Per-thread redirect for Registry::global(); see ScopedRegistry.
thread_local Registry* t_scoped_registry = nullptr;
}  // namespace

Registry& Registry::global() {
  if (t_scoped_registry != nullptr) {
    return *t_scoped_registry;
  }
  return process_global();
}

Registry& Registry::process_global() {
  static Registry registry;
  return registry;
}

ScopedRegistry::ScopedRegistry(Registry& registry)
    : previous_(t_scoped_registry) {
  t_scoped_registry = &registry;
}

ScopedRegistry::~ScopedRegistry() { t_scoped_registry = previous_; }

// ---------------------------------------------------------------------------
// Enable switch

bool metrics_enabled() { return g_metrics_enabled; }

void set_metrics_enabled(bool enabled) { g_metrics_enabled = enabled; }

void init_metrics_from_env() {
  if (const char* v = std::getenv("LSL_METRICS")) {
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
      g_metrics_enabled = false;
    } else {
      g_metrics_enabled = true;
    }
  }
}

}  // namespace lsl::obs
