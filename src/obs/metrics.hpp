// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The hot path is a plain integer/double store through a pointer obtained
// once at registration time -- no locks (the simulator is single-threaded)
// and no lookups after the first touch. Instruments live for the process
// lifetime inside a Registry; snapshots export to JSON or a text table.
//
// Naming convention: `subsystem.object.metric`, e.g. `tcp.conn.retransmits`,
// `lsl.depot.buffer_occupancy`, `sched.mmp.tree_build_us` (see
// docs/observability.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lsl::obs {

/// Monotonically increasing integer.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::uint64_t value_ = 0;
};

/// Instantaneous value; remembers its high-water mark.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > high_water_) {
      high_water_ = v;
    }
  }
  void add(double delta) { set(value_ + delta); }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double high_water() const { return high_water_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  double value_ = 0.0;
  double high_water_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are defined by ascending upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
/// observe() is a binary search over the (small) bound list plus three
/// scalar updates.
class Histogram {
 public:
  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket; exact to within one bucket width. Clamped to the
  /// observed [min, max].
  [[nodiscard]] double quantile(double q) const;

  /// Ascending upper bounds; bucket_counts() has one extra overflow slot.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return buckets_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  ///< bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `count` buckets of `width` starting at `start`: start+width, start+2w, ...
[[nodiscard]] std::vector<double> linear_buckets(double start, double width,
                                                 std::size_t count);
/// `count` buckets growing geometrically from `start` by `factor`.
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      std::size_t count);

/// Owns instruments; lazy registration (the first request for a name creates
/// the instrument, later requests return the same one). Registration order
/// is preserved in exports.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-unique id (never reused, unlike addresses). Instrument bundles
  /// cache resolved pointers keyed by this to notice when the thread's
  /// registry changed underneath them.
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used only on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Histogram with `count` exponential buckets doubling from `base`
  /// (base, 2*base, 4*base, ...): the right shape for latency-like metrics
  /// that would clip into the top bucket of a linear layout.
  Histogram& histogram_exp(std::string_view name, double base,
                           std::size_t count);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Zero every instrument's value, keeping registrations.
  void reset_values();

  /// Fold another registry's instruments into this one, creating missing
  /// instruments on the fly: counters add, gauges take the other's last
  /// value (and max high waters), histograms add buckets. The parallel
  /// trial engine merges per-trial registries through this in trial order,
  /// so merged totals are independent of worker scheduling.
  void merge_from(const Registry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  [[nodiscard]] std::string to_json() const;
  /// Aligned text table for terminal output.
  [[nodiscard]] std::string to_table() const;
  /// Prometheus text exposition format (metric names have dots replaced by
  /// underscores; gauges add a `<name>_high_water` series, histograms emit
  /// cumulative `_bucket{le=...}` plus `_sum`/`_count`). Scrapeable and
  /// diffable with standard tooling.
  [[nodiscard]] std::string to_prom() const;
  bool write_json(const std::string& path) const;

  /// Registry used by all built-in instrumentation: the thread's scoped
  /// registry when one is installed (see ScopedRegistry), else the
  /// process-wide default. Hot paths never call this repeatedly -- the
  /// instrument bundles (TcpMetrics etc.) cache resolved pointers and
  /// revalidate with one pointer compare.
  static Registry& global();

  /// The process-wide default registry, ignoring any thread-local override.
  static Registry& process_global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    [[nodiscard]] const std::string& name() const;
  };

  Entry* find(std::string_view name, Kind kind);

  std::uint64_t uid_;
  std::vector<Entry> entries_;
};

/// Redirects Registry::global() to `registry` on the current thread for the
/// scope's lifetime. The parallel trial engine installs one fresh Registry
/// per trial in the worker thread so built-in instrumentation stays
/// lock-free, then merges the per-trial registries post-hoc in trial order.
/// Nests (the previous override is restored).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& registry);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Process-wide enable switch for the built-in instrumentation bundles
/// (tcp/lsl/sched/nws accessors return nullptr while disabled). Explicit
/// Registry use is unaffected.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);
/// LSL_METRICS=off|0 disables the built-in instrumentation.
void init_metrics_from_env();

}  // namespace lsl::obs
