#include "obs/span.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace lsl::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSession:
      return "session";
    case SpanKind::kTransfer:
      return "transfer";
    case SpanKind::kAttempt:
      return "attempt";
    case SpanKind::kConnect:
      return "connect";
    case SpanKind::kStream:
      return "stream";
    case SpanKind::kStall:
      return "stall";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kProbe:
      return "probe";
    case SpanKind::kHandover:
      return "handover";
    case SpanKind::kResume:
      return "resume";
    case SpanKind::kRtoWait:
      return "rto_wait";
    case SpanKind::kRouteDecision:
      return "route_decision";
    case SpanKind::kFaultWindow:
      return "fault_window";
    case SpanKind::kForecastEpoch:
      return "forecast_epoch";
  }
  return "?";
}

char to_char(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kBegin:
      return 'B';
    case SpanPhase::kEnd:
      return 'E';
    case SpanPhase::kInstant:
      return 'i';
    case SpanPhase::kComplete:
      return 'X';
  }
  return '?';
}

SpanRecorder::SpanRecorder(std::size_t per_session_capacity)
    : capacity_(per_session_capacity) {}

std::uint64_t SpanRecorder::record(SpanEvent event) {
  if (event.span_id == 0 && event.phase != SpanPhase::kEnd) {
    event.span_id = next_id_++;
  }
  if (event.kind == SpanKind::kSession) {
    if (event.phase == SpanPhase::kBegin) {
      open_sessions_[event.session] = event.span_id;
    } else if (event.phase == SpanPhase::kEnd) {
      open_sessions_.erase(event.session);
    }
  }
  push(event);
  return event.span_id;
}

void SpanRecorder::push(const SpanEvent& event) {
  const std::uint64_t seq = next_seq_++;
  if (std::find(session_order_.begin(), session_order_.end(),
                event.session) == session_order_.end()) {
    session_order_.push_back(event.session);
  }
  if (capacity_ == 0) {
    log_.push_back({event, seq});
    return;
  }
  std::deque<Slot>& ring = rings_[event.session];
  if (ring.size() >= capacity_) {
    ring.pop_front();
    ++dropped_;
  }
  ring.push_back({event, seq});
}

std::uint64_t SpanRecorder::session_root(std::uint64_t session) const {
  const auto it = open_sessions_.find(session);
  return it == open_sessions_.end() ? 0 : it->second;
}

std::size_t SpanRecorder::size() const {
  if (capacity_ == 0) {
    return log_.size();
  }
  std::size_t total = 0;
  for (const auto& [session, ring] : rings_) {
    total += ring.size();
  }
  return total;
}

std::vector<SpanEvent> SpanRecorder::snapshot() const {
  std::vector<Slot> slots;
  if (capacity_ == 0) {
    slots = log_;
  } else {
    slots.reserve(size());
    for (const auto& [session, ring] : rings_) {
      slots.insert(slots.end(), ring.begin(), ring.end());
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.seq < b.seq; });
  std::vector<SpanEvent> events;
  events.reserve(slots.size());
  for (const Slot& slot : slots) {
    events.push_back(slot.event);
  }
  return events;
}

std::vector<SpanEvent> SpanRecorder::session_events(
    std::uint64_t session) const {
  std::vector<Slot> slots;
  const auto keep = [&](const Slot& slot) {
    return slot.event.session == session || slot.event.session == 0;
  };
  if (capacity_ == 0) {
    for (const Slot& slot : log_) {
      if (keep(slot)) {
        slots.push_back(slot);
      }
    }
  } else {
    for (const auto& [key, ring] : rings_) {
      if (key != session && key != 0) {
        continue;
      }
      for (const Slot& slot : ring) {
        slots.push_back(slot);
      }
    }
    std::sort(slots.begin(), slots.end(),
              [](const Slot& a, const Slot& b) { return a.seq < b.seq; });
  }
  std::vector<SpanEvent> events;
  events.reserve(slots.size());
  for (const Slot& slot : slots) {
    events.push_back(slot.event);
  }
  return events;
}

std::vector<std::uint64_t> SpanRecorder::sessions() const {
  std::vector<std::uint64_t> out;
  for (const std::uint64_t session : session_order_) {
    if (session != 0) {
      out.push_back(session);
    }
  }
  return out;
}

void SpanRecorder::clear() {
  log_.clear();
  rings_.clear();
  open_sessions_.clear();
  session_order_.clear();
  next_id_ = 1;
  next_seq_ = 0;
  dropped_ = 0;
}

std::string SpanRecorder::post_mortem(std::uint64_t session) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "post-mortem for session %016" PRIx64 " (%zu events%s)\n",
                session, session_events(session).size(),
                bounded() ? ", flight ring" : "");
  out += buf;
  for (const SpanEvent& e : session_events(session)) {
    std::string line;
    std::snprintf(buf, sizeof buf, "  [%12.6fs] %c %-14s #%" PRIu64,
                  e.ts.to_seconds(), to_char(e.phase), to_string(e.kind),
                  e.span_id);
    line += buf;
    if (e.parent != 0) {
      std::snprintf(buf, sizeof buf, " parent=#%" PRIu64, e.parent);
      line += buf;
    }
    if (e.follows != 0) {
      std::snprintf(buf, sizeof buf, " follows=#%" PRIu64, e.follows);
      line += buf;
    }
    if (e.phase == SpanPhase::kComplete) {
      std::snprintf(buf, sizeof buf, " dur=%.6fs", e.dur.to_seconds());
      line += buf;
    }
    if (e.reason != nullptr && e.reason[0] != '\0') {
      line += " ";
      line += e.reason;
    }
    if (e.value != 0.0) {
      std::snprintf(buf, sizeof buf, " value=%.6g", e.value);
      line += buf;
    }
    out += line;
    out += "\n";
  }
  return out;
}

std::string post_mortem_all(const SpanRecorder& recorder, bool only_troubled) {
  std::string out;
  for (const std::uint64_t session : recorder.sessions()) {
    if (only_troubled) {
      bool troubled = false;
      bool closed = false;
      for (const SpanEvent& ev : recorder.session_events(session)) {
        if (ev.kind != SpanKind::kSession && ev.kind != SpanKind::kTransfer) {
          continue;
        }
        if (ev.phase == SpanPhase::kEnd) {
          closed = true;
          if (std::strcmp(ev.reason, "failed") == 0) {
            troubled = true;
          }
        }
      }
      if (!troubled && closed) {
        continue;
      }
    }
    out += recorder.post_mortem(session);
  }
  return out;
}

std::string SpanRecorder::to_json() const {
  std::string out = "[";
  bool first = true;
  char buf[384];
  for (const SpanEvent& e : snapshot()) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "\n  {\"ts\": %.3f, \"ph\": \"%c\", \"kind\": \"%s\", "
        "\"id\": %" PRIu64 ", \"parent\": %" PRIu64 ", \"follows\": %" PRIu64
        ", \"session\": \"%016" PRIx64 "\", \"dur\": %.3f, "
        "\"reason\": \"%s\", \"value\": %.6g}",
        e.ts.to_seconds() * 1e6, to_char(e.phase), to_string(e.kind),
        e.span_id, e.parent, e.follows, e.session, e.dur.to_seconds() * 1e6,
        e.reason != nullptr ? e.reason : "", e.value);
    out += buf;
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

bool SpanRecorder::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

void SpanRecorder::append_from(const SpanRecorder& other) {
  // Rebase the other stream's ids past everything we have assigned; id k
  // becomes offset + k, so parent/follows links stay internally consistent.
  const std::uint64_t offset = next_id_ - 1;
  const auto rebase = [offset](std::uint64_t id) {
    return id == 0 ? 0 : id + offset;
  };
  for (SpanEvent event : other.snapshot()) {
    event.span_id = rebase(event.span_id);
    event.parent = rebase(event.parent);
    event.follows = rebase(event.follows);
    push(event);
  }
  next_id_ += other.next_id_ - 1;
  dropped_ += other.dropped_;
}

namespace {
SpanRecorder* g_spans = nullptr;
thread_local SpanRecorder* t_spans = nullptr;
thread_local bool t_spans_overridden = false;
}  // namespace

SpanRecorder* spans() {
  if (t_spans_overridden) {
    return t_spans;
  }
  return g_spans;
}

void set_spans(SpanRecorder* recorder) { g_spans = recorder; }

ScopedSpanRecorder::ScopedSpanRecorder(SpanRecorder* recorder)
    : previous_(t_spans), had_previous_(t_spans_overridden) {
  t_spans = recorder;
  t_spans_overridden = true;
}

ScopedSpanRecorder::~ScopedSpanRecorder() {
  t_spans = previous_;
  t_spans_overridden = had_previous_;
}

}  // namespace lsl::obs
