// Causal span layer: typed, parent/child-linked spans over transfer
// lifecycles, layered on top of the flat trace ring (obs/trace.hpp).
//
// The span model follows the session stack top-down:
//
//   Session -> Transfer -> Attempt -> {Connect, Stream, Stall, Backoff,
//                                      Probe, Handover, Resume, RtoWait}
//
// plus global (session-less) context spans: RouteDecision verdicts from the
// scheduler's advisor, injected FaultWindows, and NWS ForecastEpochs.
// Attempts carry follows-from links to the attempt they resume, so the
// failover chain of a transfer (attempt 0 -> stall -> backoff -> attempt 1
// -> handover -> attempt 2 ...) is walkable from the event stream alone.
//
// Two recording modes share one type:
//   * unbounded (capacity 0): an append-only log for --explain time
//     accounting and the span tests; and
//   * flight recorder (capacity N): a bounded ring of the most recent
//     events *per session* plus one global ring, cheap enough to leave on
//     for every lslsim run and dumped as a post-mortem on failure.
//
// Span ids are assigned by the recorder (monotonic from 1), never derived
// from pointers or wall time, so runs are bit-for-bit reproducible and
// per-trial recorders can be rebased and merged in trial order exactly like
// obs::Registry / obs::TraceRecorder (docs/performance.md).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace lsl::obs {

enum class SpanKind : std::uint8_t {
  kSession,        ///< harness-level transfer record (launch -> outcome)
  kTransfer,       ///< one ReliableTransfer (all attempts)
  kAttempt,        ///< one launch of the payload over one relay chain
  kConnect,        ///< TCP handshake of an attempt's source connection
  kStream,         ///< established source connection moving payload
  kStall,          ///< watchdog window that expired without progress
  kBackoff,        ///< capped jittered wait between failure and re-probe
  kProbe,          ///< kOffsetQuery round-trip to the sink
  kHandover,       ///< planned reroute: drain + probe + splice (PR 5)
  kResume,         ///< relaunch point, value = sink-committed offset
  kRtoWait,        ///< dead air ended by a retransmission timeout
  kRouteDecision,  ///< one advisor verdict, reason = decision-ladder rung
  kFaultWindow,    ///< injected fault lifetime (apply -> heal)
  kForecastEpoch,  ///< one NWS measure -> matrix -> schedule tick
};

[[nodiscard]] const char* to_string(SpanKind kind);

enum class SpanPhase : std::uint8_t {
  kBegin,
  kEnd,
  kInstant,
  kComplete,  ///< retroactive span with explicit duration, ts = start
};

[[nodiscard]] char to_char(SpanPhase phase);

struct SpanEvent {
  SimTime ts;                     ///< simulated time (start, for kComplete)
  SimTime dur = SimTime::zero();  ///< kComplete only
  /// Recorder-assigned id; kEnd events repeat the id of their kBegin.
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;   ///< enclosing span (0 = root)
  std::uint64_t follows = 0;  ///< follows-from link (0 = none)
  /// Session correlation hash (SessionIdHash); 0 = global context event.
  std::uint64_t session = 0;
  SpanKind kind = SpanKind::kSession;
  SpanPhase phase = SpanPhase::kInstant;
  /// Static-storage detail string (failure reason, probe purpose, advisor
  /// verdict); never owned, must outlive the recorder -- literals only.
  const char* reason = "";
  double value = 0.0;  ///< kind-specific payload (offset, bytes, seconds)
};

class SpanRecorder {
 public:
  /// capacity 0 keeps every event (use for --explain / tests); capacity N
  /// keeps the most recent N events per session plus N global events (the
  /// always-on flight recorder).
  explicit SpanRecorder(std::size_t per_session_capacity = 0);

  /// Records `event`, assigning a fresh span id when event.span_id == 0 and
  /// the phase opens a span (kBegin/kComplete/kInstant). Returns the id.
  std::uint64_t record(SpanEvent event);

  std::uint64_t begin(SimTime t, SpanKind kind, std::uint64_t session,
                      std::uint64_t parent = 0, std::uint64_t follows = 0,
                      const char* reason = "", double value = 0.0) {
    return record({.ts = t, .parent = parent, .follows = follows,
                   .session = session, .kind = kind,
                   .phase = SpanPhase::kBegin, .reason = reason,
                   .value = value});
  }
  void end(SimTime t, SpanKind kind, std::uint64_t span_id,
           std::uint64_t session, const char* reason = "",
           double value = 0.0) {
    record({.ts = t, .span_id = span_id, .session = session, .kind = kind,
            .phase = SpanPhase::kEnd, .reason = reason, .value = value});
  }
  std::uint64_t instant(SimTime t, SpanKind kind, std::uint64_t session,
                        std::uint64_t parent = 0, std::uint64_t follows = 0,
                        const char* reason = "", double value = 0.0) {
    return record({.ts = t, .parent = parent, .follows = follows,
                   .session = session, .kind = kind,
                   .phase = SpanPhase::kInstant, .reason = reason,
                   .value = value});
  }
  std::uint64_t complete(SimTime start, SimTime duration, SpanKind kind,
                         std::uint64_t session, std::uint64_t parent = 0,
                         const char* reason = "", double value = 0.0) {
    return record({.ts = start, .dur = duration, .parent = parent,
                   .session = session, .kind = kind,
                   .phase = SpanPhase::kComplete, .reason = reason,
                   .value = value});
  }

  [[nodiscard]] bool bounded() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t per_session_capacity() const { return capacity_; }
  /// Every record() ever made, including ring-evicted ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return next_seq_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t size() const;

  /// The id of the currently open kSession span for `session` (0 when
  /// none): lets lower layers parent their roots without plumbing ids
  /// through every constructor.
  [[nodiscard]] std::uint64_t session_root(std::uint64_t session) const;

  /// Every held event in record order (rings are re-interleaved by their
  /// global record sequence, so the result is time-ordered).
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;
  /// Held events of one session plus the global context events, in record
  /// order -- the input the post-mortem and per-session --explain use.
  [[nodiscard]] std::vector<SpanEvent> session_events(
      std::uint64_t session) const;
  /// Distinct session hashes with held events, in first-seen order.
  [[nodiscard]] std::vector<std::uint64_t> sessions() const;

  void clear();

  /// Human-readable dump of one session's recent history (the flight
  /// recorder's crash artifact): one line per event with causal links.
  [[nodiscard]] std::string post_mortem(std::uint64_t session) const;

  /// JSON array of event objects (ts/dur in microseconds, ids as numbers).
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// Fold another recorder's held events into this one, rebasing span ids
  /// past ours so merged streams never collide. The parallel trial engine
  /// calls this in trial order; serial and parallel runs produce identical
  /// merged streams because ids restart from 1 in every trial recorder.
  void append_from(const SpanRecorder& other);

 private:
  struct Slot {
    SpanEvent event;
    std::uint64_t seq = 0;  ///< global record order across all rings
  };

  void push(const SpanEvent& event);

  std::size_t capacity_;  ///< 0 = unbounded log
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Slot> log_;  ///< unbounded mode storage
  /// Bounded mode storage: one ring per session hash (0 = global events).
  /// std::map keeps sessions() and snapshot() deterministic.
  std::map<std::uint64_t, std::deque<Slot>> rings_;
  /// Open kSession spans, for session_root(). Keyed by session hash.
  std::map<std::uint64_t, std::uint64_t> open_sessions_;
  std::vector<std::uint64_t> session_order_;  ///< first-seen session hashes
};

/// Concatenated post_mortem() dumps for every session held by `recorder`.
/// With only_troubled, restricted to sessions whose kSession/kTransfer span
/// ended "failed" or never closed at all -- the flight recorder's crash
/// filter (lslsim on failure, the model checker on every counterexample).
[[nodiscard]] std::string post_mortem_all(const SpanRecorder& recorder,
                                          bool only_troubled);

/// The active span recorder for this thread: a thread-scoped recorder when
/// one is installed (see ScopedSpanRecorder), else the process-wide one;
/// nullptr when span recording is off. Emission sites cost one null check
/// when off.
[[nodiscard]] SpanRecorder* spans();
void set_spans(SpanRecorder* recorder);

/// Redirects spans() on the current thread for the scope's lifetime
/// (recorder may be nullptr to silence span recording). The parallel trial
/// engine gives each trial its own recorder and appends them to the main
/// recorder post-hoc in trial order. Nests.
class ScopedSpanRecorder {
 public:
  explicit ScopedSpanRecorder(SpanRecorder* recorder);
  ~ScopedSpanRecorder();
  ScopedSpanRecorder(const ScopedSpanRecorder&) = delete;
  ScopedSpanRecorder& operator=(const ScopedSpanRecorder&) = delete;

 private:
  SpanRecorder* previous_;
  bool had_previous_;
};

}  // namespace lsl::obs
