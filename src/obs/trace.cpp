#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "util/assert.hpp"

namespace lsl::obs {

namespace {
TraceRecorder* g_tracer = nullptr;
// Per-thread override (see ScopedTracer). The flag distinguishes "override
// to nullptr" (tracing silenced) from "no override" (fall through to the
// process-wide recorder).
thread_local TraceRecorder* t_tracer = nullptr;
thread_local bool t_tracer_overridden = false;
}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) {
  LSL_ASSERT_MSG(capacity > 0, "trace ring needs capacity");
  ring_.resize(capacity);
}

void TraceRecorder::record(const TraceEvent& event) {
  ring_[static_cast<std::size_t>(total_ % ring_.size())] = event;
  ++total_;
}

std::size_t TraceRecorder::size() const {
  return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                               : ring_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
  return out;
}

void TraceRecorder::clear() { total_ = 0; }

std::string TraceRecorder::to_json() const {
  // Chrome's JSON Array Format: [{"name": ..., "cat": ..., "ph": "X",
  // "ts": <us>, "dur": <us>, "pid": 1, "tid": 1, "args": {...}}, ...]
  std::string out = "[";
  char buf[512];
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) {
      out += ",";
    }
    first = false;
    const double ts_us = static_cast<double>(e.ts.ns()) / 1000.0;
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                  "\"ts\": %.3f, \"pid\": 1, \"tid\": 1",
                  e.name, e.category, static_cast<char>(e.phase), ts_us);
    out += buf;
    if (e.phase == TracePhase::kComplete) {
      std::snprintf(buf, sizeof buf, ", \"dur\": %.3f",
                    static_cast<double>(e.dur.ns()) / 1000.0);
      out += buf;
    }
    if (e.phase == TracePhase::kCounter) {
      std::snprintf(buf, sizeof buf, ", \"args\": {\"value\": %.12g}",
                    e.value);
      out += buf;
    } else if (e.id != 0) {
      std::snprintf(buf, sizeof buf, ", \"args\": {\"id\": %llu}",
                    static_cast<unsigned long long>(e.id));
      out += buf;
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

TraceRecorder* tracer() {
  return t_tracer_overridden ? t_tracer : g_tracer;
}

void set_tracer(TraceRecorder* recorder) { g_tracer = recorder; }

ScopedTracer::ScopedTracer(TraceRecorder* recorder)
    : previous_(t_tracer), had_previous_(t_tracer_overridden) {
  t_tracer = recorder;
  t_tracer_overridden = true;
}

ScopedTracer::~ScopedTracer() {
  t_tracer = previous_;
  t_tracer_overridden = had_previous_;
}

void append_snapshot(TraceRecorder& dest, const TraceRecorder& source) {
  for (const TraceEvent& event : source.snapshot()) {
    dest.record(event);
  }
}

}  // namespace lsl::obs
