// Structured event tracing: a fixed-capacity ring of typed events exported
// as Chrome trace_event JSON (loadable in chrome://tracing or Perfetto).
//
// Events carry static-string names/categories (no allocation on the hot
// path) plus an optional numeric value ('C' counter samples) and an
// optional correlation id. When the ring fills, the oldest events are
// overwritten -- a flight recorder, not an unbounded log.
//
// One process-wide recorder can be installed with set_tracer(); built-in
// instrumentation (Simulator, tcp::Connection, lsl::Depot, exp::SeqTrace)
// records through it when present and costs one null-pointer check when not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace lsl::obs {

/// Chrome trace_event phases we emit.
enum class TracePhase : char {
  kBegin = 'B',     ///< span start (paired with kEnd by name)
  kEnd = 'E',       ///< span end
  kInstant = 'i',   ///< point event
  kCounter = 'C',   ///< sampled value series
  kComplete = 'X',  ///< span with explicit duration
};

struct TraceEvent {
  SimTime ts;                      ///< simulated timestamp
  SimTime dur = SimTime::zero();   ///< kComplete only
  const char* name = "";           ///< must outlive the recorder (literal)
  const char* category = "";      ///< must outlive the recorder (literal)
  TracePhase phase = TracePhase::kInstant;
  double value = 0.0;              ///< kCounter sample value
  std::uint64_t id = 0;            ///< correlation id (0 = none)
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& event);

  void begin(SimTime t, const char* category, const char* name,
             std::uint64_t id = 0) {
    record({.ts = t, .name = name, .category = category,
            .phase = TracePhase::kBegin, .id = id});
  }
  void end(SimTime t, const char* category, const char* name,
           std::uint64_t id = 0) {
    record({.ts = t, .name = name, .category = category,
            .phase = TracePhase::kEnd, .id = id});
  }
  void instant(SimTime t, const char* category, const char* name,
               std::uint64_t id = 0) {
    record({.ts = t, .name = name, .category = category,
            .phase = TracePhase::kInstant, .id = id});
  }
  void counter(SimTime t, const char* category, const char* name,
               double value) {
    record({.ts = t, .name = name, .category = category,
            .phase = TracePhase::kCounter, .value = value});
  }
  void complete(SimTime start, SimTime duration, const char* category,
                const char* name, std::uint64_t id = 0) {
    record({.ts = start, .dur = duration, .name = name, .category = category,
            .phase = TracePhase::kComplete, .id = id});
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Every record() ever made, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const { return total_ - size(); }

  /// Held events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear();

  /// Chrome trace_event "JSON Array Format": a JSON array of event objects
  /// with ph/ts/name/cat (+ dur/args where applicable). ts is microseconds.
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  ///< next write slot is total_ % capacity
};

/// The active recorder for this thread: a thread-scoped recorder when one
/// is installed (see ScopedTracer), else the process-wide one; nullptr when
/// tracing is off.
[[nodiscard]] TraceRecorder* tracer();
void set_tracer(TraceRecorder* recorder);

/// Redirects tracer() on the current thread for the scope's lifetime
/// (recorder may be nullptr to silence tracing). The parallel trial engine
/// gives each trial its own recorder and appends the snapshots to the main
/// recorder post-hoc in trial order. Nests.
class ScopedTracer {
 public:
  explicit ScopedTracer(TraceRecorder* recorder);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  TraceRecorder* previous_;
  bool had_previous_;
};

/// Append every held event of `source` (oldest first) into `dest`.
void append_snapshot(TraceRecorder& dest, const TraceRecorder& source);

}  // namespace lsl::obs
