#include "sched/cost_matrix.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::sched {

CostMatrix::CostMatrix(std::size_t n)
    : n_(n), costs_(n * n, kInfiniteCost), names_(n), sites_(n) {
  for (std::size_t i = 0; i < n; ++i) {
    costs_[i * n + i] = 0.0;
  }
}

double CostMatrix::cost(std::size_t i, std::size_t j) const {
  LSL_ASSERT(i < n_ && j < n_);
  return costs_[i * n_ + j];
}

void CostMatrix::log_change(std::uint32_t from, std::uint32_t to,
                            bool decreased, bool node_excluded) {
  // Bound the log so an unconsumed matrix (nobody repairing trees) costs
  // O(n) memory, not one entry per historical mutation. Overflow collapses
  // to "everything before this generation is untracked": stale consumers
  // then rebuild instead of repairing.
  const std::size_t cap = 8 * n_ + 64;
  if (change_log_.size() >= cap) {
    untracked_below_ = generation_;
    change_log_.clear();
  }
  CostChange change;
  change.generation = generation_;
  change.from = from;
  change.to = to;
  change.decreased = decreased;
  change.node_excluded = node_excluded;
  change_log_.push_back(change);
}

void CostMatrix::set_cost(std::size_t i, std::size_t j, double cost) {
  LSL_ASSERT(i < n_ && j < n_);
  LSL_ASSERT_MSG(cost >= 0.0, "negative edge cost");
  double& slot = costs_[i * n_ + j];
  if (slot == cost) {
    return;  // no-op writes don't dirty cached trees
  }
  const bool decreased = cost < slot;
  slot = cost;
  ++generation_;
  log_change(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
             decreased, false);
}

void CostMatrix::set_bandwidth(std::size_t i, std::size_t j, Bandwidth bw) {
  LSL_ASSERT_MSG(bw.bits_per_second() > 0.0, "zero bandwidth edge");
  set_cost(i, j, 1.0 / bw.megabits_per_second());
}

void CostMatrix::set_bandwidth_symmetric(std::size_t i, std::size_t j,
                                         Bandwidth bw) {
  set_bandwidth(i, j, bw);
  set_bandwidth(j, i, bw);
}

void CostMatrix::exclude_node(std::size_t i) {
  LSL_ASSERT(i < n_);
  bool changed = false;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i) {
      changed |= costs_[i * n_ + j] != kInfiniteCost;
      changed |= costs_[j * n_ + i] != kInfiniteCost;
      costs_[i * n_ + j] = kInfiniteCost;
      costs_[j * n_ + i] = kInfiniteCost;
    }
  }
  if (changed) {
    // One node_excluded entry summarizes the up-to-2(n-1) edge increases.
    ++generation_;
    log_change(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
               false, true);
  }
}

std::span<const CostChange> CostMatrix::changes_since(
    std::uint64_t since) const {
  LSL_ASSERT_MSG(changes_tracked_since(since),
                 "change log overflowed; caller must rebuild");
  // The log is sorted by generation: binary-search the first entry > since.
  const auto first = std::upper_bound(
      change_log_.begin(), change_log_.end(), since,
      [](std::uint64_t gen, const CostChange& c) { return gen < c.generation; });
  return {change_log_.data() +
              static_cast<std::size_t>(first - change_log_.begin()),
          change_log_.data() + change_log_.size()};
}

bool CostMatrix::changes_tracked_since(std::uint64_t since) const {
  return since >= untracked_below_;
}

void CostMatrix::compact_changes(std::uint64_t consumed) {
  const auto last = std::upper_bound(
      change_log_.begin(), change_log_.end(), consumed,
      [](std::uint64_t gen, const CostChange& c) { return gen < c.generation; });
  change_log_.erase(change_log_.begin(), last);
  // Everything at or below `consumed` is gone from the log: a consumer
  // whose snapshot predates it must fail changes_tracked_since and rebuild
  // rather than repair from a silently truncated span.
  untracked_below_ = std::max(untracked_below_, consumed);
}

Bandwidth CostMatrix::bandwidth(std::size_t i, std::size_t j) const {
  const double c = cost(i, j);
  if (c <= 0.0 || c == kInfiniteCost) {
    return Bandwidth{0.0};
  }
  return Bandwidth::mbps(1.0 / c);
}

void CostMatrix::set_label(std::size_t i, std::string name, std::string site) {
  LSL_ASSERT(i < n_);
  names_[i] = std::move(name);
  sites_[i] = std::move(site);
}

const std::string& CostMatrix::name(std::size_t i) const {
  LSL_ASSERT(i < n_);
  return names_[i];
}

const std::string& CostMatrix::site(std::size_t i) const {
  LSL_ASSERT(i < n_);
  return sites_[i];
}

}  // namespace lsl::sched
