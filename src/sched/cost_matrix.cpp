#include "sched/cost_matrix.hpp"

#include "util/assert.hpp"

namespace lsl::sched {

CostMatrix::CostMatrix(std::size_t n)
    : n_(n), costs_(n * n, kInfiniteCost), names_(n), sites_(n) {
  for (std::size_t i = 0; i < n; ++i) {
    costs_[i * n + i] = 0.0;
  }
}

double CostMatrix::cost(std::size_t i, std::size_t j) const {
  LSL_ASSERT(i < n_ && j < n_);
  return costs_[i * n_ + j];
}

void CostMatrix::set_cost(std::size_t i, std::size_t j, double cost) {
  LSL_ASSERT(i < n_ && j < n_);
  LSL_ASSERT_MSG(cost >= 0.0, "negative edge cost");
  costs_[i * n_ + j] = cost;
}

void CostMatrix::set_bandwidth(std::size_t i, std::size_t j, Bandwidth bw) {
  LSL_ASSERT_MSG(bw.bits_per_second() > 0.0, "zero bandwidth edge");
  set_cost(i, j, 1.0 / bw.megabits_per_second());
}

void CostMatrix::set_bandwidth_symmetric(std::size_t i, std::size_t j,
                                         Bandwidth bw) {
  set_bandwidth(i, j, bw);
  set_bandwidth(j, i, bw);
}

void CostMatrix::exclude_node(std::size_t i) {
  LSL_ASSERT(i < n_);
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i) {
      costs_[i * n_ + j] = kInfiniteCost;
      costs_[j * n_ + i] = kInfiniteCost;
    }
  }
}

Bandwidth CostMatrix::bandwidth(std::size_t i, std::size_t j) const {
  const double c = cost(i, j);
  if (c <= 0.0 || c == kInfiniteCost) {
    return Bandwidth{0.0};
  }
  return Bandwidth::mbps(1.0 / c);
}

void CostMatrix::set_label(std::size_t i, std::string name, std::string site) {
  LSL_ASSERT(i < n_);
  names_[i] = std::move(name);
  sites_[i] = std::move(site);
}

const std::string& CostMatrix::name(std::size_t i) const {
  LSL_ASSERT(i < n_);
  return names_[i];
}

const std::string& CostMatrix::site(std::size_t i) const {
  LSL_ASSERT(i < n_);
  return sites_[i];
}

}  // namespace lsl::sched
