// The scheduler's input: a fully connected "performance topology" -- an
// N x N matrix of edge costs, where cost is data transfer time per unit
// (1/bandwidth). The paper's key observation is that the input need not be
// the bandwidth available to long-lived flows; any order-preserving metric
// works.
//
// The matrix is versioned: every mutation bumps a generation counter and
// appends to a change log, so consumers that cache derived structures
// (the scheduler's MMP trees) can repair them incrementally instead of
// rebuilding from scratch on every drift epoch or blacklist event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lsl::sched {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// One logged mutation of the performance topology. A `node_excluded`
/// entry records a blacklist: every edge to or from `from` (== `to`)
/// became infinite. A plain entry records one directed edge `from -> to`,
/// with `decreased` set when the new cost is lower than the old one
/// (decreases can re-route arbitrary subtrees; increases only invalidate
/// paths that used the edge).
struct CostChange {
  std::uint64_t generation = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  bool decreased = false;
  bool node_excluded = false;
};

class CostMatrix {
 public:
  explicit CostMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Direct edge cost i -> j (seconds per megabit; any order-preserving
  /// unit works). Diagonal is 0; absent edges are infinite.
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const;
  void set_cost(std::size_t i, std::size_t j, double cost);

  /// Raw row-major storage: row(i)[j] == cost(i, j). The MMP build's hot
  /// loop reads rows directly instead of paying per-edge bounds checks.
  [[nodiscard]] const double* row(std::size_t i) const {
    return costs_.data() + i * n_;
  }

  /// Convenience: cost = 1 / bandwidth.
  void set_bandwidth(std::size_t i, std::size_t j, Bandwidth bw);
  void set_bandwidth_symmetric(std::size_t i, std::size_t j, Bandwidth bw);

  /// Remove node i from the performance topology: every edge to or from it
  /// becomes infinite (failure blacklisting; the diagonal stays 0).
  void exclude_node(std::size_t i);

  [[nodiscard]] Bandwidth bandwidth(std::size_t i, std::size_t j) const;

  // ---- change tracking (incremental MMP tree repair) -----------------------

  /// Bumped once per mutating call that actually changed an edge.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Changes logged after generation `since`, oldest first. Valid only when
  /// changes_tracked_since(since) is true; the span is invalidated by the
  /// next mutation or compact_changes() call.
  [[nodiscard]] std::span<const CostChange> changes_since(
      std::uint64_t since) const;

  /// False when the log overflowed past `since` (too many changes since the
  /// consumer last caught up); the consumer must fall back to a rebuild.
  [[nodiscard]] bool changes_tracked_since(std::uint64_t since) const;

  /// Drop log entries at or below `consumed` (every consumer caught up to
  /// that generation); bounds log memory between consumer refreshes. A
  /// consumer that still holds an older snapshot fails
  /// changes_tracked_since afterwards and rebuilds -- miscomputing the
  /// minimum consumed generation costs a rebuild, never a wrong tree.
  void compact_changes(std::uint64_t consumed);

  /// Node labels (host names / sites), for reporting and tree-shaping tests.
  void set_label(std::size_t i, std::string name, std::string site = {});
  [[nodiscard]] const std::string& name(std::size_t i) const;
  [[nodiscard]] const std::string& site(std::size_t i) const;

 private:
  void log_change(std::uint32_t from, std::uint32_t to, bool decreased,
                  bool node_excluded);

  std::size_t n_;
  std::vector<double> costs_;  ///< row-major n x n
  std::vector<std::string> names_;
  std::vector<std::string> sites_;
  std::uint64_t generation_ = 0;
  /// Append-only within a generation window, sorted by generation.
  std::vector<CostChange> change_log_;
  /// Changes at or below this generation are no longer reconstructible
  /// (log overflow or compaction); consumers behind it must rebuild.
  std::uint64_t untracked_below_ = 0;
};

}  // namespace lsl::sched
