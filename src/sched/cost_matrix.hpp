// The scheduler's input: a fully connected "performance topology" -- an
// N x N matrix of edge costs, where cost is data transfer time per unit
// (1/bandwidth). The paper's key observation is that the input need not be
// the bandwidth available to long-lived flows; any order-preserving metric
// works.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lsl::sched {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

class CostMatrix {
 public:
  explicit CostMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Direct edge cost i -> j (seconds per megabit; any order-preserving
  /// unit works). Diagonal is 0; absent edges are infinite.
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const;
  void set_cost(std::size_t i, std::size_t j, double cost);

  /// Convenience: cost = 1 / bandwidth.
  void set_bandwidth(std::size_t i, std::size_t j, Bandwidth bw);
  void set_bandwidth_symmetric(std::size_t i, std::size_t j, Bandwidth bw);

  /// Remove node i from the performance topology: every edge to or from it
  /// becomes infinite (failure blacklisting; the diagonal stays 0).
  void exclude_node(std::size_t i);

  [[nodiscard]] Bandwidth bandwidth(std::size_t i, std::size_t j) const;

  /// Node labels (host names / sites), for reporting and tree-shaping tests.
  void set_label(std::size_t i, std::string name, std::string site = {});
  [[nodiscard]] const std::string& name(std::size_t i) const;
  [[nodiscard]] const std::string& site(std::size_t i) const;

 private:
  std::size_t n_;
  std::vector<double> costs_;  ///< row-major n x n
  std::vector<std::string> names_;
  std::vector<std::string> sites_;
};

}  // namespace lsl::sched
