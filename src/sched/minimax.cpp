#include "sched/minimax.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace lsl::sched {

namespace {

std::vector<std::size_t> extract_path(std::size_t start,
                                      std::span<const std::int64_t> parent,
                                      std::size_t dst) {
  if (dst >= parent.size() || parent[dst] < 0) {
    return {};
  }
  std::vector<std::size_t> reversed;
  std::size_t cursor = dst;
  while (true) {
    reversed.push_back(cursor);
    if (cursor == start) {
      break;
    }
    const std::int64_t p = parent[cursor];
    if (p < 0 || reversed.size() > parent.size()) {
      return {};  // broken or cyclic tree: treat as unreachable
    }
    cursor = static_cast<std::size_t>(p);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace

std::vector<std::size_t> MmpTree::path_to(std::size_t dst) const {
  return extract_path(start, parent, dst);
}

std::vector<std::size_t> SpTree::path_to(std::size_t dst) const {
  return extract_path(start, parent, dst);
}

MmpTree build_mmp_tree(const CostMatrix& matrix, std::size_t start,
                       const MmpOptions& options) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(start < n);
  LSL_ASSERT(options.node_costs.empty() || options.node_costs.size() == n);
  LSL_ASSERT_MSG(options.epsilon >= 0.0, "negative epsilon");

  MmpTree tree;
  tree.start = start;
  tree.parent.assign(n, -1);
  tree.cost.assign(n, kInfiniteCost);
  std::vector<bool> in_tree(n, false);

  tree.cost[start] = 0.0;
  tree.parent[start] = static_cast<std::int64_t>(start);

  // Appendix A: repeatedly move the cheapest fringe node into the tree and
  // relax its outgoing edges with the epsilon-damped comparison.
  std::size_t new_node = start;
  for (std::size_t round = 0; round < n; ++round) {
    in_tree[new_node] = true;
    // The newly added node becomes an intermediate hop for anything routed
    // through it; with the host-throughput extension, traversing it costs
    // its node weight as well (the start node forwards nothing).
    double through_cost = tree.cost[new_node];
    if (!options.node_costs.empty() && new_node != start) {
      through_cost = std::max(through_cost, options.node_costs[new_node]);
    }
    for (std::size_t other = 0; other < n; ++other) {
      if (in_tree[other] || other == new_node) {
        continue;
      }
      const double edge = matrix.cost(new_node, other);
      if (edge == kInfiniteCost) {
        continue;
      }
      const double relax_cost = std::max(edge, through_cost);
      if (relax_cost * (1.0 + options.epsilon) < tree.cost[other]) {
        tree.parent[other] = static_cast<std::int64_t>(new_node);
        tree.cost[other] = relax_cost;
      } else if (relax_cost < tree.cost[other]) {
        // Strictly better, but within the epsilon equivalence band: the
        // damping deliberately keeps the incumbent.
        ++tree.epsilon_collapses;
      }
    }
    // Select the cheapest node not yet in the tree.
    double best = kInfiniteCost;
    std::size_t best_node = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && tree.cost[v] < best) {
        best = tree.cost[v];
        best_node = v;
      }
    }
    if (best_node == n) {
      break;  // remainder unreachable
    }
    new_node = best_node;
  }
  return tree;
}

double minimax_path_cost(const CostMatrix& matrix,
                         std::span<const std::size_t> path,
                         std::span<const double> node_costs) {
  if (path.size() < 2) {
    return 0.0;
  }
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    worst = std::max(worst, matrix.cost(path[i], path[i + 1]));
    if (!node_costs.empty() && i > 0) {
      worst = std::max(worst, node_costs[path[i]]);
    }
  }
  return worst;
}

SpTree build_shortest_path_tree(const CostMatrix& matrix, std::size_t start) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(start < n);
  SpTree tree;
  tree.start = start;
  tree.parent.assign(n, -1);
  tree.cost.assign(n, kInfiniteCost);
  std::vector<bool> done(n, false);
  tree.cost[start] = 0.0;
  tree.parent[start] = static_cast<std::int64_t>(start);
  for (std::size_t round = 0; round < n; ++round) {
    double best = kInfiniteCost;
    std::size_t u = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!done[v] && tree.cost[v] < best) {
        best = tree.cost[v];
        u = v;
      }
    }
    if (u == n) {
      break;
    }
    done[u] = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (done[v]) {
        continue;
      }
      const double edge = matrix.cost(u, v);
      if (edge == kInfiniteCost) {
        continue;
      }
      if (tree.cost[u] + edge < tree.cost[v]) {
        tree.cost[v] = tree.cost[u] + edge;
        tree.parent[v] = static_cast<std::int64_t>(u);
      }
    }
  }
  return tree;
}

double minimax_cost_oracle(const CostMatrix& matrix, std::size_t s,
                           std::size_t t) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(s < n && t < n);
  if (s == t) {
    return 0.0;
  }
  // Candidate thresholds: every finite edge cost.
  std::vector<double> thresholds;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double c = matrix.cost(i, j);
      if (i != j && c != kInfiniteCost) {
        thresholds.push_back(c);
      }
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  const auto reachable = [&](double limit) {
    std::vector<bool> seen(n, false);
    std::queue<std::size_t> frontier;
    seen[s] = true;
    frontier.push(s);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      if (u == t) {
        return true;
      }
      for (std::size_t v = 0; v < n; ++v) {
        if (!seen[v] && matrix.cost(u, v) <= limit) {
          seen[v] = true;
          frontier.push(v);
        }
      }
    }
    return false;
  };

  // Binary search for the smallest feasible threshold.
  std::size_t lo = 0;
  std::size_t hi = thresholds.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (reachable(thresholds[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo == thresholds.size() ? kInfiniteCost : thresholds[lo];
}

}  // namespace lsl::sched
