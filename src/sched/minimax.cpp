#include "sched/minimax.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace lsl::sched {

namespace {

std::vector<std::size_t> extract_path(std::size_t start,
                                      std::span<const std::int64_t> parent,
                                      std::size_t dst) {
  if (dst >= parent.size() || parent[dst] < 0) {
    return {};
  }
  std::vector<std::size_t> reversed;
  std::size_t cursor = dst;
  while (true) {
    reversed.push_back(cursor);
    if (cursor == start) {
      break;
    }
    const std::int64_t p = parent[cursor];
    if (p < 0 || reversed.size() > parent.size()) {
      return {};  // broken or cyclic tree: treat as unreachable
    }
    cursor = static_cast<std::size_t>(p);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace

std::vector<std::size_t> MmpTree::path_to(std::size_t dst) const {
  return extract_path(start, parent, dst);
}

std::vector<std::size_t> SpTree::path_to(std::size_t dst) const {
  return extract_path(start, parent, dst);
}

MmpTree build_mmp_tree(const CostMatrix& matrix, std::size_t start,
                       const MmpOptions& options) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(start < n);
  LSL_ASSERT(options.node_costs.empty() || options.node_costs.size() == n);
  LSL_ASSERT(options.excluded.empty() || options.excluded.size() == n);
  LSL_ASSERT_MSG(options.epsilon >= 0.0, "negative epsilon");
  LSL_ASSERT_MSG(options.excluded.empty() || options.excluded[start] == 0,
                 "start node excluded");

  MmpTree tree;
  tree.start = start;
  tree.parent.assign(n, -1);
  tree.cost.assign(n, kInfiniteCost);
  tree.order.reserve(n);
  // Flat byte flags, not std::vector<bool>: the fringe scan reads this per
  // node per round, and the bit proxy costs a shift+mask on every access.
  // Masked-out nodes are pre-marked so they never relax and never enter;
  // with their incoming edges never read, the result matches a build over
  // a matrix with those nodes exclude_node()ed.
  std::vector<std::uint8_t> in_tree(n, 0);
  if (!options.excluded.empty()) {
    for (std::size_t v = 0; v < n; ++v) {
      in_tree[v] = options.excluded[v] != 0 ? 1 : 0;
    }
  }
  const std::span<const double> node_costs = options.node_costs;
  const double eps_factor = 1.0 + options.epsilon;

  tree.cost[start] = 0.0;
  tree.parent[start] = static_cast<std::int64_t>(start);

  // Appendix A: repeatedly move the cheapest fringe node into the tree and
  // relax its outgoing edges with the epsilon-damped comparison. Relaxation
  // and next-node selection are fused into one pass: each fringe node's
  // relaxation depends only on the node just inserted, so its post-relax
  // cost is final for the round when the scan reaches it.
  std::size_t new_node = start;
  while (true) {
    in_tree[new_node] = 1;
    tree.order.push_back(static_cast<std::uint32_t>(new_node));
    // The newly added node becomes an intermediate hop for anything routed
    // through it; with the host-throughput extension, traversing it costs
    // its node weight as well (the start node forwards nothing).
    double through_cost = tree.cost[new_node];
    if (!node_costs.empty() && new_node != start) {
      through_cost = std::max(through_cost, node_costs[new_node]);
    }
    const double* row = matrix.row(new_node);
    double best = kInfiniteCost;
    std::size_t best_node = n;
    for (std::size_t other = 0; other < n; ++other) {
      if (in_tree[other]) {
        continue;
      }
      const double edge = row[other];
      if (edge != kInfiniteCost) {
        const double relax_cost = std::max(edge, through_cost);
        if (relax_cost * eps_factor < tree.cost[other]) {
          tree.parent[other] = static_cast<std::int64_t>(new_node);
          tree.cost[other] = relax_cost;
        } else if (relax_cost < tree.cost[other]) {
          // Strictly better, but within the epsilon equivalence band: the
          // damping deliberately keeps the incumbent.
          ++tree.epsilon_collapses;
        }
      }
      if (tree.cost[other] < best) {
        best = tree.cost[other];
        best_node = other;
      }
    }
    if (best_node == n) {
      break;  // remainder unreachable
    }
    new_node = best_node;
  }
  return tree;
}

RepairOutcome repair_mmp_tree(MmpTree& tree, const CostMatrix& matrix,
                              std::span<const CostChange> changes,
                              const MmpOptions& options) {
  const std::size_t n = matrix.size();
  const std::size_t start = tree.start;
  LSL_ASSERT(start < n);
  LSL_ASSERT(tree.parent.size() == n && tree.cost.size() == n);
  LSL_ASSERT(options.excluded.empty() || options.excluded.size() == n);
  const auto rebuild = [&] {
    tree = build_mmp_tree(matrix, start, options);
    return RepairOutcome{false, n};
  };
  if (tree.order.empty() || tree.order[0] != start) {
    return rebuild();  // no replayable insertion order
  }

  // Epsilon makes relaxation history-dependent: with the damped comparison
  // a node's final parent depends on the sequence of incumbents it held,
  // not just on the final costs. Weakening an offer that was applied and
  // later overwritten -- an edge increase, a blacklisted node, a mask
  // exclusion -- rewrites the target's incumbent history, so an offer the
  // original build epsilon-collapsed can win a full rebuild at a node no
  // final-state seeding can identify (and a re-settled node's own cost
  // rise weakens its overwritten offers into the stable region
  // transitively). Only pure edge decreases are replay-exact at eps > 0:
  // their one unsound direction -- a strengthened offer actually winning
  // -- strictly drops a cost and trips the monotonicity fallback in
  // step 4. Everything else rebuilds.
  if (options.epsilon > 0.0) {
    bool decreases_only = options.excluded.empty();
    if (decreases_only) {
      for (const CostChange& change : changes) {
        if (change.node_excluded || !change.decreased) {
          decreases_only = false;
          break;
        }
      }
    }
    if (!decreases_only) {
      return rebuild();
    }
  }

  // 1. Seed the affected set. An increased edge (i, j) only matters if j's
  //    chosen path used it (any other offer through it got weaker and keeps
  //    losing); a decreased edge (., j) can newly win at j; a blacklisted
  //    or masked node loses its own path. Edges into the root never relax
  //    it (the root is in the tree from round zero).
  std::vector<std::uint8_t> affected(n, 0);
  for (const CostChange& change : changes) {
    if (change.node_excluded) {
      if (change.from == start) {
        return rebuild();
      }
      affected[change.from] = 1;
    } else if (change.to != start) {
      if (change.decreased) {
        affected[change.to] = 1;
      } else if (tree.parent[change.to] ==
                 static_cast<std::int64_t>(change.from)) {
        affected[change.to] = 1;
      }
    }
  }
  if (!options.excluded.empty()) {
    for (std::size_t v = 0; v < n; ++v) {
      if (options.excluded[v] != 0) {
        if (v == start) {
          return rebuild();
        }
        affected[v] = 1;
      }
    }
  }

  // 2. Close over descendants in one pass of the insertion order (parents
  //    precede children): re-settling a node invalidates its whole subtree.
  std::size_t n_affected = 0;
  for (const std::uint32_t v : tree.order) {
    if (v != start && affected[static_cast<std::size_t>(tree.parent[v])]) {
      affected[v] = 1;
    }
    n_affected += affected[v];
  }
  if (n_affected == 0) {
    return RepairOutcome{true, 0};
  }
  if (2 * n_affected >= tree.order.size()) {
    return rebuild();  // repair would touch most of the tree anyway
  }

  // 3. Split the old order into the stable queue S (costs, parents, and
  //    relative positions survive: their paths avoid every affected node
  //    and no offer that beat them got stronger) and the affected region A,
  //    reset to fringe state. Old costs are kept for the monotonicity check
  //    in step 4.
  std::vector<std::uint32_t> s_queue;
  s_queue.reserve(tree.order.size() - n_affected);
  std::vector<std::uint32_t> a_nodes;
  a_nodes.reserve(n_affected);
  for (const std::uint32_t v : tree.order) {
    if (!affected[v]) {
      s_queue.push_back(v);
    }
  }
  const std::vector<double> old_cost = tree.cost;
  for (std::size_t v = 0; v < n; ++v) {
    if (affected[v]) {
      tree.cost[v] = kInfiniteCost;
      tree.parent[v] = -1;
      // Masked nodes stay unreachable: they are never relax targets.
      if (options.excluded.empty() || options.excluded[v] == 0) {
        a_nodes.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }

  // 4. Merged replay. The full rebuild would settle S nodes at their old
  //    (cost, relative order) and interleave A nodes by current cost; the
  //    queue head always has current == final cost (its parent settled
  //    earlier in the queue), so comparing it against the cheapest A fringe
  //    node by (cost, index) reproduces the rebuild's lowest-index-min
  //    selection exactly. Offers into S are never applied -- they lost
  //    before and only got weaker -- which is also why an A node settling
  //    BELOW its old cost aborts to a full rebuild: a strengthened offer
  //    could win somewhere we are not looking.
  const std::span<const double> node_costs = options.node_costs;
  LSL_ASSERT(node_costs.empty() || node_costs.size() == n);
  const double eps_factor = 1.0 + options.epsilon;
  std::vector<std::uint8_t> settled(n, 0);
  std::vector<std::uint32_t> new_order;
  new_order.reserve(tree.order.size());

  const auto relax_from = [&](std::uint32_t u) {
    double through_cost = tree.cost[u];
    if (!node_costs.empty() && u != start) {
      through_cost = std::max(through_cost, node_costs[u]);
    }
    const double* row = matrix.row(u);
    for (const std::uint32_t v : a_nodes) {
      if (settled[v]) {
        continue;
      }
      const double edge = row[v];
      if (edge == kInfiniteCost) {
        continue;
      }
      const double relax_cost = std::max(edge, through_cost);
      if (relax_cost * eps_factor < tree.cost[v]) {
        tree.parent[v] = static_cast<std::int64_t>(u);
        tree.cost[v] = relax_cost;
      } else if (relax_cost < tree.cost[v]) {
        ++tree.epsilon_collapses;
      }
    }
  };

  std::size_t si = 0;
  while (true) {
    double best = kInfiniteCost;
    std::size_t best_node = n;
    for (const std::uint32_t v : a_nodes) {
      if (!settled[v] && tree.cost[v] < best) {
        best = tree.cost[v];
        best_node = v;
      }
    }
    bool take_stable = false;
    if (si < s_queue.size()) {
      const std::uint32_t s = s_queue[si];
      take_stable = best_node == n || tree.cost[s] < best ||
                    (tree.cost[s] == best && s < best_node);
    }
    if (take_stable) {
      const std::uint32_t s = s_queue[si++];
      new_order.push_back(s);
      relax_from(s);
    } else if (best_node != n) {
      if (best < old_cost[best_node]) {
        return rebuild();  // a cost dropped: the stable region is suspect
      }
      settled[best_node] = 1;
      new_order.push_back(static_cast<std::uint32_t>(best_node));
      relax_from(static_cast<std::uint32_t>(best_node));
    } else {
      break;  // the rest of A is unreachable
    }
  }
  tree.order = std::move(new_order);
  return RepairOutcome{true, n_affected};
}

double minimax_path_cost(const CostMatrix& matrix,
                         std::span<const std::size_t> path,
                         std::span<const double> node_costs) {
  if (path.size() < 2) {
    return 0.0;
  }
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    worst = std::max(worst, matrix.cost(path[i], path[i + 1]));
    if (!node_costs.empty() && i > 0) {
      worst = std::max(worst, node_costs[path[i]]);
    }
  }
  return worst;
}

SpTree build_shortest_path_tree(const CostMatrix& matrix, std::size_t start) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(start < n);
  SpTree tree;
  tree.start = start;
  tree.parent.assign(n, -1);
  tree.cost.assign(n, kInfiniteCost);
  std::vector<bool> done(n, false);
  tree.cost[start] = 0.0;
  tree.parent[start] = static_cast<std::int64_t>(start);
  for (std::size_t round = 0; round < n; ++round) {
    double best = kInfiniteCost;
    std::size_t u = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!done[v] && tree.cost[v] < best) {
        best = tree.cost[v];
        u = v;
      }
    }
    if (u == n) {
      break;
    }
    done[u] = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (done[v]) {
        continue;
      }
      const double edge = matrix.cost(u, v);
      if (edge == kInfiniteCost) {
        continue;
      }
      if (tree.cost[u] + edge < tree.cost[v]) {
        tree.cost[v] = tree.cost[u] + edge;
        tree.parent[v] = static_cast<std::int64_t>(u);
      }
    }
  }
  return tree;
}

double minimax_cost_oracle(const CostMatrix& matrix, std::size_t s,
                           std::size_t t) {
  const std::size_t n = matrix.size();
  LSL_ASSERT(s < n && t < n);
  if (s == t) {
    return 0.0;
  }
  // Candidate thresholds: every finite edge cost.
  std::vector<double> thresholds;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double c = matrix.cost(i, j);
      if (i != j && c != kInfiniteCost) {
        thresholds.push_back(c);
      }
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  const auto reachable = [&](double limit) {
    std::vector<bool> seen(n, false);
    std::queue<std::size_t> frontier;
    seen[s] = true;
    frontier.push(s);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      if (u == t) {
        return true;
      }
      for (std::size_t v = 0; v < n; ++v) {
        if (!seen[v] && matrix.cost(u, v) <= limit) {
          seen[v] = true;
          frontier.push(v);
        }
      }
    }
    return false;
  };

  // Binary search for the smallest feasible threshold.
  std::size_t lo = 0;
  std::size_t hi = thresholds.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (reachable(thresholds[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo == thresholds.size() ? kInfiniteCost : thresholds[lo];
}

}  // namespace lsl::sched
