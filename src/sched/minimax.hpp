// Minimax Path (MMP) tree construction -- the paper's Appendix A algorithm.
//
// Pipelined store-and-forward throughput is dominated by the slowest hop, so
// the cost of a path is the maximum edge cost on it; the scheduler wants the
// path minimizing that maximum. The greedy Dijkstra-like tree build is
// optimal for this cost (and the epsilon edge-equivalence modification damps
// spurious relays caused by measurement noise: an edge only replaces the
// incumbent when relax_cost * (1 + epsilon) < cost[other]).
//
// Trees remember their insertion order, which makes them repairable: after
// the matrix drifts or a node is blacklisted, repair_mmp_tree re-settles
// only the affected subtrees and replays the untouched region from the
// recorded order, producing the exact tree a full rebuild would.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/cost_matrix.hpp"

namespace lsl::sched {

struct MmpTree {
  std::size_t start = 0;
  /// parent[v] is v's predecessor on the chosen path; parent[start] == start;
  /// -1 when unreachable.
  std::vector<std::int64_t> parent;
  /// Minimax cost of the chosen path from start to v.
  std::vector<double> cost;
  /// Tree-insertion sequence, start first; parents always precede their
  /// children. Unreachable nodes are absent. Incremental repair replays
  /// this order; trees assembled by hand (tests) may leave it empty, which
  /// simply forces repair to fall back to a full rebuild.
  std::vector<std::uint32_t> order;
  /// Relaxations suppressed by the epsilon damping: the edge was strictly
  /// better than the incumbent, but not by the required relative margin.
  /// Non-zero counts mean epsilon is actively filtering measurement noise.
  /// After an incremental repair the count covers only the relaxations the
  /// repair replayed, so it is not comparable to a full rebuild's count.
  std::uint64_t epsilon_collapses = 0;

  /// Node sequence start..dst along the tree; empty when unreachable.
  [[nodiscard]] std::vector<std::size_t> path_to(std::size_t dst) const;
};

struct MmpOptions {
  /// Edge equivalence: relax only when better by this relative margin.
  double epsilon = 0.0;
  /// Optional per-node traversal costs (the paper's future-work extension:
  /// "the path through the host as another edge"). A relay path that
  /// traverses intermediate node k also pays node_costs[k] in the max.
  /// Empty = hosts are free.
  std::span<const double> node_costs = {};
  /// Exclusion overlay: when non-empty (size n), nodes with a non-zero flag
  /// never enter the tree and are never relaxed, without copying or
  /// mutating the matrix. The result is identical -- including the collapse
  /// count -- to a build over a matrix copy with those nodes
  /// exclude_node()ed. The start node must not be excluded.
  std::span<const std::uint8_t> excluded = {};
};

/// Build the tree of minimax paths from `start` to every node (Appendix A).
[[nodiscard]] MmpTree build_mmp_tree(const CostMatrix& matrix,
                                     std::size_t start,
                                     const MmpOptions& options = {});

/// Outcome of repair_mmp_tree.
struct RepairOutcome {
  /// False when the repair fell back to a full rebuild (the tree is still
  /// correct either way).
  bool repaired = false;
  /// Nodes re-settled: the affected region's size when repaired, n on a
  /// full rebuild.
  std::size_t resettled = 0;
};

/// Bring `tree` (a build_mmp_tree result for an earlier matrix state) up to
/// date with `matrix` after the logged `changes`, in O(n * affected) time.
/// The repaired tree has exactly the parents, costs, and insertion order a
/// full rebuild would produce (epsilon_collapses is approximate; see
/// MmpTree). `options` must match the ones the tree was built with, plus
/// optionally an exclusion mask; masked nodes are treated as blacklisted
/// without the matrix being touched (copy-free route_avoiding). Falls back
/// to a full rebuild -- transparently, same result -- when the replay
/// cannot be proven exact: the start node is affected, a re-settled cost
/// dropped below its old value, the affected region spans most of the
/// tree, or the tree has no recorded order. At epsilon > 0 the damped
/// relaxation makes final parents depend on each node's full incumbent
/// history, which no final-state seeding can reconstruct, so there the
/// incremental path is additionally restricted to pure edge decreases:
/// any increase, blacklist, or mask exclusion rebuilds (only at
/// epsilon == 0, where final costs are order-independent, do those repair
/// incrementally).
RepairOutcome repair_mmp_tree(MmpTree& tree, const CostMatrix& matrix,
                              std::span<const CostChange> changes,
                              const MmpOptions& options = {});

/// Minimax cost of an explicit path (max over its edges and, when
/// node_costs is given, its intermediate nodes); infinite for paths with
/// missing edges.
[[nodiscard]] double minimax_path_cost(const CostMatrix& matrix,
                                       std::span<const std::size_t> path,
                                       std::span<const double> node_costs = {});

/// Classic Dijkstra additive-cost tree over the same matrix: the natural
/// baseline the paper contrasts with (sum-of-edges is wrong for pipelined
/// flows).
struct SpTree {
  std::size_t start = 0;
  std::vector<std::int64_t> parent;
  std::vector<double> cost;

  [[nodiscard]] std::vector<std::size_t> path_to(std::size_t dst) const;
};

[[nodiscard]] SpTree build_shortest_path_tree(const CostMatrix& matrix,
                                              std::size_t start);

/// Exhaustive oracle for tests: true minimax s->t cost via binary search
/// over edge thresholds + reachability. O(E log E); intended for small n.
[[nodiscard]] double minimax_cost_oracle(const CostMatrix& matrix,
                                         std::size_t s, std::size_t t);

}  // namespace lsl::sched
