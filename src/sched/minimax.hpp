// Minimax Path (MMP) tree construction -- the paper's Appendix A algorithm.
//
// Pipelined store-and-forward throughput is dominated by the slowest hop, so
// the cost of a path is the maximum edge cost on it; the scheduler wants the
// path minimizing that maximum. The greedy Dijkstra-like tree build is
// optimal for this cost (and the epsilon edge-equivalence modification damps
// spurious relays caused by measurement noise: an edge only replaces the
// incumbent when relax_cost * (1 + epsilon) < cost[other]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/cost_matrix.hpp"

namespace lsl::sched {

struct MmpTree {
  std::size_t start = 0;
  /// parent[v] is v's predecessor on the chosen path; parent[start] == start;
  /// -1 when unreachable.
  std::vector<std::int64_t> parent;
  /// Minimax cost of the chosen path from start to v.
  std::vector<double> cost;
  /// Relaxations suppressed by the epsilon damping: the edge was strictly
  /// better than the incumbent, but not by the required relative margin.
  /// Non-zero counts mean epsilon is actively filtering measurement noise.
  std::uint64_t epsilon_collapses = 0;

  /// Node sequence start..dst along the tree; empty when unreachable.
  [[nodiscard]] std::vector<std::size_t> path_to(std::size_t dst) const;
};

struct MmpOptions {
  /// Edge equivalence: relax only when better by this relative margin.
  double epsilon = 0.0;
  /// Optional per-node traversal costs (the paper's future-work extension:
  /// "the path through the host as another edge"). A relay path that
  /// traverses intermediate node k also pays node_costs[k] in the max.
  /// Empty = hosts are free.
  std::span<const double> node_costs = {};
};

/// Build the tree of minimax paths from `start` to every node (Appendix A).
[[nodiscard]] MmpTree build_mmp_tree(const CostMatrix& matrix,
                                     std::size_t start,
                                     const MmpOptions& options = {});

/// Minimax cost of an explicit path (max over its edges and, when
/// node_costs is given, its intermediate nodes); infinite for paths with
/// missing edges.
[[nodiscard]] double minimax_path_cost(const CostMatrix& matrix,
                                       std::span<const std::size_t> path,
                                       std::span<const double> node_costs = {});

/// Classic Dijkstra additive-cost tree over the same matrix: the natural
/// baseline the paper contrasts with (sum-of-edges is wrong for pipelined
/// flows).
struct SpTree {
  std::size_t start = 0;
  std::vector<std::int64_t> parent;
  std::vector<double> cost;

  [[nodiscard]] std::vector<std::size_t> path_to(std::size_t dst) const;
};

[[nodiscard]] SpTree build_shortest_path_tree(const CostMatrix& matrix,
                                              std::size_t start);

/// Exhaustive oracle for tests: true minimax s->t cost via binary search
/// over edge thresholds + reachability. O(E log E); intended for small n.
[[nodiscard]] double minimax_cost_oracle(const CostMatrix& matrix,
                                         std::size_t s, std::size_t t);

}  // namespace lsl::sched
