#include "sched/route_advisor.hpp"

#include <limits>
#include <utility>

#include "obs/span.hpp"
#include "sched/minimax.hpp"

namespace lsl::sched {

AdvisorMetrics* AdvisorMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local AdvisorMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.evaluations = &reg.counter("sched.advisor.evaluations");
    metrics.reroutes_emitted = &reg.counter("sched.advisor.reroutes_emitted");
    metrics.kept_current = &reg.counter("sched.advisor.kept_current");
    metrics.held_hysteresis = &reg.counter("sched.advisor.held_hysteresis");
    metrics.held_dwell = &reg.counter("sched.advisor.held_dwell");
  }
  return &metrics;
}

double predicted_remaining_seconds(double minimax_cost,
                                   std::uint64_t remaining_bytes) {
  if (minimax_cost >= kInfiniteCost) {
    return std::numeric_limits<double>::infinity();
  }
  // Cost is seconds per megabit (1/bandwidth); the bottleneck hop sets the
  // pipelined transfer rate.
  const double megabits = static_cast<double>(remaining_bytes) * 8.0 / 1e6;
  return minimax_cost * megabits;
}

RouteAdvisor::RouteAdvisor(RouteAdvisorConfig config) : config_(config) {}

RouteAdvice RouteAdvisor::evaluate(const Scheduler& scheduler,
                                   const SessionView& view, SimTime now,
                                   SimTime routed_at) const {
  AdvisorMetrics* metrics = AdvisorMetrics::get();
  if (metrics != nullptr) {
    metrics->evaluations->inc();
  }
  RouteAdvice advice;

  std::vector<std::size_t> current_path;
  current_path.reserve(view.current_via.size() + 2);
  current_path.push_back(view.src);
  for (const net::NodeId hop : view.current_via) {
    current_path.push_back(hop);
  }
  current_path.push_back(view.dst);
  const double current_cost = minimax_path_cost(
      scheduler.matrix(), current_path, scheduler.options().host_costs);
  advice.current_remaining_s =
      predicted_remaining_seconds(current_cost, view.remaining_bytes);

  const std::vector<std::size_t> excluded(view.blacklist.begin(),
                                          view.blacklist.end());
  const Scheduler::Decision best =
      excluded.empty() ? scheduler.route(view.src, view.dst)
                       : scheduler.route_avoiding(view.src, view.dst, excluded);
  if (best.path.empty()) {
    // Nothing reachable outside the blacklist: the incumbent stands.
    advice.candidate_remaining_s = advice.current_remaining_s;
    if (metrics != nullptr) {
      metrics->kept_current->inc();
    }
    return advice;
  }
  std::vector<net::NodeId> best_via = best.via();
  if (best_via == view.current_via) {
    advice.candidate_remaining_s = advice.current_remaining_s;
    if (metrics != nullptr) {
      metrics->kept_current->inc();
    }
    return advice;
  }
  advice.new_via = std::move(best_via);
  advice.candidate_remaining_s =
      predicted_remaining_seconds(best.scheduled_cost, view.remaining_bytes) +
      config_.switch_penalty.to_seconds();

  if (!(advice.candidate_remaining_s <
        (1.0 - config_.hysteresis) * advice.current_remaining_s)) {
    advice.action = RouteAdvice::Action::kHoldHysteresis;
    if (metrics != nullptr) {
      metrics->held_hysteresis->inc();
    }
    return advice;
  }
  if (now - routed_at < config_.min_dwell) {
    advice.action = RouteAdvice::Action::kHoldDwell;
    if (metrics != nullptr) {
      metrics->held_dwell->inc();
    }
    return advice;
  }
  advice.action = RouteAdvice::Action::kReroute;
  return advice;
}

std::uint64_t RouteAdvisor::watch(SimTime now, ViewFn view, ApplyFn apply) {
  const std::uint64_t token = next_token_++;
  sessions_.emplace(token,
                    Watched{std::move(view), std::move(apply), now});
  return token;
}

void RouteAdvisor::unwatch(std::uint64_t token) { sessions_.erase(token); }

std::size_t RouteAdvisor::on_schedule(const Scheduler& scheduler,
                                      SimTime now) {
  std::size_t applied = 0;
  for (auto& [token, watched] : sessions_) {
    const SessionView view = watched.view();
    if (view.remaining_bytes == 0) {
      continue;  // finished (or nothing left worth moving)
    }
    const RouteAdvice advice =
        evaluate(scheduler, view, now, watched.routed_at);
    bool took = false;
    if (advice.reroute() && watched.apply(advice)) {
      // Dwell restarts only when the session actually took the handover.
      watched.routed_at = now;
      ++emitted_;
      ++applied;
      took = true;
      if (AdvisorMetrics* metrics = AdvisorMetrics::get()) {
        metrics->reroutes_emitted->inc();
      }
    }
    if (obs::SpanRecorder* sr = obs::spans()) {
      const char* rung = "keep";
      switch (advice.action) {
        case RouteAdvice::Action::kKeep:
          break;
        case RouteAdvice::Action::kHoldHysteresis:
          rung = "hold-hysteresis";
          break;
        case RouteAdvice::Action::kHoldDwell:
          rung = "hold-dwell";
          break;
        case RouteAdvice::Action::kReroute:
          rung = took ? "reroute" : "reroute-rejected";
          break;
      }
      sr->instant(now, obs::SpanKind::kRouteDecision, view.session_tag, 0, 0,
                  rung, advice.current_remaining_s);
    }
  }
  return applied;
}

}  // namespace lsl::sched
