// Mid-transfer adaptive rerouting (paper section 4.2, taken online).
//
// The MMP schedule is computed from NWS forecasts at connect time, but the
// minimax bottleneck is exactly what drifting background traffic perturbs: a
// route that was optimal when the session started can be dominated
// mid-transfer by a degraded hop. The RouteAdvisor watches live sessions
// and, on every rescheduler tick, re-evaluates each one against the current
// MMP tree (the incremental-repair fast path keeps this cheap): when the
// predicted remaining-transfer time on the best available path beats the
// current path by a hysteresis margin -- and the session has dwelt on its
// route long enough -- it emits a reroute which the session layer applies as
// a planned handover (drain to the committed offset, resume on the new
// path; see lsl::session::ReliableTransfer::reroute_to).
//
// Determinism contract: advice is a pure function of the scheduler state,
// the session view, and sim time. No wall clock, no private randomness --
// sweeps stay bitwise-identical across --jobs (docs/performance.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "util/time.hpp"

namespace lsl::sched {

/// Process-wide advisor instruments in the global metrics registry.
struct AdvisorMetrics {
  obs::Counter* evaluations;           ///< sched.advisor.evaluations
  obs::Counter* reroutes_emitted;      ///< sched.advisor.reroutes_emitted
  obs::Counter* kept_current;          ///< sched.advisor.kept_current
  obs::Counter* held_hysteresis;       ///< sched.advisor.held_hysteresis
  obs::Counter* held_dwell;            ///< sched.advisor.held_dwell

  /// nullptr while obs::metrics_enabled() is false.
  static AdvisorMetrics* get();
};

struct RouteAdvisorConfig {
  /// Reroute only when the candidate's predicted remaining time undercuts
  /// the current path's by this fraction (default ~15%): inside the margin
  /// the incumbent stands, so forecast noise cannot flap the route.
  double hysteresis = 0.15;
  /// Minimum time a session keeps a route before the advisor may move it
  /// again (measured from watch time or the last emitted reroute).
  SimTime min_dwell = SimTime::seconds(10);
  /// Fixed cost charged to a candidate path for the handover itself (drain
  /// the in-flight segment, probe the sink's offset, reconnect). Keeps
  /// nearly-finished transfers from switching for a win smaller than the
  /// splice.
  SimTime switch_penalty = SimTime::seconds(1);
};

/// What the advisor needs to know about a live session at evaluation time.
struct SessionView {
  std::size_t src = 0;
  std::size_t dst = 0;
  /// Relay depots of the active attempt, in order (empty = direct path).
  std::vector<net::NodeId> current_via;
  /// Bytes the sink has not committed yet (the part a reroute can move).
  std::uint64_t remaining_bytes = 0;
  /// Depots failure recovery has blacklisted; never reroute targets.
  std::vector<net::NodeId> blacklist;
  /// Session correlation hash (SessionIdHash) for span emission; 0 tags the
  /// advisor's verdict as a global context event.
  std::uint64_t session_tag = 0;
};

/// One evaluation's outcome, with the inputs that justified it.
struct RouteAdvice {
  enum class Action : std::uint8_t {
    kKeep,            ///< best path is the current path
    kHoldHysteresis,  ///< better path exists, inside the margin
    kHoldDwell,       ///< outside the margin, but the session must dwell
    kReroute,         ///< switch to new_via
  };

  Action action = Action::kKeep;
  /// Relay hops of the recommended path (meaningful when kReroute).
  std::vector<net::NodeId> new_via;
  /// Predicted remaining seconds on the current path and on the best
  /// candidate (candidate includes the switch penalty).
  double current_remaining_s = 0.0;
  double candidate_remaining_s = 0.0;

  [[nodiscard]] bool reroute() const { return action == Action::kReroute; }
};

/// Predicted remaining transfer time over a path with the given minimax
/// cost (seconds per megabit): pipelined store-and-forward throughput is
/// set by the bottleneck hop, so time = cost * remaining megabits.
/// Infinite cost (unreachable) predicts infinity.
[[nodiscard]] double predicted_remaining_seconds(double minimax_cost,
                                                 std::uint64_t remaining_bytes);

class RouteAdvisor {
 public:
  /// Snapshot of a watched session, refreshed on every tick. Sessions that
  /// have finished report zero remaining bytes (the advisor skips them).
  using ViewFn = std::function<SessionView()>;
  /// Apply an emitted reroute. Returning false means the session could not
  /// take the handover (already draining, hop blacklisted since the view
  /// was built); the advisor keeps the old dwell clock so it may retry on
  /// the next tick.
  using ApplyFn = std::function<bool(const RouteAdvice&)>;

  explicit RouteAdvisor(RouteAdvisorConfig config = {});

  /// The decision rule, stateless: evaluate `view` against `scheduler` at
  /// `now`, where `routed_at` is when the session last changed route.
  /// Exposed for tests and benchmarks; on_schedule drives it for every
  /// watched session.
  [[nodiscard]] RouteAdvice evaluate(const Scheduler& scheduler,
                                     const SessionView& view, SimTime now,
                                     SimTime routed_at) const;

  /// Register a live session; returns a token for unwatch(). `now` starts
  /// the dwell clock.
  std::uint64_t watch(SimTime now, ViewFn view, ApplyFn apply);
  void unwatch(std::uint64_t token);
  [[nodiscard]] std::size_t watched() const { return sessions_.size(); }

  /// Rescheduler tick fan-in: re-evaluate every watched session against the
  /// fresh scheduler. Sessions are visited in watch order (deterministic).
  /// Returns the number of reroutes applied.
  std::size_t on_schedule(const Scheduler& scheduler, SimTime now);

  [[nodiscard]] const RouteAdvisorConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t reroutes_emitted() const { return emitted_; }

 private:
  struct Watched {
    ViewFn view;
    ApplyFn apply;
    SimTime routed_at;  ///< watch time, bumped on each applied reroute
  };

  RouteAdvisorConfig config_;
  std::map<std::uint64_t, Watched> sessions_;  ///< ordered: deterministic
  std::uint64_t next_token_ = 1;
  std::uint64_t emitted_ = 0;
};

}  // namespace lsl::sched
