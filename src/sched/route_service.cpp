#include "sched/route_service.hpp"

#include <utility>

#include "util/assert.hpp"

namespace lsl::sched {

RouteService::RouteService(CostMatrix matrix, RouteServiceOptions options)
    : matrix_(std::move(matrix)), options_(std::move(options)) {
  LSL_ASSERT(options_.scheduler.host_costs.empty() ||
             options_.scheduler.host_costs.size() == matrix_.size());
  layout_ = ShardLayout::build(matrix_, options_.shards);
  shards_.reserve(layout_.shard_count);
  for (std::size_t s = 0; s < layout_.shard_count; ++s) {
    const std::size_t ns = layout_.shard_size(s);
    const std::uint32_t* member = layout_.shard_members(s);
    CostMatrix sub(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = 0; j < ns; ++j) {
        if (i != j) {
          sub.set_cost(i, j, matrix_.cost(member[i], member[j]));
        }
      }
    }
    SchedulerOptions shard_options = options_.scheduler;
    if (!options_.scheduler.host_costs.empty()) {
      shard_options.host_costs.resize(ns);
      for (std::size_t i = 0; i < ns; ++i) {
        shard_options.host_costs[i] = options_.scheduler.host_costs[member[i]];
      }
    }
    shards_.push_back(
        std::make_unique<Scheduler>(std::move(sub), std::move(shard_options)));
  }
  publish();
}

RouteAnswer RouteService::lookup(const RouteQuery& query) const {
  const std::shared_ptr<const RouteSnapshot> snap = snapshot();
  const RouteAnswer answer = snap->lookup(query);
  account_batch(1, *snap);
  return answer;
}

void RouteService::lookup_batch(std::span<const RouteQuery> queries,
                                std::span<RouteAnswer> answers) const {
  const std::shared_ptr<const RouteSnapshot> snap = snapshot();
  snap->lookup_batch(queries, answers);
  account_batch(queries.size(), *snap);
}

ResolvedRoute RouteService::resolve(std::size_t src, std::size_t dst) const {
  return snapshot()->resolve(src, dst);
}

void RouteService::account_batch(std::size_t batch,
                                 const RouteSnapshot& snap) const {
  SchedMetrics* m = SchedMetrics::get();
  if (m == nullptr || batch == 0) {
    return;
  }
  m->rs_lookups->inc(batch);
  m->rs_batch_size->observe(static_cast<double>(batch));
  if (snap.epoch() != epoch()) {
    // The writer published while this batch was being answered; the batch
    // is still internally consistent (all answers came from one epoch).
    m->rs_stale_epochs->inc();
  }
}

std::size_t RouteService::apply_matrix(const CostMatrix& fresh) {
  LSL_ASSERT_MSG(fresh.size() == matrix_.size(),
                 "route service matrix size changed");
  const std::size_t n = matrix_.size();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* have = matrix_.row(i);
    const double* want = fresh.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || have[j] == want[j]) {
        continue;
      }
      matrix_.set_cost(i, j, want[j]);
      ++changed;
      // Intra-shard edges repair the owning scheduler in place;
      // cross-shard edges only feed the gateway overlay, which publish()
      // re-derives from matrix_ wholesale.
      const std::uint32_t si = layout_.shard_of[i];
      if (si == layout_.shard_of[j]) {
        shards_[si]->set_cost(layout_.local_index[i], layout_.local_index[j],
                              want[j]);
      }
    }
  }
  if (changed == 0) {
    ++ticks_since_publish_;
    if (SchedMetrics* m = SchedMetrics::get(); m != nullptr) {
      m->rs_epoch_age_ticks->set(static_cast<double>(ticks_since_publish_));
    }
    return 0;
  }
  publish();
  return changed;
}

void RouteService::publish() {
  for (const std::unique_ptr<Scheduler>& shard : shards_) {
    shard->prebuild_trees(options_.prebuild_jobs);
  }
  const std::uint64_t epoch =
      published_epoch_.load(std::memory_order_relaxed) + 1;
  std::shared_ptr<const RouteSnapshot> snap = RouteSnapshot::build(
      layout_, shards_, matrix_, options_.scheduler.epsilon, epoch);
  // Epoch first, snapshot second: a reader that already sees the new
  // snapshot must never observe the old epoch (spurious stale count).
  published_epoch_.store(epoch, std::memory_order_relaxed);
  snapshot_.store(std::move(snap), std::memory_order_release);
  ticks_since_publish_ = 0;
  if (SchedMetrics* m = SchedMetrics::get(); m != nullptr) {
    m->rs_snapshot_swaps->inc();
    m->rs_epoch->set(static_cast<double>(epoch));
    m->rs_epoch_age_ticks->set(0.0);
  }
}

}  // namespace lsl::sched
