// Sharded, epoch-versioned route service: lock-free route lookups under
// live forecast churn.
//
// The host pool is partitioned across N scheduler shards (ShardLayout);
// each shard runs its own epsilon-damped MMP Scheduler over the shard's
// submatrix, and inter-shard routes relay through per-shard gateway depots
// (src -> home gateway -> ... -> dst gateway -> dst). The write side --
// NWS rescheduler ticks diff-applying fresh forecast matrices -- repairs
// the shard schedulers incrementally, then freezes everything into an
// immutable RouteSnapshot and publishes it RCU-style through one
// std::atomic<std::shared_ptr>. Readers resolve from whatever snapshot
// they load: zero locks, zero writer coordination, and a torn view is
// impossible because snapshots never mutate after publication.
//
// With a single shard the service is a pure re-encoding of one Scheduler:
// identical trees, identical decisions, identical sweep output (pinned by
// the CI determinism smoke). Sharding trades a bounded detour (routes
// cross shards only via gateways) for rebuild cost that scales with
// shard size, not pool size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sched/route_snapshot.hpp"
#include "sched/scheduler.hpp"
#include "sched/shard.hpp"

namespace lsl::sched {

struct RouteServiceOptions {
  /// Scheduler shards to split the pool across (clamped to [1, hosts]).
  std::size_t shards = 1;
  /// Per-shard scheduler knobs (epsilon also damps the gateway overlay).
  SchedulerOptions scheduler;
  /// Worker threads for the pre-publish tree refresh (0 = one per
  /// hardware thread). Trees are identical for any value; this is purely
  /// a publish-latency knob.
  std::size_t prebuild_jobs = 1;
};

class RouteService {
 public:
  explicit RouteService(CostMatrix matrix, RouteServiceOptions options = {});
  RouteService(const RouteService&) = delete;
  RouteService& operator=(const RouteService&) = delete;

  // ---- read side (any thread, lock-free) ---------------------------------

  /// The current published snapshot (acquire load; never null). Callers
  /// holding the shared_ptr keep a consistent epoch for as long as they
  /// like -- publication never invalidates it.
  [[nodiscard]] std::shared_ptr<const RouteSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Answer one query from the current snapshot.
  [[nodiscard]] RouteAnswer lookup(const RouteQuery& query) const;

  /// Answer a batch of queries against ONE snapshot load: every answer in
  /// the batch is consistent with the same epoch even if the writer
  /// publishes mid-batch. This is the hot path -- amortizes the atomic
  /// load and streams the flat tables through cache.
  void lookup_batch(std::span<const RouteQuery> queries,
                    std::span<RouteAnswer> answers) const;

  /// Materialize the full node path (control-plane shape; allocates).
  [[nodiscard]] ResolvedRoute resolve(std::size_t src, std::size_t dst) const;

  /// Epoch of the most recently published snapshot.
  [[nodiscard]] std::uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ShardLayout& layout() const { return layout_; }
  [[nodiscard]] std::size_t shard_count() const { return layout_.shard_count; }
  [[nodiscard]] const CostMatrix& matrix() const { return matrix_; }
  /// The shard schedulers (writer-side state; exposed for tests).
  [[nodiscard]] const Scheduler& shard(std::size_t s) const {
    return *shards_[s];
  }

  // ---- write side (one writer thread; no concurrent writers) -------------

  /// Diff-apply a freshly measured full-pool matrix: changed intra-shard
  /// edges repair the owning shard's scheduler incrementally, cross-shard
  /// edges feed the gateway overlay, and a changed tick publishes a new
  /// snapshot epoch. A no-change tick publishes nothing (readers keep the
  /// current epoch; its age gauge climbs). Returns changed directed edges.
  std::size_t apply_matrix(const CostMatrix& fresh);

  /// Rebuild every shard's stale trees and publish a new snapshot epoch.
  void publish();

  /// Subscribe to an nws::Rescheduler's tick fan-out: every tick
  /// diff-applies the fresh scheduler's matrix into this service (and
  /// publishes when anything moved). Header-only template so lsl_sched
  /// keeps zero link dependency on lsl_nws; returns the subscription
  /// token for ReschedulerT::unsubscribe.
  template <typename ReschedulerT>
  std::uint64_t attach(ReschedulerT& rescheduler) {
    return rescheduler.subscribe(
        [this](const Scheduler& fresh, std::size_t /*changed_edges*/) {
          apply_matrix(fresh.matrix());
        });
  }

 private:
  void account_batch(std::size_t batch, const RouteSnapshot& snap) const;

  CostMatrix matrix_;  ///< full-pool writer matrix (overlay source)
  RouteServiceOptions options_;
  ShardLayout layout_;
  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::atomic<std::shared_ptr<const RouteSnapshot>> snapshot_;
  std::atomic<std::uint64_t> published_epoch_{0};
  std::uint64_t ticks_since_publish_ = 0;
};

}  // namespace lsl::sched
