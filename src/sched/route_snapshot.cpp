#include "sched/route_snapshot.hpp"

#include <algorithm>

#include "sched/minimax.hpp"
#include "sched/scheduler.hpp"
#include "util/assert.hpp"

namespace lsl::sched {

std::shared_ptr<const RouteSnapshot> RouteSnapshot::build(
    const ShardLayout& layout,
    std::span<const std::unique_ptr<Scheduler>> shards,
    const CostMatrix& matrix, double epsilon, std::uint64_t epoch) {
  LSL_ASSERT(shards.size() == layout.shard_count);
  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot());
  snap->epoch_ = epoch;
  snap->layout_ = layout;

  const std::size_t shard_count = layout.shard_count;
  snap->block_offset_.resize(shard_count + 1, 0);
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    snap->block_offset_[s] = total;
    total += layout.shard_size(s) * layout.shard_size(s);
  }
  snap->block_offset_[shard_count] = total;
  snap->slot_.resize(total);

  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t ns = layout.shard_size(s);
    const std::uint32_t* member = layout.shard_members(s);
    const std::size_t base = snap->block_offset_[s];
    LSL_ASSERT(shards[s]->matrix().size() == ns);
    for (std::size_t ls = 0; ls < ns; ++ls) {
      const MmpTree& tree = shards[s]->tree_from(ls);
      Slot* row = snap->slot_.data() + base + ls * ns;
      for (std::size_t v = 0; v < ns; ++v) {
        row[v].cost = tree.cost[v];
        row[v].parent = static_cast<std::int32_t>(tree.parent[v]);
        row[v].first_hop = kNoRoute;
      }
      // First hop toward v: replay the insertion order (parents precede
      // children), seeding the root's direct children with themselves.
      row[ls].first_hop = member[ls];
      for (const std::uint32_t v : tree.order) {
        if (v == ls) {
          continue;
        }
        const auto p = static_cast<std::size_t>(tree.parent[v]);
        row[v].first_hop = p == ls ? member[v] : row[p].first_hop;
      }
    }
  }

  // Gateway overlay: minimax trees over the gateways' direct edges in the
  // full matrix, one per source shard, damped with the same epsilon the
  // shard schedulers use.
  snap->overlay_cost_.assign(shard_count * shard_count, kInfiniteCost);
  snap->overlay_parent_.assign(shard_count * shard_count, -1);
  snap->overlay_first_.assign(shard_count * shard_count, -1);
  if (shard_count > 1) {
    CostMatrix overlay(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      for (std::size_t j = 0; j < shard_count; ++j) {
        if (i != j) {
          overlay.set_cost(i, j,
                           matrix.cost(layout.gateway[i], layout.gateway[j]));
        }
      }
    }
    MmpOptions options;
    options.epsilon = epsilon;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const MmpTree tree = build_mmp_tree(overlay, s, options);
      double* cost = snap->overlay_cost_.data() + s * shard_count;
      std::int32_t* parent = snap->overlay_parent_.data() + s * shard_count;
      std::int32_t* first = snap->overlay_first_.data() + s * shard_count;
      for (std::size_t v = 0; v < shard_count; ++v) {
        cost[v] = tree.cost[v];
        parent[v] = static_cast<std::int32_t>(tree.parent[v]);
      }
      first[s] = static_cast<std::int32_t>(s);
      for (const std::uint32_t v : tree.order) {
        if (v == s) {
          continue;
        }
        const auto p = static_cast<std::size_t>(tree.parent[v]);
        first[v] = p == s ? static_cast<std::int32_t>(v) : first[p];
      }
    }
  } else {
    snap->overlay_cost_[0] = 0.0;
    snap->overlay_parent_[0] = 0;
    snap->overlay_first_[0] = 0;
  }
  return snap;
}

RouteAnswer RouteSnapshot::lookup(const RouteQuery& query) const {
  RouteAnswer answer;
  const std::size_t n = layout_.host_count;
  if (query.src >= n || query.dst >= n) {
    return answer;
  }
  if (query.src == query.dst) {
    answer.cost = 0.0;
    answer.next_hop = query.dst;
    return answer;
  }
  const std::size_t s = layout_.shard_of[query.src];
  const std::size_t d = layout_.shard_of[query.dst];
  if (s == d) {
    const Slot& slot = slot_[slot_index(s, query.src, query.dst)];
    if (slot.cost == kInfiniteCost) {
      return answer;
    }
    answer.cost = slot.cost;
    answer.next_hop = slot.first_hop;
    answer.relayed = answer.next_hop != query.dst ? 1 : 0;
    return answer;
  }
  const std::uint32_t gw_s = layout_.gateway[s];
  const std::uint32_t gw_d = layout_.gateway[d];
  const double c_home =
      query.src == gw_s ? 0.0 : slot_[slot_index(s, query.src, gw_s)].cost;
  const double c_over = overlay_cost_[s * layout_.shard_count + d];
  const double c_dst =
      query.dst == gw_d ? 0.0 : slot_[slot_index(d, gw_d, query.dst)].cost;
  if (c_home == kInfiniteCost || c_over == kInfiniteCost ||
      c_dst == kInfiniteCost) {
    return answer;
  }
  answer.cost = std::max(c_home, std::max(c_over, c_dst));
  if (query.src != gw_s) {
    answer.next_hop = slot_[slot_index(s, query.src, gw_s)].first_hop;
  } else {
    const std::int32_t g1 = overlay_first_[s * layout_.shard_count + d];
    answer.next_hop = layout_.gateway[static_cast<std::size_t>(g1)];
  }
  // The only non-relayed inter-shard route is gateway-to-gateway over a
  // direct overlay edge.
  answer.relayed =
      (query.src == gw_s && query.dst == gw_d &&
       overlay_first_[s * layout_.shard_count + d] ==
           static_cast<std::int32_t>(d))
          ? 0
          : 1;
  return answer;
}

void RouteSnapshot::prefetch(const RouteQuery& query) const {
  const std::size_t n = layout_.host_count;
  if (query.src >= n || query.dst >= n || query.src == query.dst) {
    return;
  }
  const std::size_t s = layout_.shard_of[query.src];
  const std::size_t d = layout_.shard_of[query.dst];
  if (s == d) {
    __builtin_prefetch(&slot_[slot_index(s, query.src, query.dst)]);
    return;
  }
  __builtin_prefetch(&slot_[slot_index(s, query.src, layout_.gateway[s])]);
  __builtin_prefetch(&slot_[slot_index(d, layout_.gateway[d], query.dst)]);
}

void RouteSnapshot::lookup_batch(std::span<const RouteQuery> queries,
                                 std::span<RouteAnswer> answers) const {
  LSL_ASSERT(answers.size() >= queries.size());
  // Chunked software pipeline: issue the next chunk's slot prefetches
  // while answering the current one, so the random block reads overlap
  // instead of serializing on cache misses.
  constexpr std::size_t kChunk = 16;
  const std::size_t count = queries.size();
  for (std::size_t i = 0; i < std::min(kChunk, count); ++i) {
    prefetch(queries[i]);
  }
  for (std::size_t base = 0; base < count; base += kChunk) {
    const std::size_t end = std::min(base + kChunk, count);
    for (std::size_t i = end; i < std::min(end + kChunk, count); ++i) {
      prefetch(queries[i]);
    }
    for (std::size_t i = base; i < end; ++i) {
      answers[i] = lookup(queries[i]);
    }
  }
}

bool RouteSnapshot::append_leg(std::size_t s, std::uint32_t a, std::uint32_t b,
                               std::vector<std::size_t>& out) const {
  const std::size_t ns = layout_.shard_size(s);
  const std::uint32_t* member = layout_.shard_members(s);
  const std::size_t base =
      block_offset_[s] + layout_.local_index[a] * ns;
  const std::size_t la = layout_.local_index[a];
  std::size_t lv = layout_.local_index[b];
  if (lv != la && slot_[base + lv].parent < 0) {
    return false;
  }
  std::vector<std::size_t> leg;
  while (lv != la) {
    leg.push_back(member[lv]);
    lv = static_cast<std::size_t>(slot_[base + lv].parent);
  }
  if (out.empty()) {
    out.push_back(a);
  }
  for (std::size_t i = leg.size(); i-- > 0;) {
    out.push_back(leg[i]);
  }
  return true;
}

ResolvedRoute RouteSnapshot::resolve(std::size_t src, std::size_t dst) const {
  ResolvedRoute route;
  const std::size_t n = layout_.host_count;
  if (src >= n || dst >= n) {
    return route;
  }
  if (src == dst) {
    route.path = {src};
    route.cost = 0.0;
    return route;
  }
  const std::size_t s = layout_.shard_of[src];
  const std::size_t d = layout_.shard_of[dst];
  if (s == d) {
    if (!append_leg(s, static_cast<std::uint32_t>(src),
                    static_cast<std::uint32_t>(dst), route.path)) {
      return route;
    }
    route.cost = slot_[slot_index(s, static_cast<std::uint32_t>(src),
                                  static_cast<std::uint32_t>(dst))]
                     .cost;
    return route;
  }
  const std::uint32_t gw_s = layout_.gateway[s];
  const std::uint32_t gw_d = layout_.gateway[d];
  // Home leg src -> gateway, the overlay gateway chain, then the
  // destination leg gateway -> dst; junction nodes appear exactly once.
  if (!append_leg(s, static_cast<std::uint32_t>(src), gw_s, route.path)) {
    return route;
  }
  std::vector<std::size_t> chain;  // shard indices d .. s (exclusive)
  std::size_t g = d;
  while (g != s) {
    chain.push_back(g);
    const std::int32_t p = overlay_parent_[s * layout_.shard_count + g];
    if (p < 0) {
      route.path.clear();
      return route;
    }
    g = static_cast<std::size_t>(p);
  }
  for (std::size_t i = chain.size(); i-- > 0;) {
    route.path.push_back(layout_.gateway[chain[i]]);
  }
  if (gw_d != dst) {
    std::vector<std::size_t> leg;
    if (!append_leg(d, gw_d, static_cast<std::uint32_t>(dst), leg)) {
      route.path.clear();
      return route;
    }
    route.path.insert(route.path.end(), leg.begin() + 1, leg.end());
  }
  const double c_home =
      src == gw_s
          ? 0.0
          : slot_[slot_index(s, static_cast<std::uint32_t>(src), gw_s)].cost;
  const double c_over = overlay_cost_[s * layout_.shard_count + d];
  const double c_dst =
      dst == gw_d
          ? 0.0
          : slot_[slot_index(d, gw_d, static_cast<std::uint32_t>(dst))].cost;
  if (c_home == kInfiniteCost || c_over == kInfiniteCost ||
      c_dst == kInfiniteCost) {
    route.path.clear();
    return route;
  }
  route.cost = std::max(c_home, std::max(c_over, c_dst));
  return route;
}

}  // namespace lsl::sched
