// Immutable, epoch-versioned route snapshot: the read side of the
// RouteService's RCU scheme.
//
// A snapshot freezes every shard's MMP trees into flat, contiguous arrays
// (per-source parent / minimax-cost / first-hop tables in one allocation
// per kind, indexed arithmetically) plus a small gateway-overlay table for
// inter-shard legs. Answering a route query touches a handful of loads and
// no pointers-to-pointers, which is what lets lookup_batch stream millions
// of queries per second straight out of cache. Once published a snapshot
// never mutates; readers that still hold a shared_ptr to an old epoch keep
// a consistent view until they drop it.
//
// Single-shard snapshots reproduce the owning Scheduler's decisions
// exactly (same trees, same parents, same costs), which is what the
// route-service determinism smoke in CI pins.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "sched/cost_matrix.hpp"
#include "sched/shard.hpp"

namespace lsl::sched {

class Scheduler;

/// One route question: global host ids.
struct RouteQuery {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

constexpr std::uint32_t kNoRoute = std::numeric_limits<std::uint32_t>::max();

/// One route answer, sized for bulk in-cache production (16 bytes).
struct RouteAnswer {
  /// Minimax cost of the served path (kInfiniteCost when unreachable).
  double cost = kInfiniteCost;
  /// First hop from src toward dst (kNoRoute when unreachable; == dst when
  /// the route is the direct edge).
  std::uint32_t next_hop = kNoRoute;
  /// True when the served route relays through at least one depot.
  std::uint32_t relayed = 0;
};

/// A fully resolved decision (control-plane shape, allocates the path).
struct ResolvedRoute {
  /// Node path src..dst; empty when unreachable.
  std::vector<std::size_t> path;
  double cost = kInfiniteCost;

  [[nodiscard]] bool uses_depots() const { return path.size() > 2; }
};

class RouteSnapshot {
 public:
  /// Freeze the per-shard schedulers' current trees (plus the gateway
  /// overlay derived from `matrix`) into a new snapshot tagged `epoch`.
  /// `shards[s]` must schedule exactly layout.shard_size(s) hosts, in
  /// member order; `epsilon` is the overlay tree's edge-equivalence margin
  /// (the same value the shard schedulers damp with).
  [[nodiscard]] static std::shared_ptr<const RouteSnapshot> build(
      const ShardLayout& layout,
      std::span<const std::unique_ptr<Scheduler>> shards,
      const CostMatrix& matrix, double epsilon, std::uint64_t epoch);

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t host_count() const { return layout_.host_count; }
  [[nodiscard]] const ShardLayout& layout() const { return layout_; }

  /// Answer one query from the flat tables (no allocation, no locks).
  [[nodiscard]] RouteAnswer lookup(const RouteQuery& query) const;

  /// Answer queries[i] into answers[i] for every i. One pass, same tables.
  void lookup_batch(std::span<const RouteQuery> queries,
                    std::span<RouteAnswer> answers) const;

  /// Materialize the full node path for (src, dst). Single-shard snapshots
  /// return exactly Scheduler::route's path; inter-shard paths are the
  /// src -> home-gateway -> ... -> dst-gateway -> dst composition.
  [[nodiscard]] ResolvedRoute resolve(std::size_t src, std::size_t dst) const;

 private:
  RouteSnapshot() = default;

  /// Flat index of the (a -> b) cell of shard s (both global ids).
  [[nodiscard]] std::size_t slot_index(std::size_t s, std::uint32_t a,
                                       std::uint32_t b) const {
    return block_offset_[s] +
           layout_.local_index[a] * layout_.shard_size(s) +
           layout_.local_index[b];
  }
  /// Pull the query's (up to two) shard-block cells toward cache before
  /// the answer pass; the batch loop runs this a chunk ahead.
  void prefetch(const RouteQuery& query) const;
  /// Append the intra-shard tree path a..b (global ids) to `out`; returns
  /// false when unreachable. Skips the leading `a` when out is non-empty.
  bool append_leg(std::size_t s, std::uint32_t a, std::uint32_t b,
                  std::vector<std::size_t>& out) const;

  /// One (source, destination) cell of a shard block: minimax cost, first
  /// hop (global id, kNoRoute unreachable), and MMP parent (local id, -1
  /// unreachable). Packed to 16 bytes so a lookup's cost + next-hop reads
  /// land in one cache line.
  struct Slot {
    double cost = kInfiniteCost;
    std::uint32_t first_hop = kNoRoute;
    std::int32_t parent = -1;
  };
  static_assert(sizeof(Slot) == 16);

  std::uint64_t epoch_ = 0;
  ShardLayout layout_;
  /// Per-shard n_s x n_s Slot blocks at block_offset_[s], row-major by
  /// local source index.
  std::vector<std::size_t> block_offset_;
  std::vector<Slot> slot_;
  /// Gateway overlay, S x S row-major by source shard: minimax cost over
  /// the gateway graph, the MMP parent (shard index, -1 unreachable), and
  /// the first gateway hop (shard index, -1 unreachable).
  std::vector<double> overlay_cost_;
  std::vector<std::int32_t> overlay_parent_;
  std::vector<std::int32_t> overlay_first_;
};

}  // namespace lsl::sched
