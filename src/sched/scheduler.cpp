#include "sched/scheduler.hpp"

#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace lsl::sched {

SchedMetrics* SchedMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local SchedMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.trees_built = &reg.counter("sched.mmp.trees_built");
    metrics.epsilon_collapses = &reg.counter("sched.mmp.epsilon_collapses");
    metrics.route_decisions = &reg.counter("sched.mmp.route_decisions");
    metrics.relays_chosen = &reg.counter("sched.mmp.relays_chosen");
    metrics.reroutes = &reg.counter("sched.mmp.reroutes");
    metrics.tree_build_us = &reg.histogram(
        "sched.mmp.tree_build_us", obs::exponential_buckets(1.0, 4.0, 10));
  }
  return &metrics;
}

Scheduler::Scheduler(CostMatrix matrix, SchedulerOptions options)
    : matrix_(std::move(matrix)),
      options_(std::move(options)),
      trees_(matrix_.size()),
      metrics_(SchedMetrics::get()) {
  LSL_ASSERT(options_.host_costs.empty() ||
             options_.host_costs.size() == matrix_.size());
}

const MmpTree& Scheduler::tree_from(std::size_t src) const {
  LSL_ASSERT(src < trees_.size());
  if (!trees_[src].has_value()) {
    MmpOptions mmp;
    mmp.epsilon = options_.epsilon;
    mmp.node_costs = options_.host_costs;
    const auto t0 = std::chrono::steady_clock::now();
    trees_[src] = build_mmp_tree(matrix_, src, mmp);
    if (metrics_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      metrics_->trees_built->inc();
      metrics_->epsilon_collapses->inc(trees_[src]->epsilon_collapses);
      metrics_->tree_build_us->observe(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
  return *trees_[src];
}

std::vector<net::NodeId> Scheduler::Decision::via() const {
  std::vector<net::NodeId> hops;
  if (path.size() > 2) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      hops.push_back(static_cast<net::NodeId>(path[i]));
    }
  }
  return hops;
}

Scheduler::Decision Scheduler::route(std::size_t src, std::size_t dst) const {
  LSL_ASSERT(src < matrix_.size() && dst < matrix_.size());
  Decision decision;
  decision.direct_cost = matrix_.cost(src, dst);
  const MmpTree& tree = tree_from(src);
  decision.path = tree.path_to(dst);
  if (!decision.path.empty()) {
    decision.scheduled_cost = tree.cost[dst];
  }
  if (metrics_ != nullptr) {
    metrics_->route_decisions->inc();
    if (decision.uses_depots()) {
      metrics_->relays_chosen->inc();
    }
  }
  return decision;
}

Scheduler::Decision Scheduler::route_avoiding(
    std::size_t src, std::size_t dst,
    const std::vector<std::size_t>& excluded) const {
  LSL_ASSERT(src < matrix_.size() && dst < matrix_.size());
  if (excluded.empty()) {
    return route(src, dst);
  }
  CostMatrix pruned = matrix_;
  for (const std::size_t node : excluded) {
    if (node < pruned.size() && node != src && node != dst) {
      pruned.exclude_node(node);
    }
  }
  MmpOptions mmp;
  mmp.epsilon = options_.epsilon;
  mmp.node_costs = options_.host_costs;
  const MmpTree tree = build_mmp_tree(pruned, src, mmp);
  Decision decision;
  decision.direct_cost = pruned.cost(src, dst);
  decision.path = tree.path_to(dst);
  if (!decision.path.empty()) {
    decision.scheduled_cost = tree.cost[dst];
  }
  if (metrics_ != nullptr) {
    metrics_->route_decisions->inc();
    metrics_->reroutes->inc();
    if (decision.uses_depots()) {
      metrics_->relays_chosen->inc();
    }
  }
  return decision;
}

session::RouteTable Scheduler::route_table_for(std::size_t node) const {
  const MmpTree& tree = tree_from(node);
  session::RouteTable table;
  for (std::size_t dst = 0; dst < matrix_.size(); ++dst) {
    if (dst == node) {
      continue;
    }
    const auto path = tree.path_to(dst);
    if (path.size() >= 2) {
      table.set(static_cast<net::NodeId>(dst),
                static_cast<net::NodeId>(path[1]));
    }
  }
  return table;
}

double Scheduler::fraction_scheduled() const {
  const std::size_t n = matrix_.size();
  if (n < 2) {
    return 0.0;
  }
  std::size_t scheduled = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) {
        continue;
      }
      ++total;
      if (route(s, t).uses_depots()) {
        ++scheduled;
      }
    }
  }
  return static_cast<double>(scheduled) / static_cast<double>(total);
}

}  // namespace lsl::sched
