#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace lsl::sched {

SchedMetrics* SchedMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid (parallel trials swap the
  // thread's registry via obs::ScopedRegistry).
  thread_local SchedMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.trees_built = &reg.counter("sched.mmp.trees_built");
    metrics.tree_repairs = &reg.counter("sched.mmp.tree_repairs");
    metrics.repair_fallbacks = &reg.counter("sched.mmp.repair_fallbacks");
    metrics.epsilon_collapses = &reg.counter("sched.mmp.epsilon_collapses");
    metrics.route_decisions = &reg.counter("sched.mmp.route_decisions");
    metrics.relays_chosen = &reg.counter("sched.mmp.relays_chosen");
    metrics.reroutes = &reg.counter("sched.mmp.reroutes");
    metrics.tree_build_us = &reg.histogram(
        "sched.mmp.tree_build_us", obs::exponential_buckets(1.0, 4.0, 10));
    metrics.rs_snapshot_swaps =
        &reg.counter("sched.route_service.snapshot_swaps");
    metrics.rs_lookups = &reg.counter("sched.route_service.lookups");
    metrics.rs_stale_epochs = &reg.counter("sched.route_service.stale_epochs");
    metrics.rs_epoch = &reg.gauge("sched.route_service.epoch");
    metrics.rs_epoch_age_ticks =
        &reg.gauge("sched.route_service.epoch_age_ticks");
    metrics.rs_batch_size = &reg.histogram(
        "sched.route_service.batch_size", obs::exponential_buckets(1.0, 2.0, 12));
  }
  return &metrics;
}

Scheduler::Scheduler(CostMatrix matrix, SchedulerOptions options)
    : matrix_(std::move(matrix)),
      options_(std::move(options)),
      trees_(matrix_.size()),
      tree_once_(std::make_unique<std::once_flag[]>(matrix_.size())),
      tree_gen_(std::make_unique<std::atomic<std::uint64_t>[]>(
          matrix_.size())) {
  LSL_ASSERT(options_.host_costs.empty() ||
             options_.host_costs.size() == matrix_.size());
  // The construction-time set_cost churn predates every cached tree;
  // nobody will repair across it.
  matrix_.compact_changes(matrix_.generation());
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    tree_gen_[i].store(matrix_.generation(), std::memory_order_relaxed);
  }
}

MmpOptions Scheduler::mmp_options() const {
  MmpOptions mmp;
  mmp.epsilon = options_.epsilon;
  mmp.node_costs = options_.host_costs;
  return mmp;
}

Scheduler::SlotOutcome Scheduler::refresh_slot(std::size_t src) const {
  const std::uint64_t gen = matrix_.generation();
  SlotOutcome out;
  if (!trees_[src].has_value()) {
    trees_[src] = build_mmp_tree(matrix_, src, mmp_options());
    out.kind = SlotOutcome::kBuilt;
  } else {
    const std::uint64_t have =
        tree_gen_[src].load(std::memory_order_relaxed);
    if (have == gen) {
      return out;  // kUntouched
    }
    if (matrix_.changes_tracked_since(have)) {
      const auto result = repair_mmp_tree(
          *trees_[src], matrix_, matrix_.changes_since(have), mmp_options());
      out.kind = result.repaired ? SlotOutcome::kRepaired
                                 : SlotOutcome::kRebuilt;
    } else {
      // The change log overflowed since this tree last caught up.
      trees_[src] = build_mmp_tree(matrix_, src, mmp_options());
      out.kind = SlotOutcome::kRebuilt;
    }
  }
  out.collapses = trees_[src]->epsilon_collapses;
  tree_gen_[src].store(gen, std::memory_order_release);
  return out;
}

void Scheduler::refresh_slot_with_metrics(std::size_t src) const {
  SchedMetrics* m = SchedMetrics::get();
  if (m == nullptr) {
    (void)refresh_slot(src);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const SlotOutcome out = refresh_slot(src);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  switch (out.kind) {
    case SlotOutcome::kUntouched:
      break;
    case SlotOutcome::kRebuilt:
      m->repair_fallbacks->inc();
      [[fallthrough]];
    case SlotOutcome::kBuilt:
      m->trees_built->inc();
      m->epsilon_collapses->inc(out.collapses);
      m->tree_build_us->observe(
          std::chrono::duration<double, std::micro>(elapsed).count());
      break;
    case SlotOutcome::kRepaired:
      m->tree_repairs->inc();
      break;
  }
}

const MmpTree& Scheduler::tree_from(std::size_t src) const {
  LSL_ASSERT(src < trees_.size());
  // First build: thread-safe lazy init, so a shared const Scheduler can be
  // routed from trial workers (the old optional-through-const cache raced).
  std::call_once(tree_once_[src], [&] { refresh_slot_with_metrics(src); });
  // Stale after a topology update: repair under the refresh lock. The
  // acquire load pairs with refresh_slot's release store, so a reader that
  // observes the current generation also observes the repaired tree.
  if (tree_gen_[src].load(std::memory_order_acquire) !=
      matrix_.generation()) {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    if (tree_gen_[src].load(std::memory_order_relaxed) !=
        matrix_.generation()) {
      refresh_slot_with_metrics(src);
    }
  }
  return *trees_[src];
}

std::vector<net::NodeId> Scheduler::Decision::via() const {
  std::vector<net::NodeId> hops;
  if (path.size() > 2) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      hops.push_back(static_cast<net::NodeId>(path[i]));
    }
  }
  return hops;
}

Scheduler::Decision Scheduler::route(std::size_t src, std::size_t dst) const {
  LSL_ASSERT(src < matrix_.size() && dst < matrix_.size());
  Decision decision;
  decision.direct_cost = matrix_.cost(src, dst);
  const MmpTree& tree = tree_from(src);
  decision.path = tree.path_to(dst);
  if (!decision.path.empty()) {
    decision.scheduled_cost = tree.cost[dst];
  }
  if (SchedMetrics* m = SchedMetrics::get(); m != nullptr) {
    m->route_decisions->inc();
    if (decision.uses_depots()) {
      m->relays_chosen->inc();
    }
  }
  return decision;
}

Scheduler::Decision Scheduler::route_avoiding(
    std::size_t src, std::size_t dst,
    const std::vector<std::size_t>& excluded) const {
  LSL_ASSERT(src < matrix_.size() && dst < matrix_.size());
  if (excluded.empty()) {
    return route(src, dst);
  }
  const std::size_t n = matrix_.size();
  // Exclusion overlay, reused across calls: no n x n matrix copy and no
  // steady-state allocation per reroute.
  thread_local std::vector<std::uint8_t> mask;
  thread_local std::vector<CostChange> changes;
  mask.assign(n, 0);
  changes.clear();
  for (const std::size_t node : excluded) {
    if (node < n && node != src && node != dst && mask[node] == 0) {
      mask[node] = 1;
      CostChange change;
      change.from = static_cast<std::uint32_t>(node);
      change.to = static_cast<std::uint32_t>(node);
      change.node_excluded = true;
      changes.push_back(change);
    }
  }
  const MmpTree* tree = &tree_from(src);
  MmpTree patched;
  if (!changes.empty()) {
    // Copy the cached tree (O(n)) and re-settle just the subtrees hanging
    // off the excluded nodes. At epsilon > 0 the repair falls back to a
    // masked from-scratch build (exclusions are not replay-exact there) --
    // still no second matrix, just an O(n^2) relaxation pass.
    patched = *tree;
    MmpOptions mmp = mmp_options();
    mmp.excluded = mask;
    (void)repair_mmp_tree(patched, matrix_, changes, mmp);
    tree = &patched;
  }
  Decision decision;
  decision.direct_cost = matrix_.cost(src, dst);
  decision.path = tree->path_to(dst);
  if (!decision.path.empty()) {
    decision.scheduled_cost = tree->cost[dst];
  }
  if (SchedMetrics* m = SchedMetrics::get(); m != nullptr) {
    m->route_decisions->inc();
    m->reroutes->inc();
    if (decision.uses_depots()) {
      m->relays_chosen->inc();
    }
  }
  return decision;
}

session::RouteTable Scheduler::route_table_for(std::size_t node) const {
  const MmpTree& tree = tree_from(node);
  session::RouteTable table;
  for (std::size_t dst = 0; dst < matrix_.size(); ++dst) {
    if (dst == node) {
      continue;
    }
    const auto path = tree.path_to(dst);
    if (path.size() >= 2) {
      table.set(static_cast<net::NodeId>(dst),
                static_cast<net::NodeId>(path[1]));
    }
  }
  return table;
}

double Scheduler::fraction_scheduled() const {
  const std::size_t n = matrix_.size();
  if (n < 2) {
    return 0.0;
  }
  std::size_t scheduled = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) {
        continue;
      }
      ++total;
      if (route(s, t).uses_depots()) {
        ++scheduled;
      }
    }
  }
  return static_cast<double>(scheduled) / static_cast<double>(total);
}

void Scheduler::compact_change_log() {
  std::uint64_t min_gen = matrix_.generation();
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    if (trees_[i].has_value()) {
      min_gen = std::min(min_gen,
                         tree_gen_[i].load(std::memory_order_relaxed));
    }
  }
  matrix_.compact_changes(min_gen);
}

void Scheduler::set_cost(std::size_t i, std::size_t j, double cost) {
  matrix_.set_cost(i, j, cost);
  compact_change_log();
}

void Scheduler::exclude_node(std::size_t node) {
  matrix_.exclude_node(node);
  compact_change_log();
}

std::size_t Scheduler::apply_matrix(const CostMatrix& fresh) {
  LSL_ASSERT_MSG(fresh.size() == matrix_.size(),
                 "apply_matrix needs a same-size matrix");
  const std::size_t n = matrix_.size();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* want = fresh.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      // inf == inf compares equal, so untouched absent edges are skipped.
      if (matrix_.row(i)[j] != want[j]) {
        matrix_.set_cost(i, j, want[j]);
        ++changed;
      }
    }
  }
  compact_change_log();
  return changed;
}

void Scheduler::prebuild_trees(ThreadPool& pool,
                               std::span<const std::size_t> sources) {
  const std::size_t n = trees_.size();
  // Deduplicated worklist: the first build is once-guarded, but a stale
  // slot's repair needs exactly one owner.
  std::vector<std::size_t> work;
  if (sources.empty()) {
    work.resize(n);
    std::iota(work.begin(), work.end(), std::size_t{0});
  } else {
    std::vector<std::uint8_t> seen(n, 0);
    work.reserve(sources.size());
    for (const std::size_t src : sources) {
      if (src < n && seen[src] == 0) {
        seen[src] = 1;
        work.push_back(src);
      }
    }
  }
  // Workers touch disjoint slots and no shared instruments; metrics are
  // accounted afterwards in slot order so the totals are identical for any
  // job count (the per-build wall-clock histogram is deliberately skipped:
  // it could never be deterministic across workers).
  std::vector<SlotOutcome> outcomes(work.size());
  std::atomic<std::size_t> cursor{0};
  pool.run_on_all([&](std::size_t) {
    while (true) {
      const std::size_t w = cursor.fetch_add(1, std::memory_order_relaxed);
      if (w >= work.size()) {
        return;
      }
      const std::size_t src = work[w];
      bool first_build = false;
      std::call_once(tree_once_[src], [&] {
        outcomes[w] = refresh_slot(src);
        first_build = true;
      });
      if (!first_build &&
          tree_gen_[src].load(std::memory_order_relaxed) !=
              matrix_.generation()) {
        outcomes[w] = refresh_slot(src);
      }
    }
  });
  if (SchedMetrics* m = SchedMetrics::get(); m != nullptr) {
    for (const SlotOutcome& out : outcomes) {
      switch (out.kind) {
        case SlotOutcome::kUntouched:
          break;
        case SlotOutcome::kRebuilt:
          m->repair_fallbacks->inc();
          [[fallthrough]];
        case SlotOutcome::kBuilt:
          m->trees_built->inc();
          m->epsilon_collapses->inc(out.collapses);
          break;
        case SlotOutcome::kRepaired:
          m->tree_repairs->inc();
          break;
      }
    }
  }
}

void Scheduler::prebuild_trees(std::size_t jobs,
                               std::span<const std::size_t> sources) {
  const std::size_t want = jobs == 0 ? ThreadPool::default_jobs() : jobs;
  ThreadPool pool(want - 1);
  prebuild_trees(pool, sources);
}

}  // namespace lsl::sched
