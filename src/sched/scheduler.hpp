// The LSL scheduler: turns a (noisy, forecast-derived) performance matrix
// into logistical forwarding decisions.
//
// For each source it builds an epsilon-damped MMP tree (paper section 4) and
// walks it per destination. A decision "uses depots" when the chosen path
// has intermediate nodes; such paths are handed to sources as loose source
// routes, or reduced to destination/next-hop route tables for hop-by-hop
// forwarding at depots (section 4.2).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "lsl/route_table.hpp"
#include "obs/metrics.hpp"
#include "sched/cost_matrix.hpp"
#include "sched/minimax.hpp"

namespace lsl::sched {

/// Process-wide scheduler instruments in the global metrics registry.
struct SchedMetrics {
  obs::Counter* trees_built;       ///< sched.mmp.trees_built
  obs::Counter* epsilon_collapses; ///< sched.mmp.epsilon_collapses
  obs::Counter* route_decisions;   ///< sched.mmp.route_decisions
  obs::Counter* relays_chosen;     ///< sched.mmp.relays_chosen
  obs::Counter* reroutes;          ///< sched.mmp.reroutes (blacklist repairs)
  obs::Histogram* tree_build_us;   ///< sched.mmp.tree_build_us (wall clock)

  /// nullptr while obs::metrics_enabled() is false.
  static SchedMetrics* get();
};

struct SchedulerOptions {
  /// Edge-equivalence margin. The paper computed epsilon as 10% of the edge
  /// value and notes clusters coalesced around 10%.
  double epsilon = 0.10;
  /// Host-throughput extension: per-node traversal costs (empty = off).
  std::vector<double> host_costs;
};

class Scheduler {
 public:
  Scheduler(CostMatrix matrix, SchedulerOptions options = {});

  struct Decision {
    /// Full node path source..destination (empty when unreachable).
    std::vector<std::size_t> path;
    /// Minimax cost of the scheduled path and of the direct edge.
    double scheduled_cost = kInfiniteCost;
    double direct_cost = kInfiniteCost;

    [[nodiscard]] bool uses_depots() const { return path.size() > 2; }
    /// Intermediate hops, as a loose source route.
    [[nodiscard]] std::vector<net::NodeId> via() const;
  };

  [[nodiscard]] Decision route(std::size_t src, std::size_t dst) const;

  /// Route with the given nodes blacklisted (failed depots): their edges are
  /// made infinite and a fresh uncached MMP tree is built, so the decision
  /// degrades gracefully to the direct path -- or to an empty path when the
  /// destination itself is excluded/unreachable.
  [[nodiscard]] Decision route_avoiding(
      std::size_t src, std::size_t dst,
      const std::vector<std::size_t>& excluded) const;

  /// The full MMP tree rooted at `src` (cached).
  [[nodiscard]] const MmpTree& tree_from(std::size_t src) const;

  /// Destination -> next-hop table for hop-by-hop forwarding at `node`,
  /// built from the node's own tree.
  [[nodiscard]] session::RouteTable route_table_for(std::size_t node) const;

  /// Fraction of ordered (src, dst) pairs routed through at least one depot
  /// (the paper reports 26% on its PlanetLab pool).
  [[nodiscard]] double fraction_scheduled() const;

  [[nodiscard]] const CostMatrix& matrix() const { return matrix_; }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  CostMatrix matrix_;
  SchedulerOptions options_;
  mutable std::vector<std::optional<MmpTree>> trees_;
  SchedMetrics* metrics_ = nullptr;  ///< shared instruments (may be null)
};

}  // namespace lsl::sched
