// The LSL scheduler: turns a (noisy, forecast-derived) performance matrix
// into logistical forwarding decisions.
//
// For each source it builds an epsilon-damped MMP tree (paper section 4) and
// walks it per destination. A decision "uses depots" when the chosen path
// has intermediate nodes; such paths are handed to sources as loose source
// routes, or reduced to destination/next-hop route tables for hop-by-hop
// forwarding at depots (section 4.2).
//
// Concurrency contract: every const member is safe to call from any number
// of threads at once (the lazy tree cache is built under per-slot
// once-flags and refreshed under a mutex). The mutating topology updates
// (set_cost / exclude_node / apply_matrix / prebuild_trees) require
// exclusive access -- no concurrent readers.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "lsl/route_table.hpp"
#include "obs/metrics.hpp"
#include "sched/cost_matrix.hpp"
#include "sched/minimax.hpp"

namespace lsl {
class ThreadPool;
}

namespace lsl::sched {

/// Process-wide scheduler instruments in the global metrics registry.
struct SchedMetrics {
  obs::Counter* trees_built;       ///< sched.mmp.trees_built
  obs::Counter* tree_repairs;      ///< sched.mmp.tree_repairs (incremental)
  obs::Counter* repair_fallbacks;  ///< sched.mmp.repair_fallbacks
  obs::Counter* epsilon_collapses; ///< sched.mmp.epsilon_collapses
  obs::Counter* route_decisions;   ///< sched.mmp.route_decisions
  obs::Counter* relays_chosen;     ///< sched.mmp.relays_chosen
  obs::Counter* reroutes;          ///< sched.mmp.reroutes (blacklist repairs)
  obs::Histogram* tree_build_us;   ///< sched.mmp.tree_build_us (wall clock)

  // Route-service instruments (readers touch these through their own
  // thread's registry; see obs::ScopedRegistry).
  obs::Counter* rs_snapshot_swaps;  ///< sched.route_service.snapshot_swaps
  obs::Counter* rs_lookups;         ///< sched.route_service.lookups
  obs::Counter* rs_stale_epochs;    ///< sched.route_service.stale_epochs
  obs::Gauge* rs_epoch;             ///< sched.route_service.epoch
  obs::Gauge* rs_epoch_age_ticks;   ///< sched.route_service.epoch_age_ticks
  obs::Histogram* rs_batch_size;    ///< sched.route_service.batch_size

  /// nullptr while obs::metrics_enabled() is false.
  static SchedMetrics* get();
};

struct SchedulerOptions {
  /// Edge-equivalence margin. The paper computed epsilon as 10% of the edge
  /// value and notes clusters coalesced around 10%.
  double epsilon = 0.10;
  /// Host-throughput extension: per-node traversal costs (empty = off).
  std::vector<double> host_costs;
};

class Scheduler {
 public:
  Scheduler(CostMatrix matrix, SchedulerOptions options = {});
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  struct Decision {
    /// Full node path source..destination (empty when unreachable).
    std::vector<std::size_t> path;
    /// Minimax cost of the scheduled path and of the direct edge.
    double scheduled_cost = kInfiniteCost;
    double direct_cost = kInfiniteCost;

    [[nodiscard]] bool uses_depots() const { return path.size() > 2; }
    /// Intermediate hops, as a loose source route.
    [[nodiscard]] std::vector<net::NodeId> via() const;
  };

  [[nodiscard]] Decision route(std::size_t src, std::size_t dst) const;

  /// Route with the given nodes blacklisted (failed depots). The exclusions
  /// are applied as a bitmask overlay on the source's cached tree -- no
  /// matrix copy -- and only the affected subtrees are re-settled, so a
  /// recovery reroute costs O(n * affected) instead of O(n^2) + an n x n
  /// allocation. The decision degrades gracefully to the direct path -- or
  /// to an empty path when the destination itself is excluded/unreachable.
  [[nodiscard]] Decision route_avoiding(
      std::size_t src, std::size_t dst,
      const std::vector<std::size_t>& excluded) const;

  /// The full MMP tree rooted at `src` (cached; built on first use and
  /// incrementally repaired after topology updates).
  [[nodiscard]] const MmpTree& tree_from(std::size_t src) const;

  /// Destination -> next-hop table for hop-by-hop forwarding at `node`,
  /// built from the node's own tree.
  [[nodiscard]] session::RouteTable route_table_for(std::size_t node) const;

  /// Fraction of ordered (src, dst) pairs routed through at least one depot
  /// (the paper reports 26% on its PlanetLab pool).
  [[nodiscard]] double fraction_scheduled() const;

  // ---- in-place topology updates (exclusive access required) ---------------

  /// Update one directed edge; cached trees repair lazily on next use.
  void set_cost(std::size_t i, std::size_t j, double cost);

  /// Blacklist `node`: every edge to or from it becomes infinite. Cached
  /// trees repair by re-settling just the node's subtrees (epsilon == 0)
  /// or rebuild on next use (epsilon > 0; see repair_mmp_tree).
  void exclude_node(std::size_t node);

  /// Diff-apply a freshly measured matrix of the same size: set_cost on
  /// every changed directed edge (the periodic rescheduler's drift path).
  /// Returns the number of changed edges.
  std::size_t apply_matrix(const CostMatrix& fresh);

  /// Build or refresh the trees for every source (or just `sources`) up
  /// front on `jobs` worker threads (0 = one per hardware thread). Each
  /// source's tree depends only on the shared matrix, so the result is
  /// identical for any job count; see docs/performance.md. After this, a
  /// shared `const Scheduler` serves route()/tree_from() from workers with
  /// no cache mutation at all.
  void prebuild_trees(std::size_t jobs = 0,
                      std::span<const std::size_t> sources = {});
  /// Same, on an existing pool.
  void prebuild_trees(ThreadPool& pool,
                      std::span<const std::size_t> sources = {});

  [[nodiscard]] const CostMatrix& matrix() const { return matrix_; }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  struct SlotOutcome {
    enum Kind : std::uint8_t { kUntouched, kBuilt, kRepaired, kRebuilt };
    Kind kind = kUntouched;
    std::uint64_t collapses = 0;  ///< tree's collapse count after the work
  };

  [[nodiscard]] MmpOptions mmp_options() const;
  /// Build (first use) or repair (stale) slot `src`. Not thread-safe per
  /// slot; callers serialize per-slot access. Touches no metrics.
  SlotOutcome refresh_slot(std::size_t src) const;
  /// Serial path: refresh + account metrics (tree_from's fast path).
  void refresh_slot_with_metrics(std::size_t src) const;
  void compact_change_log();

  CostMatrix matrix_;
  SchedulerOptions options_;
  mutable std::vector<std::optional<MmpTree>> trees_;
  /// First build of each slot (thread-safe lazy init through const).
  mutable std::unique_ptr<std::once_flag[]> tree_once_;
  /// Matrix generation each cached tree reflects; readers revalidate with
  /// acquire loads and repair stale slots under refresh_mutex_.
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> tree_gen_;
  mutable std::mutex refresh_mutex_;
};

}  // namespace lsl::sched
