#include "sched/shard.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::sched {

ShardLayout ShardLayout::build(const CostMatrix& matrix, std::size_t shards) {
  const std::size_t n = matrix.size();
  LSL_ASSERT_MSG(n > 0, "cannot shard an empty pool");
  const std::size_t count = std::max<std::size_t>(1, std::min(shards, n));

  ShardLayout layout;
  layout.host_count = n;
  layout.shard_count = count;
  layout.shard_of.resize(n);
  layout.local_index.resize(n);
  layout.members.reserve(n);
  layout.member_offset.resize(count + 1, 0);
  layout.gateway.resize(count);

  // Contiguous blocks: shard s covers [s * n / count, (s + 1) * n / count).
  // Every shard gets floor(n / count) or one more; no shard is empty.
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t lo = s * n / count;
    const std::size_t hi = (s + 1) * n / count;
    layout.member_offset[s] = static_cast<std::uint32_t>(lo);
    for (std::size_t h = lo; h < hi; ++h) {
      layout.shard_of[h] = static_cast<std::uint32_t>(s);
      layout.local_index[h] = static_cast<std::uint32_t>(h - lo);
      layout.members.push_back(static_cast<std::uint32_t>(h));
    }
  }
  layout.member_offset[count] = static_cast<std::uint32_t>(n);

  // Gateway election: the member with the lowest mean finite direct cost to
  // the whole pool (both directions), i.e. the shard's best-connected host.
  // Hosts with no finite edges at all lose to anyone with connectivity;
  // ties break to the lowest host id, so the choice is deterministic.
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t lo = layout.member_offset[s];
    const std::size_t hi = layout.member_offset[s + 1];
    std::size_t best = lo;
    double best_mean = kInfiniteCost;
    for (std::size_t h = lo; h < hi; ++h) {
      double sum = 0.0;
      std::size_t finite = 0;
      const double* out = matrix.row(h);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == h) {
          continue;
        }
        if (out[j] != kInfiniteCost) {
          sum += out[j];
          ++finite;
        }
        const double in = matrix.cost(j, h);
        if (in != kInfiniteCost) {
          sum += in;
          ++finite;
        }
      }
      const double mean =
          finite > 0 ? sum / static_cast<double>(finite) : kInfiniteCost;
      if (mean < best_mean) {
        best_mean = mean;
        best = h;
      }
    }
    layout.gateway[s] = static_cast<std::uint32_t>(best);
  }
  return layout;
}

}  // namespace lsl::sched
