// Host-pool sharding for the route service.
//
// A ShardLayout partitions the host pool into `shard_count` contiguous,
// near-equal index blocks. Each shard elects one *gateway depot* -- the
// best-connected member host -- and inter-shard routes are composed as
//   src -> home-shard gateway -> dst-shard gateway -> dst,
// with the middle leg routed over a small gateway-overlay graph. The
// layout is a pure function of (matrix, shard_count), so every consumer
// (writer rebuilding snapshots, readers resolving routes, tests) derives
// the identical partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/cost_matrix.hpp"

namespace lsl::sched {

struct ShardLayout {
  std::size_t host_count = 0;
  std::size_t shard_count = 0;
  /// host -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// host -> index within its shard's member list.
  std::vector<std::uint32_t> local_index;
  /// Flattened member lists: shard s owns global host ids
  /// members[member_offset[s] .. member_offset[s + 1]).
  std::vector<std::uint32_t> members;
  std::vector<std::uint32_t> member_offset;  ///< shard_count + 1 entries
  /// shard -> global host id of its gateway depot.
  std::vector<std::uint32_t> gateway;

  [[nodiscard]] std::size_t shard_size(std::size_t s) const {
    return member_offset[s + 1] - member_offset[s];
  }
  [[nodiscard]] const std::uint32_t* shard_members(std::size_t s) const {
    return members.data() + member_offset[s];
  }

  /// Partition `matrix`'s hosts into min(shards, size) contiguous blocks
  /// (block i takes the next ceil/floor share of the index range) and pick
  /// each shard's gateway: the member with the lowest mean finite direct
  /// cost to every other pool host, ties to the lowest host id. Fully
  /// deterministic.
  [[nodiscard]] static ShardLayout build(const CostMatrix& matrix,
                                         std::size_t shards);
};

}  // namespace lsl::sched
