// Move-only callable with small-buffer optimization, the event kernel's
// closure type.
//
// The kernel dispatches tens of millions of one-shot closures per run;
// std::function heap-allocates for anything beyond two pointers of capture
// and drags in RTTI/copyability machinery the kernel never uses. Action
// stores any callable up to kInlineCapacity bytes (48: enough for a
// this-pointer plus several words of capture, and for a std::function being
// wrapped during migration) directly in the object. Trivially-copyable
// callables relocate with memcpy, which keeps heap sift operations cheap;
// everything else goes through a single manager function pointer. Larger
// callables fall back to one heap allocation.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace lsl::sim {

class Action {
 public:
  /// Inline capture capacity in bytes. Chosen so the common kernel closures
  /// (a this-pointer plus a few words, or a moved-in std::function) never
  /// allocate.
  static constexpr std::size_t kInlineCapacity = 48;

  Action() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Action> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  // NOLINTNEXTLINE(bugprone-forwarding-reference-overload)
  Action(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_.inline_bytes)) D(std::forward<F>(f));
      invoke_ = [](Action& self) {
        (*std::launder(
            reinterpret_cast<D*>(self.storage_.inline_bytes)))();
      };
      if constexpr (!(std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>)) {
        manage_ = [](Action* self, Action* dst) {
          D* src = std::launder(
              reinterpret_cast<D*>(self->storage_.inline_bytes));
          if (dst != nullptr) {
            ::new (static_cast<void*>(dst->storage_.inline_bytes))
                D(std::move(*src));
          }
          src->~D();
        };
      }
      // manage_ stays nullptr for trivially-copyable callables: relocation
      // is a memcpy of the storage and destruction is a no-op.
    } else {
      storage_.heap = new D(std::forward<F>(f));
      invoke_ = [](Action& self) {
        (*static_cast<D*>(self.storage_.heap))();
      };
      manage_ = [](Action* self, Action* dst) {
        if (dst != nullptr) {
          dst->storage_.heap = self->storage_.heap;
        } else {
          delete static_cast<D*>(self->storage_.heap);
        }
      };
    }
  }

  Action(Action&& other) noexcept { move_from(other); }

  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  void operator()() { invoke_(*this); }

  /// Destroy the held callable in place (no-op when empty). Lets a caller
  /// that stores Actions in stable slots dispose of one without paying a
  /// move-out.
  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(this, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the held callable lives in the inline buffer (testing hook).
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  using InvokeFn = void (*)(Action&);
  /// Moves the callable into *dst (when non-null) and destroys the source;
  /// with dst == nullptr it only destroys. Null manage_ means the storage is
  /// trivially relocatable and trivially destructible.
  using ManageFn = void (*)(Action* self, Action* dst);

  void move_from(Action& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(&other, this);
    } else {
      std::memcpy(&storage_, &other.storage_, sizeof storage_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  union Storage {
    alignas(std::max_align_t) unsigned char inline_bytes[kInlineCapacity];
    void* heap;
  };

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  Storage storage_;
};

}  // namespace lsl::sim
