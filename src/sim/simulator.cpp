#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lsl::sim {

namespace {

std::int64_t sim_log_clock(void* ctx) {
  return static_cast<const Simulator*>(ctx)->now().ns();
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelProfile

std::string KernelProfile::str() const {
  char buf[256];
  std::string out = "kernel profile:\n";
  std::snprintf(buf, sizeof buf,
                "  events executed    %llu (scheduled %llu, cancelled %llu)\n",
                static_cast<unsigned long long>(events_executed),
                static_cast<unsigned long long>(events_scheduled),
                static_cast<unsigned long long>(events_cancelled));
  out += buf;
  std::snprintf(buf, sizeof buf, "  queue high water   %llu\n",
                static_cast<unsigned long long>(queue_high_water));
  out += buf;
  std::snprintf(buf, sizeof buf, "  simulated time     %s\n",
                sim_time.str().c_str());
  out += buf;
  if (wall_seconds > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "  dispatch wall time %.3fs (%.1fx real time, %.0f ev/s)\n",
                  wall_seconds, time_ratio(),
                  static_cast<double>(events_executed) / wall_seconds);
    out += buf;
  }
  if (!category_counts.empty()) {
    out += "  events by category:\n";
    for (const auto& [category, count] : category_counts) {
      std::snprintf(buf, sizeof buf, "    %-24s %llu\n", category.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }
  return out;
}

void KernelProfile::export_metrics(obs::Registry& registry) const {
  registry.gauge("sim.kernel.events_executed")
      .set(static_cast<double>(events_executed));
  registry.gauge("sim.kernel.events_scheduled")
      .set(static_cast<double>(events_scheduled));
  registry.gauge("sim.kernel.events_cancelled")
      .set(static_cast<double>(events_cancelled));
  registry.gauge("sim.kernel.queue_high_water")
      .set(static_cast<double>(queue_high_water));
  registry.gauge("sim.kernel.sim_seconds").set(sim_time.to_seconds());
  registry.gauge("sim.kernel.wall_seconds").set(wall_seconds);
  registry.gauge("sim.kernel.time_ratio").set(time_ratio());
}

void KernelProfile::merge_from(const KernelProfile& other) {
  events_scheduled += other.events_scheduled;
  events_executed += other.events_executed;
  events_cancelled += other.events_cancelled;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
  sim_time += other.sim_time;
  wall_seconds += other.wall_seconds;
  std::map<std::string, std::uint64_t> merged;
  for (const auto& [category, count] : category_counts) {
    merged[category] += count;
  }
  for (const auto& [category, count] : other.category_counts) {
    merged[category] += count;
  }
  category_counts.assign(merged.begin(), merged.end());
  std::sort(category_counts.begin(), category_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
}

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator() {
  // Log lines carry the simulated timestamp of the most recently created
  // live simulator on this thread (tests that run several sequentially each
  // take over; parallel trials each own their thread's clock).
  set_log_clock(&sim_log_clock, this);
  // Skip the first few doubling-growth reallocations; ~9 KB per simulator.
  heap_.reserve(256);
  slots_.reserve(256);
  free_slots_.reserve(256);
}

Simulator::~Simulator() { clear_log_clock(this); }

// ---------------------------------------------------------------------------
// 4-ary heap of 24-byte POD keys. Children of i are 4i+1 .. 4i+4. A wider
// node fans the tree out to ~half the depth of a binary heap: pops do more
// comparisons per level but fewer key moves. Sifts use hole insertion (save
// the key, shift, place) rather than pairwise swaps.

void Simulator::heap_push(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void Simulator::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!e.before(heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  // Hole-sink (the libstdc++ __adjust_heap trick): heap_[i] was just
  // replaced by an element from the bottom, which almost always belongs
  // near the bottom again. Sink the hole to a leaf choosing only the
  // smallest child per level (3 comparisons, no early-exit compare against
  // the displaced element), then sift the element up from there (usually a
  // single comparison). Saves a compare per level on the common path.
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  std::size_t hole = i;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) {
      break;
    }
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) {
        best = c;
      }
    }
    __builtin_prefetch(&heap_[std::min(4 * best + 1, n - 1)]);
    heap_[hole] = heap_[best];
    hole = best;
  }
  // Place e and bubble it back up (not past i, where it was heap-ordered).
  while (hole > i) {
    const std::size_t parent = (hole - 1) / 4;
    if (parent < i || !e.before(heap_[parent])) {
      break;
    }
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void Simulator::heap_pop_top() {
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void Simulator::compact_heap() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !entry_live(e); }),
              heap_.end());
  // Floyd heap construction. Pop order is fully determined by the (when,
  // seq) total order, so the internal layout after a rebuild is
  // unobservable.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

// ---------------------------------------------------------------------------

EventId Simulator::schedule_at(SimTime when, Action action,
                               const char* category, std::uint32_t actor) {
  if (choice_hook_ != nullptr && when < now_) {
    // Slack dispatch may have advanced the clock past a time this caller
    // captured before yielding; the event is simply due immediately.
    when = now_;
  }
  LSL_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    LSL_ASSERT_MSG(slot <= kSlotMask, "too many concurrent events");
    slots_.push_back(SlotState{});
    if ((slot >> kActionChunkShift) == action_chunks_.size()) {
      action_chunks_.emplace_back(new Action[kActionChunkSize]);
    }
  }
  const EventId id{(slot + 1) |
                   (static_cast<std::uint64_t>(slots_[slot].gen) << 32U)};
  LSL_ASSERT_MSG(next_seq_ < (1ULL << 40U), "event sequence overflow");
  const std::uint64_t key = (next_seq_++ << kSlotBits) | slot;
  slots_[slot].key = key;
  action_of(slot) = std::move(action);
  heap_push(Entry{when, key});
  ++events_scheduled_;
  ++live_events_;
  if (live_events_ > queue_high_water_) {
    queue_high_water_ = live_events_;
  }
  if (category != nullptr) {
    ++category_counts_[category];
  }
  if (choice_hook_ != nullptr) {
    if (slot_meta_.size() < slots_.size()) {
      slot_meta_.resize(slots_.size());
    }
    slot_meta_[slot] = SlotMeta{category, actor};
  }
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Action action,
                                  const char* category, std::uint32_t actor) {
  LSL_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(action), category, actor);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const std::uint64_t slot = slot_of(id.raw);
  // A slot index never issued, or a generation that has since advanced
  // (the event fired, was cancelled, or the slot was reused), is stale.
  if (slot >= slots_.size() || slots_[slot].gen != gen_of(id.raw)) {
    return false;
  }
  if (slots_[slot].key == dispatching_key_) {
    // The event is firing right now (an action cancelling itself). It has
    // already left the heap and its closure must keep executing; report it
    // as already-run.
    return false;
  }
  retire_slot(slot);
  slots_[slot].key = 0;  // the heap corpse must stop matching
  --live_events_;
  ++events_cancelled_;
  // Move the closure out before destroying it: its destructor may re-enter
  // the kernel (schedule, cancel), and by now the slot is fully retired.
  const Action dead = std::move(action_of(slot));
  // The dead heap key is dropped lazily when it surfaces at the top -- but
  // when corpses outnumber live entries, arm/cancel churn (TCP timers) is
  // accumulating them faster than pops retire them, so compact.
  if (heap_.size() > 64 && heap_.size() > 2 * live_events_) {
    compact_heap();
  }
  return true;
}

bool Simulator::settle_top() {
  while (!heap_.empty()) {
    if (entry_live(heap_.front())) {
      return true;
    }
    heap_pop_top();  // cancelled: generation moved on, drop the corpse
  }
  return false;
}

bool Simulator::step() {
  if (!settle_top()) {
    return false;
  }
  if (choice_hook_ != nullptr) {
    dispatch_choice(SimTime::max());
    return true;
  }
  if (profiling_) {
    const double start = wall_now();
    dispatch_top();
    wall_seconds_ += wall_now() - start;
    return true;
  }
  dispatch_top();
  return true;
}

void Simulator::dispatch_top() {
  const Entry top = heap_.front();
  const std::uint64_t slot = top.key & kSlotMask;
  heap_pop_top();
  LSL_ASSERT(top.when >= now_);
  now_ = top.when;
  ++events_executed_;
  // Invoke in place: chunked storage is pinned, so the reference survives
  // any scheduling the action does (which may grow slots_ / heap_), and the
  // per-event closure move-out is avoided. cancel() treats the in-flight
  // key as already fired, so nothing destroys the closure mid-call.
  Action& action = action_of(slot);
  const std::uint64_t enclosing = dispatching_key_;
  dispatching_key_ = top.key;
  action();
  dispatching_key_ = enclosing;
  // Retire after the call so the action's own slot is not recycled under
  // it. The key can only have stopped matching via a nested run() whose
  // events cancelled this one -- then the cancel already retired the slot.
  if (slots_[slot].key == top.key) {
    retire_slot(slot);
    --live_events_;
    action.reset();
  }
}

// ---------------------------------------------------------------------------
// Choice-hook (model-checking) dispatch. Everything below runs only while a
// hook is installed; the plain dispatch path above is untouched.

void Simulator::set_choice_hook(ChoiceHook* hook, SimTime slack) {
  choice_hook_ = hook;
  choice_slack_ = slack;
  if (hook != nullptr && slot_meta_.size() < slots_.size()) {
    slot_meta_.resize(slots_.size());
  }
}

ReadyEvent Simulator::view_of(const Entry& e) const {
  ReadyEvent view;
  view.seq = e.key >> kSlotBits;
  view.when = e.when;
  const std::uint64_t slot = e.key & kSlotMask;
  if (slot < slot_meta_.size()) {
    view.category = slot_meta_[slot].category;
    view.actor = slot_meta_[slot].actor;
  }
  return view;
}

void Simulator::collect_ready(std::size_t i, SimTime window_end) {
  if (i >= heap_.size() || heap_[i].when > window_end) {
    return;  // the whole subtree is later than the window
  }
  if (entry_live(heap_[i])) {
    ready_entries_.push_back(heap_[i]);
  }
  const std::size_t first_child = 4 * i + 1;
  for (std::size_t c = first_child; c < first_child + 4; ++c) {
    collect_ready(c, window_end);
  }
}

void Simulator::dispatch_choice(SimTime limit) {
  const Entry top = heap_.front();
  SimTime window_end = top.when;
  if (choice_slack_ > SimTime::zero()) {
    window_end = top.when + choice_slack_;
    if (window_end > limit) {
      window_end = limit;
    }
    if (window_end < top.when) {
      window_end = top.when;  // overflow / limit-below-top guard
    }
  }
  ready_entries_.clear();
  collect_ready(0, window_end);
  // The top is live and inside the window, so there is at least one entry.
  std::sort(ready_entries_.begin(), ready_entries_.end(),
            [](const Entry& a, const Entry& b) { return a.before(b); });
  // Bound what the hook sees: beyond ~16 concurrent candidates the branch
  // factor is noise, and later events stay available at the next step.
  constexpr std::size_t kMaxReadySet = 16;
  if (ready_entries_.size() > kMaxReadySet) {
    ready_entries_.resize(kMaxReadySet);
  }
  std::size_t pick = 0;
  if (ready_entries_.size() > 1) {
    ready_view_.clear();
    for (const Entry& e : ready_entries_) {
      ready_view_.push_back(view_of(e));
    }
    pick = choice_hook_->choose(ready_view_);
    LSL_ASSERT_MSG(pick < ready_entries_.size(), "choice out of range");
  }
  const Entry chosen = ready_entries_[pick];
  const ReadyEvent fired = view_of(chosen);
  dispatch_entry(chosen);
  choice_hook_->dispatched(fired);
}

void Simulator::dispatch_entry(const Entry& e) {
  // Locate the entry; with no slack it is at or near the top. A linear scan
  // is fine on this path -- hook-mode runs trade throughput for coverage.
  std::size_t idx = 0;
  while (idx < heap_.size() && heap_[idx].key != e.key) {
    ++idx;
  }
  LSL_ASSERT_MSG(idx < heap_.size(), "chosen entry vanished from heap");
  if (idx == heap_.size() - 1) {
    heap_.pop_back();
  } else {
    heap_[idx] = heap_.back();
    heap_.pop_back();
    // The replacement came from a leaf: it can belong below or (when idx is
    // in a different subtree) above its new position.
    if (idx > 0 && heap_[idx].before(heap_[(idx - 1) / 4])) {
      sift_up(idx);
    } else {
      sift_down(idx);
    }
  }
  const std::uint64_t slot = e.key & kSlotMask;
  if (e.when > now_) {
    // Slack dispatch can fire events out of timestamp order; the clock only
    // ever moves forward, so a late-fired earlier event runs "now".
    now_ = e.when;
  }
  ++events_executed_;
  Action& action = action_of(slot);
  const std::uint64_t enclosing = dispatching_key_;
  dispatching_key_ = e.key;
  action();
  dispatching_key_ = enclosing;
  if (slots_[slot].key == e.key) {
    retire_slot(slot);
    --live_events_;
    action.reset();
  }
}

std::uint64_t Simulator::run(SimTime limit) {
  stop_requested_ = false;
  const SimTime run_start = now_;
  const double wall_start = profiling_ ? wall_now() : 0.0;
  std::uint64_t executed = 0;
  while (!stop_requested_ && settle_top()) {
    if (heap_.front().when > limit) {
      // Put time forward to the limit but not beyond; the event stays queued.
      now_ = limit;
      break;
    }
    if (choice_hook_ != nullptr) {
      dispatch_choice(limit);
    } else {
      dispatch_top();
    }
    ++executed;
  }
  if (profiling_) {
    wall_seconds_ += wall_now() - wall_start;
    if (obs::TraceRecorder* tr = obs::tracer(); tr != nullptr && executed > 0) {
      tr->complete(run_start, now_ - run_start, "sim", "sim.run");
    }
  }
  return executed;
}

KernelProfile Simulator::profile() const {
  KernelProfile p;
  p.events_scheduled = events_scheduled_;
  p.events_executed = events_executed_;
  p.events_cancelled = events_cancelled_;
  p.queue_high_water = queue_high_water_;
  p.sim_time = now_;
  p.wall_seconds = wall_seconds_;
  // Merge by content: identical category literals may alias as distinct
  // pointers across translation units.
  std::map<std::string, std::uint64_t> merged;
  for (const auto& [category, count] : category_counts_) {
    merged[category] += count;
  }
  p.category_counts.assign(merged.begin(), merged.end());
  std::sort(p.category_counts.begin(), p.category_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return p;
}

}  // namespace lsl::sim
