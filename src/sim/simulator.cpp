#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lsl::sim {

namespace {

std::int64_t sim_log_clock(void* ctx) {
  return static_cast<const Simulator*>(ctx)->now().ns();
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelProfile

std::string KernelProfile::str() const {
  char buf[256];
  std::string out = "kernel profile:\n";
  std::snprintf(buf, sizeof buf,
                "  events executed    %llu (scheduled %llu, cancelled %llu)\n",
                static_cast<unsigned long long>(events_executed),
                static_cast<unsigned long long>(events_scheduled),
                static_cast<unsigned long long>(events_cancelled));
  out += buf;
  std::snprintf(buf, sizeof buf, "  queue high water   %llu\n",
                static_cast<unsigned long long>(queue_high_water));
  out += buf;
  std::snprintf(buf, sizeof buf, "  simulated time     %s\n",
                sim_time.str().c_str());
  out += buf;
  if (wall_seconds > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "  dispatch wall time %.3fs (%.1fx real time, %.0f ev/s)\n",
                  wall_seconds, time_ratio(),
                  static_cast<double>(events_executed) / wall_seconds);
    out += buf;
  }
  if (!category_counts.empty()) {
    out += "  events by category:\n";
    for (const auto& [category, count] : category_counts) {
      std::snprintf(buf, sizeof buf, "    %-24s %llu\n", category.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }
  return out;
}

void KernelProfile::export_metrics(obs::Registry& registry) const {
  registry.gauge("sim.kernel.events_executed")
      .set(static_cast<double>(events_executed));
  registry.gauge("sim.kernel.events_scheduled")
      .set(static_cast<double>(events_scheduled));
  registry.gauge("sim.kernel.events_cancelled")
      .set(static_cast<double>(events_cancelled));
  registry.gauge("sim.kernel.queue_high_water")
      .set(static_cast<double>(queue_high_water));
  registry.gauge("sim.kernel.sim_seconds").set(sim_time.to_seconds());
  registry.gauge("sim.kernel.wall_seconds").set(wall_seconds);
  registry.gauge("sim.kernel.time_ratio").set(time_ratio());
}

void KernelProfile::merge_from(const KernelProfile& other) {
  events_scheduled += other.events_scheduled;
  events_executed += other.events_executed;
  events_cancelled += other.events_cancelled;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
  sim_time += other.sim_time;
  wall_seconds += other.wall_seconds;
  std::map<std::string, std::uint64_t> merged;
  for (const auto& [category, count] : category_counts) {
    merged[category] += count;
  }
  for (const auto& [category, count] : other.category_counts) {
    merged[category] += count;
  }
  category_counts.assign(merged.begin(), merged.end());
  std::sort(category_counts.begin(), category_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
}

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator() {
  // Log lines carry the simulated timestamp of the most recently created
  // live simulator (tests that run several sequentially each take over).
  set_log_clock(&sim_log_clock, this);
}

Simulator::~Simulator() { clear_log_clock(this); }

EventId Simulator::schedule_at(SimTime when, Action action,
                               const char* category) {
  LSL_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  const EventId id{next_seq_++};
  heap_.push(Entry{when, id.seq, std::move(action)});
  if (heap_.size() > queue_high_water_) {
    queue_high_water_ = heap_.size();
  }
  if (category != nullptr) {
    ++category_counts_[category];
  }
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Action action,
                                  const char* category) {
  LSL_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(action), category);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  // Only tombstone ids that could still be pending; an id >= next_seq_ was
  // never issued and an already-popped id is gone from the heap.
  if (id.seq >= next_seq_) {
    return false;
  }
  const auto [it, inserted] = cancelled_.insert(id.seq);
  (void)it;
  if (inserted) {
    ++tombstones_;
    ++events_cancelled_;
    return true;
  }
  return false;
}

bool Simulator::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the action must be moved out, so we
    // const_cast the known-mutable underlying entry before popping.
    auto& top = const_cast<Entry&>(heap_.top());
    if (const auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      --tombstones_;
      heap_.pop();
      continue;
    }
    out.when = top.when;
    out.seq = top.seq;
    out.action = std::move(top.action);
    heap_.pop();
    return true;
  }
  return false;
}

void Simulator::dispatch(Entry& e) {
  LSL_ASSERT(e.when >= now_);
  now_ = e.when;
  ++events_executed_;
  e.action();
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) {
    return false;
  }
  if (profiling_) {
    const double start = wall_now();
    dispatch(e);
    wall_seconds_ += wall_now() - start;
    return true;
  }
  dispatch(e);
  return true;
}

std::uint64_t Simulator::run(SimTime limit) {
  stop_requested_ = false;
  const SimTime run_start = now_;
  const double wall_start = profiling_ ? wall_now() : 0.0;
  std::uint64_t executed = 0;
  Entry e;
  while (!stop_requested_ && pop_next(e)) {
    if (e.when > limit) {
      // Put time forward to the limit but not beyond; re-queue the event.
      heap_.push(Entry{e.when, e.seq, std::move(e.action)});
      now_ = limit;
      break;
    }
    dispatch(e);
    ++executed;
  }
  if (profiling_) {
    wall_seconds_ += wall_now() - wall_start;
    if (obs::TraceRecorder* tr = obs::tracer(); tr != nullptr && executed > 0) {
      tr->complete(run_start, now_ - run_start, "sim", "sim.run");
    }
  }
  return executed;
}

KernelProfile Simulator::profile() const {
  KernelProfile p;
  p.events_scheduled = next_seq_ - 1;
  p.events_executed = events_executed_;
  p.events_cancelled = events_cancelled_;
  p.queue_high_water = queue_high_water_;
  p.sim_time = now_;
  p.wall_seconds = wall_seconds_;
  // Merge by content: identical category literals may alias as distinct
  // pointers across translation units.
  std::map<std::string, std::uint64_t> merged;
  for (const auto& [category, count] : category_counts_) {
    merged[category] += count;
  }
  p.category_counts.assign(merged.begin(), merged.end());
  std::sort(p.category_counts.begin(), p.category_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return p;
}

}  // namespace lsl::sim
