#include "sim/simulator.hpp"

#include <utility>

namespace lsl::sim {

EventId Simulator::schedule_at(SimTime when, Action action) {
  LSL_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  const EventId id{next_seq_++};
  heap_.push(Entry{when, id.seq, std::move(action)});
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Action action) {
  LSL_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  // Only tombstone ids that could still be pending; an id >= next_seq_ was
  // never issued and an already-popped id is gone from the heap.
  if (id.seq >= next_seq_) {
    return false;
  }
  const auto [it, inserted] = cancelled_.insert(id.seq);
  (void)it;
  if (inserted) {
    ++tombstones_;
    return true;
  }
  return false;
}

bool Simulator::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the action must be moved out, so we
    // const_cast the known-mutable underlying entry before popping.
    auto& top = const_cast<Entry&>(heap_.top());
    if (const auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      --tombstones_;
      heap_.pop();
      continue;
    }
    out.when = top.when;
    out.seq = top.seq;
    out.action = std::move(top.action);
    heap_.pop();
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) {
    return false;
  }
  LSL_ASSERT(e.when >= now_);
  now_ = e.when;
  ++events_executed_;
  e.action();
  return true;
}

std::uint64_t Simulator::run(SimTime limit) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  Entry e;
  while (!stop_requested_ && pop_next(e)) {
    if (e.when > limit) {
      // Put time forward to the limit but not beyond; re-queue the event.
      heap_.push(Entry{e.when, e.seq, std::move(e.action)});
      now_ = limit;
      break;
    }
    LSL_ASSERT(e.when >= now_);
    now_ = e.when;
    ++events_executed_;
    ++executed;
    e.action();
  }
  return executed;
}

}  // namespace lsl::sim
