// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, action) events.
// Sequence numbers break ties so that same-timestamp events fire in schedule
// order, which makes every run fully deterministic. Events are one-shot
// closures; cancellable timers are layered on top (timer.hpp).
//
// Observability: the kernel always keeps cheap counters (events scheduled /
// executed / cancelled, queue-depth high water, per-category schedule
// counts); set_profiling(true) additionally samples wall-clock time around
// event dispatch so profile() can report the simulated-vs-wall ratio.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace lsl::obs {
class Registry;
}  // namespace lsl::obs

namespace lsl::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq = 0;

  [[nodiscard]] bool valid() const { return seq != 0; }
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

/// Snapshot of the kernel's self-measurements (see Simulator::profile()).
struct KernelProfile {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t queue_high_water = 0;  ///< max pending entries ever
  SimTime sim_time = SimTime::zero();  ///< clock at snapshot
  double wall_seconds = 0.0;           ///< dispatch wall time (profiling on)
  /// Events scheduled per category tag, descending by count. Untagged
  /// events are not listed (their total is events_scheduled minus the sum).
  std::vector<std::pair<std::string, std::uint64_t>> category_counts;

  /// Simulated seconds advanced per wall second (0 when not profiled).
  [[nodiscard]] double time_ratio() const {
    return wall_seconds > 0.0 ? sim_time.to_seconds() / wall_seconds : 0.0;
  }

  /// Multi-line human-readable report.
  [[nodiscard]] std::string str() const;

  /// Publish as sim.kernel.* gauges in a metrics registry.
  void export_metrics(obs::Registry& registry) const;

  /// Accumulate another run's profile (counts add, high water maxes).
  void merge_from(const KernelProfile& other);
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now). `category`
  /// is an optional static-string tag counted in the kernel profile.
  EventId schedule_at(SimTime when, Action action,
                      const char* category = nullptr);

  /// Schedule `action` to run `delay` from now (delay >= 0).
  EventId schedule_after(SimTime delay, Action action,
                         const char* category = nullptr);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation is O(1): the entry is tombstoned and skipped
  /// when popped.
  bool cancel(EventId id);

  /// Run until the event queue is empty or `limit` is reached, whichever is
  /// first. Returns the number of events executed.
  std::uint64_t run(SimTime limit = SimTime::max());

  /// Run a single event if one exists; returns false when the queue is empty.
  bool step();

  /// Stop at the end of the current event (run() returns afterwards).
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() - tombstones_;
  }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Enable wall-clock sampling around dispatch (off by default: two clock
  /// reads per event are measurable on micro-benchmarks).
  void set_profiling(bool enabled) { profiling_ = enabled; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  [[nodiscard]] KernelProfile profile() const;

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;

    // Min-heap via std::priority_queue's max-heap comparison inversion.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool pop_next(Entry& out);
  void dispatch(Entry& e);

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstoned event seqs
  std::size_t tombstones_ = 0;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;

  // Kernel self-measurement (see KernelProfile).
  bool profiling_ = false;
  std::uint64_t events_cancelled_ = 0;
  std::size_t queue_high_water_ = 0;
  double wall_seconds_ = 0.0;
  /// Keys are the static strings passed as schedule categories; identical
  /// literals from different translation units may alias as distinct
  /// pointers, so profile() merges by content.
  std::unordered_map<const char*, std::uint64_t> category_counts_;
};

}  // namespace lsl::sim
