// Discrete-event simulation kernel.
//
// A Simulator owns an indexed 4-ary min-heap laid out in a flat vector: the
// heap holds 24-byte (time, sequence, id) keys, and the event closures
// (sim::Action, small-buffer-optimized) live in a side slot table, so heap
// sifts never relocate a closure. Sequence numbers break ties so that
// same-timestamp events fire in schedule order, which makes every run fully
// deterministic. Cancellable timers are layered on top (timer.hpp).
//
// Cancellation is generation-counted: every EventId names a slot in a side
// table plus the generation the slot had when the event was scheduled. The
// generation bumps whenever the event fires or is cancelled, so cancel() is
// an O(1) array probe (no hashing, no tombstone set) and a stale id can
// never affect a newer event that reuses the slot. Cancelled entries stay in
// the heap until they surface at the top, where a generation mismatch drops
// them for free.
//
// Observability: the kernel always keeps cheap counters (events scheduled /
// executed / cancelled, live-queue-depth high water, per-category schedule
// counts); set_profiling(true) additionally samples wall-clock time around
// event dispatch so profile() can report the simulated-vs-wall ratio.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/action.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace lsl::obs {
class Registry;
}  // namespace lsl::obs

namespace lsl::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Packs (slot index + 1) in the low 32 bits and the slot's generation in
/// the high 32; a default-constructed id is invalid.
struct EventId {
  std::uint64_t raw = 0;

  [[nodiscard]] bool valid() const { return raw != 0; }
  friend bool operator==(EventId a, EventId b) { return a.raw == b.raw; }
};

/// Snapshot of the kernel's self-measurements (see Simulator::profile()).
struct KernelProfile {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t queue_high_water = 0;  ///< max live pending entries ever
  SimTime sim_time = SimTime::zero();  ///< clock at snapshot
  double wall_seconds = 0.0;           ///< dispatch wall time (profiling on)
  /// Events scheduled per category tag, descending by count. Untagged
  /// events are not listed (their total is events_scheduled minus the sum).
  std::vector<std::pair<std::string, std::uint64_t>> category_counts;

  /// Simulated seconds advanced per wall second (0 when not profiled).
  [[nodiscard]] double time_ratio() const {
    return wall_seconds > 0.0 ? sim_time.to_seconds() / wall_seconds : 0.0;
  }

  /// Multi-line human-readable report.
  [[nodiscard]] std::string str() const;

  /// Publish as sim.kernel.* gauges in a metrics registry.
  void export_metrics(obs::Registry& registry) const;

  /// Accumulate another run's profile (counts add, high water maxes).
  void merge_from(const KernelProfile& other);
};

/// One schedulable event as shown to a ChoiceHook: enough identity to
/// reason about commutativity (actor), report (category), and replay (seq).
struct ReadyEvent {
  std::uint64_t seq = 0;  ///< global schedule order, unique per event
  SimTime when = SimTime::zero();
  const char* category = nullptr;  ///< static tag passed to schedule_at
  /// Commutativity tag: two events with different nonzero actors are
  /// independent (their dispatch order cannot matter); actor 0 means
  /// "unknown", which is conservatively dependent on everything.
  std::uint32_t actor = 0;
};

/// Model-checking hook (see src/mc/): when installed, the kernel stops at
/// each dispatch, enumerates every live event inside the ready window
/// (equal timestamps, widened by an optional slack), and asks the hook
/// which one fires next. The no-hook dispatch path is untouched.
class ChoiceHook {
 public:
  virtual ~ChoiceHook() = default;

  /// Pick the next event to fire from `ready` (size >= 2, sorted by the
  /// kernel's deterministic (when, seq) order; index 0 is what the plain
  /// kernel would run). Called only when the window holds several events.
  virtual std::size_t choose(const std::vector<ReadyEvent>& ready) = 0;

  /// Observes every event dispatched while the hook is installed, including
  /// forced singleton windows that never reach choose().
  virtual void dispatched(const ReadyEvent& fired) { (void)fired; }
};

/// Single-threaded discrete-event simulator. Each instance is confined to
/// one thread; the parallel trial engine (exp/parallel.hpp) runs one
/// Simulator per trial, never sharing one across threads.
class Simulator {
 public:
  using Action = sim::Action;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now). `category`
  /// is an optional static-string tag counted in the kernel profile.
  /// `actor` is the ChoiceHook commutativity tag (ignored without a hook).
  EventId schedule_at(SimTime when, Action action,
                      const char* category = nullptr,
                      std::uint32_t actor = 0);

  /// Schedule `action` to run `delay` from now (delay >= 0).
  EventId schedule_after(SimTime delay, Action action,
                         const char* category = nullptr,
                         std::uint32_t actor = 0);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. O(1): the slot's generation is bumped so the heap entry is
  /// recognized as dead when it reaches the top.
  bool cancel(EventId id);

  /// Run until the event queue is empty or `limit` is reached, whichever is
  /// first. Returns the number of events executed.
  std::uint64_t run(SimTime limit = SimTime::max());

  /// Run a single event if one exists; returns false when the queue is empty.
  bool step();

  /// Stop at the end of the current event (run() returns afterwards).
  void request_stop() { stop_requested_ = true; }

  /// Live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Enable wall-clock sampling around dispatch (off by default: two clock
  /// reads per event are measurable on micro-benchmarks).
  void set_profiling(bool enabled) { profiling_ = enabled; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Install (or with nullptr, remove) a model-checking choice hook. While
  /// installed, dispatch enumerates the ready window -- all live events at
  /// the top timestamp, widened to [top, top + slack] when slack > 0 -- and
  /// lets the hook reorder it. Scheduling into the past is clamped to now()
  /// in hook mode, since slack dispatch may run an event after a time it
  /// used to compute an absolute deadline. Not for the perf path: each
  /// dispatch walks the heap top to collect the window.
  void set_choice_hook(ChoiceHook* hook, SimTime slack = SimTime::zero());
  [[nodiscard]] ChoiceHook* choice_hook() const { return choice_hook_; }

  [[nodiscard]] KernelProfile profile() const;

 private:
  /// Heap key: 16 bytes of POD (4 per cache line, so a 4-ary sift level is
  /// usually one line). `key` packs the global sequence number in the high
  /// 40 bits and the slot index in the low 24; comparing `key` therefore
  /// tie-breaks same-timestamp events by schedule order. Closures live in
  /// the slot table, so sifts never relocate one.
  struct Entry {
    SimTime when;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] bool before(const Entry& other) const {
      if (when != other.when) {
        return when < other.when;
      }
      return key < other.key;
    }
  };

  static constexpr unsigned kSlotBits = 24;  ///< <= 16.7M concurrent events
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  static constexpr std::uint64_t slot_of(std::uint64_t raw) {
    return (raw & 0xFFFFFFFFULL) - 1;
  }
  static constexpr std::uint32_t gen_of(std::uint64_t raw) {
    return static_cast<std::uint32_t>(raw >> 32U);
  }

  /// Per-slot bookkeeping, one 16-byte record so the dispatch path's key
  /// probe and the cancel path's generation probe share a cache line.
  struct SlotState {
    std::uint64_t key = 0;  ///< packed key while live (cancel zeroes it)
    std::uint32_t gen = 0;  ///< validates public EventIds
  };

  /// A heap key is live iff its slot still holds the same packed key: seq
  /// is globally unique, so one compare is exact (no generations needed on
  /// this path -- those only validate public EventIds). A dispatched key is
  /// popped and never probed again, so the dispatch path skips the key
  /// clear; a reused slot gets a fresh seq, which can never collide.
  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.key & kSlotMask].key == e.key;
  }

  /// Retire the slot behind a live entry that is about to fire or was
  /// cancelled: bump the generation (invalidates outstanding EventIds) and
  /// recycle the index.
  void retire_slot(std::uint64_t slot) {
    ++slots_[slot].gen;
    free_slots_.push_back(static_cast<std::uint32_t>(slot));
  }

  /// Closure storage for `slot`. Chunked so growth never moves an Action.
  [[nodiscard]] Action& action_of(std::uint64_t slot) {
    return action_chunks_[slot >> kActionChunkShift]
                         [slot & (kActionChunkSize - 1)];
  }

  // 4-ary heap primitives over heap_ (flat vector, index arithmetic).
  void heap_push(Entry e);
  void heap_pop_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Drop dead entries off the top; afterwards heap_.front() (if any) is
  /// live. Returns false when the heap is empty.
  bool settle_top();
  /// Erase dead keys and re-heapify; called when corpses outnumber live
  /// entries so arm/cancel churn cannot grow the heap without bound.
  void compact_heap();
  /// Pop the live top (settle_top() must have returned true), advance the
  /// clock, and run its action.
  void dispatch_top();

  // ---- choice-hook (model checking) slow path ----------------------------
  /// Collect every live entry in heap_[i]'s subtree with when <= window_end
  /// into ready_entries_. The heap invariant (child.when >= parent.when)
  /// prunes whole subtrees, so this costs O(5k) for k in-window events --
  /// k is 1 almost everywhere, so hook-mode dispatch stays near O(pop).
  void collect_ready(std::size_t i, SimTime window_end);
  /// Hook-mode dispatch: enumerate the ready window, let the hook pick,
  /// fire the pick. settle_top() must have returned true.
  void dispatch_choice(SimTime limit);
  /// Remove `e` (which must be live) from anywhere in the heap and run its
  /// action, advancing the clock monotonically to e.when.
  void dispatch_entry(const Entry& e);
  [[nodiscard]] ReadyEvent view_of(const Entry& e) const;

  static constexpr std::size_t kActionChunkShift = 10;
  static constexpr std::size_t kActionChunkSize = 1ULL << kActionChunkShift;

  std::vector<Entry> heap_;
  // Slot table as a POD array (dense probes, trivial reallocation) plus
  // chunked closure storage (growth never moves an Action).
  std::vector<SlotState> slots_;
  std::vector<std::unique_ptr<Action[]>> action_chunks_;
  std::vector<std::uint32_t> free_slots_;
  /// Key of the event currently being dispatched (0 when idle). Lets
  /// cancel() refuse to tear down the closure that is executing.
  std::uint64_t dispatching_key_ = 0;
  std::size_t live_events_ = 0;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;

  // Choice-hook state. slot_meta_ is a side table (category, actor) written
  // only while a hook is installed, so the no-hook schedule path never pays
  // for it; events scheduled before installation read as {nullptr, 0}.
  struct SlotMeta {
    const char* category = nullptr;
    std::uint32_t actor = 0;
  };
  ChoiceHook* choice_hook_ = nullptr;
  SimTime choice_slack_ = SimTime::zero();
  std::vector<SlotMeta> slot_meta_;
  std::vector<Entry> ready_entries_;     ///< dispatch_choice scratch
  std::vector<ReadyEvent> ready_view_;   ///< dispatch_choice scratch

  // Kernel self-measurement (see KernelProfile).
  bool profiling_ = false;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::size_t queue_high_water_ = 0;
  double wall_seconds_ = 0.0;
  /// Keys are the static strings passed as schedule categories; identical
  /// literals from different translation units may alias as distinct
  /// pointers, so profile() merges by content.
  std::unordered_map<const char*, std::uint64_t> category_counts_;
};

}  // namespace lsl::sim
