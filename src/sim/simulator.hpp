// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, action) events.
// Sequence numbers break ties so that same-timestamp events fire in schedule
// order, which makes every run fully deterministic. Events are one-shot
// closures; cancellable timers are layered on top (timer.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace lsl::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq = 0;

  [[nodiscard]] bool valid() const { return seq != 0; }
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Action action);

  /// Schedule `action` to run `delay` from now (delay >= 0).
  EventId schedule_after(SimTime delay, Action action);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation is O(1): the entry is tombstoned and skipped
  /// when popped.
  bool cancel(EventId id);

  /// Run until the event queue is empty or `limit` is reached, whichever is
  /// first. Returns the number of events executed.
  std::uint64_t run(SimTime limit = SimTime::max());

  /// Run a single event if one exists; returns false when the queue is empty.
  bool step();

  /// Stop at the end of the current event (run() returns afterwards).
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() - tombstones_;
  }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;

    // Min-heap via std::priority_queue's max-heap comparison inversion.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool pop_next(Entry& out);

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstoned event seqs
  std::size_t tombstones_ = 0;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace lsl::sim
