// Restartable one-shot timer built on the Simulator.
//
// TCP needs retransmission / persist timers that are armed, re-armed, and
// cancelled constantly; Timer wraps the generation-counted cancellation
// dance so the protocol code can't leak stale events. The callback is fixed
// at construction; arming only chooses the deadline.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace lsl::sim {

class Timer {
 public:
  /// `category` is an optional static-string tag for the kernel profile's
  /// per-category event counts (e.g. "tcp.rto").
  Timer(Simulator& simulator, std::function<void()> on_fire,
        const char* category = nullptr)
      : sim_(simulator), on_fire_(std::move(on_fire)), category_(category) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// (Re)arm the timer to fire `delay` from now. A pending arm is replaced.
  void arm(SimTime delay) {
    cancel();
    deadline_ = sim_.now() + delay;
    pending_ = sim_.schedule_after(
        delay,
        [this] {
          pending_ = EventId{};
          on_fire_();
        },
        category_);
  }

  /// Arm only if not already armed.
  void arm_if_idle(SimTime delay) {
    if (!armed()) {
      arm(delay);
    }
  }

  void cancel() {
    if (pending_.valid()) {
      sim_.cancel(pending_);
      pending_ = EventId{};
    }
  }

  [[nodiscard]] bool armed() const { return pending_.valid(); }

  /// Deadline of the most recent arm (meaningful only while armed()).
  [[nodiscard]] SimTime deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  const char* category_ = nullptr;
  EventId pending_{};
  SimTime deadline_ = SimTime::zero();
};

}  // namespace lsl::sim
