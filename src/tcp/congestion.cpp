#include "tcp/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace lsl::tcp {

namespace {
constexpr std::uint64_t kHugeSsthresh =
    std::numeric_limits<std::uint64_t>::max() / 2;
/// min_rtt samples older than this are considered stale (a reroute or
/// queue drain may have changed the path) and are replaced outright.
constexpr SimTime kMinRttWindow = SimTime::seconds(10);
}  // namespace

CcaMetrics* CcaMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  thread_local CcaMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.loss_events = &reg.counter("tcp.conn.cca.loss_events");
    metrics.rto_collapses = &reg.counter("tcp.conn.cca.rto_collapses");
    metrics.recovery_exits = &reg.counter("tcp.conn.cca.recovery_exits");
    metrics.bbr_phase_moves = &reg.counter("tcp.conn.cca.bbr_phase_moves");
    metrics.cubic_fast_conv =
        &reg.counter("tcp.conn.cca.cubic_fast_convergence");
  }
  return &metrics;
}

CongestionControl::CongestionControl(const TcpOptions& opts)
    : ssthresh_(kHugeSsthresh), mss_(opts.mss) {
  cwnd_ = static_cast<std::uint64_t>(opts.initial_cwnd_segments) * mss_;
  metrics_ = CcaMetrics::get();
}

CongestionControl::~CongestionControl() = default;

void CongestionControl::on_rtt_sample(SimTime /*sample*/, SimTime /*now*/) {}

void CongestionControl::on_recovery_dup_ack() { cwnd_ += mss_; }

void CongestionControl::on_partial_ack(std::uint64_t newly) {
  // NewReno deflation: remove the acked bytes, add one MSS back for the
  // segment the partial ACK implies has left the network.
  cwnd_ = (cwnd_ > newly ? cwnd_ - newly : mss_) + mss_;
}

bool CongestionControl::partial_ack_keeps_recovery() const { return true; }

void CongestionControl::on_recovery_exit(SimTime /*now*/) {
  cwnd_ = std::max(ssthresh_, static_cast<std::uint64_t>(2) * mss_);
  if (metrics_ != nullptr) {
    metrics_->recovery_exits->inc();
  }
}

// ---------------------------------------------------------------------------
// Reno / NewReno

void RenoFamilyCc::on_ack(std::uint64_t newly, std::uint64_t /*flight*/,
                          SimTime /*now*/, SimTime /*srtt*/) {
  if (cwnd_ < ssthresh_) {
    // Slow start: byte-counted growth capped at one MSS per ACK.
    cwnd_ += std::min<std::uint64_t>(newly, mss());
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<std::uint64_t>(1, mss() * mss() / cwnd_);
  }
}

void RenoFamilyCc::on_enter_recovery(std::uint64_t flight, SimTime /*now*/) {
  ssthresh_ =
      std::max(flight / 2, static_cast<std::uint64_t>(2) * mss());
  cwnd_ = ssthresh_ + static_cast<std::uint64_t>(3) * mss();
  if (metrics_ != nullptr) {
    metrics_->loss_events->inc();
  }
}

void RenoFamilyCc::on_rto(std::uint64_t flight, SimTime /*now*/) {
  ssthresh_ =
      std::max(flight / 2, static_cast<std::uint64_t>(2) * mss());
  cwnd_ = mss();
  if (metrics_ != nullptr) {
    metrics_->rto_collapses->inc();
  }
}

// ---------------------------------------------------------------------------
// CUBIC (RFC 8312)

CubicCc::CubicCc(const TcpOptions& opts)
    : CongestionControl(opts),
      cwnd_seg_(static_cast<double>(opts.initial_cwnd_segments)) {}

double CubicCc::w_cubic(double t) const {
  const double d = t - k_;
  return flow::kCubicC * d * d * d + w_max_seg_;
}

void CubicCc::sync_cwnd() {
  cwnd_seg_ = std::max(cwnd_seg_, 2.0);
  cwnd_ = static_cast<std::uint64_t>(cwnd_seg_ * static_cast<double>(mss()));
}

void CubicCc::start_epoch(SimTime now) {
  epoch_start_ = now;
  epoch_valid_ = true;
  if (w_max_seg_ < cwnd_seg_) {
    // No reduction on record below the current window (e.g. the very first
    // congestion-avoidance round): anchor the curve at the current window.
    w_max_seg_ = cwnd_seg_;
  }
  // Time for W(t) to climb back to w_max from beta*w_max: W(0) then equals
  // the post-reduction window, so the curve continues seamlessly.
  k_ = std::cbrt(w_max_seg_ * (1.0 - flow::kCubicBeta) / flow::kCubicC);
}

void CubicCc::on_ack(std::uint64_t newly, std::uint64_t /*flight*/,
                     SimTime now, SimTime srtt) {
  if (cwnd_ < ssthresh_) {
    // Slow start, byte-counted exactly like Reno.
    cwnd_ += std::min<std::uint64_t>(newly, mss());
    cwnd_seg_ = static_cast<double>(cwnd_) / static_cast<double>(mss());
    return;
  }
  if (!epoch_valid_) {
    start_epoch(now);
  }
  const double rtt_s = std::max(srtt.to_seconds(), 1e-6);
  const double t = (now - epoch_start_).to_seconds();
  // RFC 8312 TCP-friendly region: the window standard AIMD would have
  // reached since the epoch began. 3(1-beta)/(1+beta) segments per RTT.
  const double w_est =
      w_max_seg_ * flow::kCubicBeta +
      (3.0 * (1.0 - flow::kCubicBeta) / (1.0 + flow::kCubicBeta)) *
          (t / rtt_s);
  if (w_cubic(t) < w_est) {
    friendly_ = true;
    if (cwnd_seg_ < w_est) {
      cwnd_seg_ = w_est;
    }
  } else {
    friendly_ = false;
    // Concave/convex region: aim one RTT ahead on the cubic curve,
    // spreading the step across the ~cwnd ACKs of this round.
    const double target = w_cubic(t + rtt_s);
    if (target > cwnd_seg_) {
      cwnd_seg_ += (target - cwnd_seg_) / cwnd_seg_;
    } else {
      cwnd_seg_ += 0.01 / cwnd_seg_;  // plateau: token growth
    }
  }
  sync_cwnd();
}

void CubicCc::reduce(SimTime /*now*/) {
  const double cur = cwnd_seg_;
  if (cur < w_max_seg_) {
    // Fast convergence: losing again before regaining w_max means a new
    // flow is taking share; release some by remembering a smaller peak.
    w_max_seg_ = cur * (1.0 + flow::kCubicBeta) / 2.0;
    if (metrics_ != nullptr) {
      metrics_->cubic_fast_conv->inc();
    }
  } else {
    w_max_seg_ = cur;
  }
  epoch_valid_ = false;
}

void CubicCc::on_enter_recovery(std::uint64_t /*flight*/, SimTime now) {
  reduce(now);
  cwnd_seg_ = std::max(cwnd_seg_ * flow::kCubicBeta, 2.0);
  ssthresh_ = std::max(
      static_cast<std::uint64_t>(cwnd_seg_ * static_cast<double>(mss())),
      static_cast<std::uint64_t>(2) * mss());
  // Same transient inflation as Reno's recovery entry: the three duplicate
  // ACKs prove segments left the network. on_recovery_exit deflates back
  // to ssthresh.
  cwnd_ = ssthresh_ + static_cast<std::uint64_t>(3) * mss();
  if (metrics_ != nullptr) {
    metrics_->loss_events->inc();
  }
}

void CubicCc::on_recovery_exit(SimTime now) {
  CongestionControl::on_recovery_exit(now);
  cwnd_seg_ = static_cast<double>(cwnd_) / static_cast<double>(mss());
}

void CubicCc::on_rto(std::uint64_t /*flight*/, SimTime now) {
  reduce(now);
  cwnd_seg_ = std::max(cwnd_seg_ * flow::kCubicBeta, 2.0);
  ssthresh_ = std::max(
      static_cast<std::uint64_t>(cwnd_seg_ * static_cast<double>(mss())),
      static_cast<std::uint64_t>(2) * mss());
  // Go-back-N restart from one segment; slow start climbs back to ssthresh.
  cwnd_ = mss();
  cwnd_seg_ = 1.0;
  if (metrics_ != nullptr) {
    metrics_->rto_collapses->inc();
  }
}

// ---------------------------------------------------------------------------
// BBR-like

namespace {
/// Probe-bw inflight-cap gains, advanced one step per delivery round: one
/// probing step, one draining step, six cruising steps (BBRv1's cycle
/// applied to the window cap rather than a pacing rate).
constexpr double kProbeBwGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0,
                                     1.0};
}  // namespace

BbrCc::BbrCc(const TcpOptions& opts) : CongestionControl(opts) {}

SimTime BbrCc::round_rtt(SimTime srtt) const {
  if (has_rtt_) {
    return min_rtt_;
  }
  return srtt > SimTime::zero() ? srtt : SimTime::milliseconds(10);
}

std::uint64_t BbrCc::bdp_bytes() const {
  if (!has_rtt_ || btl_bw_bps_ <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(btl_bw_bps_ / 8.0 *
                                    min_rtt_.to_seconds());
}

void BbrCc::set_phase(Phase next, SimTime now) {
  if (phase_ == next) {
    return;
  }
  phase_ = next;
  if (metrics_ != nullptr) {
    metrics_->bbr_phase_moves->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(now, "tcp", "tcp.cca.bbr_phase",
                static_cast<std::uint64_t>(next));
  }
}

void BbrCc::end_round(std::uint64_t flight, SimTime now) {
  const double span_s = (now - round_start_).to_seconds();
  if (span_s <= 0.0) {
    return;
  }
  const double bw = static_cast<double>(round_bytes_) * 8.0 / span_s;
  bw_samples_[bw_next_] = bw;
  bw_next_ = (bw_next_ + 1) % kBwWindowRounds;
  btl_bw_bps_ = *std::max_element(bw_samples_, bw_samples_ + kBwWindowRounds);

  switch (phase_) {
    case Phase::kStartup:
      // Exit once the bottleneck estimate plateaus: less than 25% growth
      // across three consecutive rounds (the pipe is full).
      if (btl_bw_bps_ >= full_bw_bps_ * 1.25 || full_bw_bps_ == 0.0) {
        full_bw_bps_ = btl_bw_bps_;
        full_bw_rounds_ = 0;
      } else if (++full_bw_rounds_ >= 3) {
        set_phase(Phase::kDrain, now);
      }
      break;
    case Phase::kDrain:
      // Startup overshot to ~2.9x BDP; hold the cap at one BDP until the
      // queue it built has drained.
      if (flight <= bdp_bytes()) {
        set_phase(Phase::kProbeBw, now);
        cycle_index_ = 0;
      }
      break;
    case Phase::kProbeBw:
      cycle_index_ = (cycle_index_ + 1) % 8;
      break;
  }
}

void BbrCc::recompute_cwnd() {
  double gain = kStartupGain;
  switch (phase_) {
    case Phase::kStartup:
      gain = kStartupGain;
      break;
    case Phase::kDrain:
      gain = 1.0;
      break;
    case Phase::kProbeBw:
      gain = kCwndGain * kProbeBwGains[cycle_index_];
      break;
  }
  const auto target = static_cast<std::uint64_t>(
      gain * static_cast<double>(bdp_bytes()));
  cwnd_ = std::max(target, static_cast<std::uint64_t>(4) * mss());
}

void BbrCc::on_ack(std::uint64_t newly, std::uint64_t flight, SimTime now,
                   SimTime srtt) {
  if (!round_open_) {
    round_open_ = true;
    round_start_ = now;
    round_bytes_ = 0;
  }
  round_bytes_ += newly;
  const SimTime rtt = round_rtt(srtt);
  if (now - round_start_ >= rtt && now > round_start_) {
    end_round(flight, now);
    round_start_ = now;
    round_bytes_ = 0;
  }
  if (btl_bw_bps_ <= 0.0 || !has_rtt_) {
    // No pipe model yet: grow exponentially (slow-start-like) so the first
    // delivery-rate rounds have something to measure.
    cwnd_ += std::min<std::uint64_t>(newly, mss());
    return;
  }
  recompute_cwnd();
}

void BbrCc::on_rtt_sample(SimTime sample, SimTime now) {
  if (!has_rtt_ || sample <= min_rtt_ ||
      now - min_rtt_at_ > kMinRttWindow) {
    min_rtt_ = sample;
    min_rtt_at_ = now;
    has_rtt_ = true;
  }
}

void BbrCc::on_enter_recovery(std::uint64_t /*flight*/, SimTime /*now*/) {
  // Loss is not a congestion signal for the model; SACK recovery refills
  // holes under the unchanged window while the phase machine keeps running.
  if (metrics_ != nullptr) {
    metrics_->loss_events->inc();
  }
}

void BbrCc::on_recovery_dup_ack() {}

void BbrCc::on_partial_ack(std::uint64_t /*newly*/) {}

void BbrCc::on_recovery_exit(SimTime /*now*/) {
  if (metrics_ != nullptr) {
    metrics_->recovery_exits->inc();
  }
}

void BbrCc::on_rto(std::uint64_t /*flight*/, SimTime /*now*/) {
  // Conservative go-back-N restart; the next completed round re-inflates
  // the window straight from the (retained) pipe model.
  cwnd_ = mss();
  round_open_ = false;
  round_bytes_ = 0;
  if (metrics_ != nullptr) {
    metrics_->rto_collapses->inc();
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<CongestionControl> make_congestion_control(
    const TcpOptions& opts) {
  switch (opts.cca) {
    case Cca::kReno:
      return std::make_unique<RenoCc>(opts);
    case Cca::kNewReno:
      return std::make_unique<NewRenoCc>(opts);
    case Cca::kCubic:
      return std::make_unique<CubicCc>(opts);
    case Cca::kBbr:
      return std::make_unique<BbrCc>(opts);
  }
  return std::make_unique<NewRenoCc>(opts);
}

}  // namespace lsl::tcp
