// Congestion-control algorithms, factored out of tcp::Connection.
//
// The connection owns the loss-detection machinery (dup-ACK counting, SACK
// scoreboards, RTO timers, go-back-N) and reports events here; the
// CongestionControl implementation owns cwnd/ssthresh and decides how the
// window responds. Four stacks:
//
//   * Reno     -- AIMD with classic fast recovery: the first partial ACK
//                 deflates to ssthresh and ends the episode.
//   * NewReno  -- AIMD with partial-ACK hole filling (RFC 6582); bitwise
//                 identical to the pre-refactor hard-coded behaviour, and
//                 the default every golden/baseline was recorded against.
//   * CUBIC    -- RFC 8312: w_max/K cubic growth in real time, TCP-friendly
//                 region, fast convergence. Window-fair across RTTs.
//   * BBR      -- BBR-like rate-based control: startup/drain/probe-bw phases
//                 driven by a windowed-max delivery-rate filter and the
//                 min-RTT estimate; loss does not shrink the window. The
//                 simulator's ACK clock self-paces the window-sized pipe
//                 cap, standing in for packet pacing (see docs/tcp.md).
//
// All state advances only on simulator events, so every stack is
// deterministic under the parallel trial engine.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "tcp/options.hpp"
#include "util/time.hpp"

namespace lsl::tcp {

/// Process-wide CCA instruments (tcp.conn.cca.*), resolved per registry the
/// same way as TcpMetrics. nullptr while metrics are disabled.
struct CcaMetrics {
  obs::Counter* loss_events;       ///< tcp.conn.cca.loss_events
  obs::Counter* rto_collapses;     ///< tcp.conn.cca.rto_collapses
  obs::Counter* recovery_exits;    ///< tcp.conn.cca.recovery_exits
  obs::Counter* bbr_phase_moves;   ///< tcp.conn.cca.bbr_phase_moves
  obs::Counter* cubic_fast_conv;   ///< tcp.conn.cca.cubic_fast_convergence

  static CcaMetrics* get();
};

class CongestionControl {
 public:
  explicit CongestionControl(const TcpOptions& opts);
  virtual ~CongestionControl();

  CongestionControl(const CongestionControl&) = delete;
  CongestionControl& operator=(const CongestionControl&) = delete;

  [[nodiscard]] virtual Cca kind() const = 0;
  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh() const { return ssthresh_; }

  /// Cumulative ACK advanced by `newly` bytes outside loss recovery.
  /// `flight` is the post-advance outstanding byte count, `srtt` the
  /// current smoothed RTT (zero before the first sample).
  virtual void on_ack(std::uint64_t newly, std::uint64_t flight, SimTime now,
                      SimTime srtt) = 0;

  /// An RTT measurement accepted under Karn's rule (~one per RTT).
  virtual void on_rtt_sample(SimTime sample, SimTime now);

  /// Third duplicate ACK: the connection is entering fast recovery.
  /// Implementations set ssthresh and the recovery cwnd.
  virtual void on_enter_recovery(std::uint64_t flight, SimTime now) = 0;

  /// Additional duplicate ACK while in non-SACK recovery: classic window
  /// inflation for the segment that left the network.
  virtual void on_recovery_dup_ack();

  /// Partial ACK inside non-SACK recovery (NewReno deflation).
  virtual void on_partial_ack(std::uint64_t newly);

  /// Whether a partial ACK keeps the connection in fast recovery (NewReno
  /// lineage) or ends the episode after deflating (classic Reno).
  [[nodiscard]] virtual bool partial_ack_keeps_recovery() const;

  /// Recovery episode completed (full ACK at or above the recovery point,
  /// or a Reno-style early exit).
  virtual void on_recovery_exit(SimTime now);

  /// Retransmission timeout. `flight` is measured before the go-back-N
  /// rewind.
  virtual void on_rto(std::uint64_t flight, SimTime now) = 0;

 protected:
  [[nodiscard]] std::uint64_t mss() const { return mss_; }

  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  CcaMetrics* metrics_ = nullptr;  ///< shared instruments (may be null)

 private:
  std::uint64_t mss_;
};

/// Reno/NewReno share every window formula; they differ only in whether a
/// partial ACK sustains the recovery episode.
class RenoFamilyCc : public CongestionControl {
 public:
  explicit RenoFamilyCc(const TcpOptions& opts) : CongestionControl(opts) {}

  void on_ack(std::uint64_t newly, std::uint64_t flight, SimTime now,
              SimTime srtt) override;
  void on_enter_recovery(std::uint64_t flight, SimTime now) override;
  void on_rto(std::uint64_t flight, SimTime now) override;
};

class RenoCc final : public RenoFamilyCc {
 public:
  using RenoFamilyCc::RenoFamilyCc;
  [[nodiscard]] Cca kind() const override { return Cca::kReno; }
  [[nodiscard]] bool partial_ack_keeps_recovery() const override {
    return false;
  }
};

class NewRenoCc final : public RenoFamilyCc {
 public:
  using RenoFamilyCc::RenoFamilyCc;
  [[nodiscard]] Cca kind() const override { return Cca::kNewReno; }
};

/// RFC 8312 CUBIC. The window is tracked in fractional segments so the
/// sub-MSS per-ACK increments of the cubic curve accumulate instead of
/// truncating to zero.
class CubicCc final : public CongestionControl {
 public:
  explicit CubicCc(const TcpOptions& opts);

  [[nodiscard]] Cca kind() const override { return Cca::kCubic; }
  void on_ack(std::uint64_t newly, std::uint64_t flight, SimTime now,
              SimTime srtt) override;
  void on_enter_recovery(std::uint64_t flight, SimTime now) override;
  void on_recovery_exit(SimTime now) override;
  void on_rto(std::uint64_t flight, SimTime now) override;

  // Inspection for the deterministic unit tests.
  [[nodiscard]] double w_max_segments() const { return w_max_seg_; }
  [[nodiscard]] double k_seconds() const { return k_; }
  [[nodiscard]] double cwnd_segments() const { return cwnd_seg_; }
  [[nodiscard]] bool in_tcp_friendly_region() const { return friendly_; }

 private:
  void reduce(SimTime now);       ///< shared loss response (w_max, ssthresh)
  void start_epoch(SimTime now);  ///< begin a congestion-avoidance epoch
  [[nodiscard]] double w_cubic(double t) const;  ///< W(t) in segments
  void sync_cwnd();  ///< mirror cwnd_seg_ into the byte-valued cwnd_

  double cwnd_seg_;          ///< fractional congestion window, segments
  double w_max_seg_ = 0.0;   ///< window at the last reduction
  double k_ = 0.0;           ///< time to regain w_max (seconds)
  SimTime epoch_start_ = SimTime::zero();
  bool epoch_valid_ = false;
  bool friendly_ = false;    ///< last growth came from the W_est floor
};

/// BBR-like rate-based control. Maintains btl_bw (windowed max of per-round
/// delivery-rate samples) and min_rtt (windowed min of RTT samples), and
/// sets cwnd = gain * btl_bw * min_rtt with the gain driven by a
/// startup/drain/probe-bw phase machine. Loss events do not reduce the
/// window; only an RTO collapses it (go-back-N restart), and the model
/// re-inflates on the next delivery-rate round.
class BbrCc final : public CongestionControl {
 public:
  enum class Phase : std::uint8_t { kStartup, kDrain, kProbeBw };

  explicit BbrCc(const TcpOptions& opts);

  [[nodiscard]] Cca kind() const override { return Cca::kBbr; }
  void on_ack(std::uint64_t newly, std::uint64_t flight, SimTime now,
              SimTime srtt) override;
  void on_rtt_sample(SimTime sample, SimTime now) override;
  void on_enter_recovery(std::uint64_t flight, SimTime now) override;
  void on_recovery_dup_ack() override;
  void on_partial_ack(std::uint64_t newly) override;
  void on_recovery_exit(SimTime now) override;
  void on_rto(std::uint64_t flight, SimTime now) override;

  // Inspection for the deterministic unit tests.
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] double btl_bw_bps() const { return btl_bw_bps_; }
  [[nodiscard]] SimTime min_rtt() const { return min_rtt_; }

 private:
  static constexpr int kBwWindowRounds = 10;   ///< max-filter depth
  static constexpr double kStartupGain = 2.885;  ///< 2/ln(2)
  static constexpr double kCwndGain = 2.0;       ///< probe-bw BDP multiple

  void end_round(std::uint64_t flight, SimTime now);
  void set_phase(Phase next, SimTime now);
  [[nodiscard]] SimTime round_rtt(SimTime srtt) const;
  [[nodiscard]] std::uint64_t bdp_bytes() const;
  void recompute_cwnd();

  Phase phase_ = Phase::kStartup;
  double btl_bw_bps_ = 0.0;
  double bw_samples_[kBwWindowRounds] = {};
  int bw_next_ = 0;

  SimTime min_rtt_ = SimTime::zero();
  SimTime min_rtt_at_ = SimTime::zero();
  bool has_rtt_ = false;

  // Delivery-rate rounds: bytes acked per >= one round-trip of wall time.
  SimTime round_start_ = SimTime::zero();
  bool round_open_ = false;
  std::uint64_t round_bytes_ = 0;

  // Startup plateau detection (bw grew < 25% for 3 consecutive rounds).
  double full_bw_bps_ = 0.0;
  int full_bw_rounds_ = 0;

  // Probe-bw gain cycling, advanced once per round.
  int cycle_index_ = 0;
};

[[nodiscard]] std::unique_ptr<CongestionControl> make_congestion_control(
    const TcpOptions& opts);

}  // namespace lsl::tcp
