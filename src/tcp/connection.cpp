#include "tcp/connection.hpp"

#include <algorithm>
#include <utility>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "tcp/stack.hpp"
#include "util/log.hpp"

namespace lsl::tcp {

TcpMetrics* TcpMetrics::get() {
  if (!obs::metrics_enabled()) {
    return nullptr;
  }
  // Thread-local, revalidated by registry uid: parallel trials install a
  // per-trial ScopedRegistry, so the bundle re-resolves when the thread's
  // registry changes and the hot path stays one integer compare.
  thread_local TcpMetrics metrics;
  thread_local std::uint64_t bound_uid = 0;
  auto& reg = obs::Registry::global();
  if (bound_uid != reg.uid()) {
    bound_uid = reg.uid();
    metrics.connections = &reg.counter("tcp.conn.opened");
    metrics.segments_sent = &reg.counter("tcp.conn.segments_sent");
    metrics.retransmits = &reg.counter("tcp.conn.retransmits");
    metrics.fast_retransmits = &reg.counter("tcp.conn.fast_retransmits");
    metrics.timeouts = &reg.counter("tcp.conn.timeouts");
    metrics.dup_acks = &reg.counter("tcp.conn.dup_acks");
    metrics.sack_blocks_rx = &reg.counter("tcp.conn.sack_blocks_rx");
    // RTTs on the paper's paths sit between ~1 ms (LAN) and seconds under
    // bufferbloat; cwnd in segments spans slow-start's doubling range.
    metrics.rtt_ms = &reg.histogram("tcp.conn.rtt_ms",
                                    obs::exponential_buckets(1.0, 2.0, 14));
    metrics.cwnd_segments = &reg.histogram(
        "tcp.conn.cwnd_segments", obs::exponential_buckets(1.0, 2.0, 16));
  }
  return &metrics;
}

const char* to_string(ConnectionError e) {
  switch (e) {
    case ConnectionError::kNone:
      return "none";
    case ConnectionError::kConnectTimeout:
      return "connect-timeout";
    case ConnectionError::kReset:
      return "reset";
    case ConnectionError::kRetransmitTimeout:
      return "retransmit-timeout";
  }
  return "?";
}

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynRcvd:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
    case TcpState::kDead:
      return "DEAD";
  }
  return "?";
}

Connection::Connection(TcpStack& stack, net::NodeId local, net::NodeId remote,
                       net::Port local_port, net::Port remote_port,
                       TcpOptions opts)
    : stack_(stack),
      sim_(stack.simulator()),
      local_node_(local),
      remote_node_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      opts_(opts),
      send_buf_(opts.send_buffer_bytes),
      recv_buf_(opts.recv_buffer_bytes),
      rtt_(opts),
      cc_(make_congestion_control(opts)),
      rto_timer_(sim_, [this] { on_rto(); }, "tcp.rto"),
      persist_timer_(sim_, [this] { on_persist(); }, "tcp.persist"),
      time_wait_timer_(sim_, [this] { become_dead(); }, "tcp.time_wait"),
      delack_timer_(
          sim_,
          [this] {
            unacked_segments_ = 0;
            send_pure_ack();
          },
          "tcp.delack") {
  LSL_ASSERT_MSG(opts_.recv_buffer_bytes >= opts_.mss,
                 "receive buffer smaller than one segment");
  metrics_ = TcpMetrics::get();
  if (metrics_ != nullptr) {
    metrics_->connections->inc();
  }
}

Connection::~Connection() = default;

std::uint64_t Connection::acked_payload() const { return send_buf_.head(); }

std::string Connection::debug_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s una=%llu nxt=%llu max=%llu cwnd=%llu ssthresh=%llu wnd=%llu "
      "flight=%llu buf=[%llu,%llu) rcv_nxt=%llu readable=%llu dup=%d rec=%d "
      "fin(p=%d s=%d a=%d r=%d) rto=%d persist=%d",
      to_string(state_), static_cast<unsigned long long>(snd_una_),
      static_cast<unsigned long long>(snd_nxt_),
      static_cast<unsigned long long>(snd_max_),
      static_cast<unsigned long long>(cc_->cwnd()),
      static_cast<unsigned long long>(cc_->ssthresh() > 1ULL << 40
                                          ? 0
                                          : cc_->ssthresh()),
      static_cast<unsigned long long>(snd_wnd_),
      static_cast<unsigned long long>(flight()),
      static_cast<unsigned long long>(send_buf_.head()),
      static_cast<unsigned long long>(send_buf_.end()),
      static_cast<unsigned long long>(rcv_nxt_wire_),
      static_cast<unsigned long long>(recv_buf_.readable()), dup_acks_,
      in_recovery_ ? 1 : 0, fin_pending_ ? 1 : 0, fin_sent_ ? 1 : 0,
      fin_acked_ ? 1 : 0, fin_rcvd_ ? 1 : 0, rto_timer_.armed() ? 1 : 0,
      persist_timer_.armed() ? 1 : 0);
  return buf;
}

// ---------------------------------------------------------------------------
// Open / close

void Connection::start_active_open() {
  LSL_ASSERT(state_ == TcpState::kClosed);
  state_ = TcpState::kSynSent;
  send_control(net::kFlagSyn, 0);
  snd_nxt_ = 1;
  snd_max_ = 1;
  arm_rto();
}

void Connection::start_passive_open() {
  LSL_ASSERT(state_ == TcpState::kClosed);
  state_ = TcpState::kSynRcvd;
  // Caller feeds the SYN packet via handle_packet next.
}

void Connection::close() {
  if (fin_pending_) {
    return;
  }
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kClosed) {
    abort();
    return;
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;  // already closing
  }
  fin_pending_ = true;
  fin_wire_ = stream_data_end_wire();
  try_send();
}

void Connection::abort() {
  if (state_ == TcpState::kDead) {
    return;
  }
  if (state_ != TcpState::kClosed) {
    send_control(net::kFlagRst, snd_nxt_);
  }
  become_dead();
}

// ---------------------------------------------------------------------------
// Application API

std::uint64_t Connection::write_bytes(std::span<const std::byte> bytes) {
  if (fin_pending_ || state_ == TcpState::kDead) {
    return 0;
  }
  const std::uint64_t n = send_buf_.append_bytes(bytes);
  try_send();
  return n;
}

std::uint64_t Connection::write_synthetic(std::uint64_t n) {
  if (fin_pending_ || state_ == TcpState::kDead) {
    return 0;
  }
  const std::uint64_t accepted = send_buf_.append_synthetic(n);
  try_send();
  return accepted;
}

RecvBuffer::ReadResult Connection::read(std::uint64_t max) {
  auto r = recv_buf_.read(max);
  stats_.bytes_read += r.n;
  if (r.n > 0) {
    if (fluid_admit_pending() && recv_buf_.readable() > 0) {
      // Held fluid chunks became readable mid-read. Notify from a fresh
      // event: the caller's read loop may already have decided it drained
      // the buffer and would otherwise never come back for them.
      auto self = shared_from_this();
      sim_.schedule_after(
          SimTime::zero(),
          [self] {
            if (self->state_ != TcpState::kDead && self->on_readable &&
                self->recv_buf_.readable() > 0) {
              self->on_readable();
            }
          },
          "net.fluid.deliver");
    }
    maybe_send_window_update();
  }
  if (at_eof() && !eof_delivered_) {
    eof_delivered_ = true;
    // Deliver EOF from a fresh event, never from inside the caller's own
    // read(): a synchronous callback could observe the application's state
    // before it has accounted for the bytes this read returns (the depot
    // relay would close its session with a chunk still in hand).
    auto self = shared_from_this();
    sim_.schedule_after(
        SimTime::zero(),
        [self] {
          if (self->on_eof) {
            self->on_eof();
          }
        },
        "tcp.eof");
  }
  return r;
}

// ---------------------------------------------------------------------------
// Segment emission

std::uint64_t Connection::advertised_window() const {
  std::uint64_t w = recv_buf_.window();
  // Receiver-side silly-window avoidance: never advertise a runt window.
  if (w < opts_.mss) {
    w = 0;
  }
  return w;
}

std::uint64_t Connection::usable_window() const {
  return std::min(cc_->cwnd(), snd_wnd_);
}

void Connection::send_data_segment(std::uint64_t wire_seq, std::uint32_t len,
                                   bool retransmission) {
  net::Packet p;
  p.src = local_node_;
  p.dst = remote_node_;
  p.uid = next_packet_uid_++;
  p.tcp.src_port = local_port_;
  p.tcp.dst_port = remote_port_;
  p.tcp.seq = wire_seq;
  p.tcp.ack = rcv_nxt_wire_;
  p.tcp.flags = net::kFlagAck;
  p.tcp.wnd = advertised_window();
  p.payload_bytes = len;
  p.content = send_buf_.content_slice(wire_seq - 1, len);
  attach_sack_blocks(p.tcp);
  last_advertised_wnd_ = p.tcp.wnd;

  ++stats_.segments_sent;
  if (metrics_ != nullptr) {
    metrics_->segments_sent->inc();
  }
  if (retransmission) {
    ++stats_.retransmits;
    if (metrics_ != nullptr) {
      metrics_->retransmits->inc();
    }
    if (obs::TraceRecorder* tr = obs::tracer()) {
      tr->instant(sim_.now(), "tcp", "tcp.retransmit", wire_seq);
    }
  } else {
    stats_.bytes_sent += len;
    if (!timing_active_) {
      timing_active_ = true;
      timed_wire_end_ = wire_seq + len;
      timed_sent_at_ = sim_.now();
    }
  }
  // The segment carries a current cumulative ACK: any pending delayed ACK
  // is satisfied by the piggyback.
  delack_timer_.cancel();
  unacked_segments_ = 0;
  stack_.emit(std::move(p));
  arm_rto();
}

void Connection::send_control(std::uint8_t flags, std::uint64_t wire_seq) {
  net::Packet p;
  p.src = local_node_;
  p.dst = remote_node_;
  p.uid = next_packet_uid_++;
  p.tcp.src_port = local_port_;
  p.tcp.dst_port = remote_port_;
  p.tcp.seq = wire_seq;
  p.tcp.flags = flags;
  if (syn_rcvd_) {
    p.tcp.flags |= net::kFlagAck;
    p.tcp.ack = rcv_nxt_wire_;
    attach_sack_blocks(p.tcp);
  }
  p.tcp.wnd = advertised_window();
  p.payload_bytes = 0;
  last_advertised_wnd_ = p.tcp.wnd;
  ++stats_.segments_sent;
  if (metrics_ != nullptr) {
    metrics_->segments_sent->inc();
  }
  stack_.emit(std::move(p));
}

void Connection::send_pure_ack() { send_control(net::kFlagAck, snd_nxt_); }

void Connection::attach_sack_blocks(net::TcpHeader& header) {
  if (!opts_.sack_enabled || recv_buf_.ooo_bytes() == 0) {
    return;
  }
  for (const auto& [begin, end] : recv_buf_.ooo_ranges(4)) {
    // Data offsets -> wire sequence (+1 for the SYN).
    header.sack.push_back(net::SackBlock{begin + 1, end + 1});
  }
}

void Connection::maybe_send_window_update() {
  if (state_ == TcpState::kDead || state_ == TcpState::kTimeWait) {
    return;
  }
  const std::uint64_t w = advertised_window();
  if (last_advertised_wnd_ == 0 && w >= opts_.mss) {
    send_pure_ack();
  }
}

// ---------------------------------------------------------------------------
// Sending engine

void Connection::try_send() {
  // Stream data may flow while established and must keep flowing after a
  // local close until everything (including the FIN) is acknowledged: an
  // RTO can rewind snd_nxt below buffered data in FIN_WAIT_1 / CLOSING /
  // LAST_ACK, and that data still has to drain.
  const bool may_send_data =
      state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait ||
      state_ == TcpState::kFinWait1 || state_ == TcpState::kClosing ||
      state_ == TcpState::kLastAck;
  if (!may_send_data) {
    return;
  }

  if (stack_.fluid_mode() && ensure_fluid_channel()) {
    fluid_pump();
    // The FIN rides a real packet, emitted once the last payload byte has
    // fully left the sender. It can race the final fluid delivery, but the
    // receiver holds an early FIN until rcv_nxt reaches it
    // (maybe_accept_pending_fin), exactly as with reordered packets.
    if (fin_pending_ && !fin_sent_ && fluid_offered_ == send_buf_.end() &&
        fluid_transmitted_ == send_buf_.end()) {
      send_control(net::kFlagFin, fin_wire_);
      snd_nxt_ = fin_wire_ + 1;
      snd_max_ = std::max(snd_max_, snd_nxt_);
      fin_sent_ = true;
      if (state_ == TcpState::kEstablished) {
        state_ = TcpState::kFinWait1;
      } else if (state_ == TcpState::kCloseWait) {
        state_ = TcpState::kLastAck;
      }
      arm_rto();
    }
    return;
  }

  {
    const std::uint64_t window = usable_window();
    while (snd_nxt_ < stream_data_end_wire()) {
      const std::uint64_t offset = snd_nxt_ - 1;
      const std::uint64_t avail = send_buf_.end() - offset;
      const std::uint64_t fl = flight();
      if (fl >= window) {
        break;
      }
      const std::uint64_t room = window - fl;
      const auto seg = static_cast<std::uint32_t>(
          std::min<std::uint64_t>({opts_.mss, avail, room}));
      if (seg == 0) {
        break;
      }
      // Sender-side SWS avoidance: while data remains and the pipe is
      // non-empty, wait for more window rather than emit a runt. With
      // Nagle enabled, hold *any* runt while data is unacknowledged, even
      // the final one -- small writes coalesce until an ACK drains the
      // pipe (RFC 896).
      if (seg < opts_.mss && fl > 0 && (opts_.nagle || seg < avail)) {
        break;
      }
      send_data_segment(snd_nxt_, seg, /*retransmission=*/false);
      snd_nxt_ += seg;
      snd_max_ = std::max(snd_max_, snd_nxt_);
    }
  }

  // FIN goes out once all stream data has been transmitted.
  if (fin_pending_ && snd_nxt_ == fin_wire_) {
    send_control(net::kFlagFin, fin_wire_);
    snd_nxt_ = fin_wire_ + 1;
    snd_max_ = std::max(snd_max_, snd_nxt_);
    if (!fin_sent_) {
      fin_sent_ = true;
      if (state_ == TcpState::kEstablished) {
        state_ = TcpState::kFinWait1;
      } else if (state_ == TcpState::kCloseWait) {
        state_ = TcpState::kLastAck;
      }
    }
    arm_rto();
  }

  // Zero-window probing: peer closed its window while we still have unsent
  // data and nothing in flight. A lost window update would deadlock us; the
  // persist timer pushes one byte past the window to force an ACK.
  if (snd_wnd_ == 0 && flight() == 0 &&
      snd_nxt_ < stream_data_end_wire() && may_send_data) {
    persist_timer_.arm_if_idle(rtt_.rto());
  } else {
    persist_timer_.cancel();
  }
}

void Connection::on_persist() {
  if (state_ == TcpState::kDead || fluid_data_plane()) {
    return;
  }
  if (snd_wnd_ == 0 && flight() == 0 && snd_nxt_ < stream_data_end_wire()) {
    // One byte beyond the advertised window; RTO backoff then paces retries.
    send_data_segment(snd_nxt_, 1, /*retransmission=*/true);
    snd_nxt_ += 1;
    snd_max_ = std::max(snd_max_, snd_nxt_);
  }
}

void Connection::arm_rto() {
  if (flight() > 0 || state_ == TcpState::kSynSent ||
      state_ == TcpState::kSynRcvd) {
    if (!rto_timer_.armed()) {
      rto_timer_.arm(rtt_.rto());
      rto_armed_at_ = sim_.now();
    }
  }
}

void Connection::restart_rto_if_needed() {
  rto_timer_.cancel();
  if (flight() > 0) {
    rto_timer_.arm(rtt_.rto());
    rto_armed_at_ = sim_.now();
  }
}

// ---------------------------------------------------------------------------
// Timeout handling

void Connection::on_rto() {
  if (state_ == TcpState::kDead || state_ == TcpState::kTimeWait) {
    return;
  }
  ++stats_.timeouts;
  if (metrics_ != nullptr) {
    metrics_->timeouts->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "tcp", "tcp.rto", snd_una_);
  }
  if (stream_span_ != 0 && sim_.now() > rto_armed_at_) {
    if (obs::SpanRecorder* sr = obs::spans()) {
      // Retroactive dead-air episode: no ACK progress from the last RTO arm
      // to the timeout firing. --explain shifts this window from streaming
      // into the retransmit-dominated bucket (obs/explain.cpp).
      sr->complete(rto_armed_at_, sim_.now() - rto_armed_at_,
                   obs::SpanKind::kRtoWait, span_session_, stream_span_,
                   "rto");
    }
  }
  timing_active_ = false;  // Karn: never sample retransmitted data
  rtt_.backoff();

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    if (++syn_retries_ > opts_.max_syn_retries) {
      // The peer is unreachable or refusing: give up and tell the app.
      error_ = ConnectionError::kConnectTimeout;
      become_dead();
      return;
    }
    // Retransmit the (SYN / SYN+ACK) handshake segment.
    ++stats_.retransmits;
    send_control(net::kFlagSyn, 0);
    rto_timer_.arm(rtt_.rto());
    rto_armed_at_ = sim_.now();
    return;
  }

  if (++data_retries_ > opts_.max_data_retries) {
    // No ACK progress across max_data_retries consecutive timeouts: the
    // peer vanished without a RST reaching us. Give up so the connection
    // (and whatever session holds it) can fail over instead of leaking.
    error_ = ConnectionError::kRetransmitTimeout;
    become_dead();
    return;
  }

  if (fluid_data_plane()) {
    // Payload needs no retransmission (fluid flows are lossless); the only
    // wire sequence in flight is the FIN.
    if (fin_sent_ && !fin_acked_) {
      ++stats_.retransmits;
      send_control(net::kFlagFin, fin_wire_);
      snd_nxt_ = fin_wire_ + 1;
      snd_max_ = std::max(snd_max_, snd_nxt_);
      rto_timer_.arm(rtt_.rto());
      rto_armed_at_ = sim_.now();
    }
    return;
  }

  cc_->on_rto(flight(), sim_.now());
  in_recovery_ = false;
  dup_acks_ = 0;
  sacked_.clear();  // conservative: assume the peer reneged
  rtx_out_.clear();

  // Go-back-N: rewind the send frontier; try_send refills from snd_una.
  snd_nxt_ = snd_una_;
  if (fin_sent_ && snd_una_ > fin_wire_) {
    // Everything including FIN was sent; only FIN remains unacked.
    snd_nxt_ = fin_wire_;
  }
  if (snd_nxt_ == fin_wire_ && fin_sent_) {
    ++stats_.retransmits;
    send_control(net::kFlagFin, fin_wire_);
    snd_nxt_ = fin_wire_ + 1;
  } else if (snd_nxt_ < stream_data_end_wire()) {
    const std::uint64_t offset = snd_nxt_ - 1;
    const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        opts_.mss, send_buf_.end() - offset));
    if (len > 0) {
      send_data_segment(snd_nxt_, len, /*retransmission=*/true);
      snd_nxt_ += len;
    }
  }
  rto_timer_.arm(rtt_.rto());
  rto_armed_at_ = sim_.now();
}

// ---------------------------------------------------------------------------
// Receive path

void Connection::handle_packet(const net::Packet& packet) {
  const net::TcpHeader& h = packet.tcp;

  if (h.has(net::kFlagRst)) {
    LSL_DEBUG("tcp %u:%u: RST received", local_node_, local_port_);
    if (state_ != TcpState::kTimeWait) {
      // A reset in TIME_WAIT is an ordinary early teardown, not a failure.
      error_ = ConnectionError::kReset;
    }
    become_dead();
    return;
  }

  if (state_ == TcpState::kSynSent) {
    if (h.has(net::kFlagSyn) && h.has(net::kFlagAck) && h.ack >= 1) {
      syn_rcvd_ = true;
      rcv_nxt_wire_ = 1;
      snd_una_ = 1;
      snd_wnd_ = h.wnd;
      state_ = TcpState::kEstablished;
      stats_.established_at = sim_.now();
      if (obs::TraceRecorder* tr = obs::tracer()) {
        tr->instant(sim_.now(), "tcp", "tcp.established", local_port_);
      }
      span_on_established();
      restart_rto_if_needed();
      send_pure_ack();
      if (on_connected) {
        on_connected();
      }
      try_send();
    }
    // Anything else in SYN_SENT (e.g. stray data) is dropped.
    return;
  }

  if (h.has(net::kFlagSyn)) {
    if (state_ == TcpState::kSynRcvd) {
      if (!syn_rcvd_) {
        // First SYN observed by this passive connection.
        syn_rcvd_ = true;
        rcv_nxt_wire_ = 1;
        snd_wnd_ = h.wnd;
        send_control(net::kFlagSyn, 0);  // SYN+ACK (ACK added by send_control)
        snd_nxt_ = 1;
        snd_max_ = 1;
        arm_rto();
      } else {
        // Retransmitted SYN: our SYN+ACK was lost.
        ++stats_.retransmits;
        send_control(net::kFlagSyn, 0);
        arm_rto();
      }
      return;
    }
    // Stray SYN on an established connection: peer never saw our SYN+ACK
    // ack; re-ack it.
    send_pure_ack();
    return;
  }

  const bool had_payload = packet.payload_bytes > 0;
  const bool had_fin = h.has(net::kFlagFin);

  if (h.has(net::kFlagAck)) {
    process_ack(packet);
  }
  if (state_ == TcpState::kDead) {
    return;
  }
  if (had_payload) {
    process_payload(packet);
  }
  if (had_fin) {
    process_fin(packet);
  }
  if (had_fin) {
    // FIN always elicits an immediate ACK.
    delack_timer_.cancel();
    unacked_segments_ = 0;
    send_pure_ack();
  } else if (had_payload) {
    const bool out_of_order = recv_buf_.ooo_bytes() > 0;
    acknowledge_data(out_of_order);
  }
}

void Connection::acknowledge_data(bool out_of_order) {
  if (!opts_.delayed_ack || out_of_order) {
    // Immediate ACK; out-of-order arrivals must generate the duplicate
    // ACKs fast retransmit depends on (RFC 5681).
    delack_timer_.cancel();
    unacked_segments_ = 0;
    send_pure_ack();
    return;
  }
  if (++unacked_segments_ >= 2) {
    delack_timer_.cancel();
    unacked_segments_ = 0;
    send_pure_ack();
    return;
  }
  delack_timer_.arm_if_idle(opts_.delayed_ack_timeout);
}

void Connection::process_ack(const net::Packet& packet) {
  const net::TcpHeader& h = packet.tcp;
  const std::uint64_t ack = h.ack;
  if (ack > snd_max_) {
    return;  // acks data never sent
  }

  if (fluid_data_plane()) {
    // Packets carry no payload on the fluid plane, so an arriving ACK is
    // either a window update (re-opens a pump stalled on the peer's buffer)
    // or the FIN acknowledgment. The congestion machinery below must not
    // run: the peer's pure ACKs would read as duplicates and fake a loss
    // episode.
    snd_wnd_ = h.wnd;
    if (ack > snd_una_) {
      snd_una_ = ack;
      data_retries_ = 0;
      snd_nxt_ = std::max(snd_nxt_, snd_una_);
      const std::uint64_t data_acked =
          std::min(ack > 0 ? ack - 1 : 0, send_buf_.end());
      const std::uint64_t before = send_buf_.head();
      if (data_acked > before) {
        send_buf_.release_through(data_acked);
        stats_.bytes_acked += data_acked - before;
        fluid_acked_ = std::max(fluid_acked_, data_acked);
        if (on_ack_advance) {
          on_ack_advance(sim_.now(), send_buf_.head());
        }
      }
      if (fin_sent_ && !fin_acked_ && snd_una_ > fin_wire_) {
        fin_acked_ = true;
        on_fin_acked();
        if (state_ == TcpState::kDead) {
          return;
        }
      }
      restart_rto_if_needed();
      if (on_writable && send_buf_.free_space() > 0 && !fin_pending_) {
        on_writable();
      }
    }
    try_send();
    return;
  }

  const bool is_dup = ack == snd_una_ && snd_nxt_ > snd_una_ &&
                      packet.payload_bytes == 0 && !h.has(net::kFlagFin) &&
                      h.wnd == snd_wnd_ && snd_wnd_ > 0;
  snd_wnd_ = h.wnd;

  if (opts_.sack_enabled) {
    for (const auto& block : h.sack) {
      sacked_.add(block.begin, block.end);
    }
    if (metrics_ != nullptr && !h.sack.empty()) {
      metrics_->sack_blocks_rx->inc(h.sack.size());
    }
  }

  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    snd_una_ = ack;
    data_retries_ = 0;
    // After an RTO rewound snd_nxt, a cumulative ACK for data the receiver
    // already held out-of-order can overtake the send frontier.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dup_acks_ = 0;
    sacked_.prune_below(snd_una_);

    if (state_ == TcpState::kSynRcvd && snd_una_ >= 1) {
      advance_handshake_established();
    }

    // Free acknowledged payload from the send buffer.
    const std::uint64_t data_acked =
        std::min(ack > 0 ? ack - 1 : 0, send_buf_.end());
    const std::uint64_t before = send_buf_.head();
    if (data_acked > before) {
      send_buf_.release_through(data_acked);
      stats_.bytes_acked += data_acked - before;
      if (on_ack_advance) {
        on_ack_advance(sim_.now(), send_buf_.head());
      }
    }

    if (timing_active_ && snd_una_ >= timed_wire_end_) {
      const SimTime sample = sim_.now() - timed_sent_at_;
      rtt_.add_sample(sample);
      cc_->on_rtt_sample(sample, sim_.now());
      timing_active_ = false;
      if (metrics_ != nullptr) {
        // RTT-sample cadence: one histogram point per timed segment, and a
        // cwnd sample at the same rate (~once per RTT under Karn's rule).
        metrics_->rtt_ms->observe(sample.to_milliseconds());
        metrics_->cwnd_segments->observe(static_cast<double>(cc_->cwnd()) /
                                         static_cast<double>(opts_.mss));
      }
    }

    if (in_recovery_) {
      if (ack >= recover_) {
        // Full acknowledgment: deflate to ssthresh and exit recovery.
        cc_->on_recovery_exit(sim_.now());
        in_recovery_ = false;
        sacked_.clear();
        rtx_out_.clear();
      } else if (!cc_->partial_ack_keeps_recovery()) {
        // Classic Reno: the first partial ACK deflates and ends the
        // episode; remaining holes wait for a fresh dup-ACK round or RTO.
        cc_->on_recovery_exit(sim_.now());
        in_recovery_ = false;
        dup_acks_ = 0;
        sacked_.clear();
        rtx_out_.clear();
        restart_rto_if_needed();
      } else if (opts_.sack_enabled) {
        rtx_out_.prune_below(snd_una_);
        // The byte at the new snd_una is a proven hole.
        if (!sacked_.covers(snd_una_) && !rtx_out_.covers(snd_una_)) {
          const std::uint32_t sent = retransmit_at(snd_una_);
          if (sent > 0) {
            rtx_out_.add(snd_una_, snd_una_ + sent);
          }
        }
        recovery_fill();
        restart_rto_if_needed();
      } else {
        // NewReno partial ack: retransmit one hole per RTT.
        retransmit_at(snd_una_);
        cc_->on_partial_ack(newly);
        restart_rto_if_needed();
      }
    } else {
      // Normal window growth (slow start / congestion avoidance / the
      // CCA's own law) belongs to the congestion controller.
      cc_->on_ack(newly, flight(), sim_.now(), rtt_.srtt());
    }

    if (fin_sent_ && !fin_acked_ && snd_una_ > fin_wire_) {
      fin_acked_ = true;
      on_fin_acked();
      if (state_ == TcpState::kDead) {
        return;
      }
    }

    restart_rto_if_needed();
    if (on_writable && send_buf_.free_space() > 0 && !fin_pending_) {
      on_writable();
    }
    try_send();
    return;
  }

  if (is_dup) {
    ++stats_.dup_acks_seen;
    if (metrics_ != nullptr) {
      metrics_->dup_acks->inc();
    }
    if (in_recovery_) {
      if (opts_.sack_enabled) {
        recovery_fill();
      } else {
        cc_->on_recovery_dup_ack();  // inflate for the departed duplicate
        try_send();
      }
    } else if (++dup_acks_ == 3) {
      enter_recovery();
    }
    return;
  }

  // Window update or stale ack: the usable window may have changed.
  try_send();
}

void Connection::enter_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  // The CCA sets ssthresh and the recovery window (for Reno-family, the
  // classic ssthresh + 3 MSS inflation). The retransmission below is not
  // window-gated, so ordering against it does not matter.
  cc_->on_enter_recovery(flight(), sim_.now());
  ++stats_.fast_retransmits;
  if (metrics_ != nullptr) {
    metrics_->fast_retransmits->inc();
  }
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "tcp", "tcp.fast_retransmit", snd_una_);
  }
  timing_active_ = false;  // Karn
  rtx_out_.clear();
  // Retransmit the presumed-lost head segment.
  if (fin_sent_ && snd_una_ == fin_wire_) {
    ++stats_.retransmits;
    send_control(net::kFlagFin, fin_wire_);
  } else {
    const std::uint32_t sent = retransmit_at(snd_una_);
    if (sent > 0) {
      rtx_out_.add(snd_una_, snd_una_ + sent);
    }
  }
  restart_rto_if_needed();
  if (opts_.sack_enabled) {
    recovery_fill();
  } else {
    try_send();
  }
}

std::uint32_t Connection::retransmit_at(std::uint64_t wire_seq) {
  if (wire_seq < 1 || wire_seq >= stream_data_end_wire()) {
    if (fin_sent_ && wire_seq == fin_wire_) {
      ++stats_.retransmits;
      send_control(net::kFlagFin, fin_wire_);
      return 1;
    }
    return 0;
  }
  const std::uint64_t offset = wire_seq - 1;
  auto len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(opts_.mss, send_buf_.end() - offset));
  if (len == 0) {
    return 0;
  }
  // Do not re-send past data the peer already holds.
  if (opts_.sack_enabled) {
    const auto hole = sacked_.next_hole(wire_seq, wire_seq + len);
    if (!hole.found) {
      return 0;
    }
    len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(len, hole.end - hole.begin));
  }
  send_data_segment(wire_seq, len, /*retransmission=*/true);
  return len;
}

std::uint64_t Connection::recovery_pipe() const {
  // RFC 3517 SetPipe, simplified: bytes believed in the network are the
  // outstanding window minus what the peer reported holding, minus holes
  // presumed lost (gaps below the highest SACKed byte), plus holes we have
  // already retransmitted (back in flight).
  const std::uint64_t outstanding = snd_nxt_ - snd_una_;
  const std::uint64_t limit = std::min(recover_, stream_data_end_wire());
  const std::uint64_t highest = std::min(sacked_.highest_end(), limit);
  std::uint64_t lost = 0;
  if (highest > snd_una_) {
    const std::uint64_t region = highest - snd_una_;
    const std::uint64_t sacked_in = sacked_.bytes_below(highest);
    const std::uint64_t rtx_in = rtx_out_.bytes_below(highest);
    const std::uint64_t known = std::min(region, sacked_in + rtx_in);
    lost = region - known;
  }
  const std::uint64_t known_absent = sacked_.sacked_bytes() + lost;
  return outstanding > known_absent ? outstanding - known_absent : 0;
}

std::uint32_t Connection::send_next_recovery_hole() {
  const std::uint64_t limit = std::min(recover_, stream_data_end_wire());
  std::uint64_t cursor = snd_una_;
  while (cursor < limit) {
    const auto hole = sacked_.next_hole(cursor, limit);
    if (!hole.found || !hole.bounded) {
      // Gaps with no SACKed data above are not yet presumed lost.
      return 0;
    }
    // Skip the parts of this hole already retransmitted.
    const auto fresh = rtx_out_.next_hole(hole.begin, hole.end);
    if (!fresh.found) {
      cursor = hole.end;
      continue;
    }
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(opts_.mss, fresh.end - fresh.begin));
    send_data_segment(fresh.begin, len, /*retransmission=*/true);
    rtx_out_.add(fresh.begin, fresh.begin + len);
    return len;
  }
  return 0;
}

void Connection::recovery_fill() {
  while (in_recovery_) {
    const std::uint64_t pipe = recovery_pipe();
    if (pipe + opts_.mss > cc_->cwnd()) {
      return;
    }
    if (send_next_recovery_hole() == 0) {
      break;
    }
  }
  // No presumed-lost holes left: push new data under the normal window
  // machinery (cwnd here is ssthresh-ish, so this stays conservative).
  try_send();
}

void Connection::process_payload(const net::Packet& packet) {
  if (!syn_rcvd_ || packet.tcp.seq == 0) {
    return;
  }
  const std::uint64_t offset = packet.tcp.seq - 1;
  const auto res =
      recv_buf_.on_segment(offset, packet.payload_bytes, packet.content);
  if (res.advanced) {
    rcv_nxt_wire_ = 1 + recv_buf_.rcv_nxt();
    stats_.bytes_received = recv_buf_.rcv_nxt();
    maybe_accept_pending_fin();
    if (on_readable && recv_buf_.readable() > 0) {
      on_readable();
    }
  }
}

void Connection::process_fin(const net::Packet& packet) {
  // FIN sits after any payload carried in the same segment.
  const std::uint64_t fin_seq = packet.tcp.seq + packet.payload_bytes;
  if (!fin_rcvd_) {
    peer_fin_seq_ = fin_seq;
    peer_fin_seen_ = true;
    maybe_accept_pending_fin();
  }
}

void Connection::maybe_accept_pending_fin() {
  if (!peer_fin_seen_ || fin_rcvd_ || rcv_nxt_wire_ != peer_fin_seq_) {
    return;
  }
  fin_rcvd_ = true;
  rcv_nxt_wire_ = peer_fin_seq_ + 1;
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      state_ = fin_acked_ ? TcpState::kTimeWait : TcpState::kClosing;
      if (state_ == TcpState::kTimeWait) {
        enter_time_wait();
      }
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
  if (at_eof() && !eof_delivered_) {
    eof_delivered_ = true;
    if (on_eof) {
      on_eof();
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle transitions

void Connection::advance_handshake_established() {
  state_ = TcpState::kEstablished;
  stats_.established_at = sim_.now();
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "tcp", "tcp.established", local_port_);
  }
  span_on_established();
  restart_rto_if_needed();
  stack_.deliver_accept(ConnKey{remote_node_, local_port_, remote_port_});
}

void Connection::set_span_context(std::uint64_t session,
                                  std::uint64_t parent) {
  span_session_ = session;
  span_parent_ = parent;
  obs::SpanRecorder* sr = obs::spans();
  if (sr == nullptr) {
    return;
  }
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kClosed) {
    connect_span_ = sr->begin(sim_.now(), obs::SpanKind::kConnect,
                              span_session_, span_parent_);
  } else if (state_ == TcpState::kEstablished) {
    stream_span_ = sr->begin(sim_.now(), obs::SpanKind::kStream,
                             span_session_, span_parent_);
  }
}

void Connection::span_on_established() {
  if (span_session_ == 0) {
    return;
  }
  obs::SpanRecorder* sr = obs::spans();
  if (sr == nullptr) {
    return;
  }
  if (connect_span_ != 0) {
    sr->end(sim_.now(), obs::SpanKind::kConnect, connect_span_,
            span_session_, "established");
    connect_span_ = 0;
  }
  stream_span_ = sr->begin(sim_.now(), obs::SpanKind::kStream, span_session_,
                           span_parent_);
}

void Connection::end_spans(const char* reason) {
  if (connect_span_ == 0 && stream_span_ == 0) {
    return;
  }
  if (obs::SpanRecorder* sr = obs::spans()) {
    if (connect_span_ != 0) {
      sr->end(sim_.now(), obs::SpanKind::kConnect, connect_span_,
              span_session_, reason);
    }
    if (stream_span_ != 0) {
      sr->end(sim_.now(), obs::SpanKind::kStream, stream_span_,
              span_session_, reason);
    }
  }
  connect_span_ = 0;
  stream_span_ = 0;
}

void Connection::on_fin_acked() {
  switch (state_) {
    case TcpState::kFinWait1:
      state_ = TcpState::kFinWait2;
      break;
    case TcpState::kClosing:
      enter_time_wait();
      break;
    case TcpState::kLastAck:
      become_dead();
      break;
    default:
      break;
  }
}

void Connection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  rto_timer_.cancel();
  persist_timer_.cancel();
  time_wait_timer_.arm(opts_.time_wait);
}

void Connection::become_dead() {
  if (state_ == TcpState::kDead) {
    return;
  }
  state_ = TcpState::kDead;
  if (obs::TraceRecorder* tr = obs::tracer()) {
    tr->instant(sim_.now(), "tcp", "tcp.closed", local_port_);
  }
  end_spans(error_ != ConnectionError::kNone ? to_string(error_) : "closed");
  fluid_teardown();
  rto_timer_.cancel();
  persist_timer_.cancel();
  time_wait_timer_.cancel();
  delack_timer_.cancel();
  stack_.reap(ConnKey{remote_node_, local_port_, remote_port_});
  if (error_ != ConnectionError::kNone && on_error) {
    on_error(error_);
  }
  if (on_closed) {
    on_closed();
  }
}

// ---------------------------------------------------------------------------
// Fluid data plane

bool Connection::ensure_fluid_channel() {
  if (fluid_data_plane()) {
    return true;
  }
  if (fluid_checked_) {
    return false;
  }
  fluid_checked_ = true;
  flow::FluidNetwork* fnet = stack_.topology().fluid();
  if (fnet == nullptr) {
    return false;
  }
  const auto fwd = stack_.topology().fluid_path(local_node_, remote_node_);
  const auto rev = stack_.topology().fluid_path(remote_node_, local_node_);
  if (!fwd.found || !rev.found) {
    return false;
  }
  auto* peer_stack = dynamic_cast<TcpStack*>(
      stack_.topology().protocol_handle(remote_node_));
  if (peer_stack == nullptr) {
    return false;
  }
  const auto peer = peer_stack->find_connection(
      ConnKey{local_node_, remote_port_, local_port_});
  if (peer == nullptr) {
    return false;
  }
  fluid_peer_ = peer;
  fluid_fwd_latency_ = fwd.latency + fwd.serialization;
  fluid_rev_latency_ = rev.latency;
  fluid_window_ = std::max<std::uint64_t>(
      1, std::min(opts_.send_buffer_bytes, peer->opts_.recv_buffer_bytes));

  flow::FluidFlowSpec spec;
  spec.path = std::vector<flow::FluidLinkId>(fwd.links.begin(),
                                             fwd.links.end());
  // Base RTT as a data segment experiences it: forward propagation plus
  // store-and-forward serialization, then the ACK's return propagation.
  spec.rtt = std::max(fwd.latency + fwd.serialization + rev.latency,
                      SimTime::microseconds(1));
  spec.window_bytes = fluid_window_;
  spec.mss = opts_.mss;
  spec.initial_cwnd_segments = opts_.initial_cwnd_segments;
  spec.cca = opts_.cca;
  fluid_flow_ = fnet->start_flow(std::move(spec));
  return fluid_data_plane();
}

void Connection::fluid_pump() {
  flow::FluidNetwork* fnet = stack_.topology().fluid();
  if (fnet == nullptr || !fnet->alive(fluid_flow_)) {
    return;
  }
  // Chunks large enough to amortize marker events, small enough that two of
  // them fit under the unacked cap so the engine never drains between offers.
  const std::uint64_t quantum =
      std::clamp<std::uint64_t>(fluid_window_, 64 * kKiB, 4 * kMiB);
  // The engine's rate cap (window/RTT) already models the ACK clock, so the
  // pump must not serialize on acknowledgements a second time: with two
  // windows offered-but-unacked the next chunk is always queued before the
  // engine drains the current one, while acks (one reverse latency behind
  // delivery) free the budget in time to keep transmission continuous. A
  // momentary overshoot of the peer's buffer is held in its pending queue,
  // so this bound is about engine-side state, not delivery safety.
  const std::uint64_t inflight_limit = 2 * fluid_window_;
  while (true) {
    const std::uint64_t avail = send_buf_.end() - fluid_offered_;
    if (avail == 0) {
      break;
    }
    const std::uint64_t inflight = fluid_offered_ - fluid_acked_;
    if (inflight >= inflight_limit) {
      break;
    }
    const std::uint64_t n =
        std::min({avail, quantum, inflight_limit - inflight});
    fluid_offered_ += n;
    snd_max_ = std::max(snd_max_, 1 + fluid_offered_);
    stats_.bytes_sent += n;
    fnet->add_bytes(fluid_flow_, n);
    auto self = shared_from_this();
    fnet->notify_at(fluid_flow_, fluid_offered_,
                    [self, end = fluid_offered_] {
                      self->on_fluid_transmitted(end);
                    });
  }
}

void Connection::on_fluid_transmitted(std::uint64_t end_offset) {
  if (state_ == TcpState::kDead) {
    return;
  }
  const std::uint64_t begin = fluid_transmitted_;
  if (end_offset <= begin) {
    return;
  }
  fluid_transmitted_ = end_offset;
  if (const auto peer = fluid_peer_.lock()) {
    auto content = send_buf_.content_slice(begin, end_offset - begin);
    auto self = shared_from_this();
    sim_.schedule_after(
        fluid_fwd_latency_,
        [self, peer, begin, end_offset, c = std::move(content)]() mutable {
          peer->fluid_deliver(begin, end_offset - begin, std::move(c), self);
        },
        "net.fluid.deliver");
  }
  // The engine is lossless and the delivery closure owns the bytes now, so
  // the send buffer reopens at transmit-complete. Releasing only on acks
  // would serialize refills on whole-chunk round trips; at packet fidelity
  // acks stream back per segment and refill the buffer continuously.
  if (end_offset > send_buf_.head()) {
    send_buf_.release_through(end_offset);
    if (on_writable && send_buf_.free_space() > 0 && !fin_pending_) {
      on_writable();
    }
  }
  try_send();  // emits the FIN once the last byte has left
}

void Connection::fluid_deliver(std::uint64_t offset, std::uint64_t len,
                               std::vector<std::byte> content,
                               const Ptr& sender) {
  if (state_ == TcpState::kDead || !syn_rcvd_) {
    return;  // receiver gone: bytes vanish, the sender's watchdog decides
  }
  fluid_pending_.push_back(FluidPending{offset, len, std::move(content),
                                        sender});
  if (fluid_admit_pending() && on_readable && recv_buf_.readable() > 0) {
    on_readable();
  }
}

bool Connection::fluid_admit_pending() {
  bool advanced = false;
  Ptr acker;
  while (!fluid_pending_.empty()) {
    auto& p = fluid_pending_.front();
    const auto res = recv_buf_.on_segment(
        p.offset, p.len, std::span<const std::byte>(p.content));
    advanced = advanced || res.advanced;
    if (res.accepted > 0) {
      acker = p.sender;
    }
    if (res.accepted < p.len) {
      // Receive buffer full: hold the tail until the application reads.
      // The sender's ack budget stalls with it, which is what throttles
      // the flow -- no bytes are ever dropped on the fluid plane.
      p.offset += res.accepted;
      p.len -= res.accepted;
      p.content.erase(p.content.begin(),
                      p.content.begin() +
                          static_cast<std::ptrdiff_t>(std::min<std::uint64_t>(
                              res.accepted, p.content.size())));
      break;
    }
    fluid_pending_.pop_front();
  }
  if (advanced) {
    rcv_nxt_wire_ = 1 + recv_buf_.rcv_nxt();
    stats_.bytes_received = recv_buf_.rcv_nxt();
    maybe_accept_pending_fin();
  }
  if (acker != nullptr) {
    // Report the in-order frontier back after the reverse path's latency --
    // the fluid stand-in for the ACK clock (never lost, never duplicated).
    const std::uint64_t ack_data = recv_buf_.rcv_nxt();
    sim_.schedule_after(
        acker->fluid_rev_latency_,
        [acker, ack_data] { acker->fluid_handle_ack(ack_data); },
        "net.fluid.ack");
  }
  return advanced;
}

void Connection::fluid_handle_ack(std::uint64_t ack_data) {
  if (state_ == TcpState::kDead || ack_data <= fluid_acked_) {
    return;
  }
  stats_.bytes_acked += ack_data - fluid_acked_;
  fluid_acked_ = ack_data;
  data_retries_ = 0;
  snd_una_ = std::max(snd_una_, 1 + ack_data);
  snd_nxt_ = std::max(snd_nxt_, snd_una_);
  snd_max_ = std::max(snd_max_, snd_nxt_);
  if (ack_data > send_buf_.head()) {
    send_buf_.release_through(ack_data);  // markers normally release first
  }
  if (on_ack_advance) {
    on_ack_advance(sim_.now(), fluid_acked_);
  }
  if (on_writable && send_buf_.free_space() > 0 && !fin_pending_) {
    on_writable();
  }
  try_send();
}

void Connection::fluid_teardown() {
  fluid_pending_.clear();  // drops the sender refs held for pending acks
  if (!fluid_data_plane()) {
    return;
  }
  if (flow::FluidNetwork* fnet = stack_.topology().fluid()) {
    fnet->end_flow(fluid_flow_);
  }
  fluid_flow_ = flow::kInvalidFluidFlow;
}

}  // namespace lsl::tcp
