// TCP connection: loss detection and flow control over the packet simulator,
// with the congestion window delegated to a pluggable tcp::CongestionControl
// (Reno / NewReno / CUBIC / BBR -- see congestion.hpp, TcpOptions::cca).
//
// Implements the mechanisms the paper's "logistical effect" rests on:
//   * slow start & congestion avoidance (throughput ramps at RTT cadence),
//   * fast retransmit / fast recovery (NewReno partial-ACK handling),
//   * retransmission timeout with Jacobson/Karels RTO and Karn's rule,
//   * receive-window flow control from finite socket buffers (the depot
//     backpressure path), including zero-window probing,
//   * graceful close (FIN in both directions).
//
// Sequence numbering: each direction's SYN occupies wire sequence 0, data
// byte k occupies wire sequence 1+k, FIN occupies 1+stream_length. Buffers
// work in pure data offsets; the connection translates at the wire boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flow/fluid.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/timer.hpp"
#include "tcp/congestion.hpp"
#include "tcp/options.hpp"
#include "tcp/recv_buffer.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/sack.hpp"
#include "tcp/send_buffer.hpp"

namespace lsl::tcp {

class TcpStack;

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kClosing,
  kCloseWait,
  kLastAck,
  kTimeWait,
  kDead,
};

[[nodiscard]] const char* to_string(TcpState s);

/// Abnormal termination causes, reported through Connection::on_error just
/// before on_closed. Local abort() is not an error (the application asked).
enum class ConnectionError {
  kNone = 0,
  kConnectTimeout,     ///< handshake exhausted max_syn_retries
  kReset,              ///< peer sent RST
  kRetransmitTimeout,  ///< data/FIN retransmits exhausted max_data_retries
};

[[nodiscard]] const char* to_string(ConnectionError e);

/// Process-wide TCP instruments in the global metrics registry, shared by
/// every connection (stack-level aggregates; per-connection detail stays in
/// ConnectionStats). Obtained once at connection construction so hot-path
/// updates are plain pointer stores.
struct TcpMetrics {
  obs::Counter* connections;       ///< tcp.conn.opened
  obs::Counter* segments_sent;     ///< tcp.conn.segments_sent
  obs::Counter* retransmits;       ///< tcp.conn.retransmits
  obs::Counter* fast_retransmits;  ///< tcp.conn.fast_retransmits
  obs::Counter* timeouts;          ///< tcp.conn.timeouts
  obs::Counter* dup_acks;          ///< tcp.conn.dup_acks
  obs::Counter* sack_blocks_rx;    ///< tcp.conn.sack_blocks_rx
  obs::Histogram* rtt_ms;          ///< tcp.conn.rtt_ms
  obs::Histogram* cwnd_segments;   ///< tcp.conn.cwnd_segments

  /// nullptr while obs::metrics_enabled() is false.
  static TcpMetrics* get();
};

struct ConnectionStats {
  std::uint64_t bytes_sent = 0;           ///< payload bytes first-transmitted
  std::uint64_t bytes_acked = 0;          ///< payload bytes cumulatively acked
  std::uint64_t bytes_received = 0;       ///< payload bytes admitted in order
  std::uint64_t bytes_read = 0;           ///< bytes returned to the app
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_seen = 0;
  SimTime established_at = SimTime::zero();
};

/// A TCP connection; doubles as the application-facing socket.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using Ptr = std::shared_ptr<Connection>;

  /// Application callbacks. All optional; fired from within packet/timer
  /// processing (never reentrantly into the caller of a socket method).
  std::function<void()> on_connected;
  std::function<void()> on_readable;
  std::function<void()> on_writable;
  std::function<void()> on_eof;     ///< peer FIN received & all data read
  std::function<void()> on_closed;  ///< connection fully terminated
  /// Abnormal termination (reset / connect timeout), fired immediately
  /// before on_closed. Clean FIN teardown never fires this, so endpoints
  /// can distinguish failure from EOF without inference.
  std::function<void(ConnectionError)> on_error;
  /// Sender-side trace hook: fires when cumulative acked payload advances;
  /// argument is total acked payload bytes (the paper's Figs 4/5 series).
  std::function<void(SimTime, std::uint64_t)> on_ack_advance;

  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ---- application API -------------------------------------------------
  /// Queue real bytes (must precede all synthetic payload). Returns accepted.
  std::uint64_t write_bytes(std::span<const std::byte> bytes);
  /// Queue synthetic payload bytes. Returns accepted.
  std::uint64_t write_synthetic(std::uint64_t n);
  /// Read up to `max` in-order bytes.
  RecvBuffer::ReadResult read(std::uint64_t max);
  /// Close the send direction after all queued data (half-close).
  void close();
  /// Hard abort: RST to peer, immediate teardown.
  void abort();

  [[nodiscard]] std::uint64_t readable_bytes() const {
    return recv_buf_.readable();
  }
  [[nodiscard]] std::uint64_t writable_bytes() const {
    return send_buf_.free_space();
  }
  /// True once the peer's FIN is received and every byte has been read.
  [[nodiscard]] bool at_eof() const {
    return fin_rcvd_ && recv_buf_.readable() == 0;
  }

  // ---- introspection ---------------------------------------------------
  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] const ConnectionStats& stats() const { return stats_; }
  [[nodiscard]] const TcpOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t cwnd() const { return cc_->cwnd(); }
  [[nodiscard]] std::uint64_t ssthresh() const { return cc_->ssthresh(); }
  /// The congestion-control implementation driving this connection.
  [[nodiscard]] const CongestionControl& congestion() const { return *cc_; }
  [[nodiscard]] SimTime srtt() const { return rtt_.srtt(); }
  [[nodiscard]] net::NodeId local_node() const { return local_node_; }
  [[nodiscard]] net::NodeId remote_node() const { return remote_node_; }
  [[nodiscard]] net::Port local_port() const { return local_port_; }
  [[nodiscard]] net::Port remote_port() const { return remote_port_; }
  /// Total payload bytes the peer has acknowledged (sender-side progress).
  [[nodiscard]] std::uint64_t acked_payload() const;
  /// Why the connection died, kNone for clean teardown or while alive.
  [[nodiscard]] ConnectionError last_error() const { return error_; }

  /// One-line internal state summary for diagnostics.
  [[nodiscard]] std::string debug_string() const;

  // ---- causal spans (obs/span.hpp) -------------------------------------
  /// Attribute this connection's lifecycle to a session: from here on it
  /// emits Connect / Stream spans parented under `parent` (typically the
  /// owning attempt span) and RtoWait episodes, tagged with the session
  /// hash. Call right after connect(); no-op while span recording is off.
  void set_span_context(std::uint64_t session, std::uint64_t parent);
  /// Close any span this connection opened (idempotent; become_dead calls
  /// it with the error string, owners may call it earlier on detach).
  void end_spans(const char* reason);

 private:
  friend class TcpStack;

  Connection(TcpStack& stack, net::NodeId local, net::NodeId remote,
             net::Port local_port, net::Port remote_port, TcpOptions opts);

  void start_active_open();
  void start_passive_open();  ///< caller feeds the SYN via handle_packet

  void handle_packet(const net::Packet& packet);

  void process_ack(const net::Packet& packet);
  void process_payload(const net::Packet& packet);
  void process_fin(const net::Packet& packet);
  void maybe_accept_pending_fin();

  void try_send();
  void send_data_segment(std::uint64_t wire_seq, std::uint32_t len,
                         bool retransmission);
  void send_control(std::uint8_t flags, std::uint64_t wire_seq);
  void send_pure_ack();
  /// ACK generation for received data: immediate, or deferred per the
  /// delayed-ACK rules when enabled.
  void acknowledge_data(bool out_of_order);
  void attach_sack_blocks(net::TcpHeader& header);
  void maybe_send_window_update();

  void enter_recovery();
  /// RFC 3517-style pipe-limited recovery: while the estimated in-network
  /// byte count is below cwnd, retransmit presumed-lost holes (then new
  /// data). Self-clocked by arriving (dup/partial) ACKs.
  void recovery_fill();
  [[nodiscard]] std::uint64_t recovery_pipe() const;
  /// Retransmit the next presumed-lost, not-yet-retransmitted hole segment.
  /// Returns bytes sent (0 when no eligible hole remains).
  std::uint32_t send_next_recovery_hole();
  /// Retransmit up to one MSS of payload starting at `wire_seq`; returns the
  /// length sent (0 when nothing to send there).
  std::uint32_t retransmit_at(std::uint64_t wire_seq);
  void on_rto();
  void on_persist();
  void arm_rto();
  void restart_rto_if_needed();

  void advance_handshake_established();
  void span_on_established();
  void on_fin_acked();
  void enter_time_wait();
  void become_dead();

  // ---- fluid data plane ------------------------------------------------
  // When the topology runs at flow fidelity, payload bytes ride a fluid
  // flow instead of data segments: the pump offers window-sized chunks to
  // the fluid engine, transmit-completion markers schedule deliveries into
  // the peer's receive buffer after the path's one-way latency, and
  // deliveries schedule rate-less "ACK" callbacks that release the send
  // buffer. Packets still carry SYN/FIN/RST and window updates, so
  // handshake loss, resets, and teardown behave exactly as at packet
  // fidelity.
  [[nodiscard]] bool fluid_data_plane() const {
    return fluid_flow_ != flow::kInvalidFluidFlow;
  }
  /// Lazily create the fluid flow + peer binding; false when unavailable
  /// (packet fidelity, no route, or peer endpoint gone).
  bool ensure_fluid_channel();
  void fluid_pump();
  void on_fluid_transmitted(std::uint64_t end_offset);
  /// Receiver side: admit [offset, offset+len) into the receive buffer (or
  /// hold it in the pending queue while the buffer is full).
  void fluid_deliver(std::uint64_t offset, std::uint64_t len,
                     std::vector<std::byte> content, const Ptr& sender);
  /// Move held chunks into the receive buffer as space opens; returns
  /// whether the in-order frontier advanced. Schedules cumulative acks.
  bool fluid_admit_pending();
  /// Sender side: cumulative in-order receive frontier reported back.
  void fluid_handle_ack(std::uint64_t ack_data);
  void fluid_teardown();

  [[nodiscard]] std::uint64_t flight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t usable_window() const;
  [[nodiscard]] std::uint64_t advertised_window() const;
  [[nodiscard]] std::uint64_t stream_data_end_wire() const {
    return 1 + send_buf_.end();
  }

  TcpStack& stack_;
  sim::Simulator& sim_;
  net::NodeId local_node_;
  net::NodeId remote_node_;
  net::Port local_port_;
  net::Port remote_port_;
  TcpOptions opts_;

  TcpState state_ = TcpState::kClosed;
  ConnectionError error_ = ConnectionError::kNone;

  SendBuffer send_buf_;
  RecvBuffer recv_buf_;
  RttEstimator rtt_;

  // Sender state (wire sequence units).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  ///< highest wire seq ever sent
  std::uint64_t snd_wnd_ = 0;  ///< peer advertised window (bytes)
  std::unique_ptr<CongestionControl> cc_;  ///< owns cwnd/ssthresh
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  SackScoreboard sacked_;
  SackScoreboard rtx_out_;  ///< ranges retransmitted this recovery episode

  bool fin_pending_ = false;  ///< close() called, FIN not yet sent
  bool fin_sent_ = false;
  std::uint64_t fin_wire_ = 0;
  bool fin_acked_ = false;

  // Receiver state.
  std::uint64_t rcv_nxt_wire_ = 0;  ///< 0 until SYN arrives, then 1 + data
  bool syn_rcvd_ = false;
  bool peer_fin_seen_ = false;
  std::uint64_t peer_fin_seq_ = 0;
  bool fin_rcvd_ = false;
  bool eof_delivered_ = false;
  std::uint64_t last_advertised_wnd_ = 0;

  // RTT timing (Karn's algorithm): one timed segment at a time.
  bool timing_active_ = false;
  std::uint64_t timed_wire_end_ = 0;
  SimTime timed_sent_at_ = SimTime::zero();

  sim::Timer rto_timer_;
  sim::Timer persist_timer_;
  sim::Timer time_wait_timer_;
  sim::Timer delack_timer_;
  int unacked_segments_ = 0;  ///< data segments since the last ACK we sent
  int syn_retries_ = 0;
  int data_retries_ = 0;  ///< consecutive RTOs with no ACK progress

  ConnectionStats stats_;
  TcpMetrics* metrics_ = nullptr;  ///< shared instruments (may be null)
  std::uint64_t next_packet_uid_ = 1;

  // Causal span attribution (0 = no context / span closed).
  std::uint64_t span_session_ = 0;
  std::uint64_t span_parent_ = 0;
  std::uint64_t connect_span_ = 0;
  std::uint64_t stream_span_ = 0;
  SimTime rto_armed_at_ = SimTime::zero();

  // Fluid data plane (all zero/invalid at packet fidelity).
  struct FluidPending {
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::vector<std::byte> content;
    Ptr sender;  ///< kept alive until its bytes are admitted and acked
  };

  flow::FluidFlowId fluid_flow_ = flow::kInvalidFluidFlow;
  bool fluid_checked_ = false;  ///< channel setup attempted (and failed)
  std::weak_ptr<Connection> fluid_peer_;
  SimTime fluid_fwd_latency_ = SimTime::zero();  ///< transmit end -> delivery
  SimTime fluid_rev_latency_ = SimTime::zero();  ///< delivery -> ack
  std::uint64_t fluid_window_ = 0;  ///< min(send buffer, peer recv buffer)
  std::uint64_t fluid_offered_ = 0;      ///< bytes handed to the engine
  std::uint64_t fluid_transmitted_ = 0;  ///< bytes whose markers fired
  std::uint64_t fluid_acked_ = 0;        ///< bytes released by acks
  /// Receiver side: arrived chunks waiting for receive-buffer space.
  std::deque<FluidPending> fluid_pending_;
};

}  // namespace lsl::tcp
