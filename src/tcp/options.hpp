// Per-connection TCP tuning knobs.
//
// The paper's experiments hinge on exactly these parameters: the Abilene
// tests used 8 MB socket buffers set with setsockopt, PlanetLab hosts were
// pinned at 64 KB, and depot relays combine both. Defaults mirror a
// conservative early-2000s Linux host.
#pragma once

#include <cstdint>

#include "flow/tcp_model.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace lsl::tcp {

/// Congestion-control algorithm selector (shared with the flow-level
/// steady-state model; see flow::Cca).
using Cca = flow::Cca;

struct TcpOptions {
  /// Maximum segment size (payload bytes per packet).
  std::uint32_t mss = 1460;

  /// Congestion-control algorithm (tcp::CongestionControl implementation).
  /// NewReno + SACK is the historical default every calibration golden and
  /// determinism baseline was recorded against.
  Cca cca = Cca::kNewReno;

  /// Socket send buffer (bytes the app may queue ahead of ACKs).
  std::uint64_t send_buffer_bytes = 64 * kKiB;

  /// Socket receive buffer; its free space is the advertised window.
  std::uint64_t recv_buffer_bytes = 64 * kKiB;

  /// Initial congestion window, in segments (RFC 2581 allowed 2).
  std::uint32_t initial_cwnd_segments = 2;

  /// Selective acknowledgment (on by default, as in Linux 2.4). When off,
  /// loss recovery degrades to plain NewReno partial-ACK hole filling.
  bool sack_enabled = true;

  /// Delayed acknowledgments (RFC 1122): ACK every second full segment or
  /// after delayed_ack_timeout, whichever first; out-of-order data is ACKed
  /// immediately. Off by default so that direct-vs-relayed comparisons are
  /// clocked identically; the ablation benches exercise it.
  bool delayed_ack = false;
  SimTime delayed_ack_timeout = SimTime::milliseconds(40);

  /// Give up on a handshake after this many SYN (or SYN-ACK)
  /// retransmissions; the connection dies and on_closed fires.
  int max_syn_retries = 6;

  /// Give up after this many consecutive retransmission timeouts with no
  /// ACK progress (RFC 1122's R2 in spirit); the connection dies with
  /// kRetransmitTimeout. Bounds teardown when the peer vanishes without a
  /// RST reaching us -- crashed host, partitioned link.
  int max_data_retries = 10;

  /// Nagle's algorithm (RFC 896): hold sub-MSS segments while unacked data
  /// is in flight, coalescing small writes. Off by default: bulk transfers
  /// never produce runts mid-stream and benches want minimum latency.
  bool nagle = false;

  /// Retransmission timer bounds (Jacobson/Karels estimator output clamps).
  SimTime initial_rto = SimTime::seconds(1);
  SimTime min_rto = SimTime::milliseconds(200);
  SimTime max_rto = SimTime::seconds(60);

  /// Linger in TIME_WAIT before the connection object is reaped. Kept far
  /// below 2*MSL; sequence reuse cannot occur in the 64-bit sim space.
  SimTime time_wait = SimTime::milliseconds(500);

  [[nodiscard]] TcpOptions with_buffers(std::uint64_t bytes) const {
    TcpOptions o = *this;
    o.send_buffer_bytes = bytes;
    o.recv_buffer_bytes = bytes;
    return o;
  }

  [[nodiscard]] TcpOptions with_cca(Cca algorithm) const {
    TcpOptions o = *this;
    o.cca = algorithm;
    return o;
  }
};

}  // namespace lsl::tcp
