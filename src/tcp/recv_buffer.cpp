#include "tcp/recv_buffer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::tcp {

std::uint64_t RecvBuffer::window() const {
  // Advertised from the in-order frontier only: held out-of-order data does
  // not shrink the offered window (it lives within it), so duplicate ACKs
  // during loss recovery all carry the same advertisement -- real stacks
  // behave this way and Reno's dup-ack counting depends on it.
  const std::uint64_t held = rcv_nxt_ - delivered_;
  return held >= capacity_ ? 0 : capacity_ - held;
}

RecvBuffer::AcceptResult RecvBuffer::on_segment(
    std::uint64_t seq, std::uint64_t len, std::span<const std::byte> content) {
  AcceptResult result;
  if (len == 0) {
    return result;
  }
  std::uint64_t begin = seq;
  std::uint64_t end = seq + len;

  // Stash any real content immediately (idempotent; retransmits overwrite
  // with identical bytes). Content is only ever a prefix of the stream.
  if (!content.empty()) {
    const std::uint64_t content_end = seq + content.size();
    if (prefix_store_.size() < content_end) {
      prefix_store_.resize(content_end);
    }
    std::copy(content.begin(), content.end(),
              prefix_store_.begin() + static_cast<std::ptrdiff_t>(seq));
  }

  // Trim below the in-order frontier (duplicate data).
  begin = std::max(begin, rcv_nxt_);
  // Clamp to the window: never admit bytes beyond what we advertised.
  const std::uint64_t limit = delivered_ + capacity_;
  end = std::min(end, limit);
  if (begin >= end) {
    return result;
  }

  if (begin == rcv_nxt_) {
    rcv_nxt_ = end;
    result.accepted += end - begin;
    result.advanced = true;
    merge_ooo();
  } else {
    // Remember where this piece landed for SACK block recency ordering.
    recent_ooo_.push_front(begin);
    if (recent_ooo_.size() > 8) {
      recent_ooo_.pop_back();
    }
    // Insert [begin, end) into the disjoint OOO set, clipping overlaps.
    auto it = ooo_.lower_bound(begin);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      const std::uint64_t prev_end = prev->first + prev->second;
      begin = std::max(begin, prev_end);
    }
    while (begin < end) {
      it = ooo_.lower_bound(begin);
      std::uint64_t piece_end = end;
      if (it != ooo_.end()) {
        piece_end = std::min(piece_end, it->first);
      }
      if (begin < piece_end) {
        ooo_.emplace(begin, piece_end - begin);
        ooo_bytes_ += piece_end - begin;
        result.accepted += piece_end - begin;
      }
      if (it == ooo_.end()) {
        break;
      }
      begin = std::max(begin, it->first + it->second);
    }
  }
  return result;
}

void RecvBuffer::merge_ooo() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    const std::uint64_t seg_end = it->first + it->second;
    if (seg_end > rcv_nxt_) {
      rcv_nxt_ = seg_end;
    }
    ooo_bytes_ -= it->second;
    it = ooo_.erase(it);
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> RecvBuffer::ooo_ranges(
    std::size_t max_blocks) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  auto push_range = [&](std::uint64_t begin, std::uint64_t end) {
    for (const auto& r : out) {
      if (r.first == begin) {
        return;
      }
    }
    if (out.size() < max_blocks) {
      out.emplace_back(begin, end);
    }
  };
  // Most recently changed blocks first (real SACK option ordering).
  for (const std::uint64_t offset : recent_ooo_) {
    if (out.size() == max_blocks) {
      break;
    }
    auto it = ooo_.upper_bound(offset);
    if (it == ooo_.begin()) {
      continue;  // stale: piece was merged into the in-order stream
    }
    --it;
    if (offset >= it->first && offset < it->first + it->second) {
      push_range(it->first, it->first + it->second);
    }
  }
  // Fill any remaining slots lowest-first.
  for (const auto& [start, len] : ooo_) {
    if (out.size() == max_blocks) {
      break;
    }
    push_range(start, start + len);
  }
  return out;
}

RecvBuffer::ReadResult RecvBuffer::read(std::uint64_t max) {
  ReadResult r;
  r.n = std::min(max, readable());
  if (r.n == 0) {
    return r;
  }
  if (delivered_ < prefix_store_.size()) {
    const std::uint64_t stop =
        std::min<std::uint64_t>(prefix_store_.size(), delivered_ + r.n);
    r.real_bytes.assign(
        prefix_store_.begin() + static_cast<std::ptrdiff_t>(delivered_),
        prefix_store_.begin() + static_cast<std::ptrdiff_t>(stop));
  }
  delivered_ += r.n;
  return r;
}

}  // namespace lsl::tcp
