// Receiver-side socket buffer with out-of-order segment reassembly.
//
// Tracks three frontiers over absolute stream offsets:
//   delivered_  -- next byte the application will read,
//   rcv_nxt_    -- next byte expected from the network (in-order frontier),
//   OOO ranges  -- segments above rcv_nxt_ held for reassembly.
// The advertised window is the buffer space not occupied by undelivered
// in-order data or held out-of-order data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

namespace lsl::tcp {

class RecvBuffer {
 public:
  explicit RecvBuffer(std::uint64_t capacity) : capacity_(capacity) {}

  struct AcceptResult {
    /// Bytes newly admitted (after trimming overlap and window clamping).
    std::uint64_t accepted = 0;
    /// Whether rcv_nxt advanced (caller delivers readable-notification).
    bool advanced = false;
  };

  /// Offer segment [seq, seq+len) with optional real content bytes aligned
  /// at `seq`. Data beyond the window is trimmed; duplicates are ignored.
  AcceptResult on_segment(std::uint64_t seq, std::uint64_t len,
                          std::span<const std::byte> content);

  struct ReadResult {
    std::uint64_t n = 0;                ///< bytes consumed
    std::vector<std::byte> real_bytes;  ///< real content at the front, if any
  };

  /// Consume up to `max` in-order bytes.
  ReadResult read(std::uint64_t max);

  [[nodiscard]] std::uint64_t readable() const { return rcv_nxt_ - delivered_; }
  [[nodiscard]] std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// Current advertised window: free buffer space above rcv_nxt.
  [[nodiscard]] std::uint64_t window() const;

  [[nodiscard]] std::uint64_t ooo_bytes() const { return ooo_bytes_; }

  /// Up to `max_blocks` held out-of-order ranges, as (begin, end) data
  /// offsets -- the receiver's SACK report. Ordered like the real option:
  /// the block containing the most recently arrived segment first, then
  /// other recently changed blocks, then lowest-first fill.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  ooo_ranges(std::size_t max_blocks) const;

 private:
  void merge_ooo();

  std::uint64_t capacity_;
  std::uint64_t delivered_ = 0;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< start -> length, disjoint
  std::uint64_t ooo_bytes_ = 0;
  /// Offsets of recently arrived OOO pieces, most recent first (for SACK
  /// block ordering). Stale entries are filtered lazily.
  std::deque<std::uint64_t> recent_ooo_;
  std::vector<std::byte> prefix_store_;  ///< real bytes for offsets [0, size())
};

}  // namespace lsl::tcp
