#include "tcp/rtt_estimator.hpp"

#include <algorithm>
#include <cstdlib>

namespace lsl::tcp {

void RttEstimator::add_sample(SimTime rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt
    const SimTime err{std::abs((srtt_ - rtt).ns())};
    rttvar_ = SimTime{(3 * rttvar_.ns()) / 4 + err.ns() / 4};
    srtt_ = SimTime{(7 * srtt_.ns()) / 8 + rtt.ns() / 8};
  }
  backoff_count_ = 0;
  base_rto_ = srtt_ + 4 * rttvar_;
  rto_ = base_rto_;
  clamp_rto();
}

void RttEstimator::backoff() {
  ++backoff_count_;
  if (base_rto_ == SimTime::zero()) {
    base_rto_ = rto_;
  }
  const int shift = std::min(backoff_count_, 16);
  rto_ = SimTime{base_rto_.ns() << shift};
  clamp_rto();
}

void RttEstimator::clamp_rto() {
  rto_ = std::clamp(rto_, min_rto_, max_rto_);
}

}  // namespace lsl::tcp
