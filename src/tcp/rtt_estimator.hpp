// Jacobson/Karels smoothed RTT estimation with Karn's algorithm handled by
// the caller (only un-retransmitted segments are sampled).
#pragma once

#include "tcp/options.hpp"
#include "util/time.hpp"

namespace lsl::tcp {

class RttEstimator {
 public:
  explicit RttEstimator(const TcpOptions& options)
      : min_rto_(options.min_rto),
        max_rto_(options.max_rto),
        rto_(options.initial_rto) {}

  /// Feed one RTT sample; updates srtt/rttvar/rto per RFC 6298 and resets
  /// any timer backoff.
  void add_sample(SimTime rtt);

  /// Exponential backoff after a retransmission timeout.
  void backoff();

  [[nodiscard]] SimTime rto() const { return rto_; }
  [[nodiscard]] SimTime srtt() const { return srtt_; }
  [[nodiscard]] SimTime rttvar() const { return rttvar_; }
  [[nodiscard]] bool has_sample() const { return has_sample_; }

 private:
  void clamp_rto();

  SimTime min_rto_;
  SimTime max_rto_;
  SimTime srtt_ = SimTime::zero();
  SimTime rttvar_ = SimTime::zero();
  SimTime rto_;
  SimTime base_rto_ = SimTime::zero();  ///< rto before backoff
  int backoff_count_ = 0;
  bool has_sample_ = false;
};

}  // namespace lsl::tcp
