#include "tcp/sack.hpp"

#include <algorithm>

namespace lsl::tcp {

void SackScoreboard::add(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) {
    return;
  }
  // Absorb every range overlapping or adjacent to [begin, end).
  auto it = ranges_.lower_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      it = prev;
    }
  }
  while (it != ranges_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    bytes_ -= it->second - it->first;
    it = ranges_.erase(it);
  }
  ranges_.emplace(begin, end);
  bytes_ += end - begin;
}

void SackScoreboard::prune_below(std::uint64_t seq) {
  auto it = ranges_.begin();
  while (it != ranges_.end() && it->first < seq) {
    if (it->second <= seq) {
      bytes_ -= it->second - it->first;
      it = ranges_.erase(it);
    } else {
      const std::uint64_t new_begin = seq;
      const std::uint64_t end = it->second;
      bytes_ -= new_begin - it->first;
      ranges_.erase(it);
      ranges_.emplace(new_begin, end);
      break;
    }
  }
}

void SackScoreboard::clear() {
  ranges_.clear();
  bytes_ = 0;
}

std::uint64_t SackScoreboard::bytes_below(std::uint64_t seq) const {
  std::uint64_t total = 0;
  for (const auto& [begin, end] : ranges_) {
    if (begin >= seq) {
      break;
    }
    total += std::min(end, seq) - begin;
  }
  return total;
}

bool SackScoreboard::covers(std::uint64_t seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it == ranges_.begin()) {
    return false;
  }
  --it;
  return seq >= it->first && seq < it->second;
}

SackScoreboard::Hole SackScoreboard::next_hole(std::uint64_t from,
                                               std::uint64_t limit) const {
  std::uint64_t cursor = from;
  auto it = ranges_.upper_bound(cursor);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (cursor < prev->second) {
      cursor = prev->second;  // `from` sits inside a sacked range
    }
  }
  Hole hole;
  if (cursor >= limit) {
    return hole;
  }
  hole.begin = cursor;
  hole.end = limit;
  if (it != ranges_.end()) {
    if (it->first < limit) {
      hole.end = it->first;
    }
    hole.bounded = true;  // some SACKed range lies above this gap
  }
  hole.found = hole.begin < hole.end;
  return hole;
}

}  // namespace lsl::tcp
