// Sender-side SACK scoreboard: the set of wire-sequence ranges the peer has
// reported holding above the cumulative ACK. Used during fast recovery to
// retransmit only the holes (RFC 2018/3517 in spirit; bookkeeping simplified
// by the simulator's 64-bit sequence space).
#pragma once

#include <cstdint>
#include <map>

namespace lsl::tcp {

class SackScoreboard {
 public:
  /// Merge the reported range [begin, end).
  void add(std::uint64_t begin, std::uint64_t end);

  /// Drop all state below `seq` (cumulatively acknowledged).
  void prune_below(std::uint64_t seq);

  void clear();

  [[nodiscard]] bool covers(std::uint64_t seq) const;

  struct Hole {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool found = false;
    /// True when the hole is bounded above by a SACKed range -- i.e. the
    /// peer demonstrably received later data, so this gap is presumed lost.
    bool bounded = false;
  };

  /// First unsacked gap at or after `from`, clipped to `limit`.
  [[nodiscard]] Hole next_hole(std::uint64_t from, std::uint64_t limit) const;

  [[nodiscard]] std::uint64_t sacked_bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return ranges_.empty(); }

  /// End of the highest range (0 when empty).
  [[nodiscard]] std::uint64_t highest_end() const {
    return ranges_.empty() ? 0 : ranges_.rbegin()->second;
  }

  /// Total bytes held in ranges below `seq` (ranges straddling it count
  /// partially).
  [[nodiscard]] std::uint64_t bytes_below(std::uint64_t seq) const;

 private:
  std::map<std::uint64_t, std::uint64_t> ranges_;  ///< begin -> end, disjoint
  std::uint64_t bytes_ = 0;
};

}  // namespace lsl::tcp
