#include "tcp/send_buffer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::tcp {

std::uint64_t SendBuffer::append_bytes(std::span<const std::byte> bytes) {
  LSL_ASSERT_MSG(end_ == prefix_.size(),
                 "real bytes must precede synthetic payload");
  const std::uint64_t n = std::min<std::uint64_t>(bytes.size(), free_space());
  prefix_.insert(prefix_.end(), bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n));
  end_ += n;
  return n;
}

std::uint64_t SendBuffer::append_synthetic(std::uint64_t n) {
  const std::uint64_t accepted = std::min(n, free_space());
  end_ += accepted;
  return accepted;
}

void SendBuffer::release_through(std::uint64_t offset) {
  LSL_ASSERT_MSG(offset <= end_, "release beyond buffered data");
  head_ = std::max(head_, offset);
}

std::vector<std::byte> SendBuffer::content_slice(std::uint64_t offset,
                                                 std::uint64_t len) const {
  if (offset >= prefix_.size() || len == 0) {
    return {};
  }
  const std::uint64_t stop = std::min<std::uint64_t>(prefix_.size(), offset + len);
  return {prefix_.begin() + static_cast<std::ptrdiff_t>(offset),
          prefix_.begin() + static_cast<std::ptrdiff_t>(stop)};
}

}  // namespace lsl::tcp
