// Sender-side socket buffer.
//
// Byte accounting over absolute stream offsets: [head_, end_) is buffered,
// bytes below head_ have been acknowledged and released. Application payload
// is synthetic (counted, not stored) except for an optional *prefix* of real
// bytes at the very start of the stream — the LSL session header — which must
// be written before any synthetic payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lsl::tcp {

class SendBuffer {
 public:
  explicit SendBuffer(std::uint64_t capacity) : capacity_(capacity) {}

  /// Append real bytes; only legal while the stream is still all-prefix.
  /// Returns the number of bytes accepted (bounded by free space).
  std::uint64_t append_bytes(std::span<const std::byte> bytes);

  /// Append synthetic payload; returns bytes accepted.
  std::uint64_t append_synthetic(std::uint64_t n);

  /// Release acknowledged bytes below `offset`.
  void release_through(std::uint64_t offset);

  /// Real content overlapping [offset, offset+len), empty when none.
  [[nodiscard]] std::vector<std::byte> content_slice(std::uint64_t offset,
                                                     std::uint64_t len) const;

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t head() const { return head_; }
  [[nodiscard]] std::uint64_t end() const { return end_; }
  [[nodiscard]] std::uint64_t used() const { return end_ - head_; }
  [[nodiscard]] std::uint64_t free_space() const { return capacity_ - used(); }

 private:
  std::uint64_t capacity_;
  std::uint64_t head_ = 0;
  std::uint64_t end_ = 0;
  std::vector<std::byte> prefix_;  ///< real bytes for offsets [0, size())
};

}  // namespace lsl::tcp
