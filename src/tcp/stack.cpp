#include "tcp/stack.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace lsl::tcp {

TcpStack::TcpStack(net::Topology& topology, net::NodeId node)
    : topology_(topology), node_(node) {
  topology_.node(node).set_local_deliver(
      [this](net::Packet p) { on_packet(std::move(p)); });
  topology_.set_protocol_handle(node, this);
}

void TcpStack::listen(net::Port port, AcceptFn on_accept, TcpOptions options) {
  LSL_ASSERT_MSG(!listeners_.contains(port), "port already listening");
  listeners_.emplace(port, Listener{std::move(on_accept), options});
}

void TcpStack::stop_listening(net::Port port) { listeners_.erase(port); }

Connection::Ptr TcpStack::connect(net::NodeId dst, net::Port dst_port,
                                  TcpOptions options) {
  // Find an ephemeral port free for this (dst, dst_port) pair.
  net::Port port = next_ephemeral_;
  for (int attempts = 0; attempts < 16384; ++attempts) {
    if (!conns_.contains(ConnKey{dst, port, dst_port})) {
      break;
    }
    port = (port >= 65535) ? net::Port{49152} : static_cast<net::Port>(port + 1);
  }
  next_ephemeral_ =
      (port >= 65535) ? net::Port{49152} : static_cast<net::Port>(port + 1);

  auto conn = Connection::Ptr(
      new Connection(*this, node_, dst, port, dst_port, options));
  conns_.emplace(ConnKey{dst, port, dst_port}, conn);
  conn->start_active_open();
  return conn;
}

void TcpStack::on_packet(net::Packet packet) {
  const ConnKey key{packet.src, packet.tcp.dst_port, packet.tcp.src_port};
  if (const auto it = conns_.find(key); it != conns_.end()) {
    // Hold a local ref: handle_packet may trigger reap of this connection.
    const Connection::Ptr conn = it->second;
    conn->handle_packet(packet);
    return;
  }
  if (packet.tcp.has(net::kFlagSyn) && !packet.tcp.has(net::kFlagAck)) {
    if (const auto lit = listeners_.find(packet.tcp.dst_port);
        lit != listeners_.end()) {
      auto conn = Connection::Ptr(
          new Connection(*this, node_, packet.src, packet.tcp.dst_port,
                         packet.tcp.src_port, lit->second.options));
      conns_.emplace(key, conn);
      conn->start_passive_open();
      conn->handle_packet(packet);
      return;
    }
  }
  if (!packet.tcp.has(net::kFlagRst) && !packet.tcp.has(net::kFlagSyn)) {
    // A non-SYN segment for a connection we no longer track: answer with a
    // RST so the sender learns its peer is gone (a LAST_ACK endpoint whose
    // final ACK was lost would otherwise retransmit its FIN until the
    // give-up limit -- the peer left TIME_WAIT long ago and only this
    // reset can release it promptly). Bare SYNs still time out through
    // max_syn_retries: connection-refused semantics are exercised by the
    // recovery tests and stay unchanged.
    net::Packet rst;
    rst.src = node_;
    rst.dst = packet.src;
    rst.tcp.src_port = packet.tcp.dst_port;
    rst.tcp.dst_port = packet.tcp.src_port;
    rst.tcp.seq = packet.tcp.ack;
    rst.tcp.flags = net::kFlagRst;
    emit(std::move(rst));
    return;
  }
  LSL_TRACE("tcp node %u: dropping stray segment on port %u", node_,
            packet.tcp.dst_port);
}

void TcpStack::deliver_accept(const ConnKey& key) {
  const auto it = conns_.find(key);
  if (it == conns_.end()) {
    return;
  }
  if (const auto lit = listeners_.find(key.local_port);
      lit != listeners_.end() && lit->second.on_accept) {
    lit->second.on_accept(it->second);
  }
}

void TcpStack::reap(const ConnKey& key) {
  // Defer the erase: reap is called from inside the connection's own
  // processing, and erasing could destroy it mid-method.
  simulator().schedule_after(SimTime::zero(), [this, key] {
    conns_.erase(key);
  });
}

void TcpStack::emit(net::Packet packet) { topology_.send(std::move(packet)); }

}  // namespace lsl::tcp
