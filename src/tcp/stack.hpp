// Per-node TCP stack: demultiplexes packets to connections, handles passive
// opens via listeners, allocates ephemeral ports, and reaps dead connections.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.hpp"
#include "net/topology.hpp"
#include "tcp/connection.hpp"
#include "tcp/options.hpp"

namespace lsl::tcp {

struct ConnKey {
  net::NodeId remote = net::kInvalidNode;
  net::Port local_port = 0;
  net::Port remote_port = 0;

  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;
};

class TcpStack : public net::ProtocolStack {
 public:
  using AcceptFn = std::function<void(Connection::Ptr)>;

  /// Attaches to `node` in `topology` as its protocol stack.
  TcpStack(net::Topology& topology, net::NodeId node);

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Accept connections on `port`; `on_accept` fires once each passive
  /// connection reaches ESTABLISHED. `options` applies to accepted sockets.
  void listen(net::Port port, AcceptFn on_accept,
              TcpOptions options = TcpOptions{});

  void stop_listening(net::Port port);

  /// Active open to (dst, dst_port). The returned socket is connecting;
  /// install callbacks immediately (on_connected fires later).
  Connection::Ptr connect(net::NodeId dst, net::Port dst_port,
                          TcpOptions options = TcpOptions{});

  [[nodiscard]] net::NodeId node_id() const { return node_; }
  [[nodiscard]] net::Topology& topology() { return topology_; }
  [[nodiscard]] sim::Simulator& simulator() { return topology_.simulator(); }
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

  /// True when the topology runs the fluid data plane (payload bytes ride
  /// fluid flows; packets carry only connection control).
  [[nodiscard]] bool fluid_mode() { return topology_.fluid() != nullptr; }

  /// Endpoint lookup for the fluid data plane's peer rendezvous.
  [[nodiscard]] Connection::Ptr find_connection(const ConnKey& key) {
    const auto it = conns_.find(key);
    return it != conns_.end() ? it->second : nullptr;
  }

  /// Diagnostics: visit every tracked connection (leak post-mortems).
  template <typename Fn>
  void for_each_connection(Fn&& fn) {
    for (auto& [key, conn] : conns_) {
      fn(*conn);
    }
  }

 private:
  friend class Connection;

  void on_packet(net::Packet packet);
  /// Deferred erase; safe to call from within the connection's own
  /// packet/timer processing.
  void reap(const ConnKey& key);
  void emit(net::Packet packet);
  void deliver_accept(const ConnKey& key);

  struct Listener {
    AcceptFn on_accept;
    TcpOptions options;
  };

  net::Topology& topology_;
  net::NodeId node_;
  std::map<ConnKey, Connection::Ptr> conns_;
  std::map<net::Port, Listener> listeners_;
  net::Port next_ephemeral_ = 49152;
};

}  // namespace lsl::tcp
