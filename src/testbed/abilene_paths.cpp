#include "testbed/abilene_paths.hpp"

namespace lsl::testbed {

using namespace lsl::time_literals;

PathScenario ucsb_uiuc_via_denver() {
  PathScenario s;
  s.name = "ucsb-uiuc-via-denver";
  s.src_depot_delay = 23_ms;  // UCSB <-> Denver RTT 46 ms
  s.depot_dst_delay = SimTime::microseconds(22'500);  // Denver <-> UIUC 45 ms
  s.direct_delay = 35_ms;     // UCSB <-> UIUC RTT 70 ms
  // The lossy segment sits beyond Denver and is shared by the direct path;
  // the UCSB->Denver leg is clean, letting the source race ahead into the
  // depot's 32 MB pipeline (Fig 5's knee).
  s.leg1_loss = 1e-5;
  s.leg2_loss = 5e-4;
  s.direct_loss = 5e-4;
  return s;
}

PathScenario ucsb_uf_via_houston() {
  PathScenario s;
  s.name = "ucsb-uf-via-houston";
  s.src_depot_delay = 34_ms;  // UCSB <-> Houston RTT 68 ms
  s.depot_dst_delay = 17_ms;  // Houston <-> UF RTT 34 ms
  s.direct_delay = SimTime::microseconds(43'500);  // UCSB <-> UF RTT 87 ms
  // Loss shared across the long segment; the short Houston->UF leg is
  // clean. Makes UCSB->Houston the bottleneck (paper: "subpath 2 was able
  // to carry all the load that was presented to it") with equilibrium
  // dominating 64 MB transfers.
  s.leg1_loss = 2.5e-4;
  s.leg2_loss = 1e-4;
  s.direct_loss = 2.5e-4;
  return s;
}

PathTestbed::PathTestbed(const PathScenario& scenario, std::uint64_t seed)
    : scenario_(scenario),
      harness_(std::make_unique<exp::SimHarness>(seed)) {
  src_ = harness_->add_host("ash.ucsb.edu", "ucsb.edu");
  depot_ = harness_->add_host("depot", "core");
  dst_ = harness_->add_host("destination", "remote.edu");

  const auto link = [&](SimTime delay, double loss) {
    net::LinkConfig cfg;
    cfg.rate = scenario_.capacity;
    cfg.propagation_delay = delay;
    cfg.queue_capacity_bytes = scenario_.queue_bytes;
    cfg.loss_rate = loss;
    return cfg;
  };
  harness_->add_link(src_, depot_,
                     link(scenario_.src_depot_delay, scenario_.leg1_loss));
  harness_->add_link(depot_, dst_,
                     link(scenario_.depot_dst_delay, scenario_.leg2_loss));
  harness_->add_link(src_, dst_,
                     link(scenario_.direct_delay, scenario_.direct_loss));

  session::DepotConfig depot_cfg;
  depot_cfg.tcp =
      tcp::TcpOptions{}.with_buffers(scenario_.depot_kernel_buffer);
  depot_cfg.user_buffer_bytes = scenario_.depot_user_buffer;
  harness_->deploy(depot_cfg);

  // Pin the direct route onto the direct link; otherwise shortest-delay
  // routing would send "direct" traffic through the depot's router.
  auto& topo = harness_->topology();
  topo.node(src_).set_route(dst_, topo.link_between(src_, dst_));
  topo.node(dst_).set_route(src_, topo.link_between(dst_, src_));
}

session::TransferSpec PathTestbed::make_spec(bool via_depot,
                                             std::uint64_t bytes) const {
  session::TransferSpec spec;
  spec.dst = dst_;
  if (via_depot) {
    spec.via = {depot_};
  }
  spec.payload_bytes = bytes;
  spec.tcp = tcp::TcpOptions{}.with_buffers(scenario_.endpoint_buffer);
  return spec;
}

exp::SimHarness::Handle PathTestbed::launch(bool via_depot,
                                            std::uint64_t bytes) {
  return harness_->launch(src_, make_spec(via_depot, bytes));
}

exp::SimHarness::TransferOutcome PathTestbed::run(bool via_depot,
                                                  std::uint64_t bytes) {
  const auto handle = launch(via_depot, bytes);
  auto outcome = harness_->wait(handle, SimTime::seconds(3600));
  harness_->simulator().run(harness_->simulator().now() + 2_s);
  return outcome;
}

}  // namespace lsl::testbed
