// The paper's two measured Abilene paths (section 3), as packet-level
// scenarios:
//   UCSB -> UIUC via a depot in Denver  (Figures 2 and 5)
//   UCSB -> UF   via a depot in Houston (Figures 3 and 4)
//
// Link RTTs reproduce the paper's table exactly (46+45 vs 70 ms and
// 68+34 vs 87 ms). Loss rates and capacities are calibration constants: the
// authors' absolute bandwidths depended on 2004 Abilene conditions we
// cannot recover, so they are chosen to land in the same regime (tens of
// Mbit/s steady state, sublink ordering as described in the text -- the
// Denver leg fast and clean, producing Fig 5's 32 MB depot-buffer knee; the
// Houston leg the bottleneck of its path, producing Fig 4's matched slopes).
#pragma once

#include <memory>
#include <string>

#include "exp/harness.hpp"

namespace lsl::testbed {

struct PathScenario {
  std::string name;
  /// One-way propagation delays (RTT = 2x). Paper RTTs: see above.
  SimTime src_depot_delay;
  SimTime depot_dst_delay;
  SimTime direct_delay;
  double leg1_loss = 1e-4;
  double leg2_loss = 1e-4;
  double direct_loss = 1e-4;
  Bandwidth capacity = Bandwidth::mbps(155);
  /// Deep router buffers (Abilene-era backbone): at least the endpoints'
  /// 8 MB windows, so slow-start overshoot does not add artificial loss.
  std::uint64_t queue_bytes = 8 * kMiB;
  /// Paper: Linux 2.4 hosts, 8 MB buffers via setsockopt.
  std::uint64_t endpoint_buffer = 8 * kMiB;
  std::uint64_t depot_kernel_buffer = 8 * kMiB;
  /// Paper: the depot allocates send+receive buffer bytes of user storage;
  /// with 8 MB kernel buffers the total pipeline is 32 MB.
  std::uint64_t depot_user_buffer = 16 * kMiB;
};

/// UCSB -> UIUC via Denver: RTTs 46 / 45 / 70 ms. The Denver leg is fast
/// and clean; the Denver->UIUC leg is the bottleneck (Fig 5's narrative).
[[nodiscard]] PathScenario ucsb_uiuc_via_denver();

/// UCSB -> UF via Houston: RTTs 68 / 34 / 87 ms. The UCSB->Houston leg is
/// the bottleneck; Houston->UF "carries all the load presented to it".
[[nodiscard]] PathScenario ucsb_uf_via_houston();

/// A built three-host testbed for a scenario: src -- depot -- dst plus a
/// pinned direct link matching the measured direct RTT.
class PathTestbed {
 public:
  PathTestbed(const PathScenario& scenario, std::uint64_t seed);

  [[nodiscard]] exp::SimHarness& harness() { return *harness_; }
  [[nodiscard]] net::NodeId src() const { return src_; }
  [[nodiscard]] net::NodeId depot() const { return depot_; }
  [[nodiscard]] net::NodeId dst() const { return dst_; }
  [[nodiscard]] const PathScenario& scenario() const { return scenario_; }

  /// The transfer spec used by launch(); exposed for traced launches.
  [[nodiscard]] session::TransferSpec make_spec(bool via_depot,
                                                std::uint64_t bytes) const;

  /// Launch one transfer (direct or via the depot).
  [[nodiscard]] exp::SimHarness::Handle launch(bool via_depot,
                                               std::uint64_t bytes);
  [[nodiscard]] exp::SimHarness::TransferOutcome run(bool via_depot,
                                                     std::uint64_t bytes);

 private:
  PathScenario scenario_;
  std::unique_ptr<exp::SimHarness> harness_;
  net::NodeId src_ = 0;
  net::NodeId depot_ = 0;
  net::NodeId dst_ = 0;
};

}  // namespace lsl::testbed
