#include "testbed/cross_traffic.hpp"

#include "util/assert.hpp"

namespace lsl::testbed {

struct CrossTraffic::Slot {
  tcp::Connection::Ptr conn;
  sim::EventId pending_start;
  std::uint64_t queued = 0;
  std::uint64_t target = 0;
};

CrossTraffic::CrossTraffic(exp::SimHarness& harness,
                           CrossTrafficConfig config, std::uint64_t seed)
    : harness_(harness), config_(config), rng_(seed) {
  LSL_ASSERT_MSG(harness_.host_count() >= 2,
                 "cross traffic needs at least two hosts");
  // One sink listener per host; every background flow targets it.
  for (std::size_t host = 0; host < harness_.host_count(); ++host) {
    harness_.stack(static_cast<net::NodeId>(host))
        .listen(config_.base_port, [](tcp::Connection::Ptr conn) {
          conn->on_readable = [c = conn.get()] {
            c->read(c->readable_bytes());
          };
          conn->on_eof = [c = conn.get()] {
            c->read(c->readable_bytes());
            c->close();
          };
        }, tcp::TcpOptions{}.with_buffers(config_.tcp_buffer));
  }
  for (std::size_t slot = 0; slot < config_.flows; ++slot) {
    slots_.push_back(std::make_unique<Slot>());
    start_burst(slot);
  }
}

CrossTraffic::~CrossTraffic() {
  stopping_ = true;
  for (auto& slot : slots_) {
    if (slot->pending_start.valid()) {
      harness_.simulator().cancel(slot->pending_start);
    }
    if (slot->conn) {
      slot->conn->on_connected = nullptr;
      slot->conn->on_writable = nullptr;
      slot->conn->on_closed = nullptr;
    }
  }
}

void CrossTraffic::start_burst(std::size_t slot_index) {
  Slot& slot = *slots_[slot_index];
  slot.pending_start = sim::EventId{};

  const std::size_t n = harness_.host_count();
  const auto src = static_cast<net::NodeId>(rng_.pick_index(n));
  auto dst = static_cast<net::NodeId>(rng_.pick_index(n));
  if (dst == src) {
    dst = static_cast<net::NodeId>((dst + 1) % n);
  }
  slot.target = 1 + static_cast<std::uint64_t>(
                        rng_.exponential(static_cast<double>(
                            config_.mean_burst_bytes)));
  slot.queued = 0;
  slot.conn = harness_.stack(src).connect(
      dst, config_.base_port,
      tcp::TcpOptions{}.with_buffers(config_.tcp_buffer));

  auto* conn = slot.conn.get();
  const auto pump = [this, slot_index, conn] {
    if (stopping_) {
      return;
    }
    Slot& s = *slots_[slot_index];
    while (s.queued < s.target) {
      const std::uint64_t n_sent = conn->write_synthetic(s.target - s.queued);
      s.queued += n_sent;
      bytes_injected_ += n_sent;
      if (n_sent == 0) {
        return;
      }
    }
    conn->close();
  };
  conn->on_connected = pump;
  conn->on_writable = pump;
  conn->on_closed = [this, slot_index] {
    if (stopping_) {
      return;
    }
    ++bursts_completed_;
    schedule_next(slot_index);
  };
}

void CrossTraffic::schedule_next(std::size_t slot_index) {
  const double gap_s =
      rng_.exponential(config_.mean_gap.to_seconds());
  slots_[slot_index]->pending_start = harness_.simulator().schedule_after(
      SimTime::from_seconds(gap_s), [this, slot_index] {
        if (!stopping_) {
          start_burst(slot_index);
        }
      });
}

}  // namespace lsl::testbed
