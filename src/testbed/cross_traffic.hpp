// Background cross traffic for packet-level experiments.
//
// The paper's measurements ran over shared production networks; foreground
// transfers competed with everything else on the path. This injector keeps
// a population of on/off background TCP flows alive between host pairs,
// each flow sending an exponentially distributed burst, idling an
// exponentially distributed gap, then starting again elsewhere.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/harness.hpp"
#include "util/rng.hpp"

namespace lsl::testbed {

struct CrossTrafficConfig {
  /// Concurrent background flows to keep alive.
  std::size_t flows = 4;
  /// Mean burst size per flow activation.
  std::uint64_t mean_burst_bytes = 2 * kMiB;
  /// Mean idle gap between a flow finishing and its next activation.
  SimTime mean_gap = SimTime::milliseconds(200);
  /// Socket buffers for background flows.
  std::uint64_t tcp_buffer = 256 * kKiB;
  /// Port range base (one port per flow slot at the destination).
  net::Port base_port = 7100;
};

/// Drives background flows over an exp::SimHarness. Construct after
/// deploy(); flows start immediately and run until the object dies.
class CrossTraffic {
 public:
  CrossTraffic(exp::SimHarness& harness, CrossTrafficConfig config,
               std::uint64_t seed);
  ~CrossTraffic();

  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;

  [[nodiscard]] std::uint64_t bytes_injected() const {
    return bytes_injected_;
  }
  [[nodiscard]] std::uint64_t bursts_completed() const {
    return bursts_completed_;
  }

 private:
  struct Slot;

  void start_burst(std::size_t slot);
  void schedule_next(std::size_t slot);

  exp::SimHarness& harness_;
  CrossTrafficConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::uint64_t bytes_injected_ = 0;
  std::uint64_t bursts_completed_ = 0;
  bool stopping_ = false;
};

}  // namespace lsl::testbed
