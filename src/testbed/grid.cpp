#include "testbed/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace lsl::testbed {

namespace {

/// Map a 64-bit hash to a uniform double in (0, 1).
double unit_from_hash(std::uint64_t h) {
  // SplitMix finalizer for good avalanche, then take 53 bits.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return std::min(std::max(u, 1e-12), 1.0 - 1e-12);
}

/// Deterministic standard normal from two independent uniforms.
double normal_from_units(double u1, double u2) {
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

SyntheticGrid::SyntheticGrid(std::vector<HostProfile> hosts, GridNoise noise,
                             std::uint64_t seed)
    : hosts_(std::move(hosts)), noise_(noise), seed_(seed) {
  LSL_ASSERT(!hosts_.empty());
}

const HostProfile& SyntheticGrid::host(std::size_t i) const {
  LSL_ASSERT(i < hosts_.size());
  return hosts_[i];
}

std::vector<std::string> SyntheticGrid::sites() const {
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    out.push_back(h.site);
  }
  return out;
}

std::vector<std::size_t> SyntheticGrid::core_hosts() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].core) {
      out.push_back(i);
    }
  }
  return out;
}

double SyntheticGrid::pair_unit(std::size_t a, std::size_t b,
                                std::uint64_t salt) const {
  const std::string& sa = hosts_[a].site;
  const std::string& sb = hosts_[b].site;
  // Unordered: same factor in both directions.
  const std::uint64_t ha = Rng::hash(sa);
  const std::uint64_t hb = Rng::hash(sb);
  const std::uint64_t lo = std::min(ha, hb);
  const std::uint64_t hi = std::max(ha, hb);
  return unit_from_hash(lo ^ (hi * 0x9E3779B97F4A7C15ULL) ^
                        (salt * 0xD1B54A32D192ED03ULL) ^ seed_);
}

SimTime SyntheticGrid::rtt(std::size_t a, std::size_t b) const {
  LSL_ASSERT(a < hosts_.size() && b < hosts_.size());
  if (hosts_[a].site == hosts_[b].site) {
    return SimTime::milliseconds(1);
  }
  const double dx = hosts_[a].x - hosts_[b].x;
  const double dy = hosts_[a].y - hosts_[b].y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  // Mild persistent wiggle so equidistant pairs are not identical.
  const double wiggle = 0.9 + 0.2 * pair_unit(a, b, 1);
  // rtt_base and rtt_scale come from the generating config; they ride along
  // in the first host's profile-independent fields, so recompute directly:
  return rtt_base_ +
         SimTime::from_seconds(dist * rtt_scale_ms_ * wiggle * 1e-3);
}

double SyntheticGrid::loss(std::size_t a, std::size_t b) const {
  if (hosts_[a].site == hosts_[b].site) {
    return 1e-6;
  }
  const double z =
      normal_from_units(pair_unit(a, b, 2), pair_unit(a, b, 3));
  return std::min(loss_median_ * std::exp(loss_sigma_ * z), 0.02);
}

Bandwidth SyntheticGrid::base_path_bw(std::size_t a, std::size_t b) const {
  if (hosts_[a].site == hosts_[b].site) {
    return Bandwidth::mbps(900.0);
  }
  double quality = 0.78 + 0.22 * pair_unit(a, b, 4);
  // A small fraction of site pairs suffer chronically bad routing/peering;
  // these are the pathological direct paths a depot path rescues (the
  // paper's "improved by a factor of four" cases and Fig 11's outliers).
  if (pair_unit(a, b, 5) < 0.012) {
    quality *= 0.25;
  }
  const double mbps =
      std::min(hosts_[a].access.megabits_per_second(),
               hosts_[b].access.megabits_per_second()) *
      quality;
  return Bandwidth::mbps(mbps);
}

Bandwidth SyntheticGrid::probe_bw(std::size_t a, std::size_t b) const {
  const double window =
      static_cast<double>(std::min(hosts_[a].tcp_buffer, hosts_[b].tcp_buffer));
  const double ceiling_mbps =
      window * 8.0 / rtt(a, b).to_seconds() / 1e6;
  const double mbps = std::min(
      {base_path_bw(a, b).megabits_per_second(),
       hosts_[a].host_cap.megabits_per_second(),
       hosts_[b].host_cap.megabits_per_second(), ceiling_mbps});
  return Bandwidth::mbps(std::max(mbps, 0.01));
}

nws::TruthFn SyntheticGrid::truth() const {
  return [this](std::size_t a, std::size_t b) { return probe_bw(a, b); };
}

Bandwidth SyntheticGrid::loaded_cap(const HostProfile& host, Rng& trial) const {
  if (host.core) {
    return host.host_cap;  // backbone depots are unloaded
  }
  const double factor = trial.lognormal(0.0, noise_.load_sigma);
  return Bandwidth::mbps(host.host_cap.megabits_per_second() /
                         std::max(factor, 0.05));
}

PairRealization SyntheticGrid::realize_direct(std::size_t a, std::size_t b,
                                              std::uint64_t bytes,
                                              Rng& trial) const {
  LSL_ASSERT(a < hosts_.size() && b < hosts_.size());
  PairRealization real;
  real.rtt = rtt(a, b);
  real.loss_rate = loss(a, b);
  real.window_bytes = std::min(hosts_[a].tcp_buffer, hosts_[b].tcp_buffer);

  const double cross = trial.lognormal(0.0, noise_.path_sigma);
  double mbps = base_path_bw(a, b).megabits_per_second() / std::max(cross, 0.2);
  mbps = std::min(mbps, loaded_cap(hosts_[a], trial).megabits_per_second());
  mbps = std::min(mbps, loaded_cap(hosts_[b], trial).megabits_per_second());
  for (const std::size_t h : {a, b}) {
    if (hosts_[h].rate_limited && bytes > noise_.rate_limit_threshold) {
      mbps = std::min(mbps, noise_.rate_limit.megabits_per_second());
    }
  }
  real.bottleneck = Bandwidth::mbps(std::max(mbps, 0.05));
  return real;
}

std::vector<PairRealization> SyntheticGrid::realize_relay_hops(
    const std::vector<std::size_t>& path, std::uint64_t bytes,
    Rng& trial) const {
  LSL_ASSERT(path.size() >= 2);
  // One load sample per participating host, reused across its hops.
  std::vector<double> cap_mbps(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    double cap = loaded_cap(hosts_[path[i]], trial).megabits_per_second();
    const bool is_depot = i > 0 && i + 1 < path.size();
    if (is_depot && !hosts_[path[i]].core) {
      // User-space relaying on a shared virtualized host costs extra.
      cap *= noise_.relay_efficiency;
    }
    cap_mbps[i] = cap;
  }
  std::vector<PairRealization> hops;
  hops.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::size_t a = path[i];
    const std::size_t b = path[i + 1];
    PairRealization hop;
    hop.rtt = rtt(a, b);
    hop.loss_rate = loss(a, b);
    hop.window_bytes = std::min(hosts_[a].tcp_buffer, hosts_[b].tcp_buffer);
    const double cross = trial.lognormal(0.0, noise_.path_sigma);
    double mbps =
        base_path_bw(a, b).megabits_per_second() / std::max(cross, 0.2);
    mbps = std::min({mbps, cap_mbps[i], cap_mbps[i + 1]});
    for (const std::size_t h : {a, b}) {
      if (hosts_[h].rate_limited && bytes > noise_.rate_limit_threshold) {
        mbps = std::min(mbps, noise_.rate_limit.megabits_per_second());
      }
    }
    hop.bottleneck = Bandwidth::mbps(std::max(mbps, 0.05));
    hops.push_back(hop);
  }
  return hops;
}

flow::ConnectionParams SyntheticGrid::direct_params(std::size_t a,
                                                    std::size_t b,
                                                    std::uint64_t bytes,
                                                    Rng& trial) const {
  return realize_direct(a, b, bytes, trial).connection_params();
}

std::vector<flow::ConnectionParams> SyntheticGrid::relay_params(
    const std::vector<std::size_t>& path, std::uint64_t bytes,
    Rng& trial) const {
  const std::vector<PairRealization> hops =
      realize_relay_hops(path, bytes, trial);
  std::vector<flow::ConnectionParams> out;
  out.reserve(hops.size());
  for (const PairRealization& hop : hops) {
    out.push_back(hop.connection_params());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generators

SyntheticGrid SyntheticGrid::planetlab(const PlanetLabConfig& config,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<HostProfile> hosts;
  for (std::size_t s = 0; s < config.sites; ++s) {
    const std::string site = "site" + std::to_string(s) + ".edu";
    const double x = rng.next_double();
    const double y = rng.next_double();
    const double access_mbps =
        config.access_bw_median_mbps *
        std::exp(config.access_bw_sigma * rng.normal());
    const auto count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_hosts_per_site),
        static_cast<std::int64_t>(config.max_hosts_per_site)));
    for (std::size_t k = 0; k < count; ++k) {
      HostProfile h;
      h.name = "node" + std::to_string(k) + "." + site;
      h.site = site;
      h.x = x;
      h.y = y;
      h.access = Bandwidth::mbps(std::clamp(access_mbps, 4.0, 400.0));
      const double cap = config.host_cap_median_mbps *
                         std::exp(config.host_cap_sigma * rng.normal());
      h.host_cap = Bandwidth::mbps(std::clamp(cap, 3.0, 300.0));
      h.tcp_buffer = config.host_tcp_buffer;
      h.rate_limited = rng.chance(config.rate_limited_fraction);
      hosts.push_back(std::move(h));
    }
  }
  SyntheticGrid grid(std::move(hosts), config.noise, seed);
  grid.rtt_base_ = config.rtt_base;
  grid.rtt_scale_ms_ = config.rtt_scale_ms;
  grid.loss_median_ = config.loss_median;
  grid.loss_sigma_ = config.loss_sigma;
  return grid;
}

PlanetLabConfig scaled_planetlab_config(std::size_t pool_size) {
  PlanetLabConfig config;
  config.sites = std::clamp<std::size_t>(pool_size / 2, 1, 4096);
  return config;
}

SyntheticGrid SyntheticGrid::abilene_core(const AbileneCoreConfig& config,
                                          std::uint64_t seed) {
  // Rough unit-square placement of the 11 Abilene POPs (2004 topology).
  struct Pop {
    const char* name;
    double x, y;
  };
  static constexpr Pop kPops[] = {
      {"seattle", 0.08, 0.10},     {"sunnyvale", 0.04, 0.55},
      {"losangeles", 0.10, 0.78},  {"denver", 0.35, 0.45},
      {"kansascity", 0.52, 0.50},  {"houston", 0.48, 0.88},
      {"indianapolis", 0.64, 0.42},{"atlanta", 0.72, 0.74},
      {"chicago", 0.62, 0.28},     {"washington", 0.86, 0.45},
      {"newyork", 0.90, 0.28},
  };
  Rng rng(seed);
  std::vector<HostProfile> hosts;
  // University endpoints first, each homed near a random POP.
  for (std::size_t u = 0; u < config.universities; ++u) {
    const Pop& pop = kPops[rng.pick_index(std::size(kPops))];
    HostProfile h;
    h.site = "univ" + std::to_string(u) + ".edu";
    h.name = "planetlab1." + h.site;
    h.x = std::clamp(pop.x + rng.uniform(-0.06, 0.06), 0.0, 1.0);
    h.y = std::clamp(pop.y + rng.uniform(-0.06, 0.06), 0.0, 1.0);
    h.access = Bandwidth::mbps(config.university_access_mbps);
    h.host_cap = Bandwidth::mbps(std::clamp(
        config.university_cap_median_mbps *
            std::exp(config.university_cap_sigma * rng.normal()),
        4.0, 200.0));
    h.tcp_buffer = config.university_tcp_buffer;
    hosts.push_back(std::move(h));
  }
  // Depot-grade observatory hosts at every POP.
  for (const Pop& pop : kPops) {
    HostProfile h;
    h.site = std::string(pop.name) + ".abilene.net";
    h.name = "depot." + h.site;
    h.x = pop.x;
    h.y = pop.y;
    h.access = Bandwidth::mbps(config.core_capacity_mbps);
    h.host_cap = Bandwidth::mbps(config.core_capacity_mbps);
    h.tcp_buffer = config.core_tcp_buffer;
    h.core = true;
    hosts.push_back(std::move(h));
  }
  SyntheticGrid grid(std::move(hosts), config.noise, seed);
  grid.rtt_base_ = config.rtt_base;
  grid.rtt_scale_ms_ = config.rtt_scale_ms;
  grid.loss_median_ = config.loss_median;
  grid.loss_sigma_ = config.loss_sigma;
  return grid;
}

}  // namespace lsl::testbed
