// Synthetic Grid testbeds.
//
// The paper's large-scale evaluation ran on PlanetLab (142 virtualized
// hosts at ~70 university sites, 64 KB TCP buffers, administrative rate
// limits, heavy background load) and on a constrained variant with depots
// at Abilene POPs. Neither environment is reproducible directly, so this
// module generates statistically similar stand-ins:
//   * sites placed on a unit square; RTT = base + distance (continental ms),
//   * per-site access bandwidth (lognormal), per-host virtualization
//     throughput caps, a rate-limited subset whose cap kicks in only past a
//     traffic threshold (the "administrative limitation that changes its
//     behavior after a certain amount of traffic" the paper calls out),
//   * persistent per-path quality factors and loss rates,
//   * per-trial load/cross-traffic realization noise.
//
// The same object serves three consumers: the NWS monitor (probe-level
// ground truth), the scheduler (via the monitor's matrix), and the
// flow-level transfer model (per-trial realizations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/tcp_model.hpp"
#include "nws/monitor.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace lsl::testbed {

struct HostProfile {
  std::string name;
  std::string site;
  double x = 0.0;  ///< position on the unit square
  double y = 0.0;
  Bandwidth access = Bandwidth::mbps(100);  ///< site access link
  Bandwidth host_cap = Bandwidth::mbps(60); ///< virtualization throughput cap
  std::uint64_t tcp_buffer = 64 * kKiB;
  bool rate_limited = false;
  bool core = false;  ///< backbone depot (unloaded, large buffers)
};

struct GridNoise {
  /// Per-trial lognormal sigma on host capacity (background load swings).
  double load_sigma = 0.55;
  /// Per-trial lognormal sigma on path bandwidth (cross traffic).
  double path_sigma = 0.30;
  /// Relaying through user space on a busy virtualized host costs this
  /// efficiency factor on the depot's capacity.
  double relay_efficiency = 0.62;
  /// Edge-equivalence margin the section 4.2 experiments schedule with.
  /// Calibrated so the scheduler relays ~26% of pairs as the paper reports
  /// (under our synthetic noise, the paper's nominal 10% over-schedules).
  double sweep_epsilon = 0.25;
  /// Administrative rate limits engage beyond this many bytes.
  std::uint64_t rate_limit_threshold = 16 * kMiB;
  Bandwidth rate_limit = Bandwidth::mbps(10);
};

struct PlanetLabConfig {
  std::size_t sites = 70;
  std::size_t min_hosts_per_site = 1;
  std::size_t max_hosts_per_site = 3;  ///< paper: one to three machines/site
  double rate_limited_fraction = 0.15;
  std::uint64_t host_tcp_buffer = 64 * kKiB;  ///< paper: unmodifiable 64 KB
  /// 2004-era PlanetLab access links and virtualized host throughput were
  /// modest; most pairs are capacity-bound (where relaying cannot help),
  /// only long-RTT well-connected pairs are window-bound (where it can).
  double access_bw_median_mbps = 12.0;
  double access_bw_sigma = 1.2;
  double host_cap_median_mbps = 14.0;
  double host_cap_sigma = 1.0;
  SimTime rtt_base = SimTime::milliseconds(6);
  double rtt_scale_ms = 95.0;  ///< unit-square diagonal ~ continental RTT
  double loss_median = 4e-5;
  double loss_sigma = 1.2;
  GridNoise noise;
};

/// A PlanetLab-style config scaled to roughly `pool_size` hosts: sites =
/// pool_size / 2 (the 1..3 hosts/site draw averages ~2), every other knob
/// at its 2004 default. Used by the `--pool-size` sweeps that exercise the
/// scheduler control plane at 1000+ hosts.
[[nodiscard]] PlanetLabConfig scaled_planetlab_config(std::size_t pool_size);

struct AbileneCoreConfig {
  std::size_t universities = 10;  ///< paper: 10 U.S. universities
  std::uint64_t university_tcp_buffer = 64 * kKiB;
  std::uint64_t core_tcp_buffer = 8 * kMiB;  ///< Internet2 observatory hosts
  double university_access_mbps = 90.0;
  /// Endpoints are still PlanetLab machines: virtualization caps what any
  /// path through them can carry, relayed or not.
  double university_cap_median_mbps = 18.0;
  double university_cap_sigma = 0.9;
  double core_capacity_mbps = 900.0;
  SimTime rtt_base = SimTime::milliseconds(4);
  double rtt_scale_ms = 110.0;
  double loss_median = 2e-5;
  double loss_sigma = 1.0;
  GridNoise noise;
};

/// One realized pair (direct path or relay hop): the single source of
/// truth both measurement fidelities consume. The analytic model reads it
/// as flow::ConnectionParams (via connection_params()); the simulated
/// fidelities materialize it as a link whose rate/delay/loss and endpoint
/// TCP buffers carry the same numbers (testbed/materialize.hpp). Keeping
/// one struct means the analytic and simulated sweeps cannot silently
/// drift onto different network parameters.
struct PairRealization {
  SimTime rtt = SimTime::milliseconds(50);
  double loss_rate = 0.0;
  /// Realized path capacity: base bandwidth under cross traffic, clipped
  /// by both hosts' loaded caps (and rate limits past the threshold).
  Bandwidth bottleneck = Bandwidth::mbps(100);
  /// Effective window: min of the two hosts' TCP buffers.
  std::uint64_t window_bytes = 64 * kKiB;

  [[nodiscard]] flow::ConnectionParams connection_params() const {
    flow::ConnectionParams params;
    params.rtt = rtt;
    params.bottleneck = bottleneck;
    params.window_bytes = window_bytes;
    params.loss_rate = loss_rate;
    return params;
  }
};

class SyntheticGrid {
 public:
  SyntheticGrid(std::vector<HostProfile> hosts, GridNoise noise,
                std::uint64_t seed);

  /// The paper's PlanetLab-like pool (~142 hosts over ~70 sites).
  [[nodiscard]] static SyntheticGrid planetlab(const PlanetLabConfig& config,
                                               std::uint64_t seed);

  /// 10 universities homed onto the 11 Abilene POPs, with depot-grade hosts
  /// at every POP (paper section 4.2, second experiment).
  [[nodiscard]] static SyntheticGrid abilene_core(
      const AbileneCoreConfig& config, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] const HostProfile& host(std::size_t i) const;
  [[nodiscard]] std::vector<std::string> sites() const;
  /// Indices of core (backbone depot) hosts.
  [[nodiscard]] std::vector<std::size_t> core_hosts() const;

  // ---- persistent ground truth -------------------------------------------
  [[nodiscard]] SimTime rtt(std::size_t a, std::size_t b) const;
  [[nodiscard]] double loss(std::size_t a, std::size_t b) const;
  /// Long-run wide-area path bandwidth (no per-trial noise, no host load).
  [[nodiscard]] Bandwidth base_path_bw(std::size_t a, std::size_t b) const;
  /// What a measurement probe between the two hosts observes on average:
  /// path bandwidth clipped by host caps and the probes' window ceiling.
  [[nodiscard]] Bandwidth probe_bw(std::size_t a, std::size_t b) const;
  /// Adapter feeding the NWS monitor.
  [[nodiscard]] nws::TruthFn truth() const;

  // ---- per-trial realizations ----------------------------------------------
  /// Realize one direct transfer of `bytes` from a to b right now (samples
  /// load and cross-traffic noise from `trial`). Source of truth for both
  /// the analytic model and the simulated fidelities.
  [[nodiscard]] PairRealization realize_direct(std::size_t a, std::size_t b,
                                               std::uint64_t bytes,
                                               Rng& trial) const;

  /// Realize every hop of one relayed transfer along `path` (node sequence
  /// source..sink). One load sample per participating host, reused across
  /// its hops; non-core depots pay the relay-efficiency factor.
  [[nodiscard]] std::vector<PairRealization> realize_relay_hops(
      const std::vector<std::size_t>& path, std::uint64_t bytes,
      Rng& trial) const;

  /// Adapter: realize_direct() as analytic-model connection parameters.
  /// Draws from `trial` exactly as realize_direct does.
  [[nodiscard]] flow::ConnectionParams direct_params(std::size_t a,
                                                     std::size_t b,
                                                     std::uint64_t bytes,
                                                     Rng& trial) const;

  /// Adapter: realize_relay_hops() as analytic-model hop parameters.
  [[nodiscard]] std::vector<flow::ConnectionParams> relay_params(
      const std::vector<std::size_t>& path, std::uint64_t bytes,
      Rng& trial) const;

  [[nodiscard]] const GridNoise& noise() const { return noise_; }

 private:
  /// Stable pseudo-random factor for an unordered host-site pair.
  [[nodiscard]] double pair_unit(std::size_t a, std::size_t b,
                                 std::uint64_t salt) const;
  [[nodiscard]] Bandwidth loaded_cap(const HostProfile& host,
                                     Rng& trial) const;

  std::vector<HostProfile> hosts_;
  GridNoise noise_;
  std::uint64_t seed_;
  // Latency / loss generation parameters (set by the named constructors).
  SimTime rtt_base_ = SimTime::milliseconds(6);
  double rtt_scale_ms_ = 110.0;
  double loss_median_ = 4e-5;
  double loss_sigma_ = 1.2;
};

}  // namespace lsl::testbed
