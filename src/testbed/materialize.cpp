#include "testbed/materialize.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lsl::testbed {

Materialized materialize_hosts(const SyntheticGrid& grid,
                               const std::vector<std::size_t>& hosts,
                               std::uint64_t seed) {
  LSL_ASSERT_MSG(hosts.size() >= 2, "need at least two hosts");
  Materialized out;
  out.harness = std::make_unique<exp::SimHarness>(seed);
  auto& h = *out.harness;

  for (const std::size_t host : hosts) {
    out.nodes.push_back(
        h.add_host(grid.host(host).name, grid.host(host).site));
  }

  // Full mesh: one duplex link per unordered pair carrying that pair's
  // end-to-end characteristics (bandwidth additionally clipped by the two
  // hosts' capacity caps, standing in for the virtualized host path).
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      const std::size_t a = hosts[i];
      const std::size_t b = hosts[j];
      net::LinkConfig link;
      const double mbps = std::min(
          {grid.base_path_bw(a, b).megabits_per_second(),
           grid.host(a).host_cap.megabits_per_second(),
           grid.host(b).host_cap.megabits_per_second()});
      link.rate = Bandwidth::mbps(std::max(mbps, 0.1));
      link.propagation_delay = grid.rtt(a, b) / 2;
      link.loss_rate = grid.loss(a, b);
      link.queue_capacity_bytes = mib(1);
      h.add_link(out.nodes[i], out.nodes[j], link);
    }
  }

  h.deploy([&](net::NodeId node) {
    session::DepotConfig cfg;
    // node ids are assigned in order, so node indexes `hosts` directly.
    const auto& profile = grid.host(hosts[node]);
    cfg.tcp = tcp::TcpOptions{}.with_buffers(profile.tcp_buffer);
    cfg.user_buffer_bytes = 16 * kMiB;
    return cfg;
  });

  // Pin every ordered pair onto its direct link: shortest-delay routing
  // must not silently reroute "direct" traffic through a third host.
  auto& topo = h.topology();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) {
        continue;
      }
      net::Link* link = topo.link_between(out.nodes[i], out.nodes[j]);
      LSL_ASSERT(link != nullptr);
      topo.node(out.nodes[i]).set_route(out.nodes[j], link);
    }
  }
  return out;
}

net::LinkConfig realized_link_config(const PairRealization& hop) {
  net::LinkConfig link;
  link.rate = hop.bottleneck;
  link.propagation_delay = hop.rtt / 2;
  link.loss_rate = hop.loss_rate;
  link.queue_capacity_bytes = mib(1);
  return link;
}

Materialized materialize_path(const SyntheticGrid& grid,
                              const std::vector<std::size_t>& path,
                              const std::vector<PairRealization>& hops,
                              std::uint64_t seed, exp::Fidelity fidelity) {
  LSL_ASSERT_MSG(path.size() >= 2, "need at least two hosts");
  LSL_ASSERT_MSG(hops.size() + 1 == path.size(),
                 "one realization per hop of the path");
  Materialized out;
  out.harness = std::make_unique<exp::SimHarness>(seed, fidelity);
  auto& h = *out.harness;

  for (const std::size_t host : path) {
    out.nodes.push_back(
        h.add_host(grid.host(host).name, grid.host(host).site));
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    h.add_link(out.nodes[i], out.nodes[i + 1], realized_link_config(hops[i]));
  }

  h.deploy([&](net::NodeId node) {
    session::DepotConfig cfg;
    // node ids are assigned in path order, so node indexes `path` directly.
    const auto& profile = grid.host(path[node]);
    cfg.tcp = tcp::TcpOptions{}.with_buffers(profile.tcp_buffer);
    cfg.user_buffer_bytes = 16 * kMiB;
    return cfg;
  });
  // A chain has a unique route between every pair; no pinning needed.
  return out;
}

}  // namespace lsl::testbed
