// Materialize a subset of a SyntheticGrid as a packet-level topology.
//
// The section 4.2 sweeps run on the flow-level model for speed; this
// adapter rebuilds any handful of grid hosts as a real packet topology --
// full mesh of per-pair links carrying each pair's RTT, base bandwidth
// (clipped by both hosts' capacity caps) and loss, with each host's TCP
// buffer size honored by its depot -- so tests can execute the same
// scheduled-vs-direct comparison both ways and pin the model to the
// simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/harness.hpp"
#include "testbed/grid.hpp"

namespace lsl::testbed {

struct Materialized {
  std::unique_ptr<exp::SimHarness> harness;
  /// grid host index -> harness node id (parallel to the input list).
  std::vector<net::NodeId> nodes;
};

/// Build a packet topology for `hosts` (grid indices). Every pair gets a
/// pinned direct link; depot processes run everywhere with 16 MB user
/// buffers and each host's own TCP buffer size.
[[nodiscard]] Materialized materialize_hosts(
    const SyntheticGrid& grid, const std::vector<std::size_t>& hosts,
    std::uint64_t seed);

}  // namespace lsl::testbed
