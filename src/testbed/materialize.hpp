// Materialize a subset of a SyntheticGrid as a packet-level topology.
//
// The section 4.2 sweeps run on the flow-level model for speed; this
// adapter rebuilds any handful of grid hosts as a real packet topology --
// full mesh of per-pair links carrying each pair's RTT, base bandwidth
// (clipped by both hosts' capacity caps) and loss, with each host's TCP
// buffer size honored by its depot -- so tests can execute the same
// scheduled-vs-direct comparison both ways and pin the model to the
// simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/harness.hpp"
#include "testbed/grid.hpp"

namespace lsl::testbed {

struct Materialized {
  std::unique_ptr<exp::SimHarness> harness;
  /// grid host index -> harness node id (parallel to the input list).
  std::vector<net::NodeId> nodes;
};

/// Build a packet topology for `hosts` (grid indices). Every pair gets a
/// pinned direct link; depot processes run everywhere with 16 MB user
/// buffers and each host's own TCP buffer size.
[[nodiscard]] Materialized materialize_hosts(
    const SyntheticGrid& grid, const std::vector<std::size_t>& hosts,
    std::uint64_t seed);

/// The link a PairRealization materializes as: rate = realized bottleneck,
/// one-way delay = rtt/2, the pair's loss rate, 1 MiB of queue. The hop's
/// window_bytes is carried separately, by the endpoints' TCP buffers.
[[nodiscard]] net::LinkConfig realized_link_config(const PairRealization& hop);

/// Build a chain topology along `path` (grid indices, source..sink) where
/// hop i carries `hops[i]` -- the same per-trial realization the analytic
/// model would consume -- at the requested fidelity. Depots run on every
/// node with 16 MiB user buffers and the host's own TCP buffer, so each
/// hop's connection window min(send, recv buffer) equals the realization's
/// window_bytes. Used by the simulated sweep fidelities to measure a case.
[[nodiscard]] Materialized materialize_path(
    const SyntheticGrid& grid, const std::vector<std::size_t>& path,
    const std::vector<PairRealization>& hops, std::uint64_t seed,
    exp::Fidelity fidelity);

}  // namespace lsl::testbed
