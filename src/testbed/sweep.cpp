#include "testbed/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "exp/parallel.hpp"
#include "nws/monitor.hpp"
#include "sched/route_service.hpp"
#include "testbed/materialize.hpp"
#include "util/assert.hpp"

namespace lsl::testbed {

std::vector<double> SweepResult::all_speedups() const {
  std::vector<double> out;
  for (const auto& [size, xs] : speedups_by_size) {
    out.insert(out.end(), xs.begin(), xs.end());
  }
  return out;
}

SweepResult run_speedup_sweep(const SyntheticGrid& grid,
                              const SweepConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  SweepResult result;

  // 1. Measure the pool and build the scheduler's matrix.
  nws::PerformanceMonitor monitor(grid.sites(), nws::NoiseModel{},
                                  rng.fork(1).next_u64());
  for (std::size_t epoch = 0; epoch < config.monitor_epochs; ++epoch) {
    monitor.observe_epoch(grid.truth());
  }
  sched::CostMatrix matrix = monitor.build_matrix();
  if (config.matrix_drift_sigma > 0.0) {
    // Scheduling from stale information: the world moved since the matrix
    // was built. Persistent per-pair drift, symmetric.
    Rng drift_rng = rng.fork(2);
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      for (std::size_t j = i + 1; j < matrix.size(); ++j) {
        const double factor =
            drift_rng.lognormal(0.0, config.matrix_drift_sigma);
        if (matrix.cost(i, j) != sched::kInfiniteCost) {
          matrix.set_cost(i, j, matrix.cost(i, j) * factor);
          matrix.set_cost(j, i, matrix.cost(j, i) * factor);
        }
      }
    }
  }

  sched::SchedulerOptions sched_options;
  sched_options.epsilon = config.epsilon;
  if (config.use_host_costs) {
    sched_options.host_costs.resize(grid.size());
    for (std::size_t h = 0; h < grid.size(); ++h) {
      sched_options.host_costs[h] =
          1.0 / grid.host(h).host_cap.megabits_per_second();
    }
  }
  // Route either through the direct scheduler or, when route_shards > 0,
  // through a sharded RouteService snapshot (same trees at one shard, so
  // the single-shard output is bitwise identical to the direct path).
  std::unique_ptr<sched::Scheduler> scheduler;
  std::unique_ptr<sched::RouteService> route_service;
  if (config.route_shards > 0) {
    sched::RouteServiceOptions service_options;
    service_options.shards = config.route_shards;
    service_options.scheduler = sched_options;
    service_options.prebuild_jobs = config.jobs;
    route_service = std::make_unique<sched::RouteService>(std::move(matrix),
                                                          service_options);
  } else {
    scheduler =
        std::make_unique<sched::Scheduler>(std::move(matrix), sched_options);
  }

  // 2. Find the pairs where the scheduler picked a depot path. The n^2
  // discovery loop parallelizes per source: the source trees are prebuilt
  // (itself parallel and job-count invariant), so every worker only reads
  // the shared scheduler, and per-source results fold back in source order
  // -- cases and fraction_scheduled come out bitwise identical to the old
  // serial loop for any jobs value.
  std::vector<std::size_t> endpoints = config.endpoints;
  if (endpoints.empty()) {
    endpoints.resize(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      endpoints[i] = i;
    }
  }
  if (scheduler != nullptr) {
    scheduler->prebuild_trees(config.jobs, endpoints);
  }
  const std::shared_ptr<const sched::RouteSnapshot> route_snapshot =
      route_service != nullptr ? route_service->snapshot() : nullptr;
  struct Case {
    std::size_t src;
    std::size_t dst;
    std::vector<std::size_t> path;
  };
  struct Discovery {
    std::vector<Case> cases;
    std::size_t eligible = 0;
  };
  exp::TrialOptions discovery_options;
  discovery_options.jobs = config.jobs;
  const std::vector<Discovery> discovered = exp::map_trials<Discovery>(
      endpoints.size(), discovery_options, [&](std::size_t trial) {
        const std::size_t src = endpoints[trial];
        Discovery out;
        for (const std::size_t dst : endpoints) {
          if (src == dst || grid.host(src).site == grid.host(dst).site) {
            continue;
          }
          ++out.eligible;
          if (route_snapshot != nullptr) {
            auto resolved = route_snapshot->resolve(src, dst);
            if (resolved.uses_depots()) {
              out.cases.push_back(Case{src, dst, std::move(resolved.path)});
            }
          } else {
            const auto decision = scheduler->route(src, dst);
            if (decision.uses_depots()) {
              out.cases.push_back(Case{src, dst, decision.path});
            }
          }
        }
        return out;
      });
  std::vector<Case> cases;
  std::size_t eligible_pairs = 0;
  for (const Discovery& d : discovered) {
    eligible_pairs += d.eligible;
    cases.insert(cases.end(), d.cases.begin(), d.cases.end());
  }
  result.fraction_scheduled =
      eligible_pairs > 0
          ? static_cast<double>(cases.size()) /
                static_cast<double>(eligible_pairs)
          : 0.0;
  rng.shuffle(cases);
  if (config.max_cases > 0 && cases.size() > config.max_cases) {
    cases.resize(config.max_cases);
  }
  result.scheduled_cases = cases.size();

  double hop_sum = 0.0;
  for (const auto& c : cases) {
    hop_sum += static_cast<double>(c.path.size() - 2);
  }
  result.mean_path_hops =
      cases.empty() ? 0.0 : hop_sum / static_cast<double>(cases.size());

  // 3. Transfer sizes.
  std::vector<std::uint64_t> sizes = config.sizes;
  if (sizes.empty()) {
    for (int n = 0; n < config.max_size_exp; ++n) {
      sizes.push_back(mib(1) << n);
    }
  }

  // 4. Measure: per case and size, average bandwidth over iterations for
  // both modes, then Eq. 1. Every case is an independent trial: its Rng is
  // forked from the (fixed) sweep generator keyed by the host-name pair, so
  // the cases can run on any worker in any order and still reproduce the
  // serial sweep bit for bit. Results land in a per-case slot and are
  // folded into the size-keyed result map in case order afterwards.
  struct CaseResult {
    std::vector<double> speedup_by_size;  ///< parallel to `sizes`
  };
  exp::TrialOptions trial_options;
  trial_options.jobs = config.jobs;
  // The measurement phase touches no built-in instrumentation (simulated
  // fidelities build private harnesses); skip per-trial registry copies.
  trial_options.scope_metrics = false;
  const bool simulated = config.fidelity != SweepFidelity::kAnalytic;
  const exp::Fidelity sim_fidelity = config.fidelity == SweepFidelity::kFlow
                                         ? exp::Fidelity::kFlow
                                         : exp::Fidelity::kPacket;
  // Run one transfer of `size` bytes along a materialized chain; returns
  // achieved bandwidth in bit/s (0 on a deadline miss, which only a
  // pathological realization can produce at this deadline).
  const auto simulate_chain =
      [&](const std::vector<std::size_t>& path,
          const std::vector<PairRealization>& hops, std::uint64_t size,
          std::uint64_t sim_seed) -> double {
    Materialized m =
        materialize_path(grid, path, hops, sim_seed, sim_fidelity);
    session::TransferSpec spec;
    spec.dst = m.nodes.back();
    for (std::size_t i = 1; i + 1 < m.nodes.size(); ++i) {
      spec.via.push_back(m.nodes[i]);
    }
    spec.payload_bytes = size;
    spec.tcp =
        tcp::TcpOptions{}.with_buffers(grid.host(path.front()).tcp_buffer);
    const auto outcome = m.harness->run_transfer(m.nodes.front(), spec,
                                                 SimTime::seconds(86400));
    if (!outcome.completed || outcome.elapsed <= SimTime::zero()) {
      return 0.0;
    }
    return static_cast<double>(size) * 8.0 / outcome.elapsed.to_seconds();
  };
  const std::vector<CaseResult> measured = exp::map_trials<CaseResult>(
      cases.size(), trial_options, [&](std::size_t trial) {
        const auto& c = cases[trial];
        Rng case_rng = rng.fork(Rng::hash(grid.host(c.src).name) ^
                                Rng::hash(grid.host(c.dst).name));
        CaseResult out;
        out.speedup_by_size.reserve(sizes.size());
        for (const std::uint64_t size : sizes) {
          double direct_bw_sum = 0.0;
          double sched_bw_sum = 0.0;
          for (std::size_t it = 0; it < config.iterations; ++it) {
            // One realization per mode, shared verbatim by every fidelity:
            // the analytic model consumes it as ConnectionParams, the
            // simulated back ends materialize it as a chain topology.
            const auto direct =
                grid.realize_direct(c.src, c.dst, size, case_rng);
            const auto hops =
                grid.realize_relay_hops(c.path, size, case_rng);
            if (simulated) {
              const std::uint64_t sim_seed = case_rng.next_u64();
              direct_bw_sum += simulate_chain({c.src, c.dst}, {direct},
                                              size, sim_seed);
              sched_bw_sum +=
                  simulate_chain(c.path, hops, size, sim_seed ^ 0x5C5C);
            } else {
              const SimTime t_direct =
                  flow::transfer_time(direct.connection_params(), size);
              direct_bw_sum +=
                  static_cast<double>(size) * 8.0 / t_direct.to_seconds();
              std::vector<flow::ConnectionParams> hop_params;
              hop_params.reserve(hops.size());
              for (const PairRealization& hop : hops) {
                hop_params.push_back(hop.connection_params());
              }
              flow::RelayPathParams path_params;
              path_params.hops = hop_params;
              const SimTime t_sched =
                  flow::relay_transfer_time(path_params, size);
              sched_bw_sum +=
                  static_cast<double>(size) * 8.0 / t_sched.to_seconds();
            }
          }
          out.speedup_by_size.push_back(
              direct_bw_sum > 0.0 ? sched_bw_sum / direct_bw_sum : 0.0);
        }
        return out;
      });
  for (const CaseResult& cr : measured) {
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      result.speedups_by_size[sizes[s]].push_back(cr.speedup_by_size[s]);
    }
  }
  result.total_measurements +=
      cases.size() * sizes.size() * config.iterations * 2;
  return result;
}

}  // namespace lsl::testbed
