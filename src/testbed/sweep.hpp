// The paper's large-scale evaluation loop (section 4.2): measure the pool
// with the NWS monitor, schedule with the epsilon-damped minimax scheduler,
// and for every (source, destination) pair where the scheduler chose a
// depot path, sample both scheduled and direct transfers of 2^n MB across
// several iterations. Speedup per case follows Eq. 1:
//     speedup = average scheduled bandwidth / average direct bandwidth.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "flow/path_model.hpp"
#include "sched/scheduler.hpp"
#include "testbed/grid.hpp"

namespace lsl::testbed {

/// How the measurement phase times each transfer. kAnalytic evaluates the
/// closed-form flow model (the paper's 362k-measurement sweep runs in
/// seconds). kFlow and kPacket materialize every (case, size, iteration,
/// mode) as a small chain topology carrying the same PairRealization and
/// run the transfer through the full LSL session machinery at that
/// fidelity -- orders of magnitude slower, but cross-validates the
/// analytic numbers end to end (see docs/flow_fidelity.md).
enum class SweepFidelity { kAnalytic, kFlow, kPacket };

struct SweepConfig {
  /// Transfer sizes: 2^n MB for n in [0, max_size_exp).
  int max_size_exp = 7;
  /// Explicit size list (bytes); when non-empty, overrides max_size_exp.
  std::vector<std::uint64_t> sizes;
  /// Measurements of each (pair, size, mode).
  std::size_t iterations = 5;
  /// Cap on scheduled cases measured (0 = unlimited).
  std::size_t max_cases = 400;
  /// NWS measurement epochs before scheduling.
  std::size_t monitor_epochs = 20;
  /// Scheduler edge-equivalence margin.
  double epsilon = 0.10;
  /// Persistent per-pair drift applied to the matrix after measurement;
  /// emulates scheduling from stale information (0 = fresh).
  double matrix_drift_sigma = 0.0;
  /// Restrict sources/destinations to these hosts (empty = all).
  std::vector<std::size_t> endpoints;
  /// Host-throughput scheduler extension (paper future work).
  bool use_host_costs = false;
  /// Worker threads for the measurement phase (each scheduled case is an
  /// independent trial). Any value produces bitwise-identical results --
  /// see docs/performance.md for the determinism contract. 0 = one worker
  /// per hardware thread.
  std::size_t jobs = 1;
  /// Measurement back end (analytic model, fluid simulation, or packet
  /// simulation). Monitor/scheduler/discovery phases are identical across
  /// fidelities; only the per-case timing differs.
  SweepFidelity fidelity = SweepFidelity::kAnalytic;
  /// Discover routes through a sharded sched::RouteService with this many
  /// shards instead of the direct Scheduler (0 = direct). A single shard
  /// reproduces the direct scheduler's decisions exactly (the output is
  /// bitwise identical); more shards relay inter-shard routes through
  /// gateway depots.
  std::size_t route_shards = 0;
};

struct SweepResult {
  /// Per transfer size: the per-case speedups (one entry per scheduled
  /// (src, dst) pair).
  std::map<std::uint64_t, std::vector<double>> speedups_by_size;
  /// Fraction of eligible ordered pairs the scheduler routed via depots.
  double fraction_scheduled = 0.0;
  std::size_t scheduled_cases = 0;
  std::size_t total_measurements = 0;
  /// Mean depot-path hop count among scheduled cases.
  double mean_path_hops = 0.0;

  [[nodiscard]] std::vector<double> all_speedups() const;
};

[[nodiscard]] SweepResult run_speedup_sweep(const SyntheticGrid& grid,
                                            const SweepConfig& config,
                                            std::uint64_t seed);

}  // namespace lsl::testbed
