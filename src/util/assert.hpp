// Lightweight always-on assertion macros for simulation invariants.
//
// Simulation code is only trustworthy if its invariants are checked in every
// build type, so these do not compile away in release builds. They are used
// for *internal* invariants; user-facing argument validation throws
// std::invalid_argument instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lsl::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "LSL_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace lsl::detail

#define LSL_ASSERT(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::lsl::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                \
  } while (false)

#define LSL_ASSERT_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) {                                                \
      ::lsl::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                             \
  } while (false)

// Protocol invariants on warm paths (per-chunk ledger writes, buffer
// accounting). Unlike LSL_ASSERT these compile away under NDEBUG: the same
// facts are re-checked out-of-line by mc::Invariants in every build, so
// Release keeps its throughput and Debug gets the early abort.
#ifdef NDEBUG
#define LSL_PROTO_CHECK(expr, msg) ((void)0)
#else
#define LSL_PROTO_CHECK(expr, msg) LSL_ASSERT_MSG(expr, msg)
#endif
