#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lsl {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void init_log_from_env() {
  const char* v = std::getenv("LSL_LOG");
  if (v == nullptr) {
    return;
  }
  if (std::strcmp(v, "trace") == 0) {
    g_level = LogLevel::kTrace;
  } else if (std::strcmp(v, "debug") == 0) {
    g_level = LogLevel::kDebug;
  } else if (std::strcmp(v, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(v, "warn") == 0) {
    g_level = LogLevel::kWarn;
  } else if (std::strcmp(v, "error") == 0) {
    g_level = LogLevel::kError;
  } else if (std::strcmp(v, "off") == 0) {
    g_level = LogLevel::kOff;
  }
}

void log_emit(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) {
    return;
  }
  std::fprintf(stderr, "[%s] ", log_level_name(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace lsl
