#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lsl {

namespace {
LogLevel g_level = LogLevel::kWarn;
// Thread-local: each parallel trial's Simulator installs its own clock, so
// concurrent trials stamp log lines with their own simulated time instead of
// racing on one global slot.
thread_local LogClockFn g_clock_fn = nullptr;
thread_local void* g_clock_ctx = nullptr;
}  // namespace

void set_log_clock(LogClockFn fn, void* ctx) {
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

void clear_log_clock(void* ctx) {
  if (g_clock_ctx == ctx) {
    g_clock_fn = nullptr;
    g_clock_ctx = nullptr;
  }
}

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void init_log_from_env() {
  const char* v = std::getenv("LSL_LOG");
  if (v == nullptr) {
    return;
  }
  if (std::strcmp(v, "trace") == 0) {
    g_level = LogLevel::kTrace;
  } else if (std::strcmp(v, "debug") == 0) {
    g_level = LogLevel::kDebug;
  } else if (std::strcmp(v, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(v, "warn") == 0) {
    g_level = LogLevel::kWarn;
  } else if (std::strcmp(v, "error") == 0) {
    g_level = LogLevel::kError;
  } else if (std::strcmp(v, "off") == 0) {
    g_level = LogLevel::kOff;
  }
}

void log_emit(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) {
    return;
  }
  if (g_clock_fn != nullptr) {
    // Simulated seconds, microsecond resolution: matches the `ts` unit
    // scale of exported trace files.
    const double seconds =
        static_cast<double>(g_clock_fn(g_clock_ctx)) * 1e-9;
    std::fprintf(stderr, "[%12.6f] [%s] ", seconds, log_level_name(level));
  } else {
    std::fprintf(stderr, "[%s] ", log_level_name(level));
  }
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  if (level >= LogLevel::kError) {
    std::fflush(stderr);
  }
}

}  // namespace lsl
