// Minimal leveled logger.
//
// The simulator is single-threaded by design (discrete-event), so the logger
// keeps no locks. Level is a process-global that benches set from the
// environment variable LSL_LOG (trace|debug|info|warn|error|off).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>

namespace lsl {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Current global threshold; messages below it are suppressed.
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// Initialize the level from the LSL_LOG environment variable (default warn).
void init_log_from_env();

[[nodiscard]] const char* log_level_name(LogLevel level);

/// Optional time source for log prefixes, in integer nanoseconds. The
/// simulator installs itself here so log lines carry the simulated time
/// they were emitted at and correlate with trace timestamps. The slot is
/// thread-local so parallel trials each stamp with their own clock. `ctx`
/// is an opaque owner token; clear_log_clock() is a no-op unless the same
/// owner still holds this thread's clock (a newer simulator may have
/// replaced it).
using LogClockFn = std::int64_t (*)(void* ctx);
void set_log_clock(LogClockFn fn, void* ctx);
void clear_log_clock(void* ctx);

/// printf-style emission; prepends level tag. Not for hot paths when
/// suppressed -- guard with lsl::log_enabled() or the LSL_LOG_* macros.
void log_emit(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace lsl

#define LSL_LOG_AT(lvl, ...)          \
  do {                                \
    if (::lsl::log_enabled(lvl)) {    \
      ::lsl::log_emit(lvl, __VA_ARGS__); \
    }                                 \
  } while (false)

#define LSL_TRACE(...) LSL_LOG_AT(::lsl::LogLevel::kTrace, __VA_ARGS__)
#define LSL_DEBUG(...) LSL_LOG_AT(::lsl::LogLevel::kDebug, __VA_ARGS__)
#define LSL_INFO(...) LSL_LOG_AT(::lsl::LogLevel::kInfo, __VA_ARGS__)
#define LSL_WARN(...) LSL_LOG_AT(::lsl::LogLevel::kWarn, __VA_ARGS__)
#define LSL_ERROR(...) LSL_LOG_AT(::lsl::LogLevel::kError, __VA_ARGS__)
