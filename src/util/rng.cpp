#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace lsl {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  LSL_ASSERT(n > 0);
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LSL_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draws two uniforms per call, discards the second variate so
  // the stream position is a pure function of call count.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return next_double() < p;
}

double Rng::exponential(double mean) {
  LSL_ASSERT(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

std::size_t Rng::pick_index(std::size_t n) {
  return static_cast<std::size_t>(next_below(n));
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t sm = seed_ ^ (salt * 0x9E3779B97F4A7C15ULL + 0x1234567);
  return Rng{splitmix64(sm)};
}

std::uint64_t Rng::hash(std::string_view s) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace lsl
