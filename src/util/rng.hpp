// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// experiments replay bit-for-bit. The generator is xoshiro256** seeded via
// SplitMix64; distribution code is written here by hand because libstdc++'s
// std::*_distribution results are not guaranteed stable across versions.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace lsl {

/// xoshiro256** PRNG with explicit, reproducible seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, stateless pairing).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal such that exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Pick an index in [0, n) uniformly.
  std::size_t pick_index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = pick_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream; `salt` decorrelates siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  /// Stable 64-bit hash of a string, for deriving per-entity seeds.
  [[nodiscard]] static std::uint64_t hash(std::string_view s);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace lsl
