#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace lsl {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ > 0 ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }

double OnlineStats::max() const { return max_; }

double percentile_sorted(std::span<const double> sorted, double q) {
  LSL_ASSERT_MSG(!sorted.empty(), "percentile of empty sample");
  LSL_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percentile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double median_of(std::span<const double> xs) { return percentile(xs, 0.5); }

BoxStats BoxStats::of(std::span<const double> xs) {
  LSL_ASSERT_MSG(!xs.empty(), "box stats of empty sample");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  BoxStats b;
  b.count = copy.size();
  b.min = copy.front();
  b.q25 = percentile_sorted(copy, 0.25);
  b.median = percentile_sorted(copy, 0.5);
  b.q75 = percentile_sorted(copy, 0.75);
  b.max = copy.back();
  return b;
}

double percentile_rank_below(std::span<const double> xs, double threshold) {
  LSL_ASSERT_MSG(!xs.empty(), "percentile rank of empty sample");
  std::size_t below = 0;
  for (const double x : xs) {
    if (x < threshold) {
      ++below;
    }
  }
  return 100.0 * static_cast<double>(below) / static_cast<double>(xs.size());
}

}  // namespace lsl
