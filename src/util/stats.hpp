// Descriptive statistics used by the experiment harness: online accumulation,
// percentiles, and the five-number box summaries the paper's Figures 10 and 11
// report.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lsl {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics,
/// q in [0, 1]. Input need not be sorted; a sorted copy is made.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Percentile over data the caller has already sorted ascending.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

[[nodiscard]] double mean_of(std::span<const double> xs);
[[nodiscard]] double median_of(std::span<const double> xs);

/// Five-number summary for box-and-whisker figures (paper Fig 11).
struct BoxStats {
  std::size_t count = 0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;

  [[nodiscard]] static BoxStats of(std::span<const double> xs);
};

/// Fraction of values strictly below `threshold`, as a percentile rank in
/// [0, 100]. The paper's crossover table reports the percentile at which
/// speedup becomes greater than 1.
[[nodiscard]] double percentile_rank_below(std::span<const double> xs,
                                           double threshold);

}  // namespace lsl
