#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace lsl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  LSL_ASSERT_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::string rule;
  for (const std::size_t w : widths) {
    rule += "  " + std::string(w, '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

FigureData::FigureData(std::string title, std::string x_label,
                       std::vector<std::string> series_labels)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_labels_(std::move(series_labels)) {}

void FigureData::add_point(double x, std::vector<double> ys) {
  LSL_ASSERT_MSG(ys.size() == series_labels_.size(),
                 "point arity must match series count");
  points_.emplace_back(x, std::move(ys));
}

void FigureData::print(std::ostream& os) const {
  os << "# " << title_ << '\n';
  os << x_label_;
  for (const auto& s : series_labels_) {
    os << ',' << s;
  }
  os << '\n';
  for (const auto& [x, ys] : points_) {
    os << Table::num(x, 6);
    for (const double y : ys) {
      os << ',' << Table::num(y, 6);
    }
    os << '\n';
  }
}

}  // namespace lsl
