// Plain-text table and CSV writers used by the benchmark binaries to print
// the paper's tables and figure data series.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace lsl {

/// Column-aligned text table. Usage:
///   Table t({"size", "direct", "lsl", "speedup"});
///   t.add_row({"1MB", "4.21", "4.87", "1.16"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string num_int(long long v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A named (x, series...) dataset for a figure; prints as CSV with a header
/// so the series can be re-plotted directly.
class FigureData {
 public:
  FigureData(std::string title, std::string x_label,
             std::vector<std::string> series_labels);

  void add_point(double x, std::vector<double> ys);

  void print(std::ostream& os) const;

  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_labels_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

}  // namespace lsl
