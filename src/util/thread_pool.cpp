#include "util/thread_pool.hpp"

#include <cstdlib>

namespace lsl {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || batch_ != seen_batch; });
      if (shutdown_) {
        return;
      }
      seen_batch = batch_;
      job = job_;
    }
    (*job)(index);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& job) {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      outstanding_ = workers_.size();
      ++batch_;
    }
    start_cv_.notify_all();
  }
  job(workers_.size());  // the caller participates as the last worker
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
  }
}

std::size_t ThreadPool::default_jobs() {
  if (const char* v = std::getenv("LSL_JOBS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) {
      return static_cast<std::size_t>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace lsl
