// Minimal persistent thread pool for the parallel trial engine.
//
// Deliberately not a task-queue/work-stealing scheduler: the only consumer
// (exp/parallel.hpp) partitions trials into chunks itself and hands every
// worker the same callable, which claims chunks off a shared atomic cursor.
// The pool just keeps N threads parked between batches so repeated sweeps
// don't pay thread spawn/join each time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsl {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is allowed: run_on_all degenerates to a
  /// call on the caller's thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (excludes the calling thread).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs job(worker_index) once on every pool thread plus once on the
  /// calling thread (worker_index == size()), and blocks until all return.
  /// The job must be internally thread-safe. Not reentrant.
  void run_on_all(const std::function<void(std::size_t)>& job);

  /// Default parallelism: LSL_JOBS when set (>= 1), else hardware
  /// concurrency, else 1.
  [[nodiscard]] static std::size_t default_jobs();

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t batch_ = 0;       ///< bumps when a new job is posted
  std::size_t outstanding_ = 0;   ///< workers still running the current job
  bool shutdown_ = false;
};

}  // namespace lsl
