#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace lsl {

SimTime SimTime::from_seconds(double s) {
  return SimTime{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

std::string SimTime::str() const {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_milliseconds());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace lsl
