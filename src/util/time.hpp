// Simulation time: a strong integer-nanosecond type.
//
// All simulator state advances on an int64 nanosecond clock so that runs are
// bit-for-bit deterministic across platforms (no floating-point event times).
// Conversions to/from floating-point seconds exist only at the edges
// (configuration and reporting).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace lsl {

/// A point in simulated time or a duration, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t v) {
    return SimTime{v * 1'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  /// Conversion from floating-point seconds; rounds to the nearest tick.
  [[nodiscard]] static SimTime from_seconds(double s);

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }

  /// Human-readable rendering, e.g. "12.345ms" or "3.2s".
  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ / k};
  }

 private:
  std::int64_t ns_ = 0;
};

namespace time_literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace time_literals

}  // namespace lsl
