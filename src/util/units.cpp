#include "util/units.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace lsl {

SimTime Bandwidth::transmit_time(std::uint64_t bytes) const {
  LSL_ASSERT_MSG(bps_ > 0.0, "transmit over zero-rate link");
  const double seconds = static_cast<double>(bytes) * 8.0 / bps_;
  return SimTime::from_seconds(seconds);
}

std::string Bandwidth::str() const {
  char buf[64];
  if (bps_ >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fGbit/s", bps_ * 1e-9);
  } else if (bps_ >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fMbit/s", bps_ * 1e-6);
  } else if (bps_ >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fkbit/s", bps_ * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fbit/s", bps_);
  }
  return buf;
}

Bandwidth throughput_of(std::uint64_t bytes, SimTime elapsed) {
  if (elapsed <= SimTime::zero()) {
    return Bandwidth{0.0};
  }
  return Bandwidth{static_cast<double>(bytes) * 8.0 / elapsed.to_seconds()};
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluGB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluMB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluKB",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace lsl
