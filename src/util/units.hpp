// Bandwidth and data-size units.
//
// Bandwidth is carried as a strong type wrapping bits/second (double: rates
// are configuration values and report values, never event-ordering state).
// Data sizes are plain std::uint64_t bytes with named constructors.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace lsl {

/// Link or application data rate in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bits_per_second)
      : bps_(bits_per_second) {}

  [[nodiscard]] static constexpr Bandwidth bps(double v) {
    return Bandwidth{v};
  }
  [[nodiscard]] static constexpr Bandwidth kbps(double v) {
    return Bandwidth{v * 1e3};
  }
  [[nodiscard]] static constexpr Bandwidth mbps(double v) {
    return Bandwidth{v * 1e6};
  }
  [[nodiscard]] static constexpr Bandwidth gbps(double v) {
    return Bandwidth{v * 1e9};
  }

  [[nodiscard]] constexpr double bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double megabits_per_second() const {
    return bps_ * 1e-6;
  }
  [[nodiscard]] constexpr double bytes_per_second() const {
    return bps_ / 8.0;
  }

  /// Time to serialize `bytes` onto a link at this rate.
  [[nodiscard]] SimTime transmit_time(std::uint64_t bytes) const;

  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Bandwidth&) const = default;

  friend constexpr Bandwidth operator*(Bandwidth b, double k) {
    return Bandwidth{b.bps_ * k};
  }
  friend constexpr Bandwidth operator*(double k, Bandwidth b) {
    return Bandwidth{b.bps_ * k};
  }
  friend constexpr Bandwidth operator/(Bandwidth b, double k) {
    return Bandwidth{b.bps_ / k};
  }

 private:
  double bps_ = 0.0;
};

/// Named byte-size constructors (binary units: the paper's "MB" sizes are
/// power-of-two megabytes: 2^n MB transfers).
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * 1024ULL;
constexpr std::uint64_t kGiB = 1024ULL * 1024ULL * 1024ULL;

[[nodiscard]] constexpr std::uint64_t kib(std::uint64_t n) { return n * kKiB; }
[[nodiscard]] constexpr std::uint64_t mib(std::uint64_t n) { return n * kMiB; }

/// Observed throughput for `bytes` transferred in `elapsed`.
[[nodiscard]] Bandwidth throughput_of(std::uint64_t bytes, SimTime elapsed);

/// Render a byte count like "64MB" / "512KB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace lsl
